//! Umbrella crate for the DAC'17 nanophotonic-interconnect ECC reproduction.
//!
//! This crate re-exports the whole workspace under one roof so that examples,
//! integration tests and downstream users can depend on a single crate:
//!
//! * [`units`] — physical-quantity newtypes,
//! * [`thermal`] — micro-ring thermal drift, per-ring fabrication variation,
//!   heater tuning and barrel-shift channel hopping, chip thermal
//!   environments,
//! * [`ecc`] — the Hamming code family and BER transfer functions,
//! * [`ber`] — erfc math, SNR/BER conversions, the Eq. 4 detection model,
//! * [`photonics`] — micro-rings, VCSELs, waveguides, the MWSR link budget
//!   (temperature-aware),
//! * [`interface`] — the ONI datapaths and the Table I cost database,
//! * [`link`] — operating points, design-space exploration, the
//!   (thermally-adaptive) link manager,
//! * [`topology`] — fabric descriptions (MWSR/SWMR/electrical links),
//!   deterministic multi-hop routing and per-link model-card elaboration,
//! * [`sim`] — the event-driven optical NoC simulator with thermal-scenario
//!   playback,
//! * [`telemetry`] — structured event tracing (recorders, JSONL) and the
//!   deterministic metrics registry.
//!
//! # Quickstart
//!
//! ```
//! use onoc_ecc::link::NanophotonicLink;
//! use onoc_ecc::ecc::EccScheme;
//!
//! let link = NanophotonicLink::paper_link();
//! let coded = link.operating_point(EccScheme::Hamming7164, 1e-11)?;
//! println!("H(71,64) @ 1e-11 needs {} of laser power", coded.laser.laser_electrical_power);
//! # Ok::<(), onoc_ecc::link::LinkError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use onoc_ber as ber;
pub use onoc_ecc_codes as ecc;
pub use onoc_interface as interface;
pub use onoc_link as link;
pub use onoc_photonics as photonics;
pub use onoc_sim as sim;
pub use onoc_telemetry as telemetry;
pub use onoc_thermal as thermal;
pub use onoc_topology as topology;
pub use onoc_units as units;

/// Version of the reproduction workspace.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

#[cfg(test)]
mod tests {
    #[test]
    fn version_is_exposed() {
        assert!(!super::VERSION.is_empty());
    }
}
