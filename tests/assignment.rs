//! Design-time wavelength-assignment tests: the property suite of the
//! GLOW-style assigner plus scenario-level integration of the per-ONI
//! assignment pipeline.

use onoc_ecc::ecc::EccScheme;
use onoc_ecc::link::{NanophotonicLink, TrafficClass};
use onoc_ecc::sim::traffic::TrafficPattern;
use onoc_ecc::sim::{DecisionPolicy, DesignAssignmentConfig, RunReport, ScenarioBuilder};
use onoc_ecc::thermal::{
    AssignmentStrategy, FabricationVariation, RcNetworkParameters, RingBankState, ThermalTuner,
    WavelengthAssigner, WavelengthAssignment, WorkloadTrace,
};
use onoc_ecc::units::{Celsius, KelvinDelta};
use proptest::prelude::*;

fn paper_assigner(strategy: AssignmentStrategy, seed: u64) -> WavelengthAssigner {
    WavelengthAssigner {
        tuner: ThermalTuner::paper_heater(),
        grid_spacing_nm: 0.8,
        slope_nm_per_kelvin: 0.1,
        strategy,
        seed,
    }
}

fn bank(sigma_pm: f64, chip_seed: u64, dt: f64) -> RingBankState {
    RingBankState::new(
        FabricationVariation::new(sigma_pm / 1000.0, chip_seed).offsets_nm(16),
        KelvinDelta::new(dt),
    )
}

proptest! {
    /// (a) The identity assignment is bit-identical to today's unassigned
    /// path at every σ and temperature: same operating points through the
    /// full link stack.
    #[test]
    fn identity_assignment_is_bit_identical_at_every_sigma_and_temperature(
        sigma_pm in 0.0f64..100.0,
        chip_seed in 0u64..64,
        temperature in 25.0f64..85.0,
    ) {
        let variation = FabricationVariation::new(sigma_pm / 1000.0, chip_seed);
        let plain = NanophotonicLink::paper_link().with_fabrication_variation(variation);
        let assigned = NanophotonicLink::paper_link()
            .with_fabrication_variation(variation)
            .with_wavelength_assignment(WavelengthAssignment::identity(16))
            .unwrap();
        for scheme in [EccScheme::Uncoded, EccScheme::Hamming74, EccScheme::Hamming7164] {
            prop_assert_eq!(
                plain.operating_point_at(scheme, 1e-11, Celsius::new(temperature)),
                assigned.operating_point_at(scheme, 1e-11, Celsius::new(temperature))
            );
        }
    }

    /// (b) Assigner determinism: the same seed, heat map and offsets always
    /// produce the identical `WavelengthAssignment`.
    #[test]
    fn assigner_is_deterministic(
        sigma_pm in 0.0f64..100.0,
        chip_seed in 0u64..64,
        assign_seed in 0u64..64,
        dt in -35.0f64..60.0,
    ) {
        let state = bank(sigma_pm, chip_seed, dt);
        for strategy in [AssignmentStrategy::Greedy, AssignmentStrategy::GreedyRefine] {
            let first = paper_assigner(strategy, assign_seed).assign(&state);
            let second = paper_assigner(strategy, assign_seed).assign(&state);
            prop_assert_eq!(&first, &second);
            prop_assert!(first.validate().is_ok());
        }
    }

    /// (c) The assignment never increases the worst-ring predicted detuning
    /// versus identity at the target temperature (and never the predicted
    /// tuning power either — the assigner's never-worse guard).
    #[test]
    fn assignment_never_increases_worst_ring_detuning(
        sigma_pm in 0.0f64..100.0,
        chip_seed in 0u64..64,
        assign_seed in 0u64..64,
        dt in -35.0f64..60.0,
    ) {
        let state = bank(sigma_pm, chip_seed, dt);
        for strategy in [AssignmentStrategy::Greedy, AssignmentStrategy::GreedyRefine] {
            let assigner = paper_assigner(strategy, assign_seed);
            let assignment = assigner.assign(&state);
            let assigned = assigner.predicted_compensation(&state, &assignment);
            let identity =
                assigner.predicted_compensation(&state, &WavelengthAssignment::identity(16));
            prop_assert!(
                assigned.worst_residual().abs().nanometers()
                    <= identity.worst_residual().abs().nanometers() + 1e-12,
                "worst residual grew: {} vs {} (sigma {sigma_pm} pm, ΔT {dt})",
                assigned.worst_residual().abs().nanometers(),
                identity.worst_residual().abs().nanometers()
            );
            prop_assert!(
                assigned.total_heater_power().value() <= identity.total_heater_power().value(),
                "tuning power grew (sigma {sigma_pm} pm, ΔT {dt})"
            );
        }
    }
}

fn workload_builder() -> ScenarioBuilder {
    ScenarioBuilder::new()
        .oni_count(8)
        .pattern(TrafficPattern::UniformRandom {
            messages_per_node: 40,
        })
        .class(TrafficClass::Bulk)
        .words_per_message(16)
        .seed(5)
        .workload_heated(
            RcNetworkParameters::paper_package(),
            WorkloadTrace::hot_cluster(8, 2, 300.0, 0.4),
        )
        .policy(DecisionPolicy::epoch_gated())
}

fn fleet_tuning_mw(report: &RunReport) -> f64 {
    report
        .per_oni
        .iter()
        .map(|o| o.tuning_power_mw_per_lane)
        .sum()
}

#[test]
fn scenario_assignment_follows_the_workload_heat_map() {
    let scenario = workload_builder()
        .design_assignment(DesignAssignmentConfig::greedy_refine(7))
        .build()
        .unwrap();
    let assignments = scenario.assignments().to_vec();
    assert_eq!(assignments.len(), 8, "one assignment per ONI");
    // The cluster centre (ONI 2) runs hottest, so its baked-in rotation is
    // the largest; the far side of the ring stays on identity.
    let offsets: Vec<i64> = assignments.iter().map(|a| a.design_offset(0)).collect();
    assert!(
        offsets[2] >= offsets[1] && offsets[1] >= offsets[0],
        "rotations must follow the heat gradient: {offsets:?}"
    );
    assert!(offsets[2] > 0, "the hot centre must rotate: {offsets:?}");
    assert!(
        assignments[6].is_identity(),
        "the cool far side keeps its design mapping"
    );

    // The assigned fleet spends measurably less tuning power end to end.
    let plain = workload_builder().build().unwrap().run();
    let assigned = scenario.run();
    assert_eq!(
        assigned.stats.delivered_messages,
        assigned.stats.injected_messages
    );
    let (p, a) = (fleet_tuning_mw(&plain), fleet_tuning_mw(&assigned));
    assert!(
        a < 0.8 * p,
        "assigned fleet tuning {a} mW/lane vs unassigned {p} mW/lane"
    );
    assert!(
        assigned.stats.energy_pj < plain.stats.energy_pj,
        "cheaper tuning must show up in the energy bill"
    );
}

#[test]
fn scenario_assignment_is_reproducible_and_seed_sensitive() {
    let run = |seed: u64| {
        workload_builder()
            .design_assignment(DesignAssignmentConfig {
                strategy: AssignmentStrategy::GreedyRefine,
                seed,
                per_phase: false,
            })
            .build()
            .unwrap()
            .run()
    };
    let a = run(7);
    let b = run(7);
    assert_eq!(a, b, "same assigner seed, same report");
}

#[test]
fn mis_sized_stack_assignment_is_a_configuration_error() {
    // A user-supplied stack carrying an assignment that does not cover the
    // channel grid must fail at build() as InvalidConfiguration, not panic
    // inside the solver mid-build.
    let stack = onoc_ecc::link::ThermalLinkStack {
        assignment: Some(WavelengthAssignment::identity(8)),
        ..onoc_ecc::link::ThermalLinkStack::paper_default()
    };
    let err = ScenarioBuilder::new().stack(stack).build().unwrap_err();
    assert!(err.to_string().contains("wavelength assignment"), "{err}");
    // A correctly-sized assignment in the stack builds fine.
    let stack = onoc_ecc::link::ThermalLinkStack {
        assignment: Some(WavelengthAssignment::identity(16)),
        ..onoc_ecc::link::ThermalLinkStack::paper_default()
    };
    assert!(ScenarioBuilder::new()
        .oni_count(4)
        .pattern(TrafficPattern::UniformRandom {
            messages_per_node: 5
        })
        .stack(stack)
        .build()
        .is_ok());
}

#[test]
fn per_message_policy_rejects_design_assignment() {
    let err = ScenarioBuilder::new()
        .design_assignment(DesignAssignmentConfig::greedy_refine(1))
        .build()
        .unwrap_err();
    assert!(err.to_string().contains("epoch-gated"), "{err}");
    // Epoch-gated over a prescribed trace accepts it.
    assert!(ScenarioBuilder::new()
        .oni_count(4)
        .pattern(TrafficPattern::UniformRandom {
            messages_per_node: 5
        })
        .design_assignment(DesignAssignmentConfig::greedy_refine(1))
        .policy(DecisionPolicy::epoch_gated())
        .build()
        .is_ok());
}

#[test]
fn assignment_composes_with_runtime_barrel_shift_on_the_link() {
    // A chip assigned for 85 °C but running cold: pure heating pays for the
    // baked-in rotation, the runtime barrel shift hops back for free.
    let hot = Celsius::new(85.0);
    let cold = Celsius::new(25.0);
    let base = NanophotonicLink::paper_link()
        .with_fabrication_variation(FabricationVariation::new(0.04, 42));
    let assignment =
        paper_assigner(AssignmentStrategy::GreedyRefine, 1).assign(&base.ring_bank_state_at(hot));
    let designed = base.with_wavelength_assignment(assignment).unwrap();
    let pure = designed
        .operating_point_at(EccScheme::Hamming7164, 1e-11, cold)
        .unwrap();
    let hopped = designed
        .clone()
        .with_bank_tuning_mode(onoc_ecc::thermal::BankTuningMode::full_barrel_shift(16))
        .operating_point_at(EccScheme::Hamming7164, 1e-11, cold)
        .unwrap();
    assert!(
        hopped.thermal.barrel_shift < 0,
        "the runtime shift hops back"
    );
    assert!(hopped.power.tuning.value() < 0.2 * pure.power.tuning.value());
    // At the design point the assignment alone already minimises the bill:
    // the barrel search finds nothing better than staying put.
    let designed_hot = designed
        .operating_point_at(EccScheme::Hamming7164, 1e-11, hot)
        .unwrap();
    assert_eq!(designed_hot.thermal.barrel_shift, 0);
}
