//! End-to-end datapath integration tests: IP word → encoder → serializer →
//! noisy optical channel (BSC at the solver's raw BER) → deserializer →
//! decoder → IP word, across the crate boundaries.

// one pin below intentionally exercises the deprecated `Simulation` shim;
// the builder path is pinned equivalent in tests/scenario_migration.rs.
#![allow(deprecated)]

use onoc_ecc::ecc::monte_carlo::BinarySymmetricChannel;
use onoc_ecc::ecc::EccScheme;
use onoc_ecc::interface::{InterfaceConfig, Receiver, Transmitter};
use onoc_ecc::link::NanophotonicLink;
use onoc_ecc::link::TrafficClass;
use onoc_ecc::sim::traffic::TrafficPattern;
use onoc_ecc::sim::{Simulation, SimulationConfig};

#[test]
fn words_survive_the_channel_at_the_operating_point_raw_ber() {
    let link = NanophotonicLink::paper_link();
    let config = InterfaceConfig::paper_default();
    let tx = Transmitter::new(config.clone());
    let rx = Receiver::new(config);

    for scheme in [EccScheme::Hamming74, EccScheme::Hamming7164] {
        let point = link.operating_point(scheme, 1e-9).unwrap();
        let mut channel = BinarySymmetricChannel::new(point.laser.raw_ber, 7);
        let mut residual_errors = 0u64;
        for i in 0..200u64 {
            let word = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let stream = tx.encode_word(word, scheme).unwrap();
            let (received, _) = channel.transmit(&stream);
            let decoded = rx.decode_stream(&received, scheme).unwrap();
            if decoded.word != word {
                residual_errors += 1;
            }
        }
        // At a raw BER of ~1e-4 the probability of an uncorrectable pattern
        // in 200 words is vanishingly small.
        assert_eq!(residual_errors, 0, "{scheme} lost words");
    }
}

#[test]
fn uncoded_path_fails_where_hamming_succeeds() {
    let config = InterfaceConfig::paper_default();
    let tx = Transmitter::new(config.clone());
    let rx = Receiver::new(config);
    // A deliberately noisy channel (BER 0.5%).
    let raw_ber = 5e-3;
    let words = 300u64;

    let count_wrong = |scheme: EccScheme, seed: u64| -> u64 {
        let mut channel = BinarySymmetricChannel::new(raw_ber, seed);
        (0..words)
            .filter(|&i| {
                let word = i.wrapping_mul(0xDEAD_BEEF_1234_5678);
                let stream = tx.encode_word(word, scheme).unwrap();
                let (received, _) = channel.transmit(&stream);
                rx.decode_stream(&received, scheme).unwrap().word != word
            })
            .count() as u64
    };

    let uncoded_errors = count_wrong(EccScheme::Uncoded, 3);
    let h74_errors = count_wrong(EccScheme::Hamming74, 3);
    assert!(
        uncoded_errors > 20,
        "the noisy channel should corrupt many uncoded words"
    );
    assert!(
        h74_errors * 4 < uncoded_errors,
        "H(7,4) ({h74_errors}) should lose far fewer words than uncoded ({uncoded_errors})"
    );
}

#[test]
fn simulator_and_link_agree_on_the_operating_point() {
    let link = NanophotonicLink::paper_link();
    let expected = link.operating_point(EccScheme::Hamming7164, 1e-11).unwrap();
    let report = Simulation::new(SimulationConfig {
        oni_count: 12,
        pattern: TrafficPattern::UniformRandom {
            messages_per_node: 5,
        },
        class: TrafficClass::Bulk,
        words_per_message: 4,
        mean_inter_arrival_ns: 5.0,
        deadline_slack_ns: None,
        nominal_ber: 1e-11,
        seed: 11,
        thermal: None,
    })
    .unwrap()
    .run();
    assert_eq!(report.scheme, EccScheme::Hamming7164);
    assert!((report.channel_power_mw - expected.channel_power.value()).abs() < 1e-6);
    // The simulator charges the static share of the channel power (laser +
    // ring heaters) over every destination channel's wall-clock residency
    // and the dynamic share (modulation + codec) over the transfer
    // occupancy; at this low load the idle-laser term dominates, so the
    // simulated figure sits well above the active-transfers-only analytic
    // energy per bit.
    let static_mw = (expected.power.laser.value() + expected.power.tuning.value()) * 16.0;
    let dynamic_mw = expected.channel_power.value() - static_mw;
    let reconstructed =
        static_mw * report.stats.makespan_ns * 12.0 + dynamic_mw * report.stats.channel_busy_ns;
    assert!(
        (report.stats.energy_pj - reconstructed).abs() / reconstructed < 1e-9,
        "simulated {} vs reconstructed {reconstructed}",
        report.stats.energy_pj
    );
    let analytic = expected.energy_per_bit.value();
    let simulated = report.stats.energy_per_bit_pj();
    assert!(
        simulated > analytic,
        "idle static power must inflate the simulated figure: {simulated} vs {analytic}"
    );
}
