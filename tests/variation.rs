//! Workspace-level integration tests of the per-ring spectral model:
//! fabrication variation, the worst-ring link budget, barrel-shift channel
//! hopping and the heterogeneous feedback fleets.

// these pins intentionally exercise the deprecated `FeedbackSimulation` shim;
// the builder path is pinned equivalent in tests/scenario_migration.rs.
#![allow(deprecated)]

use onoc_ecc::ecc::EccScheme;
use onoc_ecc::link::{LinkManager, NanophotonicLink, TrafficClass};
use onoc_ecc::sim::traffic::TrafficPattern;
use onoc_ecc::sim::{FeedbackConfig, FeedbackSimulation, RingVariationConfig, SimulationConfig};
use onoc_ecc::thermal::{BankTuningMode, FabricationVariation};
use onoc_ecc::units::Celsius;

fn varied_link(sigma_nm: f64, mode: BankTuningMode) -> NanophotonicLink {
    NanophotonicLink::paper_link()
        .with_fabrication_variation(FabricationVariation::new(sigma_nm, 42))
        .with_bank_tuning_mode(mode)
}

#[test]
fn sigma_zero_reproduces_the_25c_pins_bit_identically() {
    // The pinned 25 °C operating points of tests/paper_reproduction.rs must
    // survive the per-ring pipeline with σ = 0 *exactly*.
    let per_bank = NanophotonicLink::paper_link();
    let per_ring = varied_link(0.0, BankTuningMode::PureHeater);
    for scheme in EccScheme::paper_schemes() {
        let a = per_bank.operating_point(scheme, 1e-11);
        let b = per_ring.operating_point(scheme, 1e-11);
        assert_eq!(a, b, "{scheme} at 25C");
        // And across the 25–85 °C sweep.
        for t in (25..=85).step_by(5) {
            let t = Celsius::new(f64::from(t));
            assert_eq!(
                per_bank.operating_point_at(scheme, 1e-11, t),
                per_ring.operating_point_at(scheme, 1e-11, t),
                "{scheme} at {t}"
            );
        }
    }
}

#[test]
fn barrel_shift_beats_pure_heater_from_55c_up_at_sigma_40pm() {
    // The fig_variation acceptance criterion, pinned as a test: at
    // σ = 40 pm the barrel-shift policy spends measurably less tuning power
    // than pure heating at every temperature ≥ 55 °C.
    let pure = varied_link(0.040, BankTuningMode::PureHeater);
    let barrel = varied_link(0.040, BankTuningMode::full_barrel_shift(16));
    for t in [55.0, 65.0, 75.0, 85.0] {
        let t = Celsius::new(t);
        let p = pure
            .operating_point_at(EccScheme::Hamming7164, 1e-11, t)
            .unwrap();
        let b = barrel
            .operating_point_at(EccScheme::Hamming7164, 1e-11, t)
            .unwrap();
        assert!(
            b.power.tuning.value() < 0.5 * p.power.tuning.value(),
            "at {t}: barrel {} vs pure {}",
            b.power.tuning,
            p.power.tuning
        );
        assert!(b.thermal.barrel_shift > 0, "no hop at {t}");
        assert_eq!(p.thermal.barrel_shift, 0);
        // Channel hopping also lowers the total bill.
        assert!(b.channel_power.value() < p.channel_power.value());
    }
    // Below half a grid spacing of drift the shift is a no-op.
    let cool = barrel
        .operating_point_at(EccScheme::Hamming7164, 1e-11, Celsius::new(27.0))
        .unwrap();
    assert_eq!(cool.thermal.barrel_shift, 0);
}

#[test]
fn channel_hopping_extends_the_uncoded_path_past_its_thermal_collapse() {
    // Under pure heating the uncoded link dies of residual drift between 50
    // and 55 °C; hopping the assignment keeps the residual under the lock
    // error and the uncoded path survives the whole sweep.
    let pure = varied_link(0.040, BankTuningMode::PureHeater);
    let barrel = varied_link(0.040, BankTuningMode::full_barrel_shift(16));
    assert!(pure
        .operating_point_at(EccScheme::Uncoded, 1e-11, Celsius::new(85.0))
        .is_err());
    assert!(barrel
        .operating_point_at(EccScheme::Uncoded, 1e-11, Celsius::new(85.0))
        .is_ok());
    // Which moves the LatencyFirst switch point: the pure-heater manager
    // falls back to H(71,64) at 55 °C, the barrel-shift manager never does.
    let pure_manager = LinkManager::new(
        varied_link(0.040, BankTuningMode::PureHeater),
        EccScheme::paper_schemes().to_vec(),
        1e-11,
    );
    let barrel_manager = LinkManager::new(
        varied_link(0.040, BankTuningMode::full_barrel_shift(16)),
        EccScheme::paper_schemes().to_vec(),
        1e-11,
    );
    let at = |manager: &LinkManager, t: f64| {
        manager
            .configure_at(TrafficClass::LatencyFirst, Celsius::new(t))
            .map(|d| d.point.scheme())
    };
    assert_eq!(at(&pure_manager, 85.0), Some(EccScheme::Hamming7164));
    assert_eq!(at(&barrel_manager, 85.0), Some(EccScheme::Uncoded));
}

#[test]
fn worst_ring_sets_the_budget_of_a_varied_bank() {
    // A varied bank's operating point is sized by its worst ring: the laser
    // output can only go up relative to the perfect chip, for every σ.
    let perfect = NanophotonicLink::paper_link();
    let mut last_output = 0.0;
    for sigma_pm in [10.0, 40.0, 80.0] {
        let varied = varied_link(sigma_pm * 1e-3, BankTuningMode::PureHeater);
        let p = perfect
            .operating_point(EccScheme::Hamming7164, 1e-11)
            .unwrap();
        let v = varied
            .operating_point(EccScheme::Hamming7164, 1e-11)
            .unwrap();
        assert!(
            v.laser.laser_output_power.value() >= p.laser.laser_output_power.value() - 1e-12,
            "sigma {sigma_pm} pm"
        );
        assert!(
            v.laser.laser_output_power.value() >= last_output,
            "budget must degrade with sigma (at {sigma_pm} pm)"
        );
        last_output = v.laser.laser_output_power.value();
        // The summary names a worst lane within the grid.
        assert!(v.thermal.worst_lane < 16);
    }
}

#[test]
fn heterogeneous_fleet_switches_at_different_times() {
    // With per-ONI chip instances the self-heating switch points de-cluster:
    // the switch log must show distinct temperatures across ONIs.
    let config = FeedbackConfig {
        sim: SimulationConfig {
            oni_count: 8,
            pattern: TrafficPattern::UniformRandom {
                messages_per_node: 120,
            },
            class: TrafficClass::LatencyFirst,
            words_per_message: 16,
            mean_inter_arrival_ns: 8.0,
            deadline_slack_ns: None,
            nominal_ber: 1e-11,
            seed: 5,
            thermal: None,
        },
        variation: Some(RingVariationConfig {
            sigma_nm: 0.040,
            seed: 11,
            mode: BankTuningMode::PureHeater,
        }),
        ..FeedbackConfig::default()
    };
    let report = FeedbackSimulation::new(config).unwrap().run();
    assert_eq!(
        report.stats.delivered_messages,
        report.stats.injected_messages
    );
    assert!(report.total_switches() > 0);
    let mut switch_temps: Vec<f64> = report.switch_log.iter().map(|s| s.temperature_c).collect();
    switch_temps.sort_by(|a, b| a.partial_cmp(b).unwrap());
    switch_temps.dedup();
    assert!(
        switch_temps.len() > 1,
        "all chips switched at the same temperature: {switch_temps:?}"
    );
}
