//! Generic conformance suite for every [`ThermalModel`] implementation.
//!
//! The unified simulation surface drives `dyn ThermalModel` without knowing
//! which physics sits behind it, so all three families — the prescribed
//! trace adapter, the activity-coupled RC network and the workload-heated
//! network — must honour the same contract:
//!
//! * `oni_count` is stable for the lifetime of the model;
//! * `advance` only ever moves time forward: zero-duration steps are
//!   observable no-ops, negative or non-finite durations and mis-sized
//!   power vectors are rejected (panic), and temperatures stay finite;
//! * specs carrying non-finite temperatures are rejected up front;
//! * instantiating the same spec twice and replaying the same schedule is
//!   bit-identical — the property the simulator's reproducibility
//!   guarantees are built on.

use std::panic::{catch_unwind, AssertUnwindSafe};

use onoc_ecc::thermal::{
    RcNetworkParameters, ThermalEnvironment, ThermalModelSpec, WorkloadSchedule, WorkloadTrace,
};
use onoc_ecc::units::Celsius;

const ONI_COUNT: usize = 6;

/// Every model family under test, by name, as the serializable spec the
/// scenario surface instantiates from.
fn specs() -> Vec<(&'static str, ThermalModelSpec)> {
    vec![
        (
            "prescribed (transient)",
            ThermalModelSpec::Prescribed {
                environment: ThermalEnvironment::Transient {
                    start: Celsius::new(25.0),
                    target: Celsius::new(85.0),
                    time_constant_ns: 400.0,
                },
            },
        ),
        (
            "activity-coupled",
            ThermalModelSpec::ActivityCoupled {
                network: RcNetworkParameters::paper_package(),
            },
        ),
        (
            "workload-heated",
            ThermalModelSpec::WorkloadHeated {
                network: RcNetworkParameters::paper_package(),
                traces: WorkloadTrace::hot_cluster(ONI_COUNT, 2, 250.0, 0.5),
            },
        ),
        (
            "workload-scheduled",
            ThermalModelSpec::WorkloadScheduled {
                network: RcNetworkParameters::paper_package(),
                schedule: WorkloadSchedule::migration(ONI_COUNT, 800.0, &[1, 4], 250.0, 0.5),
            },
        ),
    ]
}

/// A deterministic, deliberately non-uniform advance schedule:
/// `(per-ONI powers, dt_ns)` pairs covering idle epochs, bursts and a
/// zero-length step.
fn schedule() -> Vec<(Vec<f64>, f64)> {
    let ramp: Vec<f64> = (0..ONI_COUNT).map(|oni| 40.0 * oni as f64).collect();
    vec![
        (vec![0.0; ONI_COUNT], 25.0),
        (vec![150.0; ONI_COUNT], 100.0),
        (ramp.clone(), 0.0),
        (ramp, 500.0),
        (vec![80.0; ONI_COUNT], 2000.0),
    ]
}

#[test]
fn oni_count_is_stable_across_advances() {
    for (name, spec) in specs() {
        let mut model = spec.instantiate(ONI_COUNT);
        assert_eq!(model.oni_count(), ONI_COUNT, "{name}");
        for (powers, dt) in schedule() {
            model.advance(&powers, dt);
            assert_eq!(model.oni_count(), ONI_COUNT, "{name} after a step");
        }
    }
}

#[test]
fn zero_duration_steps_are_observable_no_ops() {
    for (name, spec) in specs() {
        let mut model = spec.instantiate(ONI_COUNT);
        // Warm the model so a no-op would actually have something to spoil.
        model.advance(&[120.0; ONI_COUNT], 300.0);
        let before: Vec<u64> = (0..ONI_COUNT)
            .map(|oni| model.temperature_of(oni).value().to_bits())
            .collect();
        model.advance(&[1e6; ONI_COUNT], 0.0);
        for (oni, &bits) in before.iter().enumerate() {
            assert_eq!(
                model.temperature_of(oni).value().to_bits(),
                bits,
                "{name}: a zero-duration step must not move ONI {oni}"
            );
        }
    }
}

#[test]
fn temperatures_stay_finite_throughout_the_schedule() {
    for (name, spec) in specs() {
        let mut model = spec.instantiate(ONI_COUNT);
        for (step, (powers, dt)) in schedule().into_iter().enumerate() {
            model.advance(&powers, dt);
            for oni in 0..ONI_COUNT {
                let t = model.temperature_of(oni).value();
                assert!(t.is_finite(), "{name}: ONI {oni} at step {step} is {t}");
            }
        }
    }
}

#[test]
fn negative_and_non_finite_durations_are_rejected() {
    for (name, spec) in specs() {
        for bad_dt in [-1.0, f64::NAN, f64::INFINITY] {
            let mut model = spec.instantiate(ONI_COUNT);
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                model.advance(&[0.0; ONI_COUNT], bad_dt);
            }));
            assert!(
                outcome.is_err(),
                "{name}: advance must reject dt = {bad_dt}"
            );
        }
    }
}

#[test]
fn mis_sized_power_vectors_are_rejected() {
    for (name, spec) in specs() {
        for wrong in [0usize, ONI_COUNT - 1, ONI_COUNT + 1] {
            let mut model = spec.instantiate(ONI_COUNT);
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                model.advance(&vec![10.0; wrong], 5.0);
            }));
            assert!(
                outcome.is_err(),
                "{name}: advance must reject {wrong} power entries for {ONI_COUNT} ONIs"
            );
        }
    }
}

#[test]
fn out_of_range_temperature_queries_are_rejected() {
    for (name, spec) in specs() {
        let model = spec.instantiate(ONI_COUNT);
        let outcome = catch_unwind(AssertUnwindSafe(|| model.temperature_of(ONI_COUNT)));
        assert!(outcome.is_err(), "{name}: ONI {ONI_COUNT} is out of range");
    }
}

#[test]
fn non_finite_temperatures_are_rejected_at_the_spec() {
    // `Celsius::new` itself rejects non-finite values, so the malformed
    // temperatures are produced the way a buggy computation would: through
    // unchecked quantity arithmetic.
    let nan_c = Celsius::new(25.0) * f64::NAN;
    let inf_c = Celsius::new(25.0) * f64::INFINITY;
    let bad_specs = vec![
        (
            "prescribed (NaN uniform)",
            ThermalModelSpec::Prescribed {
                environment: ThermalEnvironment::Uniform { temperature: nan_c },
            },
        ),
        (
            "prescribed (infinite transient target)",
            ThermalModelSpec::Prescribed {
                environment: ThermalEnvironment::Transient {
                    start: Celsius::new(25.0),
                    target: inf_c,
                    time_constant_ns: 100.0,
                },
            },
        ),
        (
            "activity-coupled (NaN ambient)",
            ThermalModelSpec::ActivityCoupled {
                network: RcNetworkParameters {
                    ambient: nan_c,
                    ..RcNetworkParameters::paper_package()
                },
            },
        ),
        (
            "workload-heated (infinite ambient)",
            ThermalModelSpec::WorkloadHeated {
                network: RcNetworkParameters {
                    ambient: inf_c * -1.0,
                    ..RcNetworkParameters::paper_package()
                },
                traces: vec![WorkloadTrace::idle(); ONI_COUNT],
            },
        ),
        (
            "workload-heated (infinite trace)",
            ThermalModelSpec::WorkloadHeated {
                network: RcNetworkParameters::paper_package(),
                traces: vec![WorkloadTrace::constant(f64::INFINITY); ONI_COUNT],
            },
        ),
        (
            "workload-scheduled (infinite phase trace)",
            ThermalModelSpec::WorkloadScheduled {
                network: RcNetworkParameters::paper_package(),
                schedule: WorkloadSchedule::single(vec![
                    WorkloadTrace::constant(f64::INFINITY);
                    ONI_COUNT
                ]),
            },
        ),
    ];
    for (name, spec) in bad_specs {
        assert!(spec.validate(ONI_COUNT).is_err(), "{name} must be rejected");
        let outcome = catch_unwind(AssertUnwindSafe(|| spec.instantiate(ONI_COUNT)));
        assert!(outcome.is_err(), "{name} must not instantiate");
    }
}

#[test]
fn replay_from_the_same_spec_is_bit_identical() {
    for (name, spec) in specs() {
        let mut first = spec.instantiate(ONI_COUNT);
        let mut second = spec.instantiate(ONI_COUNT);
        for (step, (powers, dt)) in schedule().into_iter().enumerate() {
            first.advance(&powers, dt);
            second.advance(&powers, dt);
            for oni in 0..ONI_COUNT {
                assert_eq!(
                    first.temperature_of(oni).value().to_bits(),
                    second.temperature_of(oni).value().to_bits(),
                    "{name}: ONI {oni} diverged at step {step}"
                );
            }
        }
    }
}

#[test]
fn activity_coupling_flag_matches_the_family() {
    for (name, spec) in specs() {
        let model = spec.instantiate(ONI_COUNT);
        assert_eq!(
            model.is_activity_coupled(),
            spec.is_activity_coupled(),
            "{name}: the model and its spec must agree"
        );
        let activity_coupled = !name.starts_with("prescribed");
        assert_eq!(model.is_activity_coupled(), activity_coupled, "{name}");
    }
}
