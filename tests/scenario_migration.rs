//! Golden migration tests for the unified scenario surface: the deprecated
//! entry points (`Simulation` + `ThermalScenario`, `FeedbackSimulation`)
//! must produce reports **bit-identical** to the same scenario composed
//! through `ScenarioBuilder`, and the builder itself must be insensitive to
//! the order its fields are set in.

// The whole point of this file is to exercise the deprecated shims against
// the builder, so the deprecation lint is silenced here.
#![allow(deprecated)]

use onoc_ecc::ecc::EccScheme;
use onoc_ecc::link::TrafficClass;
use onoc_ecc::sim::traffic::TrafficPattern;
use onoc_ecc::sim::{
    DecisionPolicy, FeedbackConfig, FeedbackSimulation, RingVariationConfig, RunReport,
    ScenarioBuilder, Simulation, SimulationConfig, ThermalScenario,
};
use onoc_ecc::thermal::{BankTuningMode, RcNetworkParameters, ThermalEnvironment};
use onoc_ecc::units::Celsius;
use proptest::prelude::*;

/// The builder composition equivalent to a legacy `SimulationConfig`.
fn builder_from_sim(config: &SimulationConfig) -> ScenarioBuilder {
    let mut builder = ScenarioBuilder::new()
        .oni_count(config.oni_count)
        .pattern(config.pattern)
        .class(config.class)
        .words_per_message(config.words_per_message)
        .mean_inter_arrival_ns(config.mean_inter_arrival_ns)
        .deadline_slack_ns(config.deadline_slack_ns)
        .nominal_ber(config.nominal_ber)
        .seed(config.seed);
    if let Some(scenario) = &config.thermal {
        builder = builder
            .prescribed(scenario.environment)
            .policy(DecisionPolicy::PerMessage {
                quantization_k: scenario.quantization_k,
            });
    }
    builder
}

/// The builder composition equivalent to a legacy `FeedbackConfig`.
fn builder_from_feedback(config: &FeedbackConfig) -> ScenarioBuilder {
    let mut builder = builder_from_sim(&config.sim)
        .activity_coupled(config.network)
        .policy(DecisionPolicy::EpochGated {
            epoch_ns: config.epoch_ns,
            quantization_k: config.quantization_k,
            hysteresis_k: config.hysteresis_k,
            revert_hysteresis_k: config.revert_hysteresis_k,
        });
    if let Some(stack) = config.stack.clone() {
        builder = builder.stack(stack);
    }
    if let Some(variation) = config.variation {
        builder = builder.variation(variation);
    }
    builder
}

fn sim_config(thermal: Option<ThermalScenario>) -> SimulationConfig {
    SimulationConfig {
        oni_count: 8,
        pattern: TrafficPattern::UniformRandom {
            messages_per_node: 20,
        },
        class: TrafficClass::LatencyFirst,
        words_per_message: 8,
        mean_inter_arrival_ns: 4.0,
        deadline_slack_ns: Some(80.0),
        nominal_ber: 1e-11,
        seed: 31,
        thermal,
    }
}

/// Pins the legacy `Simulation` report bit-identical to the builder run.
fn assert_simulation_equivalent(config: SimulationConfig) {
    let legacy = Simulation::new(config.clone()).unwrap().run();
    let unified: RunReport = builder_from_sim(&config).build().unwrap().run();
    assert_eq!(legacy.stats, unified.stats, "stats must be bit-identical");
    assert_eq!(legacy.scheme, unified.baseline_scheme);
    assert_eq!(
        legacy.channel_power_mw.to_bits(),
        unified.baseline_channel_power_mw.to_bits()
    );
    assert_eq!(
        legacy.decoded_ber.to_bits(),
        unified.baseline_decoded_ber.to_bits()
    );
    if let Some(thermal) = &legacy.thermal {
        assert_eq!(thermal.reconfigured_messages, unified.reconfigured_messages);
        let active: Vec<_> = unified.active_onis().collect();
        assert_eq!(thermal.per_oni.len(), active.len());
        for (legacy_oni, unified_oni) in thermal.per_oni.iter().zip(active) {
            assert_eq!(legacy_oni.oni, unified_oni.oni);
            assert_eq!(
                legacy_oni.temperature_c.to_bits(),
                unified_oni.final_temperature_c.to_bits()
            );
            assert_eq!(legacy_oni.scheme, unified_oni.scheme);
            assert_eq!(
                legacy_oni.channel_power_mw.to_bits(),
                unified_oni.channel_power_mw.to_bits()
            );
            assert_eq!(
                legacy_oni.tuning_power_mw_per_lane.to_bits(),
                unified_oni.tuning_power_mw_per_lane.to_bits()
            );
        }
    }
}

#[test]
fn plain_simulation_is_bit_identical_through_the_builder() {
    assert_simulation_equivalent(sim_config(None));
}

#[test]
fn ambient_thermal_scenario_is_bit_identical_through_the_builder() {
    assert_simulation_equivalent(sim_config(Some(ThermalScenario::paper_ambient())));
}

#[test]
fn hotspot_scenario_is_bit_identical_through_the_builder() {
    assert_simulation_equivalent(sim_config(Some(ThermalScenario::new(
        ThermalEnvironment::Hotspot {
            base: Celsius::new(30.0),
            peak: Celsius::new(85.0),
            center: 2,
            decay_per_hop: 0.4,
        },
    ))));
}

#[test]
fn transient_scenario_is_bit_identical_through_the_builder() {
    assert_simulation_equivalent(sim_config(Some(ThermalScenario::new(
        ThermalEnvironment::Transient {
            start: Celsius::new(25.0),
            target: Celsius::new(85.0),
            time_constant_ns: 150.0,
        },
    ))));
}

fn feedback_config(variation: Option<RingVariationConfig>) -> FeedbackConfig {
    FeedbackConfig {
        sim: SimulationConfig {
            oni_count: 6,
            pattern: TrafficPattern::UniformRandom {
                messages_per_node: 80,
            },
            class: TrafficClass::LatencyFirst,
            words_per_message: 16,
            mean_inter_arrival_ns: 8.0,
            deadline_slack_ns: None,
            nominal_ber: 1e-11,
            seed: 5,
            thermal: None,
        },
        variation,
        ..FeedbackConfig::default()
    }
}

/// Pins the legacy `FeedbackSimulation` report bit-identical to the builder
/// run.
fn assert_feedback_equivalent(config: FeedbackConfig) {
    let legacy = FeedbackSimulation::new(config.clone()).unwrap().run();
    let unified: RunReport = builder_from_feedback(&config).build().unwrap().run();
    assert_eq!(legacy.stats, unified.stats, "stats must be bit-identical");
    assert_eq!(legacy.baseline_scheme, unified.baseline_scheme);
    assert_eq!(legacy.epochs, unified.epochs);
    assert_eq!(legacy.decisions, unified.decisions);
    assert_eq!(legacy.infeasible_requests, unified.infeasible_requests);
    assert_eq!(legacy.switch_log, unified.switch_log);
    assert_eq!(legacy.trajectory, unified.trajectory);
    assert_eq!(legacy.solver_cache, unified.solver_cache);
    assert_eq!(legacy.per_oni.len(), unified.per_oni.len());
    for (legacy_oni, unified_oni) in legacy.per_oni.iter().zip(&unified.per_oni) {
        assert_eq!(legacy_oni.oni, unified_oni.oni);
        assert_eq!(
            legacy_oni.final_temperature_c.to_bits(),
            unified_oni.final_temperature_c.to_bits()
        );
        assert_eq!(
            legacy_oni.peak_temperature_c.to_bits(),
            unified_oni.peak_temperature_c.to_bits()
        );
        assert_eq!(legacy_oni.scheme, unified_oni.scheme);
        assert_eq!(
            legacy_oni.channel_power_mw.to_bits(),
            unified_oni.channel_power_mw.to_bits()
        );
        assert_eq!(legacy_oni.scheme_switches, unified_oni.scheme_switches);
    }
}

#[test]
fn homogeneous_feedback_is_bit_identical_through_the_builder() {
    assert_feedback_equivalent(feedback_config(None));
}

#[test]
fn heterogeneous_feedback_is_bit_identical_through_the_builder() {
    assert_feedback_equivalent(feedback_config(Some(RingVariationConfig {
        sigma_nm: 0.040,
        seed: 11,
        mode: BankTuningMode::PureHeater,
    })));
}

#[test]
fn sharded_reasks_are_bit_identical_to_the_serial_loop() {
    // Heterogeneous fleets shard their per-ONI epoch re-asks across
    // threads; the ordered merge must keep the whole report (including the
    // aggregated cache counters) bit-identical at every thread count.
    let config = feedback_config(Some(RingVariationConfig {
        sigma_nm: 0.040,
        seed: 11,
        mode: BankTuningMode::PureHeater,
    }));
    let run = |threads: usize| {
        builder_from_feedback(&config)
            .threads(threads)
            .build()
            .unwrap()
            .run()
    };
    let serial = run(1);
    for threads in [2, 4, 8] {
        let sharded = run(threads);
        // The configs differ only in the thread budget, which must never
        // leak into the physics.
        assert_eq!(serial.stats, sharded.stats, "{threads} threads");
        assert_eq!(serial.per_oni, sharded.per_oni, "{threads} threads");
        assert_eq!(serial.switch_log, sharded.switch_log, "{threads} threads");
        assert_eq!(serial.trajectory, sharded.trajectory, "{threads} threads");
        assert_eq!(
            serial.solver_cache, sharded.solver_cache,
            "{threads} threads"
        );
        assert_eq!(serial.decisions, sharded.decisions, "{threads} threads");
    }
}

#[test]
fn epoch_gated_policy_now_drives_prescribed_models_too() {
    // A combination neither legacy entry point could express: the feedback
    // engine's hysteresis machinery over a *prescribed* transient trace.
    let report = ScenarioBuilder::new()
        .oni_count(6)
        .pattern(TrafficPattern::UniformRandom {
            messages_per_node: 60,
        })
        .class(TrafficClass::LatencyFirst)
        .words_per_message(16)
        .mean_inter_arrival_ns(6.0)
        .seed(9)
        .prescribed(ThermalEnvironment::Transient {
            start: Celsius::new(25.0),
            target: Celsius::new(85.0),
            time_constant_ns: 500.0,
        })
        .policy(DecisionPolicy::epoch_gated())
        .build()
        .unwrap()
        .run();
    assert_eq!(report.baseline_scheme, EccScheme::Uncoded);
    assert!(report.epochs > 0);
    assert!(
        report.total_switches() > 0,
        "the prescribed heat-up must force epoch-gated switches"
    );
    assert!(report
        .per_oni
        .iter()
        .all(|o| o.scheme == EccScheme::Hamming7164));
}

#[test]
fn switch_log_epoch_indices_are_pinned() {
    // Golden pin of the switch-log epoch field.  The epoch-gated engine
    // stamps every switch with the index of the epoch whose boundary took
    // the decision — including over a *prescribed* transient, the
    // combination whose entries used to omit it.
    let epoch_gated = ScenarioBuilder::new()
        .oni_count(6)
        .pattern(TrafficPattern::UniformRandom {
            messages_per_node: 60,
        })
        .class(TrafficClass::LatencyFirst)
        .words_per_message(16)
        .mean_inter_arrival_ns(6.0)
        .seed(9)
        .prescribed(ThermalEnvironment::Transient {
            start: Celsius::new(25.0),
            target: Celsius::new(85.0),
            time_constant_ns: 500.0,
        })
        .policy(DecisionPolicy::epoch_gated())
        .build()
        .unwrap()
        .run();
    assert!(epoch_gated.total_switches() > 0, "the heat-up must switch");
    let mut last_epoch = 0;
    for switch in &epoch_gated.switch_log {
        let epoch = switch
            .epoch
            .expect("every epoch-gated switch carries its epoch index");
        // The index points at the trajectory sample of the very boundary
        // the decision was taken on.
        let sample = epoch_gated.trajectory[usize::try_from(epoch).unwrap()];
        assert_eq!(sample.time_ns.to_bits(), switch.time_ns.to_bits());
        assert!(epoch >= last_epoch, "epochs are logged in order");
        last_epoch = epoch;
    }
    // Golden values for this exact configuration: all six channels escape
    // the uncoded path at the boundary of epoch 12 (t = 325 ns).
    assert_eq!(epoch_gated.total_switches(), 6);
    assert!(epoch_gated.switch_log.iter().all(|s| s.epoch == Some(12)));
    assert!(epoch_gated
        .switch_log
        .iter()
        .all(|s| (s.time_ns - 325.0).abs() < 1e-9));

    // The per-message engine steps no epochs: its entries carry `None`,
    // uniformly, instead of omitting the field.
    let per_message = ScenarioBuilder::new()
        .oni_count(6)
        .pattern(TrafficPattern::UniformRandom {
            messages_per_node: 60,
        })
        .class(TrafficClass::LatencyFirst)
        .words_per_message(16)
        .mean_inter_arrival_ns(6.0)
        .seed(9)
        .prescribed(ThermalEnvironment::Transient {
            start: Celsius::new(25.0),
            target: Celsius::new(85.0),
            time_constant_ns: 500.0,
        })
        .policy(DecisionPolicy::PerMessage {
            quantization_k: 0.5,
        })
        .build()
        .unwrap()
        .run();
    assert_eq!(per_message.epochs, 0);
    assert!(per_message.total_switches() > 0);
    assert!(per_message.switch_log.iter().all(|s| s.epoch.is_none()));
}

#[test]
fn builder_rejects_invalid_cache_resolutions() {
    for bad in [0.0, -2.0, f64::NAN, f64::INFINITY] {
        let err = ScenarioBuilder::new()
            .cache_resolution(bad)
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("cache resolution"), "{bad}: {err}");
    }
    // A valid override still builds and runs.
    let report = ScenarioBuilder::new()
        .oni_count(4)
        .pattern(TrafficPattern::UniformRandom {
            messages_per_node: 5,
        })
        .cache_resolution(4.0)
        .build()
        .unwrap()
        .run();
    assert_eq!(
        report.stats.delivered_messages,
        report.stats.injected_messages
    );
}

#[test]
fn builder_rejects_per_message_policy_over_coupled_models() {
    let err = ScenarioBuilder::new()
        .activity_coupled(RcNetworkParameters::paper_package())
        .policy(DecisionPolicy::per_message())
        .build()
        .unwrap_err();
    assert!(err.to_string().contains("epoch-gated"), "{err}");
}

#[test]
fn builder_rejects_per_message_policy_over_heterogeneous_fleets() {
    // The per-message engine keeps one fleet-wide baseline for static-power
    // residency and switch bookkeeping; mixing it with per-ONI chip
    // instances would mis-account idle energy and log phantom switches, so
    // the combination is rejected up front.  The epoch-gated policy carries
    // per-ONI baselines and accepts the same fleet.
    let variation = RingVariationConfig {
        sigma_nm: 0.08,
        seed: 7,
        mode: BankTuningMode::PureHeater,
    };
    let err = ScenarioBuilder::new()
        .variation(variation)
        .policy(DecisionPolicy::per_message())
        .build()
        .unwrap_err();
    assert!(err.to_string().contains("epoch-gated"), "{err}");
    // Implicit per-message (prescribed default policy) is rejected too.
    let err = ScenarioBuilder::new()
        .variation(variation)
        .build()
        .unwrap_err();
    assert!(err.to_string().contains("epoch-gated"), "{err}");
    // The same fleet under the epoch-gated policy builds fine.
    assert!(ScenarioBuilder::new()
        .variation(variation)
        .activity_coupled(RcNetworkParameters::paper_package())
        .policy(DecisionPolicy::epoch_gated())
        .build()
        .is_ok());
}

proptest! {
    /// The builder's setters commute: any two application orders of the same
    /// field values produce identical configurations and identical reports.
    #[test]
    fn builder_field_order_never_changes_the_report(
        seed in 0u64..500,
        oni_count in 3usize..7,
        words in 1u64..9,
        messages in 1u64..12,
        class_index in 0usize..3,
    ) {
        let class = [TrafficClass::LatencyFirst, TrafficClass::Bulk, TrafficClass::Multimedia]
            [class_index];
        let pattern = TrafficPattern::UniformRandom { messages_per_node: messages };
        let network = RcNetworkParameters::paper_package();
        let forward = ScenarioBuilder::new()
            .oni_count(oni_count)
            .pattern(pattern)
            .class(class)
            .words_per_message(words)
            .seed(seed)
            .activity_coupled(network)
            .policy(DecisionPolicy::epoch_gated());
        let reversed = ScenarioBuilder::new()
            .policy(DecisionPolicy::epoch_gated())
            .activity_coupled(network)
            .seed(seed)
            .words_per_message(words)
            .class(class)
            .pattern(pattern)
            .oni_count(oni_count);
        prop_assert_eq!(forward.config(), reversed.config());
        let a = forward.build().unwrap().run();
        let b = reversed.build().unwrap().run();
        prop_assert_eq!(a, b);
    }
}
