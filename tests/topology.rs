//! Fabric-topology invariants of the scenario engines:
//!
//! * the canonical single MWSR ring, configured explicitly, reproduces the
//!   default (no-topology) run bit for bit under both decision policies;
//! * the hybrid mesh relays every inter-cluster message over multiple hops
//!   and still delivers all traffic;
//! * topology runs speak the `route_resolved` / `hop_traversed` telemetry
//!   vocabulary;
//! * structural misconfigurations (node-count mismatch, multi-hop or
//!   crosstalk-heterogeneous fabrics under the per-message policy) are
//!   rejected at build time.

use std::sync::Arc;

use onoc_ecc::link::TrafficClass;
use onoc_ecc::sim::traffic::TrafficPattern;
use onoc_ecc::sim::{DecisionPolicy, RunReport, ScenarioBuilder, SimulationError};
use onoc_ecc::telemetry::{MemoryRecorder, RecorderHandle, TelemetryEvent};
use onoc_ecc::thermal::RcNetworkParameters;
use onoc_ecc::topology::{FabricSpec, Topology};

fn base_builder(oni_count: usize, epoch_gated: bool) -> ScenarioBuilder {
    let builder = ScenarioBuilder::new()
        .oni_count(oni_count)
        .pattern(TrafficPattern::UniformRandom {
            messages_per_node: 20,
        })
        .class(TrafficClass::LatencyFirst)
        .words_per_message(8)
        .mean_inter_arrival_ns(6.0)
        .seed(41);
    if epoch_gated {
        builder
            .activity_coupled(RcNetworkParameters::paper_package())
            .policy(DecisionPolicy::epoch_gated())
    } else {
        builder
    }
}

/// A report with the configured topology normalized away — the only field
/// that legitimately differs between the default run and the explicit
/// single-ring run.
fn sans_topology(mut report: RunReport) -> RunReport {
    report.config.topology = None;
    report
}

#[test]
fn single_ring_topology_is_bit_identical_to_the_default_path() {
    for epoch_gated in [false, true] {
        let default_report = base_builder(6, epoch_gated)
            .build()
            .expect("default scenario builds")
            .run();
        let ring_report = base_builder(6, epoch_gated)
            .topology(Topology::single_ring(6))
            .build()
            .expect("single-ring scenario builds")
            .run();
        assert!(ring_report.config.topology.is_some());
        assert_eq!(
            ring_report.stats.hops_traversed, ring_report.stats.delivered_messages,
            "the ring is single-hop"
        );
        assert_eq!(
            sans_topology(ring_report),
            default_report,
            "single ring must reproduce the default path (epoch_gated = {epoch_gated})"
        );
    }
}

#[test]
fn hybrid_mesh_delivers_all_traffic_over_multiple_hops() {
    let report = base_builder(8, true)
        .topology(Topology::hybrid_mesh(8, 4))
        .build()
        .expect("hybrid-mesh scenario builds")
        .run();
    assert_eq!(
        report.stats.delivered_messages, report.stats.injected_messages,
        "multi-hop routing must not lose traffic"
    );
    assert!(
        report.stats.hops_traversed > report.stats.delivered_messages,
        "inter-cluster flows take more than one hop: {} hops for {} messages",
        report.stats.hops_traversed,
        report.stats.delivered_messages
    );
    assert!(report.stats.makespan_ns > 0.0);
    assert!(report.stats.energy_pj > 0.0);
}

#[test]
fn topology_runs_emit_route_and_hop_events() {
    let memory = Arc::new(MemoryRecorder::new());
    let report = base_builder(8, true)
        .topology(Topology::hybrid_mesh(8, 4))
        .telemetry(RecorderHandle::new(memory.clone()))
        .build()
        .expect("hybrid-mesh scenario builds")
        .run();
    let events = memory.events();
    let routes = events
        .iter()
        .filter(|e| e.kind() == "route_resolved")
        .count();
    let hops = events
        .iter()
        .filter(|e| e.kind() == "hop_traversed")
        .count() as u64;
    assert_eq!(routes, 8 * 7, "one route_resolved event per ordered flow");
    assert_eq!(
        hops, report.stats.hops_traversed,
        "one hop_traversed event per completed hop"
    );
    let electrical_hops = events
        .iter()
        .filter(|e| {
            matches!(
                e,
                TelemetryEvent::HopTraversed {
                    electrical: true,
                    ..
                }
            )
        })
        .count();
    assert!(
        electrical_hops > 0,
        "inter-cluster traffic must ride the electrical fallback"
    );
}

#[test]
fn node_count_mismatch_is_rejected() {
    let err = base_builder(6, true)
        .topology(Topology::single_ring(4))
        .build()
        .expect_err("4-node fabric over 6 ONIs must not build");
    let SimulationError::InvalidConfiguration { reason } = err else {
        panic!("wrong error variant");
    };
    assert!(reason.contains("4 nodes"), "{reason}");
}

#[test]
fn multi_hop_requires_the_epoch_gated_policy() {
    let err = base_builder(8, false)
        .topology(Topology::hybrid_mesh(8, 4))
        .build()
        .expect_err("multi-hop under the per-message policy must not build");
    let SimulationError::InvalidConfiguration { reason } = err else {
        panic!("wrong error variant");
    };
    assert!(reason.contains("epoch-gated"), "{reason}");
}

#[test]
fn crosstalk_heterogeneous_fleet_requires_the_epoch_gated_policy() {
    // multi_ring(5, 2) leaves the two waveguide groups with unequal reader
    // populations (3 vs 2), so nonzero crosstalk splits the fleet into
    // distinct thermal stacks.
    let fabric = FabricSpec::new(Topology::multi_ring(5, 2)).with_crosstalk(0.08);
    let err = base_builder(5, false)
        .topology(fabric.clone())
        .build()
        .expect_err("heterogeneous fabric under the per-message policy must not build");
    let SimulationError::InvalidConfiguration { reason } = err else {
        panic!("wrong error variant");
    };
    assert!(reason.contains("epoch-gated"), "{reason}");
    let report = base_builder(5, true)
        .topology(fabric)
        .build()
        .expect("epoch-gated heterogeneous fabric builds")
        .run();
    assert_eq!(
        report.stats.delivered_messages,
        report.stats.injected_messages
    );
}
