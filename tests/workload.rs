//! Workspace-level integration tests of the workload-heated scenario class:
//! per-ONI compute-cluster heat injection superimposed on the link's own
//! dissipation, expressible only through the unified `ScenarioBuilder`.

use onoc_ecc::ecc::EccScheme;
use onoc_ecc::link::TrafficClass;
use onoc_ecc::sim::traffic::TrafficPattern;
use onoc_ecc::sim::{DecisionPolicy, RunReport, ScenarioBuilder};
use onoc_ecc::thermal::{RcNetworkParameters, WorkloadTrace};
use onoc_ecc::units::Celsius;

const ONI_COUNT: usize = 12;
const CENTER: usize = 3;

fn network() -> RcNetworkParameters {
    // A slightly better heat sink than the feedback demos, so the link's own
    // uniform dissipation settles below the uncoded collapse and the spatial
    // split is driven by the cluster alone.
    RcNetworkParameters {
        ambient: Celsius::new(25.0),
        heat_capacity_pj_per_k: 2000.0,
        ambient_resistance_k_per_mw: 0.06,
        coupling_resistance_k_per_mw: 1.5,
    }
}

fn run_cluster(peak_mw: f64) -> RunReport {
    ScenarioBuilder::new()
        .oni_count(ONI_COUNT)
        .pattern(TrafficPattern::UniformRandom {
            messages_per_node: 80,
        })
        .class(TrafficClass::LatencyFirst)
        .words_per_message(16)
        .mean_inter_arrival_ns(8.0)
        .seed(17)
        .workload_heated(
            network(),
            WorkloadTrace::hot_cluster(ONI_COUNT, CENTER, peak_mw, 0.45),
        )
        .policy(DecisionPolicy::epoch_gated())
        .build()
        .unwrap()
        .run()
}

#[test]
fn hot_cluster_splits_the_interconnect_where_self_heating_alone_does_not() {
    // Self-heating alone: everything stays on the fast uncoded path.
    let baseline = run_cluster(0.0);
    assert_eq!(baseline.baseline_scheme, EccScheme::Uncoded);
    assert_eq!(baseline.total_switches(), 0);
    assert!(baseline
        .per_oni
        .iter()
        .all(|o| o.scheme == EccScheme::Uncoded));

    // With the cluster, the channels near it cross the uncoded collapse and
    // switch, while the far side of the ring never does — the spatially
    // non-uniform workload scenario neither legacy entry point could model.
    let clustered = run_cluster(250.0);
    assert!(clustered.total_switches() > 0);
    assert_eq!(clustered.distinct_final_schemes(), 2);
    let centre = &clustered.per_oni[CENTER];
    assert_eq!(centre.scheme, EccScheme::Hamming7164);
    let far = &clustered.per_oni[(CENTER + ONI_COUNT / 2) % ONI_COUNT];
    assert_eq!(far.scheme, EccScheme::Uncoded);
    assert!(
        centre.peak_temperature_c > far.peak_temperature_c + 5.0,
        "cluster centre {} vs far side {}",
        centre.peak_temperature_c,
        far.peak_temperature_c
    );
    // All traffic still delivered, and the per-ONI energy split accounts for
    // the whole bill.
    assert_eq!(
        clustered.stats.delivered_messages,
        clustered.stats.injected_messages
    );
    let split_total: f64 = clustered
        .per_oni
        .iter()
        .map(|o| o.static_energy_pj + o.dynamic_energy_pj)
        .sum();
    assert!(
        (split_total - clustered.stats.energy_pj).abs() / clustered.stats.energy_pj < 1e-9,
        "per-ONI split {split_total} vs total {}",
        clustered.stats.energy_pj
    );
}

#[test]
fn cluster_peak_temperature_decays_with_hop_distance() {
    let report = run_cluster(250.0);
    let peak_at = |oni: usize| report.per_oni[oni].peak_temperature_c;
    // Walking away from the centre, the peak temperature is non-increasing
    // (up to the noise of the traffic itself: allow a small tolerance).
    for (nearer, farther) in [(3usize, 4usize), (4, 5), (5, 6), (6, 7), (7, 8)] {
        assert!(
            peak_at(nearer) > peak_at(farther) - 0.75,
            "ONI {nearer} ({}) vs ONI {farther} ({})",
            peak_at(nearer),
            peak_at(farther)
        );
    }
    assert!(
        peak_at(3) > peak_at(9) + 5.0,
        "centre well above the far side"
    );
}

#[test]
fn workload_bursts_throttle_and_recover_without_flapping() {
    // A transient compute burst under the centre ONI: the channel must
    // switch to the coded path while the burst lasts, and — because the heat
    // source was *external* — cool far enough past the 10 K revert
    // hysteresis once the burst ends to legitimately recover the fast
    // uncoded path.  Exactly two switches: overload in, recovery out, no
    // flapping in between.
    let mut traces = vec![WorkloadTrace::idle(); ONI_COUNT];
    traces[CENTER] = WorkloadTrace::burst(400.0, 150.0, 650.0);
    let report = ScenarioBuilder::new()
        .oni_count(ONI_COUNT)
        .pattern(TrafficPattern::UniformRandom {
            messages_per_node: 120,
        })
        .class(TrafficClass::LatencyFirst)
        .words_per_message(16)
        .mean_inter_arrival_ns(8.0)
        .seed(23)
        .workload_heated(network(), traces)
        .policy(DecisionPolicy::epoch_gated())
        .build()
        .unwrap()
        .run();
    let centre = &report.per_oni[CENTER];
    assert_eq!(centre.scheme_switches, 2, "overload in, recovery out");
    assert_eq!(
        centre.scheme,
        EccScheme::Uncoded,
        "recovered after the burst"
    );
    let switches: Vec<_> = report
        .switch_log
        .iter()
        .filter(|s| s.oni == CENTER)
        .collect();
    assert_eq!(switches.len(), 2);
    assert_eq!(
        switches[0].to,
        EccScheme::Hamming7164,
        "burst forces coding"
    );
    assert_eq!(switches[1].to, EccScheme::Uncoded, "recovery after cooling");
    assert!(
        switches[0].temperature_c - switches[1].temperature_c > 10.0,
        "the recovery must clear the revert hysteresis: {} -> {}",
        switches[0].temperature_c,
        switches[1].temperature_c
    );
    // The burst's heat shows in the trajectory: the envelope peaks during
    // the window and relaxes afterwards.
    let peak = report
        .trajectory
        .iter()
        .map(|s| s.max_temperature_c)
        .fold(f64::NEG_INFINITY, f64::max);
    let last = report.trajectory.last().unwrap().max_temperature_c;
    assert!(peak > 55.0, "burst peak {peak}");
    assert!(
        last < peak - 5.0,
        "cool-down after the burst: {last} vs {peak}"
    );
}

#[test]
fn workload_runs_are_reproducible() {
    let a = run_cluster(250.0);
    let b = run_cluster(250.0);
    assert_eq!(a, b);
}

#[test]
fn workload_spec_is_validated_at_build_time() {
    // Wrong trace count.
    let err = ScenarioBuilder::new()
        .oni_count(ONI_COUNT)
        .workload_heated(network(), vec![WorkloadTrace::idle(); 3])
        .policy(DecisionPolicy::epoch_gated())
        .build()
        .unwrap_err();
    assert!(err.to_string().contains("one trace per ONI"), "{err}");
    // Negative power.
    let err = ScenarioBuilder::new()
        .oni_count(4)
        .workload_heated(network(), vec![WorkloadTrace::constant(-1.0); 4])
        .policy(DecisionPolicy::epoch_gated())
        .build()
        .unwrap_err();
    assert!(err.to_string().contains("baseline power"), "{err}");
    // Workload models need the epoch-gated policy.
    let err = ScenarioBuilder::new()
        .oni_count(4)
        .workload_heated(network(), vec![WorkloadTrace::idle(); 4])
        .policy(DecisionPolicy::per_message())
        .build()
        .unwrap_err();
    assert!(err.to_string().contains("epoch-gated"), "{err}");
}
