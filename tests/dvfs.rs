//! Phase-scheduled DVFS workloads: the epoch-gated engine over a
//! [`WorkloadSchedule`] with per-phase wavelength re-assignment.
//!
//! Pins the contract of the schedule machinery:
//!
//! * a single-phase schedule is **bit-identical** to the plain
//!   `WorkloadTrace` engine — with and without design assignment, at any
//!   thread count (the schedule generalizes the trace path, it must not
//!   perturb it);
//! * phase boundaries land exactly on epoch edges (the engine clamps the
//!   preceding epoch), so assignment swaps are hitless by construction;
//! * zero-length phases are rejected at `build()` as configuration errors;
//! * the full multi-phase report — transitions, swap epochs, storm
//!   switches — is invariant under the thread budget.

use onoc_ecc::link::TrafficClass;
use onoc_ecc::sim::traffic::TrafficPattern;
use onoc_ecc::sim::{
    DecisionPolicy, DesignAssignmentConfig, RunReport, ScenarioBuilder, ScenarioConfig,
};
use onoc_ecc::thermal::{RcNetworkParameters, WorkloadPhase, WorkloadSchedule, WorkloadTrace};

const ONIS: usize = 8;

/// A package whose thermal gain is large enough for the migration heat maps
/// to force distinct per-phase assignments (the paper package's default
/// resistance keeps the fleet within one rotation).
fn package() -> RcNetworkParameters {
    RcNetworkParameters {
        ambient_resistance_k_per_mw: 0.06,
        ..RcNetworkParameters::paper_package()
    }
}

fn builder() -> ScenarioBuilder {
    ScenarioBuilder::new()
        .oni_count(ONIS)
        .pattern(TrafficPattern::UniformRandom {
            messages_per_node: 40,
        })
        .class(TrafficClass::Bulk)
        .words_per_message(16)
        .seed(5)
        .policy(DecisionPolicy::epoch_gated())
}

fn traces() -> Vec<WorkloadTrace> {
    WorkloadTrace::hot_cluster(ONIS, 2, 300.0, 0.4)
}

/// The schedule under test: the hot cluster migrates 2 → 5 → 7 every
/// 100 ns (a multiple of the 25 ns epoch, so boundaries are epoch-grid
/// exact).
fn migration() -> WorkloadSchedule {
    WorkloadSchedule::migration(ONIS, 100.0, &[2, 5, 7], 300.0, 0.4)
}

/// Strips the configuration so reports from *different* configurations
/// (plain traces vs. the equivalent schedule, different thread budgets) can
/// be compared over everything the run actually produced.
fn without_config(mut report: RunReport) -> RunReport {
    report.config = ScenarioConfig::default();
    report
}

#[test]
fn single_phase_schedule_is_bit_identical_to_the_plain_trace_engine() {
    for threads in [1usize, 4] {
        let plain = builder()
            .workload_heated(package(), traces())
            .threads(threads)
            .build()
            .unwrap()
            .run();
        let scheduled = builder()
            .workload_scheduled(package(), WorkloadSchedule::single(traces()))
            .threads(threads)
            .build()
            .unwrap()
            .run();
        assert!(
            scheduled.phases.is_empty(),
            "a single-phase schedule has no transitions"
        );
        assert_eq!(
            without_config(plain),
            without_config(scheduled),
            "single-phase schedule diverged from the trace engine at {threads} thread(s)"
        );
    }
}

#[test]
fn single_phase_schedule_matches_the_trace_engine_under_design_assignment() {
    // The degenerate per-phase path: one phase means one design heat map,
    // so per-phase assignment must reproduce the worst-case fleet exactly.
    for threads in [1usize, 4] {
        let plain = builder()
            .workload_heated(package(), traces())
            .design_assignment(DesignAssignmentConfig::greedy_refine(7))
            .threads(threads)
            .build()
            .unwrap()
            .run();
        let scheduled = builder()
            .workload_scheduled(package(), WorkloadSchedule::single(traces()))
            .design_assignment(DesignAssignmentConfig::greedy_refine(7).per_phase())
            .threads(threads)
            .build()
            .unwrap()
            .run();
        assert_eq!(
            without_config(plain),
            without_config(scheduled),
            "assigned single-phase schedule diverged at {threads} thread(s)"
        );
    }
}

#[test]
fn phase_transitions_land_exactly_on_epoch_edges() {
    let scenario = builder()
        .workload_scheduled(package(), migration())
        .design_assignment(DesignAssignmentConfig::greedy_refine(7).per_phase())
        .build()
        .unwrap();
    assert_eq!(
        scenario.phase_assignments().len(),
        3,
        "one assignment fleet per phase"
    );
    let report = scenario.run();
    let boundaries: Vec<f64> = report.phases.iter().map(|t| t.time_ns).collect();
    assert_eq!(
        boundaries,
        vec![100.0, 200.0],
        "every phase boundary must be entered, in order"
    );
    let edges: Vec<u64> = report
        .trajectory
        .iter()
        .map(|sample| sample.time_ns.to_bits())
        .collect();
    for transition in &report.phases {
        assert!(
            edges.contains(&transition.time_ns.to_bits()),
            "boundary {} ns is not an epoch edge of the run",
            transition.time_ns
        );
        assert!(
            transition.epoch > 0 && transition.epoch <= report.epochs,
            "transition epoch {} outside the run's {} epochs",
            transition.epoch,
            report.epochs
        );
    }
    assert!(
        report.phases.iter().any(|t| t.swapped_onis > 0),
        "the migrating cluster must swap at least one ONI's assignment"
    );
    // The storm windows only count switches the run actually took.
    let storm: u64 = report.phases.iter().map(|t| t.storm_switches).sum();
    assert!(storm <= report.total_switches());
}

#[test]
fn zero_length_phases_are_rejected_at_build() {
    let schedule = WorkloadSchedule::new(vec![
        WorkloadPhase::new(100.0, traces()),
        WorkloadPhase::new(0.0, traces()),
        WorkloadPhase::new(f64::INFINITY, traces()),
    ]);
    let err = builder()
        .workload_scheduled(package(), schedule)
        .build()
        .unwrap_err();
    assert!(
        err.to_string().contains("zero-length phase"),
        "unexpected error: {err}"
    );
}

#[test]
fn multi_phase_reports_are_thread_invariant() {
    let run = |threads: usize| {
        builder()
            .workload_scheduled(package(), migration())
            .design_assignment(DesignAssignmentConfig::greedy_refine(7).per_phase())
            .threads(threads)
            .build()
            .unwrap()
            .run()
    };
    let baseline = run(1);
    assert!(
        !baseline.phases.is_empty(),
        "the schedule must cross at least one boundary"
    );
    for threads in [2usize, 4] {
        let observed = run(threads);
        assert_eq!(
            without_config(baseline.clone()),
            without_config(observed),
            "multi-phase report changed at {threads} thread(s)"
        );
    }
}
