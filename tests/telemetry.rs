//! Cross-crate telemetry invariants: attaching a recorder must never change
//! what a simulation computes, and the JSONL wire format must round-trip
//! every event variant.

use std::sync::Arc;

use onoc_ecc::link::TrafficClass;
use onoc_ecc::sim::traffic::TrafficPattern;
use onoc_ecc::sim::{DecisionPolicy, RunReport, ScenarioBuilder};
use onoc_ecc::telemetry::{
    parse_jsonl, JsonlRecorder, MemoryRecorder, MetricsRegistry, Recorder, RecorderHandle,
    RegistryRecorder, TelemetryEvent, WallClockRegistry,
};
use proptest::prelude::*;

fn small_builder(oni_count: usize, seed: u64, epoch_gated: bool) -> ScenarioBuilder {
    let builder = ScenarioBuilder::new()
        .oni_count(oni_count)
        .pattern(TrafficPattern::UniformRandom {
            messages_per_node: 12,
        })
        .class(TrafficClass::LatencyFirst)
        .words_per_message(8)
        .mean_inter_arrival_ns(10.0)
        .seed(seed);
    if epoch_gated {
        builder
            .activity_coupled(onoc_ecc::thermal::RcNetworkParameters::paper_package())
            .policy(DecisionPolicy::epoch_gated())
    } else {
        builder
    }
}

/// Runs the scenario with the given recorder and thread budget, normalizing
/// the echoed thread budget so reports are comparable across runs.
fn run_with(
    oni_count: usize,
    seed: u64,
    epoch_gated: bool,
    recorder: RecorderHandle,
    threads: usize,
) -> RunReport {
    let mut report = small_builder(oni_count, seed, epoch_gated)
        .threads(threads)
        .telemetry(recorder)
        .build()
        .expect("scenario must build")
        .run();
    report.config.threads = 0;
    report
}

proptest! {
    /// Telemetry neutrality: a run with a `MemoryRecorder` attached produces
    /// a bit-identical `RunReport` to the default (`NullRecorder`-equivalent)
    /// run, at 1 and at 4 threads.
    #[test]
    fn recorder_never_changes_the_simulation(
        oni_count in 2usize..5,
        seed in 0u64..1_000,
        policy_pick in 0u64..2,
    ) {
        let epoch_gated = policy_pick == 1;
        let baseline = run_with(oni_count, seed, epoch_gated, RecorderHandle::none(), 1);
        for threads in [1usize, 4] {
            let memory = Arc::new(MemoryRecorder::new());
            let observed = run_with(
                oni_count,
                seed,
                epoch_gated,
                RecorderHandle::new(memory.clone()),
                threads,
            );
            prop_assert!(
                observed == baseline,
                "report changed under a recorder at {} thread(s)",
                threads
            );
            prop_assert!(
                !memory.is_empty(),
                "the recorder should have seen events (threads = {})",
                threads
            );
        }
    }
}

#[test]
fn jsonl_round_trips_every_event_variant() {
    let examples = TelemetryEvent::examples();
    // `examples()` is the vocabulary: every variant must appear.
    let kinds: std::collections::BTreeSet<&'static str> =
        examples.iter().map(TelemetryEvent::kind).collect();
    assert_eq!(kinds.len(), 12, "one exemplar kind per event variant");

    let recorder = JsonlRecorder::new(Vec::new());
    for event in &examples {
        recorder.record(event);
    }
    assert_eq!(recorder.write_errors(), 0);
    let bytes = recorder.into_inner();
    let stream = String::from_utf8(bytes).expect("JSONL is UTF-8");
    let parsed = parse_jsonl(&stream).expect("stream parses");
    assert_eq!(parsed, examples, "JSONL round-trip is lossless");
}

#[test]
fn epoch_gated_run_emits_the_expected_vocabulary() {
    let memory = Arc::new(MemoryRecorder::new());
    run_with(3, 7, true, RecorderHandle::new(memory.clone()), 1);
    let kinds: std::collections::BTreeSet<&'static str> =
        memory.events().iter().map(TelemetryEvent::kind).collect();
    for expected in [
        "solver_invoked",
        "cache_hit",
        "cache_miss",
        "decision_resolved",
        "epoch_advanced",
    ] {
        assert!(kinds.contains(expected), "missing {expected} in {kinds:?}");
    }
}

#[test]
fn registry_counters_are_identical_across_thread_counts() {
    let snapshot_at = |threads: usize| {
        let metrics = Arc::new(MetricsRegistry::new());
        let wall = Arc::new(WallClockRegistry::new());
        let recorder = RecorderHandle::new(Arc::new(RegistryRecorder::new(
            metrics.clone(),
            wall.clone(),
        )));
        run_with(4, 11, true, recorder, threads);
        metrics.snapshot()
    };
    let single = snapshot_at(1);
    let sharded = snapshot_at(4);
    assert!(!single.is_empty(), "the run should populate counters");
    assert_eq!(
        single, sharded,
        "deterministic registry must not depend on the thread count"
    );
}
