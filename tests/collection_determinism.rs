//! Regression pins for the D001 (determinism / cache-safety) collection
//! audit: the simulator's per-message bookkeeping moved from
//! `std::collections::HashMap`/`HashSet` to ordered collections
//! (`BTreeMap`/`BTreeSet`) so no randomized iteration order can ever reach a
//! `RunReport`, the switch log, or a telemetry stream.  The digests below
//! were captured from the pre-conversion (HashMap) engine; the conversion
//! must be bit-identical, and these goldens keep it that way.

use onoc_ecc::ecc::EccScheme;
use onoc_ecc::link::TrafficClass;
use onoc_ecc::sim::traffic::TrafficPattern;
use onoc_ecc::sim::{DecisionPolicy, RingVariationConfig, RunReport, ScenarioBuilder};
use onoc_ecc::thermal::bank::{fnv1a_seed, fnv1a_u64};
use onoc_ecc::thermal::{BankTuningMode, RcNetworkParameters, ThermalEnvironment, WorkloadTrace};
use onoc_ecc::units::Celsius;

/// FNV-1a digest over every order-sensitive field of a report: aggregate
/// stats, the per-ONI table, the time-ordered switch log and the epoch
/// trajectory.  Any reordering introduced by a collection swap changes it.
fn digest(report: &RunReport) -> u64 {
    let mix_u64 = |h: &mut u64, v: u64| *h = fnv1a_u64(*h, v);
    let mut h = fnv1a_seed();
    for v in [
        report.stats.injected_messages,
        report.stats.delivered_messages,
        report.stats.delivered_bits,
        report.stats.corrupted_words,
        report.stats.corrupted_bits,
        report.stats.corrected_words,
        report.stats.deadline_misses,
        report.epochs,
        report.decisions,
        report.infeasible_requests,
        report.reconfigured_messages,
    ] {
        mix_u64(&mut h, v);
    }
    for v in [
        report.stats.makespan_ns,
        report.stats.channel_busy_ns,
        report.stats.total_latency_ns,
        report.stats.max_latency_ns,
        report.stats.energy_pj,
        report.stats.static_energy_pj,
        report.baseline_channel_power_mw,
        report.baseline_decoded_ber,
    ] {
        mix_u64(&mut h, v.to_bits());
    }
    for oni in &report.per_oni {
        mix_u64(&mut h, oni.oni as u64);
        mix_u64(&mut h, oni.delivered_messages);
        mix_u64(&mut h, oni.final_temperature_c.to_bits());
        mix_u64(&mut h, oni.peak_temperature_c.to_bits());
        mix_u64(&mut h, oni.scheme as u64);
        mix_u64(&mut h, oni.channel_power_mw.to_bits());
        mix_u64(&mut h, oni.tuning_power_mw_per_lane.to_bits());
        mix_u64(&mut h, oni.scheme_switches);
        mix_u64(&mut h, oni.decisions);
        mix_u64(&mut h, oni.infeasible_requests);
        mix_u64(&mut h, oni.static_energy_pj.to_bits());
        mix_u64(&mut h, oni.dynamic_energy_pj.to_bits());
    }
    for s in &report.switch_log {
        mix_u64(&mut h, s.time_ns.to_bits());
        mix_u64(&mut h, s.oni as u64);
        mix_u64(&mut h, s.from as u64);
        mix_u64(&mut h, s.to as u64);
        mix_u64(&mut h, s.temperature_c.to_bits());
        mix_u64(&mut h, s.epoch.map_or(u64::MAX, |e| e));
    }
    for t in &report.trajectory {
        mix_u64(&mut h, t.time_ns.to_bits());
        mix_u64(&mut h, t.min_temperature_c.to_bits());
        mix_u64(&mut h, t.max_temperature_c.to_bits());
        mix_u64(&mut h, t.reconfigured_onis as u64);
    }
    h
}

/// Per-message policy over a prescribed hotspot: exercises the message /
/// decision-assignment maps and the per-destination arbiter and busy maps.
fn per_message_report() -> RunReport {
    ScenarioBuilder::new()
        .oni_count(8)
        .pattern(TrafficPattern::UniformRandom {
            messages_per_node: 40,
        })
        .class(TrafficClass::LatencyFirst)
        .words_per_message(16)
        .mean_inter_arrival_ns(6.0)
        .seed(23)
        .prescribed(ThermalEnvironment::Hotspot {
            base: Celsius::new(30.0),
            peak: Celsius::new(70.0),
            center: 2,
            decay_per_hop: 0.5,
        })
        .build()
        .expect("valid per-message scenario")
        .run()
}

/// Epoch-gated policy over a workload-heated fleet with per-ONI fabrication
/// variation: exercises the arbiter map and the sharded re-ask path.
fn epoch_gated_report() -> RunReport {
    ScenarioBuilder::new()
        .oni_count(8)
        .pattern(TrafficPattern::UniformRandom {
            messages_per_node: 60,
        })
        .class(TrafficClass::LatencyFirst)
        .words_per_message(16)
        .mean_inter_arrival_ns(8.0)
        .seed(31)
        .workload_heated(
            RcNetworkParameters {
                ambient: Celsius::new(25.0),
                heat_capacity_pj_per_k: 2000.0,
                ambient_resistance_k_per_mw: 0.06,
                coupling_resistance_k_per_mw: 1.5,
            },
            WorkloadTrace::hot_cluster(8, 3, 250.0, 0.45),
        )
        .variation(RingVariationConfig {
            sigma_nm: 0.04,
            seed: 7,
            mode: BankTuningMode::PureHeater,
        })
        .policy(DecisionPolicy::epoch_gated())
        .build()
        .expect("valid epoch-gated scenario")
        .run()
}

#[test]
fn per_message_report_is_pinned_across_the_collection_swap() {
    let report = per_message_report();
    println!("per-message digest = 0x{:016X}", digest(&report));
    println!(
        "delivered = {}, switches = {}, energy = {}",
        report.stats.delivered_messages,
        report.total_switches(),
        report.stats.energy_pj
    );
    assert_eq!(report.stats.delivered_messages, 8 * 40);
    assert_eq!(digest(&report), GOLDEN_PER_MESSAGE);
}

#[test]
fn epoch_gated_report_is_pinned_across_the_collection_swap() {
    let report = epoch_gated_report();
    println!("epoch-gated digest = 0x{:016X}", digest(&report));
    println!(
        "delivered = {}, switches = {}, epochs = {}",
        report.stats.delivered_messages,
        report.total_switches(),
        report.epochs
    );
    assert_eq!(report.stats.delivered_messages, 8 * 60);
    assert!(report.total_switches() > 0, "cluster must split the ring");
    assert_eq!(digest(&report), GOLDEN_EPOCH_GATED);
}

#[test]
fn reports_are_bit_identical_across_reruns_and_thread_counts() {
    let a = epoch_gated_report();
    let b = epoch_gated_report();
    assert_eq!(a, b, "same config must reproduce bit-identically");
    let threaded = {
        let mut r = ScenarioBuilder::from_config(a.config.clone());
        r = r.threads(4);
        r.build().expect("valid threaded scenario").run()
    };
    let mut normalized = threaded.clone();
    normalized.config.threads = a.config.threads;
    assert_eq!(a, normalized, "thread budget must not change the report");
}

#[test]
fn distinct_final_schemes_sees_the_split() {
    let report = epoch_gated_report();
    assert_eq!(report.distinct_final_schemes(), 2);
    assert!(report
        .per_oni
        .iter()
        .any(|o| o.scheme == EccScheme::Hamming7164));
}

// Captured from the pre-conversion (HashMap-based) engine; see module docs.
const GOLDEN_PER_MESSAGE: u64 = 0xB47B_376D_9EB7_A8BD;
// Re-captured when the epoch engine moved to destination-sharded playback:
// completions took schedule-independent sequence numbers and error
// injection moved to per-message RNG streams, so the digest changed once,
// deliberately.  It still pins every ordering-sensitive field against
// future collection or scheduling regressions.
const GOLDEN_EPOCH_GATED: u64 = 0x788F_90DA_5492_1855;
