//! Workspace-level integration tests checking the headline claims of the
//! paper end to end (photonics + coding + interface + link).

use onoc_ecc::ecc::EccScheme;
use onoc_ecc::interface::EnergyAccounting;
use onoc_ecc::link::explore::DesignSpace;
use onoc_ecc::link::{LinkError, NanophotonicLink};

#[test]
fn headline_laser_power_reduction_of_roughly_one_half() {
    let link = NanophotonicLink::paper_link();
    let uncoded = link.operating_point(EccScheme::Uncoded, 1e-11).unwrap();
    let h74 = link.operating_point(EccScheme::Hamming74, 1e-11).unwrap();
    let h7164 = link.operating_point(EccScheme::Hamming7164, 1e-11).unwrap();

    // "using simple Hamming coder and decoder permits to reduce the laser
    // power by nearly 50%".
    let reduction = 1.0
        - h74.laser.laser_electrical_power.value() / uncoded.laser.laser_electrical_power.value();
    assert!(
        reduction > 0.40 && reduction < 0.65,
        "laser power reduction = {reduction}"
    );

    // Fig. 5 ordering: uncoded > H(71,64) >= H(7,4).
    assert!(
        uncoded.laser.laser_electrical_power.value() > h7164.laser.laser_electrical_power.value()
    );
    assert!(h7164.laser.laser_electrical_power.value() >= h74.laser.laser_electrical_power.value());
}

#[test]
fn uncoded_channel_power_is_laser_dominated_and_drops_with_coding() {
    let link = NanophotonicLink::paper_link();
    let uncoded = link.operating_point(EccScheme::Uncoded, 1e-11).unwrap();
    let h74 = link.operating_point(EccScheme::Hamming74, 1e-11).unwrap();
    // "the laser sources cost for 92% of the total power".
    assert!(uncoded.power.laser_fraction() > 0.88);
    // "-45% and -49%" channel power for the coded schemes.
    let saving = 1.0 - h74.channel_power.value() / uncoded.channel_power.value();
    assert!(
        saving > 0.40 && saving < 0.60,
        "channel power saving = {saving}"
    );
}

#[test]
fn ber_1e12_needs_coding() {
    let link = NanophotonicLink::paper_link();
    assert!(matches!(
        link.operating_point(EccScheme::Uncoded, 1e-12),
        Err(LinkError::Infeasible(_))
    ));
    for scheme in [EccScheme::Hamming74, EccScheme::Hamming7164] {
        let point = link.operating_point(scheme, 1e-12).unwrap();
        assert!(point.laser.laser_output_power.value() <= 700.0);
    }
}

#[test]
fn communication_time_and_energy_shape() {
    let link = NanophotonicLink::paper_link();
    let uncoded = link.operating_point(EccScheme::Uncoded, 1e-11).unwrap();
    let h74 = link.operating_point(EccScheme::Hamming74, 1e-11).unwrap();
    let h7164 = link.operating_point(EccScheme::Hamming7164, 1e-11).unwrap();

    assert!((uncoded.communication_time_factor() - 1.0).abs() < 1e-12);
    assert!((h7164.communication_time_factor() - 1.11).abs() < 0.01);
    assert!((h74.communication_time_factor() - 1.75).abs() < 1e-12);

    // The uncoded energy/bit is close to the paper's 3.92 pJ/bit
    // (251 mW / 64 Gb/s; our calibrated channel power is a few percent lower);
    // H(71,64) improves on it.
    assert!((uncoded.energy_per_bit.value() - 3.92).abs() < 0.35);
    assert!(h7164.energy_per_bit.value() < uncoded.energy_per_bit.value());
}

#[test]
fn every_paper_scheme_is_pareto_optimal_across_the_ber_range() {
    let sweep = DesignSpace::paper_sweep();
    for &ber in &[1e-6, 1e-8, 1e-10, 1e-12] {
        for point in sweep.pareto_front(ber) {
            assert!(
                point.on_front,
                "{} at {ber:e} is dominated, contradicting Fig. 6b",
                point.point.scheme()
            );
        }
    }
}

#[test]
fn always_on_accounting_still_favours_coding() {
    // Even when the laser is never gated, the coded schemes keep their
    // advantage because the saving is in the laser itself.
    let link = NanophotonicLink::paper_link()
        .with_energy_accounting(EnergyAccounting::AlwaysOn { utilization: 0.25 });
    let uncoded = link.operating_point(EccScheme::Uncoded, 1e-11).unwrap();
    let h7164 = link.operating_point(EccScheme::Hamming7164, 1e-11).unwrap();
    assert!(h7164.energy_per_bit.value() < uncoded.energy_per_bit.value());
    assert!(uncoded.energy_per_bit.value() > 3.92); // idle time inflates the figure
}

#[test]
fn thermal_refactor_does_not_move_the_25c_operating_points() {
    // Regression pins for the thermal subsystem: at the paper's 25 °C
    // calibration point the temperature-aware solver must reproduce the
    // pre-thermal numbers exactly — zero drift, zero tuning power, and the
    // same laser/channel figures (pinned to 0.1% here against the values the
    // calibrated model produced before the thermal refactor).
    let link = NanophotonicLink::paper_link();
    let pins: [(EccScheme, f64, f64, f64, f64); 3] = [
        // (scheme, P_laser mW/wl, OP_laser µW, channel mW, pJ/bit)
        (
            EccScheme::Uncoded,
            13.718891,
            662.122677,
            241.269712,
            3.769839,
        ),
        (
            EccScheme::Hamming7164,
            7.211912,
            370.325541,
            137.163778,
            2.377595,
        ),
        (
            EccScheme::Hamming74,
            6.513695,
            336.704250,
            125.998798,
            3.445280,
        ),
    ];
    for (scheme, laser_mw, op_uw, channel_mw, epb) in pins {
        let p = link.operating_point(scheme, 1e-11).unwrap();
        let close = |actual: f64, pinned: f64| (actual - pinned).abs() / pinned < 1e-3;
        assert!(close(p.power.laser.value(), laser_mw), "{scheme} P_laser");
        assert!(
            close(p.laser.laser_output_power.value(), op_uw),
            "{scheme} OP_laser"
        );
        assert!(
            close(p.channel_power.value(), channel_mw),
            "{scheme} channel power"
        );
        assert!(close(p.energy_per_bit.value(), epb), "{scheme} energy/bit");
        // The thermal terms must vanish at the calibration point.
        assert!(p.power.tuning.is_zero(), "{scheme} tuning power");
        assert!(p.thermal.free_drift.is_zero(), "{scheme} drift");
        assert!(p.thermal.residual_drift.is_zero(), "{scheme} residual");
        // And the explicit 25 °C query is the identical computation.
        let explicit = link
            .operating_point_at(scheme, 1e-11, onoc_ecc::units::Celsius::new(25.0))
            .unwrap();
        assert_eq!(p, explicit, "{scheme} at explicit 25C");
    }
}

#[test]
fn whole_interconnect_saving_is_tens_of_watts() {
    // "the total power saving reaches 22W for the whole interconnect"
    // (12 ONIs × 16 waveguides per MWSR channel).
    let link = NanophotonicLink::paper_link();
    let uncoded = link.operating_point(EccScheme::Uncoded, 1e-11).unwrap();
    let h74 = link.operating_point(EccScheme::Hamming74, 1e-11).unwrap();
    let per_waveguide_mw = uncoded.channel_power.value() - h74.channel_power.value();
    let interconnect_w = per_waveguide_mw * 12.0 * 16.0 / 1000.0;
    assert!(
        interconnect_w > 15.0 && interconnect_w < 30.0,
        "interconnect saving = {interconnect_w} W"
    );
}
