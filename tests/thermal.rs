//! Workspace-level integration tests of the thermal subsystem: the
//! temperature sweep acceptance behaviour, the runtime manager's thermal
//! switching, and the simulator's scenario playback.

// the prescribed-scenario pins below intentionally exercise the deprecated
// `Simulation`/`ThermalScenario` shims; the builder path is pinned equivalent
// in tests/scenario_migration.rs.
#![allow(deprecated)]

use onoc_ecc::ecc::EccScheme;
use onoc_ecc::link::{LinkManager, NanophotonicLink, TrafficClass};
use onoc_ecc::sim::traffic::TrafficPattern;
use onoc_ecc::sim::{Simulation, SimulationConfig, ThermalScenario};
use onoc_ecc::thermal::{RingThermalModel, ThermalEnvironment, ThermalTuner};
use onoc_ecc::units::{Celsius, KelvinDelta};

fn sweep_temperatures() -> Vec<Celsius> {
    (25..=85)
        .step_by(10)
        .map(|t| Celsius::new(f64::from(t)))
        .collect()
}

#[test]
fn total_power_per_scheme_is_monotone_non_decreasing_in_temperature() {
    let link = NanophotonicLink::paper_link();
    for scheme in EccScheme::paper_schemes() {
        let mut last = 0.0;
        let mut feasible_count = 0;
        for t in sweep_temperatures() {
            if let Ok(p) = link.operating_point_at(scheme, 1e-11, t) {
                let total = p.channel_power.value();
                assert!(
                    total >= last,
                    "{scheme}: channel power fell from {last} to {total} at {t}"
                );
                last = total;
                feasible_count += 1;
            }
        }
        assert!(feasible_count >= 3, "{scheme} feasible at too few points");
    }
}

#[test]
fn uncoded_is_feasible_at_25c_and_infeasible_at_85c_where_hamming_survives() {
    let link = NanophotonicLink::paper_link();
    assert!(link
        .operating_point_at(EccScheme::Uncoded, 1e-11, Celsius::new(25.0))
        .is_ok());
    assert!(link
        .operating_point_at(EccScheme::Uncoded, 1e-11, Celsius::new(85.0))
        .is_err());
    for scheme in [EccScheme::Hamming74, EccScheme::Hamming7164] {
        let p = link
            .operating_point_at(scheme, 1e-11, Celsius::new(85.0))
            .unwrap();
        assert!(p.power.tuning.value() > 0.0, "{scheme} must pay for tuning");
        assert!(p.laser.laser_output_power.value() <= 700.0);
    }
}

#[test]
fn runtime_manager_switches_latency_first_from_uncoded_to_hamming() {
    let manager = LinkManager::paper_manager();
    let mut schemes = Vec::new();
    for t in sweep_temperatures() {
        schemes.push(
            manager
                .configure_at(TrafficClass::LatencyFirst, t)
                .map(|d| d.point.scheme()),
        );
    }
    // Cool end rides uncoded, hot end rides H(71,64), never unservable.
    assert_eq!(schemes.first().unwrap(), &Some(EccScheme::Uncoded));
    assert_eq!(schemes.last().unwrap(), &Some(EccScheme::Hamming7164));
    assert!(schemes.iter().all(Option::is_some));
    // The switch is monotone: once coded, it stays coded as T rises.
    let first_coded = schemes
        .iter()
        .position(|s| *s == Some(EccScheme::Hamming7164))
        .unwrap();
    assert!(schemes[first_coded..]
        .iter()
        .all(|s| *s == Some(EccScheme::Hamming7164)));
}

#[test]
fn tuning_power_grows_with_temperature_and_respects_the_heater_model() {
    let link = NanophotonicLink::paper_link();
    let tuner = ThermalTuner::paper_heater();
    let rings = RingThermalModel::paper_silicon();
    let mut last_tuning = 0.0;
    for t in sweep_temperatures() {
        let p = link
            .operating_point_at(EccScheme::Hamming7164, 1e-11, t)
            .unwrap();
        let tuning = p.power.tuning.value();
        assert!(tuning >= last_tuning, "tuning power fell at {t}");
        last_tuning = tuning;
        // The per-lane figure decomposes into the heater model exactly:
        // 12 rings × (power per kelvin × compensated excursion).
        let compensation = tuner.compensate(rings.delta_at(t));
        let expected_mw = compensation.heater_power_per_ring.value() * 12.0 * 1e-3;
        assert!(
            (tuning - expected_mw).abs() < 1e-9,
            "tuning decomposition at {t}"
        );
    }
}

#[test]
fn drift_model_invariants_hold_over_the_sweep() {
    let rings = RingThermalModel::paper_silicon();
    let tuner = ThermalTuner::paper_heater();
    assert!(rings.drift_at(Celsius::new(25.0)).is_zero());
    let mut last_drift = 0.0;
    let mut last_power = 0.0;
    for dt in 1..=60 {
        let t = Celsius::new(25.0 + f64::from(dt));
        let drift = rings.drift_at(t).abs().nanometers();
        assert!(drift > last_drift, "drift magnitude must grow with ΔT");
        last_drift = drift;
        let c = tuner.compensate(KelvinDelta::new(f64::from(dt)));
        assert!(c.heater_power_per_ring.value() >= last_power);
        last_power = c.heater_power_per_ring.value();
        assert!(c.residual.abs().value() < f64::from(dt).abs() + 1e-12);
    }
}

#[test]
fn transient_scenario_switches_schemes_mid_run() {
    let config = SimulationConfig {
        oni_count: 8,
        pattern: TrafficPattern::UniformRandom {
            messages_per_node: 10,
        },
        class: TrafficClass::LatencyFirst,
        words_per_message: 8,
        mean_inter_arrival_ns: 25.0,
        deadline_slack_ns: None,
        nominal_ber: 1e-11,
        seed: 21,
        thermal: Some(ThermalScenario::new(ThermalEnvironment::Transient {
            start: Celsius::new(25.0),
            target: Celsius::new(85.0),
            time_constant_ns: 100.0,
        })),
    };
    let report = Simulation::new(config).unwrap().run();
    let thermal = report.thermal.unwrap();
    assert!(thermal.reconfigured_messages > 0, "the heat-up must bite");
    assert!(thermal.reconfigured_messages < report.stats.delivered_messages);
    // Most destinations take their last message hot (coded); a destination
    // whose traffic all landed early may legitimately finish uncoded.
    let coded = thermal
        .per_oni
        .iter()
        .filter(|o| o.scheme == EccScheme::Hamming7164)
        .count();
    assert!(
        2 * coded > thermal.per_oni.len(),
        "only {coded}/{} destinations ended coded",
        thermal.per_oni.len()
    );
    assert_eq!(
        report.stats.delivered_messages,
        report.stats.injected_messages
    );
}
