//! Workspace-level integration tests of the closed thermo-electrical loop:
//! activity-driven heating, the epoch engine's hysteresis, and the memoized
//! operating-point cache that keeps the loop affordable.

// these pins intentionally exercise the deprecated `FeedbackSimulation` shim;
// the builder path is pinned equivalent in tests/scenario_migration.rs.
#![allow(deprecated)]

use onoc_ecc::ecc::EccScheme;
use onoc_ecc::link::TrafficClass;
use onoc_ecc::sim::traffic::TrafficPattern;
use onoc_ecc::sim::{FeedbackConfig, FeedbackSimulation, SimulationConfig};

fn uniform_config(class: TrafficClass, seed: u64) -> FeedbackConfig {
    FeedbackConfig {
        sim: SimulationConfig {
            oni_count: 8,
            pattern: TrafficPattern::UniformRandom {
                messages_per_node: 150,
            },
            class,
            words_per_message: 16,
            mean_inter_arrival_ns: 8.0,
            deadline_slack_ns: None,
            nominal_ber: 1e-11,
            seed,
            thermal: None,
        },
        ..FeedbackConfig::default()
    }
}

#[test]
fn feedback_reaches_a_steady_state_on_uniform_traffic() {
    for seed in [3, 11, 29] {
        let report = FeedbackSimulation::new(uniform_config(TrafficClass::LatencyFirst, seed))
            .unwrap()
            .run();
        // Everything is delivered and the temperatures stay bounded.
        assert_eq!(
            report.stats.delivered_messages,
            report.stats.injected_messages
        );
        for oni in &report.per_oni {
            assert!(
                oni.peak_temperature_c > 25.0 && oni.peak_temperature_c < 100.0,
                "seed {seed}: ONI {} peaked at {}",
                oni.oni,
                oni.peak_temperature_c
            );
            // No oscillation: at most the single uncoded → coded switch.
            assert!(
                oni.scheme_switches <= 1,
                "seed {seed}: ONI {} flapped ({} switches)",
                oni.oni,
                oni.scheme_switches
            );
        }
        // The last quarter of the trajectory is quiescent: the temperature
        // envelope moves by well under a kelvin and the coded-ONI count is
        // frozen — a steady state, not a limit cycle.
        let tail = &report.trajectory[report.trajectory.len() * 3 / 4..];
        let max_t: Vec<f64> = tail.iter().map(|s| s.max_temperature_c).collect();
        let spread = max_t.iter().copied().fold(f64::NEG_INFINITY, f64::max)
            - max_t.iter().copied().fold(f64::INFINITY, f64::min);
        assert!(spread < 1.0, "seed {seed}: tail still moving by {spread} K");
        assert!(tail
            .windows(2)
            .all(|w| w[0].reconfigured_onis == w[1].reconfigured_onis));
    }
}

#[test]
fn self_heating_forces_the_coded_path_without_any_prescribed_trace() {
    let report = FeedbackSimulation::new(uniform_config(TrafficClass::LatencyFirst, 7))
        .unwrap()
        .run();
    assert_eq!(report.baseline_scheme, EccScheme::Uncoded);
    assert!(report.total_switches() > 0);
    assert!(report
        .per_oni
        .iter()
        .all(|o| o.scheme == EccScheme::Hamming7164));
    // The switch sheds laser power: the package ends cooler than its peak.
    let peak = report
        .trajectory
        .iter()
        .map(|s| s.max_temperature_c)
        .fold(f64::NEG_INFINITY, f64::max);
    let last = report.trajectory.last().unwrap().max_temperature_c;
    assert!(last < peak - 1.0, "no cool-down: peak {peak}, final {last}");
}

#[test]
fn the_cache_keeps_many_epoch_runs_affordable() {
    let report = FeedbackSimulation::new(uniform_config(TrafficClass::LatencyFirst, 13))
        .unwrap()
        .run();
    let cache = report.solver_cache;
    // The manager asks up to three schemes per re-decision, yet the solver
    // runs only once per distinct (scheme, BER, temperature bucket).
    assert!(cache.total() > cache.misses * 2, "{cache:?}");
    assert!(cache.hit_rate() > 0.5, "{cache:?}");
}

#[test]
fn bulk_traffic_is_thermally_self_limiting() {
    // Bulk starts on the coded point: less power in, a cooler package, and
    // the loop never needs to switch anything.
    let report = FeedbackSimulation::new(uniform_config(TrafficClass::Bulk, 5))
        .unwrap()
        .run();
    assert_eq!(report.baseline_scheme, EccScheme::Hamming7164);
    assert_eq!(report.total_switches(), 0);
    let hot = FeedbackSimulation::new(uniform_config(TrafficClass::LatencyFirst, 5))
        .unwrap()
        .run();
    let peak = |r: &onoc_ecc::sim::FeedbackReport| {
        r.per_oni
            .iter()
            .map(|o| o.peak_temperature_c)
            .fold(f64::NEG_INFINITY, f64::max)
    };
    assert!(peak(&report) < peak(&hot));
}
