//! Property-based tests on the cross-crate invariants.

// some properties intentionally exercise the deprecated simulation shims;
// the builder path is pinned equivalent in tests/scenario_migration.rs.
#![allow(deprecated)]

use onoc_ecc::ber::{erfc, erfc_inv};
use onoc_ecc::ecc::EccScheme;
use onoc_ecc::interface::{InterfaceConfig, Receiver, Transmitter};
use onoc_ecc::link::NanophotonicLink;
use onoc_ecc::units::{Decibels, Microwatts};
use proptest::prelude::*;

proptest! {
    /// Every Hamming-family scheme corrects any single-bit error in any word.
    #[test]
    fn any_single_bit_error_is_corrected(word in any::<u64>(), flip in 0usize..71) {
        let config = InterfaceConfig::paper_default();
        let tx = Transmitter::new(config.clone());
        let rx = Receiver::new(config);
        for scheme in [EccScheme::Hamming74, EccScheme::Hamming7164] {
            let mut stream = tx.encode_word(word, scheme).unwrap();
            let position = flip % stream.len();
            stream[position] = !stream[position];
            let decoded = rx.decode_stream(&stream, scheme).unwrap();
            prop_assert_eq!(decoded.word, word);
            prop_assert!(decoded.corrected_blocks >= 1);
        }
    }

    /// Encode/decode round-trips for every registered scheme and any word.
    #[test]
    fn clean_round_trip_for_every_scheme(word in any::<u64>()) {
        let config = InterfaceConfig::paper_default();
        let tx = Transmitter::new(config.clone());
        let rx = Receiver::new(config);
        for scheme in EccScheme::all() {
            let stream = tx.encode_word(word, scheme).unwrap();
            prop_assert_eq!(stream.len(), scheme.encoded_bits_per_word(64));
            let decoded = rx.decode_stream(&stream, scheme).unwrap();
            prop_assert_eq!(decoded.word, word);
        }
    }

    /// Block-code geometry invariants hold for every scheme in the registry.
    #[test]
    fn scheme_geometry_invariants(index in 0usize..11) {
        let scheme = EccScheme::all()[index % EccScheme::all().len()];
        let code = scheme.build().unwrap();
        prop_assert_eq!(code.block_length(), scheme.block_length());
        prop_assert_eq!(code.message_length(), scheme.message_length());
        prop_assert!(code.rate() > 0.0 && code.rate() <= 1.0);
        prop_assert!(scheme.communication_time_factor() >= 1.0);
        prop_assert_eq!(code.parity_bits(), scheme.block_length() - scheme.message_length());
    }

    /// erfc_inv is a right inverse of erfc over the BER-relevant range.
    #[test]
    fn erfc_inverse_round_trip(exponent in 1.0f64..14.0) {
        let y = 10f64.powf(-exponent);
        let x = erfc_inv(y);
        let back = erfc(x);
        prop_assert!((back - y).abs() / y < 1e-4);
    }

    /// dB attenuation and gain are mutual inverses and monotone.
    #[test]
    fn decibel_round_trip(db in 0.0f64..40.0, power in 1.0f64..1000.0) {
        let p = Microwatts::new(power);
        let attenuated = p.attenuated_by(Decibels::new(db));
        prop_assert!(attenuated.value() <= p.value() + 1e-12);
        let restored = attenuated.scaled_by(Decibels::new(db).to_gain());
        prop_assert!((restored.value() - p.value()).abs() / p.value() < 1e-9);
    }

    /// Laser power is monotone in the BER target for every feasible scheme,
    /// and coding never needs more laser power than the uncoded link.
    #[test]
    fn coding_never_increases_laser_power(exponent in 3i32..11) {
        let link = NanophotonicLink::paper_link();
        let ber = 10f64.powi(-exponent);
        let uncoded = link.operating_point(EccScheme::Uncoded, ber).unwrap();
        for scheme in [EccScheme::Hamming74, EccScheme::Hamming7164] {
            let coded = link.operating_point(scheme, ber).unwrap();
            prop_assert!(
                coded.laser.laser_electrical_power.value()
                    <= uncoded.laser.laser_electrical_power.value() + 1e-9
            );
        }
    }

    /// Thermal drift penalty: zero at the calibration temperature, and the
    /// residual drift magnitude after tuning is monotone in |ΔT|.
    #[test]
    fn thermal_drift_and_lock_error_properties(dt in 0.0f64..60.0) {
        use onoc_ecc::thermal::{RingThermalModel, ThermalTuner};
        use onoc_ecc::units::{Celsius, KelvinDelta};
        let rings = RingThermalModel::paper_silicon();
        prop_assert!(rings.drift_at(Celsius::new(25.0)).is_zero());
        let hotter = rings.drift_at(Celsius::new(25.0 + dt)).abs().nanometers();
        let even_hotter = rings.drift_at(Celsius::new(25.0 + dt + 1.0)).abs().nanometers();
        prop_assert!(even_hotter > hotter);
        // Cooling drifts symmetrically.
        let cooler = rings.drift_at(Celsius::new(25.0 - dt)).nanometers();
        prop_assert!((cooler + rings.drift_at(Celsius::new(25.0 + dt)).nanometers()).abs() < 1e-12);
        // The tuner's residual and heater power are monotone in the request.
        let tuner = ThermalTuner::paper_heater();
        let a = tuner.compensate(KelvinDelta::new(dt));
        let b = tuner.compensate(KelvinDelta::new(dt + 1.0));
        prop_assert!(b.residual.abs().value() >= a.residual.abs().value());
        prop_assert!(b.heater_power_per_ring.value() >= a.heater_power_per_ring.value());
        prop_assert!(a.residual.abs().value() <= dt + 1e-12);
    }

    /// The memoized operating-point cache is bit-identical to the uncached
    /// solver across schemes × BERs × temperatures: the memoized query snaps
    /// the temperature to its bucket centre and solves there, so an uncached
    /// solve at the snapped temperature must agree exactly (including on
    /// infeasibility).
    #[test]
    fn memoized_cache_is_bit_identical_to_the_solver(
        scheme_index in 0usize..3,
        ber_exponent in 3.0f64..12.0,
        temperature in 25.0f64..85.0,
    ) {
        use onoc_ecc::units::Celsius;
        let link = NanophotonicLink::paper_link();
        let scheme = EccScheme::paper_schemes()[scheme_index];
        let ber = 10f64.powf(-ber_exponent);
        let cached = link.operating_point_memoized(scheme, ber, Celsius::new(temperature));
        let snapped = link.cache_bucket_temperature(Celsius::new(temperature));
        let fresh = link.operating_point_at(scheme, ber, snapped);
        prop_assert_eq!(&cached, &fresh);
        // Asking again answers from the cache, still bit-identically.
        let again = link.operating_point_memoized(scheme, ber, Celsius::new(temperature));
        prop_assert_eq!(&cached, &again);
        prop_assert!(link.cache_counters().hits >= 1);
    }

    /// After the static-power fix a run's energy is zero exactly when its
    /// makespan is zero: an idle interconnect with configured channels burns
    /// laser power for as long as the run lasts, and only a run that never
    /// starts burns nothing.
    #[test]
    fn energy_is_zero_iff_makespan_is_zero(seed in 0u64..1000, messages in 0u64..4) {
        use onoc_ecc::link::TrafficClass;
        use onoc_ecc::sim::traffic::TrafficPattern;
        use onoc_ecc::sim::{Simulation, SimulationConfig};
        let report = Simulation::new(SimulationConfig {
            oni_count: 4,
            pattern: TrafficPattern::UniformRandom { messages_per_node: messages },
            class: TrafficClass::Bulk,
            words_per_message: 4,
            mean_inter_arrival_ns: 2.0,
            seed,
            ..SimulationConfig::default()
        })
        .unwrap()
        .run();
        prop_assert_eq!(report.stats.energy_pj == 0.0, report.stats.makespan_ns == 0.0);
        if messages == 0 {
            prop_assert_eq!(report.stats.energy_pj, 0.0);
        } else {
            prop_assert!(report.stats.energy_pj > 0.0);
            prop_assert!(report.stats.static_energy_pj > 0.0);
            prop_assert!(report.stats.static_energy_pj < report.stats.energy_pj);
        }
    }

    /// The same zero-energy-iff-zero-makespan invariant holds for the
    /// closed-loop feedback engine.
    #[test]
    fn feedback_energy_is_zero_iff_makespan_is_zero(seed in 0u64..1000, messages in 0u64..3) {
        use onoc_ecc::link::TrafficClass;
        use onoc_ecc::sim::traffic::TrafficPattern;
        use onoc_ecc::sim::{FeedbackConfig, FeedbackSimulation, SimulationConfig};
        let report = FeedbackSimulation::new(FeedbackConfig {
            sim: SimulationConfig {
                oni_count: 4,
                pattern: TrafficPattern::UniformRandom { messages_per_node: messages },
                class: TrafficClass::Bulk,
                words_per_message: 4,
                mean_inter_arrival_ns: 2.0,
                seed,
                ..SimulationConfig::default()
            },
            ..FeedbackConfig::default()
        })
        .unwrap()
        .run();
        prop_assert_eq!(report.stats.energy_pj == 0.0, report.stats.makespan_ns == 0.0);
        if messages == 0 {
            prop_assert_eq!(report.stats.energy_pj, 0.0);
        }
    }

    /// σ = 0 regression guard for the per-ring refactor: a link whose stack
    /// carries an explicit zero-variation chip under the pure-heater mode is
    /// bit-identical to the untouched per-bank link for every scheme, BER
    /// and temperature — including on infeasibility.
    #[test]
    fn zero_sigma_per_ring_pipeline_is_bit_identical_to_per_bank(
        scheme_index in 0usize..3,
        ber_exponent in 3.0f64..12.0,
        temperature in 25.0f64..85.0,
        seed in 0u64..1000,
    ) {
        use onoc_ecc::thermal::{BankTuningMode, FabricationVariation};
        use onoc_ecc::units::Celsius;
        let scheme = EccScheme::paper_schemes()[scheme_index];
        let ber = 10f64.powf(-ber_exponent);
        let per_bank = NanophotonicLink::paper_link();
        let per_ring = NanophotonicLink::paper_link()
            .with_fabrication_variation(FabricationVariation::new(0.0, seed))
            .with_bank_tuning_mode(BankTuningMode::PureHeater);
        let a = per_bank.operating_point_at(scheme, ber, Celsius::new(temperature));
        let b = per_ring.operating_point_at(scheme, ber, Celsius::new(temperature));
        prop_assert_eq!(a, b);
    }

    /// Barrel-shift tuning never spends more heater power than pure heating
    /// for the same spectral state: the shift search includes k = 0, which
    /// *is* pure heating.
    #[test]
    fn barrel_shift_tuning_power_never_exceeds_pure_heater(
        sigma_pm in 0.0f64..100.0,
        seed in 0u64..1000,
        dt in -35.0f64..60.0,
    ) {
        use onoc_ecc::thermal::{
            BankTuningMode, FabricationVariation, RingBankState, ThermalTuner,
        };
        use onoc_ecc::units::KelvinDelta;
        let tuner = ThermalTuner::paper_heater();
        let offsets = FabricationVariation::new(sigma_pm * 1e-3, seed).offsets_nm(16);
        let state = RingBankState::new(offsets, KelvinDelta::new(dt));
        let pure = tuner.compensate_bank(&state, 0.8, 0.1, BankTuningMode::PureHeater);
        let barrel =
            tuner.compensate_bank(&state, 0.8, 0.1, BankTuningMode::full_barrel_shift(16));
        prop_assert!(
            barrel.total_heater_power().value() <= pure.total_heater_power().value() + 1e-12
        );
    }

    /// The memoized cache never serves a variation-mismatched operating
    /// point: after swapping the thermal stack for a different chip
    /// instance, every memoized answer equals a fresh solve under the *new*
    /// stack even though the old entries are still in the map.
    #[test]
    fn memoized_cache_never_serves_a_variation_mismatched_point(
        scheme_index in 0usize..3,
        temperature in 25.0f64..85.0,
        seed in 0u64..1000,
    ) {
        use onoc_ecc::thermal::FabricationVariation;
        use onoc_ecc::units::Celsius;
        let scheme = EccScheme::paper_schemes()[scheme_index];
        let t = Celsius::new(temperature);
        let link = NanophotonicLink::paper_link();
        let _ = link.operating_point_memoized(scheme, 1e-11, t);
        let misses_before = link.cache_counters().misses;
        let swapped = link.with_fabrication_variation(FabricationVariation::new(0.04, seed));
        prop_assert!(swapped.cache_counters().entries >= 1, "old entries persist");
        let memoized = swapped.operating_point_memoized(scheme, 1e-11, t);
        // The fingerprint in the key forced a fresh solve (no aliasing)…
        prop_assert_eq!(swapped.cache_counters().misses, misses_before + 1);
        // …and the memoized answer is the new stack's answer, bit for bit.
        let snapped = swapped.cache_bucket_temperature(t);
        let fresh = swapped.operating_point_at(scheme, 1e-11, snapped);
        prop_assert_eq!(&memoized, &fresh);
    }

    /// A hot operating point never beats the calibration-ambient one: the
    /// channel power at 25 + ΔT °C is at least the 25 °C figure, and the
    /// thermal terms appear exactly when ΔT > 0.
    #[test]
    fn heat_never_cheapens_the_link(dt in 0.0f64..60.0) {
        use onoc_ecc::units::Celsius;
        let link = NanophotonicLink::paper_link();
        let cool = link.operating_point(EccScheme::Hamming7164, 1e-11).unwrap();
        if let Ok(hot) = link.operating_point_at(
            EccScheme::Hamming7164,
            1e-11,
            Celsius::new(25.0 + dt),
        ) {
            prop_assert!(hot.channel_power.value() >= cool.channel_power.value() - 1e-9);
            prop_assert!(hot.power.laser.value() >= cool.power.laser.value() - 1e-9);
        } else {
            prop_assert!(false, "H(71,64) must stay feasible across the range");
        }
    }
}
