//! Property-based tests on the cross-crate invariants.

use onoc_ecc::ber::{erfc, erfc_inv};
use onoc_ecc::ecc::EccScheme;
use onoc_ecc::interface::{InterfaceConfig, Receiver, Transmitter};
use onoc_ecc::link::NanophotonicLink;
use onoc_ecc::units::{Decibels, Microwatts};
use proptest::prelude::*;

proptest! {
    /// Every Hamming-family scheme corrects any single-bit error in any word.
    #[test]
    fn any_single_bit_error_is_corrected(word in any::<u64>(), flip in 0usize..71) {
        let config = InterfaceConfig::paper_default();
        let tx = Transmitter::new(config.clone());
        let rx = Receiver::new(config);
        for scheme in [EccScheme::Hamming74, EccScheme::Hamming7164] {
            let mut stream = tx.encode_word(word, scheme).unwrap();
            let position = flip % stream.len();
            stream[position] = !stream[position];
            let decoded = rx.decode_stream(&stream, scheme).unwrap();
            prop_assert_eq!(decoded.word, word);
            prop_assert!(decoded.corrected_blocks >= 1);
        }
    }

    /// Encode/decode round-trips for every registered scheme and any word.
    #[test]
    fn clean_round_trip_for_every_scheme(word in any::<u64>()) {
        let config = InterfaceConfig::paper_default();
        let tx = Transmitter::new(config.clone());
        let rx = Receiver::new(config);
        for scheme in EccScheme::all() {
            let stream = tx.encode_word(word, scheme).unwrap();
            prop_assert_eq!(stream.len(), scheme.encoded_bits_per_word(64));
            let decoded = rx.decode_stream(&stream, scheme).unwrap();
            prop_assert_eq!(decoded.word, word);
        }
    }

    /// Block-code geometry invariants hold for every scheme in the registry.
    #[test]
    fn scheme_geometry_invariants(index in 0usize..11) {
        let scheme = EccScheme::all()[index % EccScheme::all().len()];
        let code = scheme.build().unwrap();
        prop_assert_eq!(code.block_length(), scheme.block_length());
        prop_assert_eq!(code.message_length(), scheme.message_length());
        prop_assert!(code.rate() > 0.0 && code.rate() <= 1.0);
        prop_assert!(scheme.communication_time_factor() >= 1.0);
        prop_assert_eq!(code.parity_bits(), scheme.block_length() - scheme.message_length());
    }

    /// erfc_inv is a right inverse of erfc over the BER-relevant range.
    #[test]
    fn erfc_inverse_round_trip(exponent in 1.0f64..14.0) {
        let y = 10f64.powf(-exponent);
        let x = erfc_inv(y);
        let back = erfc(x);
        prop_assert!((back - y).abs() / y < 1e-4);
    }

    /// dB attenuation and gain are mutual inverses and monotone.
    #[test]
    fn decibel_round_trip(db in 0.0f64..40.0, power in 1.0f64..1000.0) {
        let p = Microwatts::new(power);
        let attenuated = p.attenuated_by(Decibels::new(db));
        prop_assert!(attenuated.value() <= p.value() + 1e-12);
        let restored = attenuated.scaled_by(Decibels::new(db).to_gain());
        prop_assert!((restored.value() - p.value()).abs() / p.value() < 1e-9);
    }

    /// Laser power is monotone in the BER target for every feasible scheme,
    /// and coding never needs more laser power than the uncoded link.
    #[test]
    fn coding_never_increases_laser_power(exponent in 3i32..11) {
        let link = NanophotonicLink::paper_link();
        let ber = 10f64.powi(-exponent);
        let uncoded = link.operating_point(EccScheme::Uncoded, ber).unwrap();
        for scheme in [EccScheme::Hamming74, EccScheme::Hamming7164] {
            let coded = link.operating_point(scheme, ber).unwrap();
            prop_assert!(
                coded.laser.laser_electrical_power.value()
                    <= uncoded.laser.laser_electrical_power.value() + 1e-9
            );
        }
    }

    /// Thermal drift penalty: zero at the calibration temperature, and the
    /// residual drift magnitude after tuning is monotone in |ΔT|.
    #[test]
    fn thermal_drift_and_lock_error_properties(dt in 0.0f64..60.0) {
        use onoc_ecc::thermal::{RingThermalModel, ThermalTuner};
        use onoc_ecc::units::{Celsius, KelvinDelta};
        let rings = RingThermalModel::paper_silicon();
        prop_assert!(rings.drift_at(Celsius::new(25.0)).is_zero());
        let hotter = rings.drift_at(Celsius::new(25.0 + dt)).abs().nanometers();
        let even_hotter = rings.drift_at(Celsius::new(25.0 + dt + 1.0)).abs().nanometers();
        prop_assert!(even_hotter > hotter);
        // Cooling drifts symmetrically.
        let cooler = rings.drift_at(Celsius::new(25.0 - dt)).nanometers();
        prop_assert!((cooler + rings.drift_at(Celsius::new(25.0 + dt)).nanometers()).abs() < 1e-12);
        // The tuner's residual and heater power are monotone in the request.
        let tuner = ThermalTuner::paper_heater();
        let a = tuner.compensate(KelvinDelta::new(dt));
        let b = tuner.compensate(KelvinDelta::new(dt + 1.0));
        prop_assert!(b.residual.abs().value() >= a.residual.abs().value());
        prop_assert!(b.heater_power_per_ring.value() >= a.heater_power_per_ring.value());
        prop_assert!(a.residual.abs().value() <= dt + 1e-12);
    }

    /// A hot operating point never beats the calibration-ambient one: the
    /// channel power at 25 + ΔT °C is at least the 25 °C figure, and the
    /// thermal terms appear exactly when ΔT > 0.
    #[test]
    fn heat_never_cheapens_the_link(dt in 0.0f64..60.0) {
        use onoc_ecc::units::Celsius;
        let link = NanophotonicLink::paper_link();
        let cool = link.operating_point(EccScheme::Hamming7164, 1e-11).unwrap();
        if let Ok(hot) = link.operating_point_at(
            EccScheme::Hamming7164,
            1e-11,
            Celsius::new(25.0 + dt),
        ) {
            prop_assert!(hot.channel_power.value() >= cool.channel_power.value() - 1e-9);
            prop_assert!(hot.power.laser.value() >= cool.power.laser.value() - 1e-9);
        } else {
            prop_assert!(false, "H(71,64) must stay feasible across the range");
        }
    }
}
