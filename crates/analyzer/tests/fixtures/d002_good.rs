// Fixture: D002 negative — simulated time advances deterministically.
pub struct SimClock {
    now_ns: f64,
}

impl SimClock {
    pub fn advance(&mut self, dt_ns: f64) -> f64 {
        self.now_ns += dt_ns;
        self.now_ns
    }

    pub fn instant(&self) -> f64 {
        // Mentioning Instant in a comment or "Instant::now" in a string
        // must not trip the rule.
        let label = "Instant::now";
        let _ = label;
        self.now_ns
    }
}
