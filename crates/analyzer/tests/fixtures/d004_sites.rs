// Fixture: D004 — two countable sites in library code; the unwraps inside
// the `#[cfg(test)]` module must not count.
pub fn first(v: &[u64]) -> u64 {
    *v.first().unwrap()
}

pub fn parsed(text: &str) -> u64 {
    text.parse().expect("caller guarantees digits")
}

pub fn tolerant(text: &str) -> u64 {
    text.parse().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn in_tests_unwrap_is_fine() {
        let v: Vec<u64> = vec![1];
        assert_eq!(*v.first().unwrap(), 1);
        let n: u64 = "7".parse().expect("digits");
        assert_eq!(n, 7);
    }
}
