// Fixture: D002 positives — wall clocks outside the quarantined sites.
use std::time::{Instant, SystemTime};

pub fn timed<T>(f: impl FnOnce() -> T) -> (T, u128) {
    let start = Instant::now();
    let value = f();
    (value, start.elapsed().as_micros())
}

pub fn stamp() -> SystemTime {
    SystemTime::now()
}
