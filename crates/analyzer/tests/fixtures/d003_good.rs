// Fixture: D003 negative — every named field reaches the fingerprint.
pub struct ProbeState {
    pub rings: u64,
    pub tuner: u64,
    pub policy: u64,
}

impl ProbeState {
    pub fn fingerprint(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for v in [self.rings, self.tuner, self.policy] {
            h ^= v;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

// A struct without a fingerprint method is not checked at all.
pub struct Plain {
    pub a: u64,
    pub b: u64,
}
