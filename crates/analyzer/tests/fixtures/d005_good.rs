// Fixture: D005 negative — the referencing module scopes the allow.
#![allow(deprecated)]

#[deprecated(since = "0.1.0", note = "use shiny_new_api")]
pub fn legacy_api() -> u64 {
    41
}

pub fn caller() -> u64 {
    legacy_api() + 1
}
