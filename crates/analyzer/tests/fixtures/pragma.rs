// Fixture: pragma handling — one justified suppression (same line), one
// justified suppression (comment on its own line), one missing a reason.
use std::time::Instant;

pub fn sanctioned() -> Instant {
    Instant::now() // onoc-lint: allow(D002, fixture exercising same-line pragmas)
}

pub fn sanctioned_above() -> Instant {
    // onoc-lint: allow(D002, fixture exercising next-line pragmas)
    Instant::now()
}

pub fn unjustified() -> Instant {
    Instant::now() // onoc-lint: allow(D002)
}
