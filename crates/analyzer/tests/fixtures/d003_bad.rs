// Fixture: D003 positive — `fingerprint` forgets the `tuner` field, so two
// states differing only in `tuner` would alias one cache entry.
pub struct ProbeState {
    pub rings: u64,
    pub tuner: u64,
    pub policy: u64,
}

impl ProbeState {
    pub fn fingerprint(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        h ^= self.rings;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
        h ^= self.policy;
        h.wrapping_mul(0x0000_0100_0000_01b3)
    }
}
