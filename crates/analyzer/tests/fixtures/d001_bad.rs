// Fixture: D001 positives — iterating hash collections in library code.
use std::collections::{HashMap, HashSet};

pub fn sum_values(m: &HashMap<String, u64>) -> u64 {
    let mut sum = 0;
    for (_k, v) in m.iter() {
        sum += v;
    }
    sum
}

pub fn collect_names(set: HashSet<String>) -> Vec<String> {
    let mut out = Vec::new();
    for name in &set {
        out.push(name.clone());
    }
    out
}

pub fn drain_all(cache: &mut HashMap<u64, u64>) {
    cache.drain().for_each(drop);
}
