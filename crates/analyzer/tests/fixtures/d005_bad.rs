// Fixture: D005 positive — a deprecated shim referenced without any scoped
// `allow(deprecated)` in the file.
#[deprecated(since = "0.1.0", note = "use shiny_new_api")]
pub fn legacy_api() -> u64 {
    41
}

pub fn caller() -> u64 {
    legacy_api() + 1
}
