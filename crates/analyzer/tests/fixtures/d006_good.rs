// Fixture: D006 negatives — seeds come from configuration; `env!` (compile
// time) and `env::args` (CLI plumbing) are allowed.
pub fn seeded(seed: u64) -> u64 {
    seed.wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

pub fn manifest_dir() -> &'static str {
    env!("CARGO_MANIFEST_DIR")
}

pub fn first_arg() -> Option<String> {
    std::env::args().nth(1)
}
