// Fixture: D001 negatives — keyed lookup on hash collections is allowed,
// ordered collections may be iterated freely.
use std::collections::{BTreeMap, HashMap};

pub fn lookup(m: &HashMap<String, u64>, key: &str) -> Option<u64> {
    m.get(key).copied()
}

pub fn insert_and_count(m: &mut HashMap<String, u64>) -> usize {
    m.insert("k".to_owned(), 1);
    m.len()
}

pub fn sum_sorted(sorted: &BTreeMap<String, u64>) -> u64 {
    sorted.values().sum()
}
