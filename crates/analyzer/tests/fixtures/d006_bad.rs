// Fixture: D006 positives — ambient process state in deterministic code.
pub fn threads_from_env() -> usize {
    std::env::var("ONOC_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

pub fn ambient_seed() -> u64 {
    let mut rng = rand::thread_rng();
    rng.next_u64()
}
