//! The analyzer's own test suite: per-rule positive/negative fixtures,
//! pragma handling, the tokenizer's tricky corners, ratchet semantics, and
//! the workspace self-scan that pins the repo at zero violations.

use std::fs;
use std::path::{Path, PathBuf};

use onoc_analyzer::rules::{self, FileContext};
use onoc_analyzer::source::{strip, test_mod_ranges, tokenize, Token};
use onoc_analyzer::{run, RatchetMode, RATCHET_FILE};

/// A fixture loaded far enough to build a [`FileContext`].
struct Loaded {
    path: String,
    tokens: Vec<Token>,
    test_ranges: Vec<(usize, usize)>,
}

impl Loaded {
    fn ctx(&self) -> FileContext<'_> {
        FileContext {
            path: &self.path,
            tokens: &self.tokens,
            test_ranges: &self.test_ranges,
            is_src: true,
        }
    }
}

fn fixture(name: &str) -> Loaded {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let text = fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {name}: {e}"));
    let stripped = strip(&text);
    let tokens = tokenize(&stripped.text);
    let test_ranges = test_mod_ranges(&tokens);
    Loaded {
        path: format!("src/{name}"),
        tokens,
        test_ranges,
    }
}

// ---------------------------------------------------------------------------
// Rule fixtures: one positive and one negative case per rule.
// ---------------------------------------------------------------------------

#[test]
fn d001_flags_hash_iteration() {
    let f = fixture("d001_bad.rs");
    let findings = rules::d001(&f.ctx());
    assert_eq!(findings.len(), 3, "{findings:?}");
    assert!(findings.iter().any(|f| f.message.contains(".iter()")));
    assert!(findings.iter().any(|f| f.message.contains("for … in")));
    assert!(findings.iter().any(|f| f.message.contains(".drain()")));
}

#[test]
fn d001_allows_keyed_lookup_and_ordered_iteration() {
    let f = fixture("d001_good.rs");
    assert_eq!(rules::d001(&f.ctx()), vec![], "keyed lookup must pass");
}

#[test]
fn d002_flags_wall_clocks() {
    let f = fixture("d002_bad.rs");
    let findings = rules::d002(&f.ctx());
    // One `Instant::now` call plus every mention of `SystemTime` (import,
    // return type, constructor) — the type itself is the hazard.
    assert_eq!(findings.len(), 4, "{findings:?}");
    assert!(findings.iter().any(|f| f.message.contains("Instant::now")));
    assert!(findings.iter().any(|f| f.message.contains("SystemTime")));
}

#[test]
fn d002_ignores_clock_names_in_comments_and_strings() {
    let f = fixture("d002_good.rs");
    assert_eq!(rules::d002(&f.ctx()), vec![]);
}

#[test]
fn d003_flags_unfingerprinted_field() {
    let f = fixture("d003_bad.rs");
    let findings = rules::d003(&f.ctx());
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert!(findings[0].message.contains("`tuner`"));
    assert!(findings[0].message.contains("ProbeState"));
}

#[test]
fn d003_accepts_full_coverage_and_skips_fingerprintless_structs() {
    let f = fixture("d003_good.rs");
    assert_eq!(rules::d003(&f.ctx()), vec![]);
}

#[test]
fn d004_counts_library_sites_but_not_test_modules() {
    let f = fixture("d004_sites.rs");
    let sites = rules::d004_sites(&f.ctx());
    assert_eq!(sites.len(), 2, "{sites:?}");
    assert!(sites.iter().any(|s| s.message.contains(".unwrap()")));
    assert!(sites.iter().any(|s| s.message.contains(".expect()")));
}

#[test]
fn d005_flags_unscoped_deprecated_references() {
    let f = fixture("d005_bad.rs");
    let defs = rules::deprecated_definitions(&f.tokens);
    assert_eq!(defs.len(), 1, "{defs:?}");
    assert_eq!(defs[0].0, "legacy_api");
    let map =
        std::collections::BTreeMap::from([("legacy_api".to_owned(), "src/d005_bad.rs".to_owned())]);
    let findings = rules::d005(&f.ctx(), &map, &defs);
    assert_eq!(findings.len(), 1, "definition line is exempt: {findings:?}");
    assert!(findings[0].message.contains("legacy_api"));
}

#[test]
fn d005_accepts_scoped_allow() {
    let f = fixture("d005_good.rs");
    let defs = rules::deprecated_definitions(&f.tokens);
    let map = std::collections::BTreeMap::from([(
        "legacy_api".to_owned(),
        "src/d005_good.rs".to_owned(),
    )]);
    assert_eq!(rules::d005(&f.ctx(), &map, &defs), vec![]);
}

#[test]
fn d006_flags_env_reads_and_ambient_randomness() {
    let f = fixture("d006_bad.rs");
    let findings = rules::d006(&f.ctx());
    assert_eq!(findings.len(), 2, "{findings:?}");
    assert!(findings.iter().any(|f| f.message.contains("env::var")));
    assert!(findings.iter().any(|f| f.message.contains("thread_rng")));
}

#[test]
fn d006_allows_env_macro_and_cli_args() {
    let f = fixture("d006_good.rs");
    assert_eq!(rules::d006(&f.ctx()), vec![]);
}

// ---------------------------------------------------------------------------
// Tokenizer corners.
// ---------------------------------------------------------------------------

#[test]
fn stripper_handles_nested_comments_strings_and_lifetimes() {
    let source = r##"
/* outer /* nested */ still comment */ pub fn f<'a>(x: &'a str) -> char {
    let s = "Instant::now \" escaped";
    let raw = r#"SystemTime"#;
    let c = 'x';
    let esc = '\n';
    let _ = (s, raw, esc);
    c
}
"##;
    let stripped = strip(source);
    assert_eq!(
        stripped.text.lines().count(),
        source.lines().count(),
        "line structure must survive stripping"
    );
    let tokens = tokenize(&stripped.text);
    let idents: Vec<&str> = tokens
        .iter()
        .filter(|t| t.is_ident())
        .map(|t| t.text.as_str())
        .collect();
    assert!(!idents.contains(&"Instant"), "string content must vanish");
    assert!(!idents.contains(&"SystemTime"), "raw strings must vanish");
    assert!(!idents.contains(&"nested"), "comments must vanish");
    assert!(idents.contains(&"a"), "lifetimes survive as idents");
}

#[test]
fn pragma_parsing_targets_same_and_next_line() {
    let source = "\
let a = 1; // onoc-lint: allow(D001, same line)
// onoc-lint: allow(D002, next line)
let b = 2;
// onoc-lint: allow(D003)
let c = 3;
";
    let stripped = strip(source);
    assert_eq!(stripped.pragmas.len(), 3);
    let p1 = &stripped.pragmas[0];
    assert_eq!((p1.rule.as_str(), p1.target_line), ("D001", 1));
    assert_eq!(p1.reason, "same line");
    let p2 = &stripped.pragmas[1];
    assert_eq!((p2.rule.as_str(), p2.target_line), ("D002", 3));
    assert!(!p2.missing_reason);
    let p3 = &stripped.pragmas[2];
    assert!(p3.missing_reason, "reasonless pragma must be marked");
}

// ---------------------------------------------------------------------------
// Whole-workspace runs over synthetic mini-workspaces.
// ---------------------------------------------------------------------------

/// Builds a disposable `[workspace]` directory from `(path, contents)` pairs.
fn mini_workspace(tag: &str, files: &[(&str, &str)]) -> PathBuf {
    let root = std::env::temp_dir().join(format!("onoc-lint-{tag}-{}", std::process::id()));
    if root.exists() {
        fs::remove_dir_all(&root).expect("clear stale mini workspace");
    }
    fs::create_dir_all(root.join("src")).expect("mini workspace src/");
    fs::write(root.join("Cargo.toml"), "[workspace]\nmembers = []\n").expect("manifest");
    for (rel, contents) in files {
        let path = root.join(rel);
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent).expect("fixture dirs");
        }
        fs::write(path, contents).expect("fixture file");
    }
    root
}

#[test]
fn pragmas_suppress_with_reason_and_fail_without() {
    let fixture_text =
        fs::read_to_string(Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/pragma.rs"))
            .expect("pragma fixture");
    let root = mini_workspace(
        "pragma",
        &[
            ("src/lib.rs", fixture_text.as_str()),
            (RATCHET_FILE, "[D004]\nunwrap_expect_sites = 0\n"),
        ],
    );
    let outcome = run(&root, RatchetMode::Enforce).expect("scan");
    assert_eq!(outcome.suppressions.len(), 2, "{:?}", outcome.suppressions);
    assert!(outcome.suppressions.iter().all(|s| !s.reason.is_empty()));
    // The reasonless pragma yields two violations: the unsuppressed finding
    // and the malformed pragma itself.
    assert_eq!(outcome.violations.len(), 2, "{:?}", outcome.violations);
    assert!(outcome
        .violations
        .iter()
        .any(|v| v.message.contains("no reason")));
    fs::remove_dir_all(&root).ok();
}

#[test]
fn deliberate_d001_and_d003_violations_fail_the_scan() {
    let scratch = "\
use std::collections::HashMap;

pub struct Probe {
    pub a: u64,
    pub b: u64,
}

impl Probe {
    pub fn fingerprint(&self) -> u64 {
        self.a
    }
}

pub fn leak_order(m: &HashMap<u64, u64>) -> Vec<u64> {
    m.keys().copied().collect()
}
";
    let root = mini_workspace(
        "scratch",
        &[
            ("src/scratch.rs", scratch),
            (RATCHET_FILE, "[D004]\nunwrap_expect_sites = 0\n"),
        ],
    );
    let outcome = run(&root, RatchetMode::Enforce).expect("scan");
    assert!(!outcome.is_clean());
    assert_eq!(outcome.rule_count("D001"), 1, "{:?}", outcome.violations);
    assert_eq!(outcome.rule_count("D003"), 1, "{:?}", outcome.violations);
    fs::remove_dir_all(&root).ok();
}

#[test]
fn ratchet_regression_and_staleness_are_both_violations() {
    let noisy = "pub fn f(v: &[u64]) -> u64 { *v.first().unwrap() }\n";
    for (recorded, fragment) in [(0u64, "regressed"), (5u64, "stale ratchet")] {
        let root = mini_workspace(
            &format!("ratchet-{recorded}"),
            &[
                ("src/lib.rs", noisy),
                (
                    RATCHET_FILE,
                    format!("[D004]\nunwrap_expect_sites = {recorded}\n").as_str(),
                ),
            ],
        );
        let outcome = run(&root, RatchetMode::Enforce).expect("scan");
        assert_eq!(outcome.d004_sites, 1);
        assert_eq!(outcome.rule_count("D004"), 1, "{:?}", outcome.violations);
        assert!(
            outcome.violations[0].message.contains(fragment),
            "recorded={recorded}: {:?}",
            outcome.violations
        );
        fs::remove_dir_all(&root).ok();
    }
}

#[test]
fn update_mode_banks_the_scanned_count() {
    let noisy = "pub fn f(v: &[u64]) -> u64 { *v.first().unwrap() }\n";
    let root = mini_workspace("bank", &[("src/lib.rs", noisy)]);
    let outcome = run(&root, RatchetMode::Update).expect("scan");
    assert!(outcome.is_clean(), "{:?}", outcome.violations);
    assert_eq!(outcome.d004_recorded, Some(1));
    let banked = fs::read_to_string(root.join(RATCHET_FILE)).expect("banked ratchet");
    assert!(banked.contains("unwrap_expect_sites = 1"));
    fs::remove_dir_all(&root).ok();
}

// ---------------------------------------------------------------------------
// The workspace self-scan: the whole repo is pinned at zero violations.
// ---------------------------------------------------------------------------

#[test]
fn workspace_self_scan_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root");
    let outcome = run(&root, RatchetMode::Enforce).expect("self-scan");
    assert!(
        outcome.is_clean(),
        "workspace must scan clean:\n{}",
        outcome
            .violations
            .iter()
            .map(onoc_analyzer::Violation::render)
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        outcome.files_scanned > 100,
        "walker lost the workspace: {} files",
        outcome.files_scanned
    );
    // The sanctioned wall-clock sites (shard telemetry plus the five
    // quarantined bench timers) ride on justified pragmas.
    assert_eq!(outcome.suppression_count("D002"), 6);
    assert_eq!(outcome.d004_recorded, Some(outcome.d004_sites as u64));
}
