//! Machine-readable outputs: the JSON violation report, the deterministic
//! `onoc-telemetry` summary document, and the `lint-ratchet.toml` format.

use onoc_telemetry::{Json, MetricsRegistry};

use crate::{LintOutcome, RULES};

/// The full scan as a JSON document (`onoc-lint-report/v1`).
///
/// Field order is fixed and every collection is pre-sorted, so the rendered
/// text is byte-identical for identical scans.
#[must_use]
pub fn report_json(outcome: &LintOutcome) -> Json {
    let rules = RULES
        .iter()
        .map(|(id, summary)| {
            (
                (*id).to_owned(),
                Json::obj(vec![
                    ("summary", Json::from(*summary)),
                    ("violations", Json::from(outcome.rule_count(id))),
                    ("suppressions", Json::from(outcome.suppression_count(id))),
                ]),
            )
        })
        .collect();
    let violations = outcome
        .violations
        .iter()
        .map(|v| {
            Json::obj(vec![
                ("rule", Json::from(v.rule.as_str())),
                ("file", Json::from(v.file.as_str())),
                ("line", Json::from(v.line)),
                ("message", Json::from(v.message.as_str())),
            ])
        })
        .collect();
    let suppressions = outcome
        .suppressions
        .iter()
        .map(|s| {
            Json::obj(vec![
                ("rule", Json::from(s.rule.as_str())),
                ("file", Json::from(s.file.as_str())),
                ("line", Json::from(s.line)),
                ("reason", Json::from(s.reason.as_str())),
            ])
        })
        .collect();
    Json::obj(vec![
        ("schema", Json::from("onoc-lint-report/v1")),
        ("files_scanned", Json::from(outcome.files_scanned)),
        ("total_violations", Json::from(outcome.violations.len())),
        ("total_suppressions", Json::from(outcome.suppressions.len())),
        ("rules", Json::Obj(rules)),
        ("ratchet", ratchet_json(outcome)),
        ("violations", Json::Arr(violations)),
        ("suppressions", Json::Arr(suppressions)),
    ])
}

/// The lint summary as a deterministic `onoc-telemetry` metrics document
/// (`onoc-lint-telemetry/v1`), shaped like the other trended artifacts
/// (`BENCH_scaling.json`) so future PRs can plot rule counts and the
/// ratchet delta over time.
#[must_use]
pub fn telemetry_json(outcome: &LintOutcome) -> Json {
    let metrics = MetricsRegistry::new();
    metrics.add("lint.files_scanned", outcome.files_scanned as u64);
    metrics.add("lint.violations.total", outcome.violations.len() as u64);
    metrics.add("lint.suppressions.total", outcome.suppressions.len() as u64);
    metrics.add("lint.d004.sites", outcome.d004_sites as u64);
    for (id, _) in RULES {
        metrics.add(
            &format!("lint.rule.{id}.violations"),
            outcome.rule_count(id) as u64,
        );
        metrics.add(
            &format!("lint.rule.{id}.suppressions"),
            outcome.suppression_count(id) as u64,
        );
    }
    Json::obj(vec![
        ("schema", Json::from("onoc-lint-telemetry/v1")),
        ("metrics", metrics.snapshot().to_json()),
        ("ratchet", ratchet_json(outcome)),
    ])
}

/// The D004 ratchet comparison as a JSON object.
fn ratchet_json(outcome: &LintOutcome) -> Json {
    let recorded = outcome
        .d004_recorded
        .map_or(Json::Null, |r| Json::from(r as usize));
    let delta = outcome.d004_recorded.map_or(Json::Null, |r| {
        Json::Num(outcome.d004_sites as f64 - r as f64)
    });
    Json::obj(vec![
        ("rule", Json::from("D004")),
        ("scanned", Json::from(outcome.d004_sites)),
        ("recorded", recorded),
        ("delta", delta),
    ])
}

/// Renders `lint-ratchet.toml` for a scanned site count.
#[must_use]
pub fn ratchet_file_contents(sites: usize) -> String {
    format!(
        "# Managed by `cargo run -p onoc-analyzer --bin onoc-lint -- --update-ratchet`.\n\
         # D004: unsuppressed `.unwrap()` / `.expect()` sites in non-test library\n\
         # code.  The count may only go down; CI fails if the scan disagrees in\n\
         # either direction.\n\
         \n\
         [D004]\n\
         unwrap_expect_sites = {sites}\n"
    )
}

/// Extracts `unwrap_expect_sites` from ratchet-file text.
#[must_use]
pub fn parse_ratchet(text: &str) -> Option<u64> {
    let mut in_d004 = false;
    for line in text.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_d004 = line == "[D004]";
            continue;
        }
        if in_d004 {
            if let Some(value) = line.strip_prefix("unwrap_expect_sites") {
                return value.trim_start().strip_prefix('=')?.trim().parse().ok();
            }
        }
    }
    None
}
