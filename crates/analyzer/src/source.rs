//! Lossless-enough lexing of Rust source for lint purposes.
//!
//! The container has no crates.io access, so there is no `syn` here: this
//! module strips comments, strings, and char literals by hand (replacing
//! their content with spaces so line numbers survive), extracts
//! `// onoc-lint: allow(...)` pragmas while doing so, and then cuts the
//! remainder into a flat token stream of identifiers and punctuation.
//! That is deliberately much less than a parser — every rule in
//! [`crate::rules`] is written against token patterns that survive this
//! approximation.

/// One `// onoc-lint: allow(RULE, reason)` pragma found in a file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pragma {
    /// Rule id, e.g. `"D002"`.
    pub rule: String,
    /// Mandatory free-text justification (everything after the first comma).
    pub reason: String,
    /// 1-based line the comment itself sits on.
    pub comment_line: usize,
    /// 1-based line the pragma suppresses: the comment's own line when code
    /// precedes the comment, otherwise the next non-blank line.
    pub target_line: usize,
    /// True when the reason clause was missing or empty (itself a violation).
    pub missing_reason: bool,
}

/// A file after comment/string stripping.
#[derive(Debug)]
pub struct StrippedFile {
    /// Source text with comment and literal *content* replaced by spaces;
    /// same byte length per line, same line count as the original.
    pub text: String,
    /// All pragmas, in file order.
    pub pragmas: Vec<Pragma>,
}

/// One lexical token of the stripped source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Identifier text or punctuation (multi-char operators that matter to
    /// the rules — `::` — are fused; everything else is one char).
    pub text: String,
    /// 1-based line number.
    pub line: usize,
}

impl Token {
    fn new(text: impl Into<String>, line: usize) -> Self {
        Self {
            text: text.into(),
            line,
        }
    }

    /// True when the token is an identifier (starts with a letter/underscore).
    #[must_use]
    pub fn is_ident(&self) -> bool {
        self.text
            .chars()
            .next()
            .is_some_and(|c| c.is_alphabetic() || c == '_')
    }
}

/// Strips comments, strings, and char literals, harvesting pragmas.
///
/// The output keeps every newline of the input so that token line numbers
/// and `#[cfg(test)]` region tracking agree with the original file.
#[must_use]
pub fn strip(source: &str) -> StrippedFile {
    let bytes = source.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut pragmas = Vec::new();
    let mut line = 1usize;
    // Does the current line contain any non-whitespace output (code) so far?
    let mut code_on_line = false;
    // Pragmas found on comment-only lines, waiting for the next code line.
    let mut pending: Vec<(String, String, usize, bool)> = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i];
        if c == b'\n' {
            out.push(b'\n');
            line += 1;
            code_on_line = false;
            i += 1;
            continue;
        }
        if c == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
            // Line comment: scan it for a pragma, blank it out.
            let end = bytes[i..]
                .iter()
                .position(|&b| b == b'\n')
                .map_or(bytes.len(), |p| i + p);
            let body = &source[i + 2..end];
            if let Some((rule, reason, missing)) = parse_pragma(body) {
                if code_on_line {
                    pragmas.push(Pragma {
                        rule,
                        reason,
                        comment_line: line,
                        target_line: line,
                        missing_reason: missing,
                    });
                } else {
                    pending.push((rule, reason, line, missing));
                }
            }
            out.extend(std::iter::repeat_n(b' ', end - i));
            i = end;
            continue;
        }
        if c == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
            // Block comment, possibly nested; newlines inside are preserved.
            let mut depth = 1usize;
            out.extend_from_slice(b"  ");
            i += 2;
            while i < bytes.len() && depth > 0 {
                if bytes[i] == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
                    depth += 1;
                    out.extend_from_slice(b"  ");
                    i += 2;
                } else if bytes[i] == b'*' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
                    depth -= 1;
                    out.extend_from_slice(b"  ");
                    i += 2;
                } else if bytes[i] == b'\n' {
                    out.push(b'\n');
                    line += 1;
                    code_on_line = false;
                    i += 1;
                } else {
                    out.push(b' ');
                    i += 1;
                }
            }
            continue;
        }
        if c == b'"' || (c == b'b' && i + 1 < bytes.len() && bytes[i + 1] == b'"') {
            // String / byte-string literal.
            if c == b'b' {
                out.push(b' ');
                i += 1;
            }
            out.push(b'"');
            i += 1;
            while i < bytes.len() {
                match bytes[i] {
                    b'\\' if i + 1 < bytes.len() => {
                        out.extend_from_slice(b"  ");
                        i += 2;
                    }
                    b'"' => {
                        out.push(b'"');
                        i += 1;
                        break;
                    }
                    b'\n' => {
                        out.push(b'\n');
                        line += 1;
                        i += 1;
                    }
                    _ => {
                        out.push(b' ');
                        i += 1;
                    }
                }
            }
            code_on_line = true;
            continue;
        }
        if let Some(hashes) = (c == b'r')
            .then(|| raw_string_hashes(&bytes[i..]))
            .flatten()
        {
            // Raw string literal r"..." / r#"..."# (any hash count).
            out.push(b' ');
            out.extend(std::iter::repeat_n(b' ', hashes));
            out.push(b'"');
            i += 1 + hashes + 1;
            let closer: Vec<u8> = std::iter::once(b'"')
                .chain(std::iter::repeat_n(b'#', hashes))
                .collect();
            while i < bytes.len() {
                if bytes[i..].starts_with(&closer) {
                    out.push(b'"');
                    out.extend(std::iter::repeat_n(b' ', hashes));
                    i += closer.len();
                    break;
                }
                if bytes[i] == b'\n' {
                    out.push(b'\n');
                    line += 1;
                } else {
                    out.push(b' ');
                }
                i += 1;
            }
            code_on_line = true;
            continue;
        }
        if c == b'\'' {
            // Either a char literal or a lifetime. A lifetime is `'` followed
            // by an identifier NOT closed by another `'`.
            let next = bytes.get(i + 1).copied();
            let is_char = match next {
                Some(b'\\') => true,
                Some(n) if n != b'\'' => bytes.get(i + 2) == Some(&b'\''),
                _ => false,
            };
            if is_char {
                out.push(b'\'');
                i += 1;
                while i < bytes.len() {
                    match bytes[i] {
                        b'\\' if i + 1 < bytes.len() => {
                            out.extend_from_slice(b"  ");
                            i += 2;
                        }
                        b'\'' => {
                            out.push(b'\'');
                            i += 1;
                            break;
                        }
                        _ => {
                            out.push(b' ');
                            i += 1;
                        }
                    }
                }
                code_on_line = true;
                continue;
            }
        }
        if !c.is_ascii_whitespace() {
            code_on_line = true;
            // First code on the line: any pending comment-line pragmas now
            // know their target.
            for (rule, reason, comment_line, missing) in pending.drain(..) {
                pragmas.push(Pragma {
                    rule,
                    reason,
                    comment_line,
                    target_line: line,
                    missing_reason: missing,
                });
            }
        }
        out.push(c);
        i += 1;
    }
    // Dangling pragmas at EOF target their own line (nothing to suppress).
    for (rule, reason, comment_line, missing) in pending.drain(..) {
        pragmas.push(Pragma {
            rule,
            reason,
            comment_line,
            target_line: comment_line,
            missing_reason: missing,
        });
    }
    // Stripping replaces bytes one-for-one with ASCII or keeps them verbatim,
    // so the output is valid UTF-8 whenever the input was; `from_utf8_lossy`
    // makes that panic-free either way.
    StrippedFile {
        text: String::from_utf8_lossy(&out).into_owned(),
        pragmas,
    }
}

/// `r"` / `r#"` / `r##"` … prefix detector; returns the hash count.
fn raw_string_hashes(bytes: &[u8]) -> Option<usize> {
    if bytes.first() != Some(&b'r') {
        return None;
    }
    let mut hashes = 0usize;
    while bytes.get(1 + hashes) == Some(&b'#') {
        hashes += 1;
    }
    (bytes.get(1 + hashes) == Some(&b'"')).then_some(hashes)
}

/// Parses `onoc-lint: allow(D00x, reason…)` out of a line-comment body.
fn parse_pragma(comment_body: &str) -> Option<(String, String, bool)> {
    let rest = comment_body.trim().strip_prefix("onoc-lint:")?.trim();
    let inner = rest.strip_prefix("allow(")?.strip_suffix(')')?;
    let (rule, reason) = match inner.split_once(',') {
        Some((r, why)) => (r.trim(), why.trim()),
        None => (inner.trim(), ""),
    };
    if rule.is_empty() {
        return None;
    }
    Some((rule.to_owned(), reason.to_owned(), reason.is_empty()))
}

/// Tokenizes stripped source into identifiers and punctuation.
///
/// String/char literals (now hollow) come through as `"` / `'` punctuation
/// tokens; numbers come through as identifiers-of-digits which no rule
/// matches. `::` is fused because path matching needs it.
#[must_use]
pub fn tokenize(stripped: &str) -> Vec<Token> {
    let bytes = stripped.as_bytes();
    let mut tokens = Vec::new();
    let mut line = 1usize;
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i];
        if c == b'\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        if c.is_ascii_alphanumeric() || c == b'_' {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            tokens.push(Token::new(&stripped[start..i], line));
            continue;
        }
        if c == b':' && bytes.get(i + 1) == Some(&b':') {
            tokens.push(Token::new("::", line));
            i += 2;
            continue;
        }
        tokens.push(Token::new((c as char).to_string(), line));
        i += 1;
    }
    tokens
}

/// Line-number ranges (1-based, inclusive) covered by `#[cfg(test)] mod`
/// items, found by brace matching on the token stream.
#[must_use]
pub fn test_mod_ranges(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        // Match `# [ cfg ( test ) ]` possibly with extra attribute args.
        if tokens[i].text == "#" && tokens.get(i + 1).is_some_and(|t| t.text == "[") {
            let mut j = i + 2;
            let mut is_cfg_test = false;
            // Walk to the closing `]` of this attribute.
            let mut depth = 1usize;
            let attr_start = j;
            while j < tokens.len() && depth > 0 {
                match tokens[j].text.as_str() {
                    "[" => depth += 1,
                    "]" => depth -= 1,
                    _ => {}
                }
                j += 1;
            }
            let attr = &tokens[attr_start..j.saturating_sub(1)];
            if attr.len() >= 4
                && attr[0].text == "cfg"
                && attr[1].text == "("
                && attr.iter().any(|t| t.text == "test")
            {
                is_cfg_test = true;
            }
            if is_cfg_test {
                // Skip further attributes, then expect `mod name {`.
                let mut k = j;
                while tokens.get(k).is_some_and(|t| t.text == "#")
                    && tokens.get(k + 1).is_some_and(|t| t.text == "[")
                {
                    let mut d = 1usize;
                    k += 2;
                    while k < tokens.len() && d > 0 {
                        match tokens[k].text.as_str() {
                            "[" => d += 1,
                            "]" => d -= 1,
                            _ => {}
                        }
                        k += 1;
                    }
                }
                let is_mod = tokens.get(k).is_some_and(|t| t.text == "mod")
                    || (tokens.get(k).is_some_and(|t| t.text == "pub")
                        && tokens.get(k + 1).is_some_and(|t| t.text == "mod"));
                if is_mod {
                    // Find the opening brace, then its match.
                    let mut b = k;
                    while b < tokens.len() && tokens[b].text != "{" && tokens[b].text != ";" {
                        b += 1;
                    }
                    if b < tokens.len() && tokens[b].text == "{" {
                        let start_line = tokens[i].line;
                        let mut d = 1usize;
                        let mut e = b + 1;
                        while e < tokens.len() && d > 0 {
                            match tokens[e].text.as_str() {
                                "{" => d += 1,
                                "}" => d -= 1,
                                _ => {}
                            }
                            e += 1;
                        }
                        let end_line = tokens
                            .get(e.saturating_sub(1))
                            .map_or(start_line, |t| t.line);
                        ranges.push((start_line, end_line));
                        i = e;
                        continue;
                    }
                }
            }
        }
        i += 1;
    }
    ranges
}

/// True when `line` falls inside any of the (inclusive) ranges.
#[must_use]
pub fn in_ranges(ranges: &[(usize, usize)], line: usize) -> bool {
    ranges.iter().any(|&(a, b)| line >= a && line <= b)
}
