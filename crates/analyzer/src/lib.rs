//! `onoc-lint`: determinism & cache-safety static analysis for the
//! workspace.
//!
//! The repo's value proposition is that every figure and `RunReport` is
//! bit-identical across thread counts and reruns.  The invariants that make
//! that true used to live only in reviewers' heads; this crate turns them
//! into six machine-checked rules:
//!
//! | Rule | Invariant |
//! |------|-----------|
//! | D001 | no iteration over `HashMap`/`HashSet` in deterministic library code |
//! | D002 | wall clocks (`Instant::now`, `SystemTime`) only at quarantined sites |
//! | D003 | `fingerprint()` bodies mention every field of their struct |
//! | D004 | `unwrap()`/`expect()` count in library code ratchets downward |
//! | D005 | deprecated shims referenced only under `allow(deprecated)` |
//! | D006 | no `std::env` reads or ambient randomness in deterministic code |
//!
//! There is deliberately no `syn` (the build environment has no crates.io
//! access): [`source`] hand-rolls a comment/string-stripping tokenizer and
//! [`rules`] matches token patterns.  False positives are silenced inline
//! with `// onoc-lint: allow(D00x, reason)` — the reason is mandatory.

pub mod report;
pub mod rules;
pub mod source;

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use rules::FileContext;
use source::{strip, test_mod_ranges, tokenize, Pragma};

/// Rule ids with their one-line summaries, in report order.
pub const RULES: &[(&str, &str)] = &[
    ("D001", "no HashMap/HashSet iteration in deterministic code"),
    ("D002", "wall clocks confined to quarantined sites"),
    ("D003", "fingerprint() must cover every struct field"),
    ("D004", "unwrap()/expect() ratchet in library code"),
    ("D005", "deprecated shims need scoped allow(deprecated)"),
    (
        "D006",
        "no std::env or ambient randomness in deterministic code",
    ),
];

/// Name of the checked-in ratchet file at the workspace root.
pub const RATCHET_FILE: &str = "lint-ratchet.toml";

/// One reported violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Rule id.
    pub rule: String,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Description.
    pub message: String,
}

impl Violation {
    /// The `file:line: RULE message` form printed to stderr.
    #[must_use]
    pub fn render(&self) -> String {
        format!(
            "{}:{}: {} {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// One finding silenced by a justified pragma.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppression {
    /// Rule id.
    pub rule: String,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line of the suppressed finding.
    pub line: usize,
    /// The pragma's justification text.
    pub reason: String,
}

/// The result of a full workspace scan.
#[derive(Debug, Default)]
pub struct LintOutcome {
    /// Violations, sorted by (file, line, rule).
    pub violations: Vec<Violation>,
    /// Pragma-silenced findings, sorted the same way.
    pub suppressions: Vec<Suppression>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Unsuppressed `.unwrap()`/`.expect()` sites in library code.
    pub d004_sites: usize,
    /// The count recorded in `lint-ratchet.toml`, when the file exists.
    pub d004_recorded: Option<u64>,
}

impl LintOutcome {
    /// True when the scan found nothing.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Violations attributed to `rule`.
    #[must_use]
    pub fn rule_count(&self, rule: &str) -> usize {
        self.violations.iter().filter(|v| v.rule == rule).count()
    }

    /// Suppressions attributed to `rule`.
    #[must_use]
    pub fn suppression_count(&self, rule: &str) -> usize {
        self.suppressions.iter().filter(|s| s.rule == rule).count()
    }
}

/// How [`run`] treats the D004 ratchet file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RatchetMode {
    /// Compare the scan against `lint-ratchet.toml`; mismatch is a violation.
    Enforce,
    /// Rewrite `lint-ratchet.toml` with the scanned count.
    Update,
}

/// All workspace `.rs` files under `root`, sorted, skipping build output,
/// VCS metadata, the offline compat stand-ins, and lint test fixtures.
///
/// # Errors
///
/// Propagates directory-walk I/O failures.
pub fn workspace_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if entry.file_type()?.is_dir() {
                if matches!(name.as_ref(), "target" | ".git" | "compat" | "fixtures") {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

struct ScannedFile {
    rel: String,
    tokens: Vec<source::Token>,
    test_ranges: Vec<(usize, usize)>,
    pragmas: Vec<Pragma>,
    is_src: bool,
}

/// Runs all six rules over the workspace rooted at `root`.
///
/// # Errors
///
/// Propagates I/O failures reading sources or writing the ratchet file.
pub fn run(root: &Path, ratchet: RatchetMode) -> io::Result<LintOutcome> {
    let mut scanned = Vec::new();
    for path in workspace_files(root)? {
        let text = fs::read_to_string(&path)?;
        let stripped = strip(&text);
        let tokens = tokenize(&stripped.text);
        let test_ranges = test_mod_ranges(&tokens);
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let is_src = rel.starts_with("src/") || rel.contains("/src/");
        scanned.push(ScannedFile {
            rel,
            tokens,
            test_ranges,
            pragmas: stripped.pragmas,
            is_src,
        });
    }

    // Workspace-wide pass: where every deprecated item lives.
    let mut deprecated: BTreeMap<String, String> = BTreeMap::new();
    let mut own_defs: Vec<Vec<(String, usize)>> = Vec::with_capacity(scanned.len());
    for file in &scanned {
        let defs = rules::deprecated_definitions(&file.tokens);
        for (name, _) in &defs {
            deprecated.insert(name.clone(), file.rel.clone());
        }
        own_defs.push(defs);
    }

    let mut outcome = LintOutcome {
        files_scanned: scanned.len(),
        ..LintOutcome::default()
    };
    for (file, defs) in scanned.iter().zip(&own_defs) {
        let ctx = FileContext {
            path: &file.rel,
            tokens: &file.tokens,
            test_ranges: &file.test_ranges,
            is_src: file.is_src,
        };
        let mut findings = Vec::new();
        findings.extend(rules::d001(&ctx));
        findings.extend(rules::d002(&ctx));
        findings.extend(rules::d003(&ctx));
        findings.extend(rules::d005(&ctx, &deprecated, defs));
        findings.extend(rules::d006(&ctx));
        for f in findings {
            match pragma_for(&file.pragmas, f.rule, f.line) {
                Some(p) if !p.missing_reason => outcome.suppressions.push(Suppression {
                    rule: f.rule.to_owned(),
                    file: file.rel.clone(),
                    line: f.line,
                    reason: p.reason.clone(),
                }),
                _ => outcome.violations.push(Violation {
                    rule: f.rule.to_owned(),
                    file: file.rel.clone(),
                    line: f.line,
                    message: f.message,
                }),
            }
        }
        // D004 sites are tallied, not reported individually.
        for site in rules::d004_sites(&ctx) {
            match pragma_for(&file.pragmas, site.rule, site.line) {
                Some(p) if !p.missing_reason => outcome.suppressions.push(Suppression {
                    rule: site.rule.to_owned(),
                    file: file.rel.clone(),
                    line: site.line,
                    reason: p.reason.clone(),
                }),
                _ => outcome.d004_sites += 1,
            }
        }
        // A pragma without a justification is itself a violation — every
        // suppression must carry a reason.
        for p in &file.pragmas {
            if p.missing_reason {
                outcome.violations.push(Violation {
                    rule: p.rule.clone(),
                    file: file.rel.clone(),
                    line: p.comment_line,
                    message: format!(
                        "`onoc-lint: allow({})` pragma has no reason; write \
                         `allow({}, why this is sound)`",
                        p.rule, p.rule
                    ),
                });
            }
        }
    }

    apply_ratchet(root, ratchet, &mut outcome)?;
    outcome
        .violations
        .sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
    outcome
        .suppressions
        .sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
    Ok(outcome)
}

/// The pragma (if any) that targets `rule` on `line`.
fn pragma_for<'a>(pragmas: &'a [Pragma], rule: &str, line: usize) -> Option<&'a Pragma> {
    pragmas
        .iter()
        .find(|p| p.rule == rule && (p.target_line == line || p.comment_line == line))
}

/// Compares the D004 tally against `lint-ratchet.toml` (or rewrites it).
///
/// The comparison is exact in both directions: a count above the ratchet is
/// a regression, a count below it is a stale ratchet — CI verifies the file
/// matches the scan either way, and improvements must be banked by running
/// `--update-ratchet`.
fn apply_ratchet(root: &Path, mode: RatchetMode, outcome: &mut LintOutcome) -> io::Result<()> {
    let path = root.join(RATCHET_FILE);
    match mode {
        RatchetMode::Update => {
            fs::write(&path, report::ratchet_file_contents(outcome.d004_sites))?;
            outcome.d004_recorded = Some(outcome.d004_sites as u64);
        }
        RatchetMode::Enforce => {
            let recorded = fs::read_to_string(&path)
                .ok()
                .as_deref()
                .and_then(report::parse_ratchet);
            outcome.d004_recorded = recorded;
            let scanned = outcome.d004_sites as u64;
            match recorded {
                None => outcome.violations.push(Violation {
                    rule: "D004".to_owned(),
                    file: RATCHET_FILE.to_owned(),
                    line: 1,
                    message: format!(
                        "missing or unreadable {RATCHET_FILE}; run `onoc-lint \
                         --update-ratchet` to record the current count ({scanned})"
                    ),
                }),
                Some(r) if scanned > r => outcome.violations.push(Violation {
                    rule: "D004".to_owned(),
                    file: RATCHET_FILE.to_owned(),
                    line: 1,
                    message: format!(
                        "unwrap()/expect() count regressed: {scanned} sites vs ratchet {r}; \
                         remove the new sites or pragma them with a reason"
                    ),
                }),
                Some(r) if scanned < r => outcome.violations.push(Violation {
                    rule: "D004".to_owned(),
                    file: RATCHET_FILE.to_owned(),
                    line: 1,
                    message: format!(
                        "stale ratchet: {r} recorded but only {scanned} sites remain; \
                         bank the improvement with `onoc-lint --update-ratchet`"
                    ),
                }),
                Some(_) => {}
            }
        }
    }
    Ok(())
}

/// Walks upward from `start` to the first directory whose `Cargo.toml`
/// declares `[workspace]`.
#[must_use]
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}
