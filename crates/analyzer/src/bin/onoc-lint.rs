//! `onoc-lint` — determinism & cache-safety static analysis.
//!
//! ```text
//! cargo run -p onoc-analyzer --bin onoc-lint [-- OPTIONS]
//!
//!   --root DIR        workspace root (default: walk up from the cwd)
//!   --json PATH       write the full JSON report to PATH
//!   --telemetry PATH  write the onoc-telemetry summary document to PATH
//!   --update-ratchet  rewrite lint-ratchet.toml with the scanned D004 count
//!   --help            this text
//! ```
//!
//! Exit status: 0 clean, 1 violations found, 2 usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use onoc_analyzer::report::{report_json, telemetry_json};
use onoc_analyzer::{find_workspace_root, run, RatchetMode, RULES};

struct Options {
    root: Option<PathBuf>,
    json: Option<PathBuf>,
    telemetry: Option<PathBuf>,
    ratchet: RatchetMode,
}

fn parse_args() -> Result<Option<Options>, String> {
    let mut opts = Options {
        root: None,
        json: None,
        telemetry: None,
        ratchet: RatchetMode::Enforce,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                opts.root = Some(PathBuf::from(
                    args.next().ok_or("--root needs a directory")?,
                ));
            }
            "--json" => {
                opts.json = Some(PathBuf::from(args.next().ok_or("--json needs a path")?));
            }
            "--telemetry" => {
                opts.telemetry = Some(PathBuf::from(
                    args.next().ok_or("--telemetry needs a path")?,
                ));
            }
            "--update-ratchet" => opts.ratchet = RatchetMode::Update,
            "--help" | "-h" => {
                print_help();
                return Ok(None);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(Some(opts))
}

fn print_help() {
    println!("onoc-lint: determinism & cache-safety static analysis\n");
    println!("usage: cargo run -p onoc-analyzer --bin onoc-lint [-- OPTIONS]\n");
    println!("  --root DIR        workspace root (default: walk up from the cwd)");
    println!("  --json PATH       write the full JSON report to PATH");
    println!("  --telemetry PATH  write the onoc-telemetry summary document to PATH");
    println!("  --update-ratchet  rewrite lint-ratchet.toml with the scanned D004 count");
    println!("  --help            this text\n");
    println!("rules:");
    for (id, summary) in RULES {
        println!("  {id}  {summary}");
    }
    println!("\nsuppress a finding inline with: // onoc-lint: allow(D00x, reason)");
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(Some(opts)) => opts,
        Ok(None) => return ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("onoc-lint: {msg} (try --help)");
            return ExitCode::from(2);
        }
    };
    let root = match opts.root.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|cwd| find_workspace_root(&cwd))
    }) {
        Some(root) => root,
        None => {
            eprintln!("onoc-lint: no workspace root found; pass --root DIR");
            return ExitCode::from(2);
        }
    };
    let outcome = match run(&root, opts.ratchet) {
        Ok(outcome) => outcome,
        Err(err) => {
            eprintln!("onoc-lint: scan failed: {err}");
            return ExitCode::from(2);
        }
    };
    for artifact in [
        opts.json.map(|p| (p, report_json(&outcome))),
        opts.telemetry.map(|p| (p, telemetry_json(&outcome))),
    ]
    .into_iter()
    .flatten()
    {
        let (path, doc) = artifact;
        let mut text = doc.render_pretty();
        text.push('\n');
        if let Err(err) = std::fs::write(&path, text) {
            eprintln!("onoc-lint: cannot write {}: {err}", path.display());
            return ExitCode::from(2);
        }
    }
    for v in &outcome.violations {
        eprintln!("{}", v.render());
    }
    let ratchet = outcome
        .d004_recorded
        .map_or_else(|| "unrecorded".to_owned(), |r| format!("{r} recorded"));
    eprintln!(
        "onoc-lint: {} files, {} violations, {} suppressions, D004 {} sites ({ratchet})",
        outcome.files_scanned,
        outcome.violations.len(),
        outcome.suppressions.len(),
        outcome.d004_sites,
    );
    if outcome.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
