//! The six determinism & cache-safety rules (D001–D006).
//!
//! Every rule is a pattern over the flat token stream produced by
//! [`crate::source::tokenize`]; none of them require type information, and
//! each one errs toward precision (a missed exotic spelling is acceptable, a
//! false positive on idiomatic code is not — that is what the inline
//! `// onoc-lint: allow(D00x, reason)` pragma is for).

use std::collections::{BTreeMap, BTreeSet};

use crate::source::{in_ranges, Token};

/// A raw finding before pragma suppression is applied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule id (`"D001"` … `"D006"`).
    pub rule: &'static str,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

/// Everything a per-file rule needs to know about one file.
pub struct FileContext<'a> {
    /// Workspace-relative path with forward slashes.
    pub path: &'a str,
    /// Token stream of the stripped source.
    pub tokens: &'a [Token],
    /// `#[cfg(test)] mod` line ranges.
    pub test_ranges: &'a [(usize, usize)],
    /// True for files under a `src/` directory (library code).
    pub is_src: bool,
}

impl FileContext<'_> {
    fn in_test_code(&self, line: usize) -> bool {
        !self.is_src || in_ranges(self.test_ranges, line)
    }
}

/// Methods whose call on a `HashMap`/`HashSet` walks it in randomized order.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "retain",
    "into_iter",
    "into_keys",
    "into_values",
];

/// D001: no iteration over `HashMap`/`HashSet` in deterministic library code.
///
/// Keyed lookup (`get`/`insert`/`contains_key`/`len`) is allowed; anything
/// that observes the randomized order is not.  The fix is `BTreeMap`,
/// `BTreeSet`, or an explicit sort.
#[must_use]
pub fn d001(ctx: &FileContext<'_>) -> Vec<Finding> {
    let tokens = ctx.tokens;
    let tracked = hash_bound_names(tokens);
    if tracked.is_empty() {
        return Vec::new();
    }
    let mut findings = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if ctx.in_test_code(t.line) {
            continue;
        }
        // `name . iter_method (`
        if tracked.contains(t.text.as_str())
            && tokens.get(i + 1).is_some_and(|n| n.text == ".")
            && tokens
                .get(i + 2)
                .is_some_and(|m| ITER_METHODS.contains(&m.text.as_str()))
            && tokens.get(i + 3).is_some_and(|p| p.text == "(")
        {
            findings.push(Finding {
                rule: "D001",
                line: t.line,
                message: format!(
                    "iteration over hash collection `{}` via `.{}()` has randomized order; \
                     use BTreeMap/BTreeSet or sort first",
                    t.text,
                    tokens[i + 2].text
                ),
            });
        }
        // `for pat in [&][mut] name {`
        if t.text == "for" {
            let Some(in_pos) = tokens[i + 1..]
                .iter()
                .take(24)
                .position(|x| x.text == "in")
                .map(|p| i + 1 + p)
            else {
                continue;
            };
            let mut j = in_pos + 1;
            while tokens
                .get(j)
                .is_some_and(|x| x.text == "&" || x.text == "mut" || x.text == "(")
            {
                j += 1;
            }
            if let Some(name) = tokens.get(j) {
                let next_opens_body = tokens
                    .get(j + 1)
                    .is_some_and(|x| x.text == "{" || x.text == ")");
                if tracked.contains(name.text.as_str()) && next_opens_body {
                    findings.push(Finding {
                        rule: "D001",
                        line: name.line,
                        message: format!(
                            "`for … in` over hash collection `{}` has randomized order; \
                             use BTreeMap/BTreeSet or sort first",
                            name.text
                        ),
                    });
                }
            }
        }
    }
    findings
}

/// Identifiers bound to a `HashMap`/`HashSet` in this file, discovered from
/// type annotations (`name: HashMap<..>`) and constructor bindings
/// (`let name = HashMap::new()`).
fn hash_bound_names(tokens: &[Token]) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for (k, t) in tokens.iter().enumerate() {
        if t.text != "HashMap" && t.text != "HashSet" {
            continue;
        }
        // Step back over a qualifying path (`std :: collections :: HashMap`)
        // and reference sigils (`& mut HashMap`).
        let mut start = k;
        while start >= 2 && tokens[start - 1].text == "::" && tokens[start - 2].is_ident() {
            start -= 2;
        }
        while start >= 1 && matches!(tokens[start - 1].text.as_str(), "&" | "mut") {
            start -= 1;
        }
        if start == 0 {
            continue;
        }
        match tokens[start - 1].text.as_str() {
            // `name : HashMap<..>` — field, param, or annotated let.
            ":" if start >= 2 && tokens[start - 2].is_ident() => {
                names.insert(tokens[start - 2].text.clone());
            }
            // `name = HashMap::new()` / `let mut name = HashMap::with_..`.
            "=" if start >= 2 && tokens[start - 2].is_ident() => {
                names.insert(tokens[start - 2].text.clone());
            }
            _ => {}
        }
    }
    names
}

/// D002: wall clocks (`Instant::now`, `SystemTime`) are quarantined.
///
/// The only sanctioned homes are `onoc-parallel` shard timing,
/// `crates/bench/src/perf.rs`, and the offline criterion stand-in — each of
/// which carries an inline pragma (or lives in `crates/compat/`, which the
/// walker never enters), so the rule itself has no allowlist.
#[must_use]
pub fn d002(ctx: &FileContext<'_>) -> Vec<Finding> {
    let tokens = ctx.tokens;
    let mut findings = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if t.text == "Instant"
            && tokens.get(i + 1).is_some_and(|x| x.text == "::")
            && tokens.get(i + 2).is_some_and(|x| x.text == "now")
        {
            findings.push(Finding {
                rule: "D002",
                line: t.line,
                message: "`Instant::now` outside the quarantined wall-clock sites; \
                          route timing through WallClockRegistry"
                    .to_owned(),
            });
        }
        if t.text == "SystemTime" {
            findings.push(Finding {
                rule: "D002",
                line: t.line,
                message: "`SystemTime` outside the quarantined wall-clock sites; \
                          deterministic code must not read host time"
                    .to_owned(),
            });
        }
    }
    findings
}

/// D003: every named field of a struct with a `fingerprint()` method must be
/// mentioned inside that method's body, so a newly added field cannot
/// silently alias the operating-point cache.
#[must_use]
pub fn d003(ctx: &FileContext<'_>) -> Vec<Finding> {
    let tokens = ctx.tokens;
    let structs = struct_fields(tokens);
    let mut findings = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].text != "impl" {
            i += 1;
            continue;
        }
        let Some((target, body_start, body_end)) = impl_header(tokens, i) else {
            i += 1;
            continue;
        };
        if let Some(fields) = structs.get(&target) {
            let mut j = body_start;
            while j < body_end {
                if tokens[j].text == "fn"
                    && tokens.get(j + 1).is_some_and(|t| t.text == "fingerprint")
                {
                    let fp_line = tokens[j].line;
                    if let Some((fs, fe)) = brace_block(tokens, j, body_end) {
                        let mentioned: BTreeSet<&str> = tokens[fs..fe]
                            .iter()
                            .filter(|t| t.is_ident())
                            .map(|t| t.text.as_str())
                            .collect();
                        for field in fields {
                            if !mentioned.contains(field.as_str()) {
                                findings.push(Finding {
                                    rule: "D003",
                                    line: fp_line,
                                    message: format!(
                                        "`{target}::fingerprint` does not mention field \
                                         `{field}`; un-hashed fields alias the cache"
                                    ),
                                });
                            }
                        }
                        j = fe;
                        continue;
                    }
                }
                j += 1;
            }
        }
        i = body_end.max(i + 1);
    }
    findings
}

/// Struct name → named-field list for every brace struct in the file.
fn struct_fields(tokens: &[Token]) -> BTreeMap<String, Vec<String>> {
    let mut out = BTreeMap::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].text != "struct" {
            i += 1;
            continue;
        }
        let Some(name_tok) = tokens.get(i + 1).filter(|t| t.is_ident()) else {
            i += 1;
            continue;
        };
        // Walk past generics / where clause to the body opener.
        let mut j = i + 2;
        while j < tokens.len() && !matches!(tokens[j].text.as_str(), "{" | "(" | ";") {
            j += 1;
        }
        if tokens.get(j).is_none_or(|t| t.text != "{") {
            i = j;
            continue; // tuple or unit struct: no named fields to check
        }
        let Some((body_start, body_end)) = brace_block(tokens, j, tokens.len()) else {
            i = j + 1;
            continue;
        };
        let mut fields = Vec::new();
        // Split the body on commas at nesting depth zero; within each
        // segment the field name is the ident directly before the first `:`.
        let mut depth = 0i32;
        let mut seg_start = body_start;
        let mut prev_text = "";
        for k in body_start..=body_end {
            let text = tokens.get(k).map_or(",", |t| t.text.as_str());
            let at_end = k == body_end;
            match text {
                "{" | "(" | "[" => depth += 1,
                "}" | ")" | "]" => depth -= 1,
                "<" => depth += 1,
                // `->` never appears at field-segment depth 0, but guard the
                // shift-like `- >` pairing anyway.
                ">" if prev_text != "-" => depth -= 1,
                _ => {}
            }
            if (text == "," && depth == 0) || at_end {
                if let Some(name) = field_name(&tokens[seg_start..k]) {
                    fields.push(name);
                }
                seg_start = k + 1;
            }
            prev_text = text;
        }
        out.insert(name_tok.text.clone(), fields);
        i = body_end;
    }
    out
}

/// The field name of one comma-separated struct-body segment: the ident
/// right before the first top-level `:` (skipping attributes and `pub`).
fn field_name(segment: &[Token]) -> Option<String> {
    let mut i = 0usize;
    while i < segment.len() {
        if segment[i].text == "#" && segment.get(i + 1).is_some_and(|t| t.text == "[") {
            let mut depth = 1usize;
            i += 2;
            while i < segment.len() && depth > 0 {
                match segment[i].text.as_str() {
                    "[" => depth += 1,
                    "]" => depth -= 1,
                    _ => {}
                }
                i += 1;
            }
            continue;
        }
        if segment[i].text == "pub" {
            i += 1;
            if segment.get(i).is_some_and(|t| t.text == "(") {
                let mut depth = 1usize;
                i += 1;
                while i < segment.len() && depth > 0 {
                    match segment[i].text.as_str() {
                        "(" => depth += 1,
                        ")" => depth -= 1,
                        _ => {}
                    }
                    i += 1;
                }
            }
            continue;
        }
        return (segment[i].is_ident() && segment.get(i + 1).is_some_and(|t| t.text == ":"))
            .then(|| segment[i].text.clone());
    }
    None
}

/// For an `impl` at `tokens[i]`, the target type name and the body span
/// `(first_token_inside, index_of_closing_brace)`.
fn impl_header(tokens: &[Token], i: usize) -> Option<(String, usize, usize)> {
    let mut j = i + 1;
    // Skip `impl<...>` generic parameters.
    if tokens.get(j).is_some_and(|t| t.text == "<") {
        let mut depth = 1i32;
        j += 1;
        let mut prev = "";
        while j < tokens.len() && depth > 0 {
            match tokens[j].text.as_str() {
                "<" => depth += 1,
                ">" if prev != "-" => depth -= 1,
                _ => {}
            }
            prev = tokens[j].text.as_str();
            j += 1;
        }
    }
    // The target is the first path ident after `for` (trait impls) or after
    // the generics (inherent impls / the trait name, which has no
    // fingerprint-bearing struct registered, so it matching is harmless).
    let mut target: Option<String> = None;
    let mut brace = None;
    let mut depth = 0i32;
    let mut prev = "";
    while j < tokens.len() {
        match tokens[j].text.as_str() {
            "{" if depth == 0 => {
                brace = Some(j);
                break;
            }
            "<" => depth += 1,
            ">" if prev != "-" => depth -= 1,
            "for" => target = None, // the real target follows
            t if target.is_none()
                && depth == 0
                && tokens[j].is_ident()
                && !matches!(t, "where" | "dyn" | "mut" | "const") =>
            {
                target = Some(t.to_owned());
            }
            _ => {}
        }
        prev = tokens[j].text.as_str();
        j += 1;
    }
    // Resolve path targets like `crate :: bank :: RingBankState` to the last
    // segment by re-walking forward from the recorded first ident.
    let brace = brace?;
    let mut name = target?;
    let mut k = j;
    // Walk back from the brace to pick the last `ident` of the target path.
    while k > i {
        k -= 1;
        if tokens[k].is_ident() && !matches!(tokens[k].text.as_str(), "where" | "for") {
            // Skip generic parameter idents: they sit between `<` and `>`.
            let mut depth = 0i32;
            for t in &tokens[k + 1..brace] {
                match t.text.as_str() {
                    "<" => depth += 1,
                    ">" => depth -= 1,
                    _ => {}
                }
            }
            if depth == 0 {
                name = tokens[k].text.clone();
            }
            break;
        }
    }
    let (start, end) = brace_block(tokens, brace, tokens.len())?;
    Some((name, start, end))
}

/// From any index at or before an opening `{`, the span
/// `(first_inside, closing_brace_index)` of that brace block.
fn brace_block(tokens: &[Token], from: usize, limit: usize) -> Option<(usize, usize)> {
    let open = (from..limit).find(|&k| tokens[k].text == "{")?;
    let mut depth = 1usize;
    let mut k = open + 1;
    while k < limit {
        match tokens[k].text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return Some((open + 1, k));
                }
            }
            _ => {}
        }
        k += 1;
    }
    None
}

/// D004: every `.unwrap()` / `.expect(` site in non-test library code.
///
/// Sites are not individual violations — the workspace total is compared
/// against the checked-in ratchet by the driver in `lib.rs`.
#[must_use]
pub fn d004_sites(ctx: &FileContext<'_>) -> Vec<Finding> {
    if !ctx.is_src {
        return Vec::new();
    }
    let tokens = ctx.tokens;
    let mut sites = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if t.text != "." {
            continue;
        }
        let Some(method) = tokens.get(i + 1) else {
            continue;
        };
        if (method.text == "unwrap" || method.text == "expect")
            && tokens.get(i + 2).is_some_and(|p| p.text == "(")
            && !ctx.in_test_code(method.line)
        {
            sites.push(Finding {
                rule: "D004",
                line: method.line,
                message: format!("`.{}()` in non-test library code", method.text),
            });
        }
    }
    sites
}

/// Workspace-wide pass 1 for D005: names of `#[deprecated]` items defined in
/// this file, plus the lines their definitions sit on (a definition is not a
/// "reference" for the purposes of the rule).
#[must_use]
pub fn deprecated_definitions(tokens: &[Token]) -> Vec<(String, usize)> {
    let mut defs = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if !(tokens[i].text == "#"
            && tokens.get(i + 1).is_some_and(|t| t.text == "[")
            && tokens.get(i + 2).is_some_and(|t| t.text == "deprecated"))
        {
            i += 1;
            continue;
        }
        // Close this attribute, skip any further attributes.
        let mut j = i + 2;
        let mut depth = 1usize;
        while j < tokens.len() && depth > 0 {
            match tokens[j].text.as_str() {
                "[" => depth += 1,
                "]" => depth -= 1,
                _ => {}
            }
            j += 1;
        }
        while tokens.get(j).is_some_and(|t| t.text == "#")
            && tokens.get(j + 1).is_some_and(|t| t.text == "[")
        {
            let mut d = 1usize;
            j += 2;
            while j < tokens.len() && d > 0 {
                match tokens[j].text.as_str() {
                    "[" => d += 1,
                    "]" => d -= 1,
                    _ => {}
                }
                j += 1;
            }
        }
        // Skip visibility, find the item keyword, grab the name after it.
        while tokens
            .get(j)
            .is_some_and(|t| matches!(t.text.as_str(), "pub" | "(" | ")" | "crate" | "super"))
        {
            j += 1;
        }
        if tokens
            .get(j)
            .is_some_and(|t| matches!(t.text.as_str(), "async" | "unsafe" | "const" | "extern"))
        {
            j += 1;
        }
        if tokens.get(j).is_some_and(|t| {
            matches!(
                t.text.as_str(),
                "fn" | "struct" | "enum" | "trait" | "type" | "mod" | "static"
            )
        }) {
            if let Some(name) = tokens.get(j + 1).filter(|t| t.is_ident()) {
                defs.push((name.text.clone(), name.line));
            }
        }
        i = j + 1;
    }
    defs
}

/// D005 pass 2: references to deprecated items from a file that does not
/// scope an `allow(deprecated)`.
#[must_use]
pub fn d005(
    ctx: &FileContext<'_>,
    deprecated: &BTreeMap<String, String>,
    own_defs: &[(String, usize)],
) -> Vec<Finding> {
    if deprecated.is_empty() || file_allows_deprecated(ctx.tokens) {
        return Vec::new();
    }
    let own: BTreeSet<(&str, usize)> = own_defs
        .iter()
        .map(|(name, line)| (name.as_str(), *line))
        .collect();
    let mut findings = Vec::new();
    for t in ctx.tokens {
        if let Some(defined_in) = deprecated.get(&t.text) {
            if own.contains(&(t.text.as_str(), t.line)) {
                continue;
            }
            findings.push(Finding {
                rule: "D005",
                line: t.line,
                message: format!(
                    "reference to deprecated `{}` (defined in {defined_in}) from a module \
                     without a scoped `#![allow(deprecated)]`",
                    t.text
                ),
            });
        }
    }
    findings
}

/// Does the file contain any `allow(deprecated)` attribute (inner or outer)?
fn file_allows_deprecated(tokens: &[Token]) -> bool {
    tokens.windows(4).any(|w| {
        w[0].text == "allow" && w[1].text == "(" && w[2].text == "deprecated" && w[3].text == ")"
    })
}

/// Environment accessors that smuggle ambient state into deterministic code.
const ENV_READERS: &[&str] = &["var", "vars", "var_os", "vars_os", "set_var", "remove_var"];

/// Ambient randomness constructors.
const RNG_AMBIENT: &[&str] = &["thread_rng", "from_entropy", "OsRng"];

/// D006: no `std::env` reads or ambient randomness in deterministic library
/// code (`env::args` in binaries and the `env!` macro are fine).
#[must_use]
pub fn d006(ctx: &FileContext<'_>) -> Vec<Finding> {
    let tokens = ctx.tokens;
    let mut findings = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if ctx.in_test_code(t.line) {
            continue;
        }
        if t.text == "env"
            && tokens.get(i + 1).is_some_and(|x| x.text == "::")
            && tokens
                .get(i + 2)
                .is_some_and(|x| ENV_READERS.contains(&x.text.as_str()))
        {
            findings.push(Finding {
                rule: "D006",
                line: t.line,
                message: format!(
                    "`env::{}` reads ambient process state in deterministic code",
                    tokens[i + 2].text
                ),
            });
        }
        if RNG_AMBIENT.contains(&t.text.as_str()) {
            findings.push(Finding {
                rule: "D006",
                line: t.line,
                message: format!(
                    "`{}` seeds randomness from the environment; derive seeds from \
                     scenario configuration instead",
                    t.text
                ),
            });
        }
    }
    findings
}
