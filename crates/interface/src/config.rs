//! Interface configuration and error type.

use onoc_ecc_codes::{CodeError, EccScheme};
use onoc_units::{GigabitsPerSecond, Gigahertz};
use serde::{Deserialize, Serialize};

/// Errors produced by the interface datapaths.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum InterfaceError {
    /// The underlying codec rejected the data (wrong geometry).
    Code(CodeError),
    /// The serialized stream does not have the length expected for the
    /// selected scheme.
    WrongStreamLength {
        /// Expected number of serialized bits.
        expected: usize,
        /// Received number of bits.
        actual: usize,
    },
    /// The configuration itself is inconsistent (e.g. the serializer cannot
    /// keep up with the IP word rate).
    InvalidConfiguration {
        /// Human-readable description.
        reason: String,
    },
}

impl std::fmt::Display for InterfaceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Code(e) => write!(f, "codec error: {e}"),
            Self::WrongStreamLength { expected, actual } => {
                write!(
                    f,
                    "expected a {expected}-bit serial stream, got {actual} bits"
                )
            }
            Self::InvalidConfiguration { reason } => write!(f, "invalid configuration: {reason}"),
        }
    }
}

impl std::error::Error for InterfaceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Code(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CodeError> for InterfaceError {
    fn from(value: CodeError) -> Self {
        Self::Code(value)
    }
}

/// Static configuration of one ONI interface.
///
/// ```
/// use onoc_interface::config::InterfaceConfig;
/// use onoc_ecc_codes::EccScheme;
///
/// let config = InterfaceConfig::paper_default();
/// assert_eq!(config.word_bits, 64);
/// // H(7,4) needs 112 bit-slots per word: still within one IP cycle budget
/// // of 10 Gb/s × 16 wavelengths.
/// assert!(config.supports(EccScheme::Hamming74));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InterfaceConfig {
    /// Width of the IP data bus (N_data), 64 bits in the paper.
    pub word_bits: usize,
    /// IP clock frequency (F_IP), 1 GHz in the paper.
    pub ip_clock: Gigahertz,
    /// Optical modulation speed (F_mod), 10 GHz / 10 Gb/s in the paper.
    pub modulation_rate: GigabitsPerSecond,
    /// Number of wavelength lanes the word is striped over.
    pub wavelength_lanes: usize,
}

impl InterfaceConfig {
    /// The configuration of the paper: 64-bit bus at 1 GHz, 10 Gb/s
    /// modulation, 16 wavelengths.
    #[must_use]
    pub fn paper_default() -> Self {
        Self {
            word_bits: 64,
            ip_clock: Gigahertz::new(1.0),
            modulation_rate: GigabitsPerSecond::new(10.0),
            wavelength_lanes: 16,
        }
    }

    /// Serialized bits per word for `scheme`.
    #[must_use]
    pub fn encoded_bits(&self, scheme: EccScheme) -> usize {
        scheme.encoded_bits_per_word(self.word_bits)
    }

    /// Aggregate optical channel bandwidth (all lanes).
    #[must_use]
    pub fn channel_bandwidth(&self) -> GigabitsPerSecond {
        self.modulation_rate * self.wavelength_lanes as f64
    }

    /// Payload bandwidth offered to the IP (one word per IP cycle).
    #[must_use]
    pub fn payload_bandwidth(&self) -> GigabitsPerSecond {
        GigabitsPerSecond::new(self.word_bits as f64 * self.ip_clock.value())
    }

    /// Returns `true` when the optical channel can sustain one encoded word
    /// per IP clock cycle with `scheme`, i.e. the coding overhead does not
    /// throttle the IP.
    #[must_use]
    pub fn supports(&self, scheme: EccScheme) -> bool {
        let encoded_bits_per_second = self.encoded_bits(scheme) as f64 * self.ip_clock.value(); // Gb/s
        encoded_bits_per_second <= self.channel_bandwidth().value() + 1e-9
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`InterfaceError::InvalidConfiguration`] when the word width,
    /// clocks or lane count are zero, or when even the uncoded mode exceeds
    /// the channel bandwidth.
    pub fn validate(&self) -> Result<(), InterfaceError> {
        if self.word_bits == 0 {
            return Err(InterfaceError::InvalidConfiguration {
                reason: "word width must be non-zero".into(),
            });
        }
        if self.wavelength_lanes == 0 {
            return Err(InterfaceError::InvalidConfiguration {
                reason: "at least one wavelength lane is required".into(),
            });
        }
        if self.ip_clock.value() <= 0.0 || self.modulation_rate.value() <= 0.0 {
            return Err(InterfaceError::InvalidConfiguration {
                reason: "clock frequencies must be positive".into(),
            });
        }
        if !self.supports(EccScheme::Uncoded) {
            return Err(InterfaceError::InvalidConfiguration {
                reason: format!(
                    "the optical channel ({} Gb/s) cannot sustain the IP payload rate ({} Gb/s)",
                    self.channel_bandwidth().value(),
                    self.payload_bandwidth().value()
                ),
            });
        }
        Ok(())
    }
}

impl Default for InterfaceConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_is_valid_and_supports_all_paper_schemes() {
        let config = InterfaceConfig::paper_default();
        config.validate().unwrap();
        for scheme in EccScheme::paper_schemes() {
            assert!(config.supports(scheme), "{scheme}");
        }
    }

    #[test]
    fn bandwidths() {
        let config = InterfaceConfig::paper_default();
        assert!((config.channel_bandwidth().value() - 160.0).abs() < 1e-9);
        assert!((config.payload_bandwidth().value() - 64.0).abs() < 1e-9);
        assert_eq!(config.encoded_bits(EccScheme::Hamming74), 112);
    }

    #[test]
    fn narrow_channel_rejects_heavy_codes() {
        let config = InterfaceConfig {
            wavelength_lanes: 7,
            ..InterfaceConfig::paper_default()
        };
        // 7 lanes × 10 Gb/s = 70 Gb/s: enough for uncoded (64) and H(71,64)
        // (71) but not for H(7,4) (112).
        assert!(config.supports(EccScheme::Uncoded));
        assert!(!config.supports(EccScheme::Hamming74));
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        let mut config = InterfaceConfig::paper_default();
        config.word_bits = 0;
        assert!(config.validate().is_err());

        let mut config = InterfaceConfig::paper_default();
        config.wavelength_lanes = 0;
        assert!(config.validate().is_err());

        let mut config = InterfaceConfig::paper_default();
        config.modulation_rate = GigabitsPerSecond::new(0.1);
        assert!(matches!(
            config.validate(),
            Err(InterfaceError::InvalidConfiguration { .. })
        ));
    }

    #[test]
    fn error_display_and_source() {
        use std::error::Error;
        let err = InterfaceError::from(onoc_ecc_codes::CodeError::WrongMessageLength {
            expected: 4,
            actual: 5,
        });
        assert!(err.to_string().contains("codec error"));
        assert!(err.source().is_some());
        let err = InterfaceError::WrongStreamLength {
            expected: 112,
            actual: 64,
        };
        assert!(err.to_string().contains("112"));
    }
}
