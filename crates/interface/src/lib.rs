//! Electrical/optical network-interface (ONI) models.
//!
//! Section IV-C of the DAC'17 paper describes the electrical side of the
//! optical network interface: a mode multiplexer selecting between the
//! uncoded path and the Hamming coder banks, a serializer running at the
//! modulation speed F_mod, and the mirrored receiver datapath
//! (deserializer → decoders → mode mux).  Table I reports the 28 nm FDSOI
//! synthesis results for every block.
//!
//! This crate provides:
//!
//! * [`blocks`] — the synthesis cost database reproducing Table I,
//! * [`serdes`] — bit-true functional models of the serializer /
//!   deserializer register pipelines,
//! * [`transmitter`] / [`receiver`] — the full TX/RX datapaths (functional
//!   encode/serialize and deserialize/decode plus aggregated cost),
//! * [`config`] — interface configuration (bus width, clock domains, coding
//!   mode),
//! * [`power`] — the channel power model of Section IV-E
//!   (`P_channel = P_enc+dec + P_MR + P_laser`), energy-per-bit accounting
//!   and the communication-time factor,
//! * [`timing`] — serialization latency and communication time.
//!
//! # Example
//!
//! ```
//! use onoc_interface::{config::InterfaceConfig, transmitter::Transmitter, receiver::Receiver};
//! use onoc_ecc_codes::EccScheme;
//!
//! let config = InterfaceConfig::paper_default();
//! let tx = Transmitter::new(config.clone());
//! let rx = Receiver::new(config);
//!
//! // Send a 64-bit word through the H(7,4) path and recover it.
//! let word: u64 = 0xDEAD_BEEF_CAFE_F00D;
//! let stream = tx.encode_word(word, EccScheme::Hamming74)?;
//! assert_eq!(stream.len(), 112);
//! let decoded = rx.decode_stream(&stream, EccScheme::Hamming74)?;
//! assert_eq!(decoded.word, word);
//! # Ok::<(), onoc_interface::InterfaceError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blocks;
pub mod config;
pub mod power;
pub mod receiver;
pub mod serdes;
pub mod timing;
pub mod transmitter;

pub use blocks::{BlockCost, SynthesisDatabase};
pub use config::{InterfaceConfig, InterfaceError};
pub use power::{ChannelPowerBreakdown, ChannelPowerModel, EnergyAccounting};
pub use receiver::{DecodedWord, Receiver};
pub use serdes::{Deserializer, Serializer};
pub use timing::CommunicationTiming;
pub use transmitter::Transmitter;
