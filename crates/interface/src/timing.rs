//! Communication-time model.
//!
//! The paper expresses performance as the Communication Time (CT): the
//! relative increase of the transmission time due to parity bits, normalised
//! to the uncoded transmission (CT = 1.0 uncoded, 1.75 for H(7,4), ≈ 1.11 for
//! H(71,64)).  This module computes CT together with the absolute
//! serialization time of a word and the end-to-end word latency through the
//! interface pipeline.

use onoc_ecc_codes::EccScheme;
use onoc_units::Nanoseconds;
use serde::{Deserialize, Serialize};

use crate::config::InterfaceConfig;

/// Timing figures of one word transmission.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CommunicationTiming {
    /// Scheme used for the transmission.
    pub scheme: EccScheme,
    /// Relative communication time (1.0 for uncoded).
    pub communication_time_factor: f64,
    /// Number of bits serialized per wavelength lane for one word.
    pub bits_per_lane: f64,
    /// Absolute time needed to stream one encoded word over the channel.
    pub serialization_time: Nanoseconds,
    /// Additional pipeline latency: one IP cycle for encoding plus one for
    /// decoding (the codec blocks are registered, Section V-A).
    pub codec_latency: Nanoseconds,
    /// Total word latency (serialization + codec pipeline).
    pub total_latency: Nanoseconds,
}

impl CommunicationTiming {
    /// Computes the timing of one word transmission with `scheme` on the
    /// interface described by `config`.
    #[must_use]
    pub fn evaluate(config: &InterfaceConfig, scheme: EccScheme) -> Self {
        let encoded_bits = config.encoded_bits(scheme) as f64;
        let bits_per_lane = encoded_bits / config.wavelength_lanes as f64;
        let serialization_time = Nanoseconds::new(bits_per_lane / config.modulation_rate.value());
        let codec_latency = if matches!(scheme, EccScheme::Uncoded) {
            Nanoseconds::zero()
        } else {
            // One F_IP cycle on the encoder side, one on the decoder side.
            config.ip_clock.period() * 2.0
        };
        Self {
            scheme,
            communication_time_factor: scheme.communication_time_factor(),
            bits_per_lane,
            serialization_time,
            codec_latency,
            total_latency: serialization_time + codec_latency,
        }
    }

    /// Time to transmit `words` back-to-back words (the pipeline hides the
    /// codec latency after the first word).
    #[must_use]
    pub fn burst_time(&self, words: u64) -> Nanoseconds {
        if words == 0 {
            return Nanoseconds::zero();
        }
        self.codec_latency + self.serialization_time * words as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> InterfaceConfig {
        InterfaceConfig::paper_default()
    }

    #[test]
    fn ct_factors_match_the_paper() {
        let c = config();
        let uncoded = CommunicationTiming::evaluate(&c, EccScheme::Uncoded);
        let h74 = CommunicationTiming::evaluate(&c, EccScheme::Hamming74);
        let h7164 = CommunicationTiming::evaluate(&c, EccScheme::Hamming7164);
        assert!((uncoded.communication_time_factor - 1.0).abs() < 1e-12);
        assert!((h74.communication_time_factor - 1.75).abs() < 1e-12);
        assert!((h7164.communication_time_factor - 1.109).abs() < 1e-3);
    }

    #[test]
    fn serialization_time_scales_with_the_ct_factor() {
        let c = config();
        let uncoded = CommunicationTiming::evaluate(&c, EccScheme::Uncoded);
        let h74 = CommunicationTiming::evaluate(&c, EccScheme::Hamming74);
        let ratio = h74.serialization_time.value() / uncoded.serialization_time.value();
        assert!((ratio - 1.75).abs() < 1e-9);
        // 64 bits over 16 lanes at 10 Gb/s = 0.4 ns.
        assert!((uncoded.serialization_time.value() - 0.4).abs() < 1e-9);
    }

    #[test]
    fn codec_latency_applies_only_to_coded_modes() {
        let c = config();
        assert!(CommunicationTiming::evaluate(&c, EccScheme::Uncoded)
            .codec_latency
            .is_zero());
        let coded = CommunicationTiming::evaluate(&c, EccScheme::Hamming7164);
        assert!((coded.codec_latency.value() - 2.0).abs() < 1e-9);
        assert!(coded.total_latency.value() > coded.serialization_time.value());
    }

    #[test]
    fn burst_time_amortises_the_codec_latency() {
        let c = config();
        let t = CommunicationTiming::evaluate(&c, EccScheme::Hamming74);
        let one = t.burst_time(1);
        let thousand = t.burst_time(1000);
        // Per-word cost for a long burst approaches the serialization time.
        let per_word = thousand.value() / 1000.0;
        assert!(per_word < one.value());
        assert!((per_word - t.serialization_time.value()).abs() < 0.01);
        assert!(t.burst_time(0).is_zero());
    }

    #[test]
    fn fewer_lanes_mean_longer_serialization() {
        let mut c = config();
        c.wavelength_lanes = 8;
        let narrow = CommunicationTiming::evaluate(&c, EccScheme::Uncoded);
        let wide = CommunicationTiming::evaluate(&config(), EccScheme::Uncoded);
        assert!(narrow.serialization_time.value() > wide.serialization_time.value());
    }
}
