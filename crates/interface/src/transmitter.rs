//! Transmitter (emitter) datapath of the ONI.
//!
//! Fig. 2-c of the paper: the 64-bit IP word enters the interface, the
//! energy/performance manager selects one of the coding paths (uncoded,
//! H(7,4) bank, H(71,64)), the selected encoder output goes through the mode
//! mux to a serializer clocked at F_mod, and the resulting bit stream drives
//! the micro-ring modulator.

use onoc_ecc_codes::EccScheme;
use onoc_units::{Microwatts, SquareMicrometers};
use serde::{Deserialize, Serialize};

use crate::blocks::{InterfaceSide, SynthesisDatabase};
use crate::config::{InterfaceConfig, InterfaceError};
use crate::serdes::Serializer;

/// The emitter-side interface datapath.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Transmitter {
    config: InterfaceConfig,
    synthesis: SynthesisDatabase,
}

impl Transmitter {
    /// Creates a transmitter for the given configuration, using the Table I
    /// synthesis database for its cost figures.
    #[must_use]
    pub fn new(config: InterfaceConfig) -> Self {
        Self {
            config,
            synthesis: SynthesisDatabase::table1(),
        }
    }

    /// Interface configuration.
    #[must_use]
    pub fn config(&self) -> &InterfaceConfig {
        &self.config
    }

    /// Synthesis cost database.
    #[must_use]
    pub fn synthesis(&self) -> &SynthesisDatabase {
        &self.synthesis
    }

    /// Encodes one IP word into the serial bit stream transmitted on the
    /// optical channel, using `scheme`.
    ///
    /// The word is split into as many sub-blocks as the scheme's codec
    /// message length requires (16 nibbles for H(7,4), a single 64-bit block
    /// for H(71,64) and the uncoded mode); each sub-block is encoded and the
    /// codewords are concatenated and serialized.
    ///
    /// # Errors
    ///
    /// Propagates codec errors as [`InterfaceError::Code`].
    pub fn encode_word(&self, word: u64, scheme: EccScheme) -> Result<Vec<bool>, InterfaceError> {
        let bits: Vec<bool> = (0..self.config.word_bits)
            .map(|i| (word >> i) & 1 == 1)
            .collect();
        self.encode_bits(&bits, scheme)
    }

    /// Encodes an arbitrary-width word given as bits (LSB first).
    ///
    /// # Errors
    ///
    /// Propagates codec errors as [`InterfaceError::Code`]; returns
    /// [`InterfaceError::InvalidConfiguration`] when the word width does not
    /// match the configuration.
    pub fn encode_bits(
        &self,
        bits: &[bool],
        scheme: EccScheme,
    ) -> Result<Vec<bool>, InterfaceError> {
        if bits.len() != self.config.word_bits {
            return Err(InterfaceError::InvalidConfiguration {
                reason: format!(
                    "word has {} bits but the interface is configured for {}",
                    bits.len(),
                    self.config.word_bits
                ),
            });
        }
        let code = scheme.build()?;
        let k = code.message_length();
        let mut encoded = Vec::with_capacity(self.config.encoded_bits(scheme));
        if k >= bits.len() {
            // Single codec, message padded with zeros up to k.
            let mut message = bits.to_vec();
            message.resize(k, false);
            encoded.extend(code.encode(&message)?);
        } else {
            for chunk in bits.chunks(k) {
                if chunk.len() == k {
                    encoded.extend(code.encode(chunk)?);
                } else {
                    // Zero-pad the last, partial sub-block.
                    let mut padded = chunk.to_vec();
                    padded.resize(k, false);
                    encoded.extend(code.encode(&padded)?);
                }
            }
        }
        // Push the encoded word through the serializer register pipeline to
        // model the F_mod-domain stream exactly as the hardware would.
        let mut serializer = Serializer::new(encoded.len());
        Ok(serializer.serialize_word(&encoded))
    }

    /// Dynamic power of the transmitter datapath in `scheme` mode.
    #[must_use]
    pub fn dynamic_power(&self, scheme: EccScheme) -> Microwatts {
        self.synthesis
            .dynamic_power(InterfaceSide::Transmitter, scheme)
    }

    /// Total synthesized area of the transmitter (all modes instantiated).
    #[must_use]
    pub fn area(&self) -> SquareMicrometers {
        self.synthesis.total_area(InterfaceSide::Transmitter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tx() -> Transmitter {
        Transmitter::new(InterfaceConfig::paper_default())
    }

    #[test]
    fn uncoded_stream_is_the_word_itself() {
        let word = 0xA5A5_5A5A_0123_4567u64;
        let stream = tx().encode_word(word, EccScheme::Uncoded).unwrap();
        assert_eq!(stream.len(), 64);
        let reassembled = stream
            .iter()
            .enumerate()
            .fold(0u64, |acc, (i, &b)| acc | (u64::from(b) << i));
        assert_eq!(reassembled, word);
    }

    #[test]
    fn h74_stream_has_112_bits() {
        let stream = tx()
            .encode_word(0xFFFF_0000_FFFF_0000, EccScheme::Hamming74)
            .unwrap();
        assert_eq!(stream.len(), 112);
    }

    #[test]
    fn h7164_stream_has_71_bits() {
        let stream = tx().encode_word(42, EccScheme::Hamming7164).unwrap();
        assert_eq!(stream.len(), 71);
    }

    #[test]
    fn secded_stream_has_72_bits() {
        let stream = tx().encode_word(7, EccScheme::Secded7264).unwrap();
        assert_eq!(stream.len(), 72);
    }

    #[test]
    fn stream_length_matches_config_prediction_for_all_schemes() {
        let t = tx();
        for scheme in [
            EccScheme::Uncoded,
            EccScheme::Hamming74,
            EccScheme::Hamming7164,
            EccScheme::Secded7264,
            EccScheme::Repetition3,
            EccScheme::ParityOnly,
        ] {
            let stream = t.encode_word(0x0123_4567_89AB_CDEF, scheme).unwrap();
            assert_eq!(stream.len(), t.config().encoded_bits(scheme), "{scheme}");
        }
    }

    #[test]
    fn wrong_word_width_is_rejected() {
        let t = tx();
        assert!(matches!(
            t.encode_bits(&[true; 63], EccScheme::Uncoded),
            Err(InterfaceError::InvalidConfiguration { .. })
        ));
    }

    #[test]
    fn power_and_area_come_from_table1() {
        let t = tx();
        assert!((t.area().value() - 2013.0).abs() < 1.0);
        assert!((t.dynamic_power(EccScheme::Hamming74).value() - 9.57).abs() < 0.01);
        assert!((t.dynamic_power(EccScheme::Uncoded).value() - 3.16).abs() < 0.01);
    }

    #[test]
    fn different_words_produce_different_streams() {
        let t = tx();
        let a = t.encode_word(1, EccScheme::Hamming7164).unwrap();
        let b = t.encode_word(2, EccScheme::Hamming7164).unwrap();
        assert_ne!(a, b);
    }
}
