//! Bit-true serializer / deserializer models.
//!
//! Section IV-C of the paper describes both as register pipelines whose depth
//! equals the parallel word size: the serializer loads a parallel word
//! through per-register input muxes and shifts bits out at F_mod; the
//! deserializer shifts incoming bits in and presents the reassembled word.
//! These models reproduce that behaviour cycle by cycle so that the NoC
//! simulator and the examples can push real bit streams through the link.

use onoc_ecc_codes::bits::BitBlock;
use serde::{Deserialize, Serialize};

/// A parallel-in / serial-out register pipeline.
///
/// ```
/// use onoc_interface::serdes::Serializer;
///
/// let mut ser = Serializer::new(8);
/// ser.load(&[true, false, true, true, false, false, true, false]);
/// let stream: Vec<bool> = (0..8).map(|_| ser.shift_out().unwrap()).collect();
/// assert_eq!(stream, vec![true, false, true, true, false, false, true, false]);
/// assert!(ser.is_empty());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Serializer {
    depth: usize,
    pipeline: Vec<bool>,
    cursor: usize,
    shifted_bits: u64,
}

impl Serializer {
    /// Creates a serializer with the given register depth.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    #[must_use]
    pub fn new(depth: usize) -> Self {
        assert!(depth > 0, "serializer depth must be non-zero");
        Self {
            depth,
            pipeline: Vec::new(),
            cursor: 0,
            shifted_bits: 0,
        }
    }

    /// Register depth (input word width).
    #[must_use]
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Loads a parallel word into the pipeline registers.
    ///
    /// # Panics
    ///
    /// Panics if the word width does not match the register depth, or if a
    /// previous word has not been fully shifted out yet (the real hardware
    /// would overwrite in-flight data — a protocol violation we surface
    /// loudly).
    pub fn load(&mut self, word: &[bool]) {
        assert_eq!(
            word.len(),
            self.depth,
            "word width must match the serializer depth"
        );
        assert!(
            self.is_empty(),
            "serializer reloaded while {} bits are still in flight",
            self.pipeline.len() - self.cursor
        );
        self.pipeline = word.to_vec();
        self.cursor = 0;
    }

    /// Shifts one bit out at the modulation clock, or `None` when the
    /// pipeline is empty.
    pub fn shift_out(&mut self) -> Option<bool> {
        if self.cursor >= self.pipeline.len() {
            return None;
        }
        let bit = self.pipeline[self.cursor];
        self.cursor += 1;
        self.shifted_bits += 1;
        Some(bit)
    }

    /// `true` when every loaded bit has been shifted out.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cursor >= self.pipeline.len()
    }

    /// Total number of bits shifted out since construction.
    #[must_use]
    pub fn shifted_bits(&self) -> u64 {
        self.shifted_bits
    }

    /// Serializes a whole word in one call (load + shift until empty).
    ///
    /// # Panics
    ///
    /// Same conditions as [`Serializer::load`].
    pub fn serialize_word(&mut self, word: &[bool]) -> Vec<bool> {
        self.load(word);
        let mut out = Vec::with_capacity(self.depth);
        while let Some(bit) = self.shift_out() {
            out.push(bit);
        }
        out
    }
}

/// A serial-in / parallel-out register pipeline.
///
/// ```
/// use onoc_interface::serdes::Deserializer;
///
/// let mut des = Deserializer::new(4);
/// for bit in [true, true, false, true] {
///     des.shift_in(bit);
/// }
/// assert_eq!(des.take_word(), Some(vec![true, true, false, true]));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Deserializer {
    depth: usize,
    pipeline: Vec<bool>,
    completed: Option<Vec<bool>>,
    received_bits: u64,
}

impl Deserializer {
    /// Creates a deserializer with the given register depth.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    #[must_use]
    pub fn new(depth: usize) -> Self {
        assert!(depth > 0, "deserializer depth must be non-zero");
        Self {
            depth,
            pipeline: Vec::with_capacity(depth),
            completed: None,
            received_bits: 0,
        }
    }

    /// Register depth (output word width).
    #[must_use]
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Shifts one received bit in.  When the pipeline fills, the word becomes
    /// available through [`Deserializer::take_word`].
    ///
    /// # Panics
    ///
    /// Panics if a completed word has not been consumed yet.
    pub fn shift_in(&mut self, bit: bool) {
        assert!(
            self.completed.is_none(),
            "deserializer overrun: completed word not consumed"
        );
        self.pipeline.push(bit);
        self.received_bits += 1;
        if self.pipeline.len() == self.depth {
            self.completed = Some(std::mem::take(&mut self.pipeline));
        }
    }

    /// Takes the completed word, if any.
    pub fn take_word(&mut self) -> Option<Vec<bool>> {
        self.completed.take()
    }

    /// Number of bits currently buffered (not yet forming a full word).
    #[must_use]
    pub fn pending_bits(&self) -> usize {
        self.pipeline.len()
    }

    /// Total number of bits received since construction.
    #[must_use]
    pub fn received_bits(&self) -> u64 {
        self.received_bits
    }

    /// Deserializes a whole stream in one call.
    ///
    /// # Panics
    ///
    /// Panics if the stream length is not exactly the register depth.
    pub fn deserialize_stream(&mut self, stream: &[bool]) -> Vec<bool> {
        assert_eq!(
            stream.len(),
            self.depth,
            "stream length must match the deserializer depth"
        );
        for &bit in stream {
            self.shift_in(bit);
        }
        self.take_word().expect("a full word was just shifted in")
    }
}

/// Round-trips a [`BitBlock`] through a serializer/deserializer pair of the
/// given depth; used by the property tests to show the SER/DES chain is
/// bit-exact.
#[must_use]
pub fn serdes_round_trip(word: &BitBlock) -> BitBlock {
    let mut ser = Serializer::new(word.len());
    let mut des = Deserializer::new(word.len());
    let stream = ser.serialize_word(&word.to_bools());
    BitBlock::from_bools(&des.deserialize_stream(&stream))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serializer_preserves_order() {
        let mut ser = Serializer::new(112);
        let word: Vec<bool> = (0..112).map(|i| i % 5 == 0).collect();
        assert_eq!(ser.serialize_word(&word), word);
        assert_eq!(ser.shifted_bits(), 112);
    }

    #[test]
    fn serializer_reports_empty_correctly() {
        let mut ser = Serializer::new(2);
        assert!(ser.is_empty());
        ser.load(&[true, false]);
        assert!(!ser.is_empty());
        assert_eq!(ser.shift_out(), Some(true));
        assert_eq!(ser.shift_out(), Some(false));
        assert_eq!(ser.shift_out(), None);
        assert!(ser.is_empty());
    }

    #[test]
    #[should_panic(expected = "in flight")]
    fn serializer_reload_mid_word_panics() {
        let mut ser = Serializer::new(4);
        ser.load(&[true; 4]);
        ser.shift_out();
        ser.load(&[false; 4]);
    }

    #[test]
    #[should_panic(expected = "width must match")]
    fn serializer_wrong_width_panics() {
        let mut ser = Serializer::new(4);
        ser.load(&[true; 5]);
    }

    #[test]
    fn deserializer_reassembles_words() {
        let mut des = Deserializer::new(71);
        let word: Vec<bool> = (0..71).map(|i| i % 3 == 1).collect();
        assert_eq!(des.deserialize_stream(&word), word);
        assert_eq!(des.received_bits(), 71);
        assert_eq!(des.pending_bits(), 0);
    }

    #[test]
    fn deserializer_pending_bits_grow_until_full() {
        let mut des = Deserializer::new(3);
        des.shift_in(true);
        des.shift_in(false);
        assert_eq!(des.pending_bits(), 2);
        assert!(des.take_word().is_none());
        des.shift_in(true);
        assert_eq!(des.take_word(), Some(vec![true, false, true]));
    }

    #[test]
    #[should_panic(expected = "overrun")]
    fn deserializer_overrun_panics() {
        let mut des = Deserializer::new(1);
        des.shift_in(true);
        des.shift_in(false);
    }

    #[test]
    fn round_trip_helper_is_identity() {
        let word = BitBlock::from_u64(0x1234_5678_9ABC_DEF0, 64);
        assert_eq!(serdes_round_trip(&word), word);
    }

    #[test]
    #[should_panic(expected = "depth must be non-zero")]
    fn zero_depth_serializer_panics() {
        let _ = Serializer::new(0);
    }
}
