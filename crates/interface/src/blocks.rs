//! Synthesis cost database reproducing Table I of the paper.
//!
//! The paper synthesized the transmitter and receiver interfaces on a 28 nm
//! FDSOI flow (F_IP = 1 GHz, N_data = 64 bits, F_mod = 10 Gb/s) and reports
//! per-block area, critical path, static and dynamic power.  Running a
//! commercial synthesis flow is out of scope for a reproduction, so the
//! published figures are encoded here as a queryable cost model; every power
//! number used by the channel-power analysis (Fig. 6) is derived from these
//! records exactly as in the paper.

use onoc_ecc_codes::EccScheme;
use onoc_units::{Microwatts, Nanowatts, Picoseconds, SquareMicrometers};
use serde::{Deserialize, Serialize};

/// Which side of the optical link a block belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InterfaceSide {
    /// Emitter (writer) datapath.
    Transmitter,
    /// Receiver (reader) datapath.
    Receiver,
}

/// Identifier of a synthesized hardware block from Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BlockKind {
    /// 1-bit output mode multiplexer (3-to-1) of the transmitter.
    TxModeMux,
    /// Bank of sixteen H(7,4) coders.
    TxHamming74Coders,
    /// Single H(71,64) coder.
    TxHamming7164Coder,
    /// 112-bit serializer used in H(7,4) mode.
    TxSerializer112,
    /// 71-bit serializer used in H(71,64) mode.
    TxSerializer71,
    /// 64-bit serializer used in uncoded mode.
    TxSerializer64,
    /// 64-bit output mode multiplexer (3-to-1) of the receiver.
    RxModeMux,
    /// Bank of sixteen H(7,4) decoders.
    RxHamming74Decoders,
    /// Single H(71,64) decoder.
    RxHamming7164Decoder,
    /// 112-bit deserializer used in H(7,4) mode.
    RxDeserializer112,
    /// 71-bit deserializer used in H(71,64) mode.
    RxDeserializer71,
    /// 64-bit deserializer used in uncoded mode.
    RxDeserializer64,
}

/// Synthesis figures of one hardware block (one row of Table I).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BlockCost {
    /// Which block this record describes.
    pub kind: BlockKind,
    /// Side of the link the block belongs to.
    pub side: InterfaceSide,
    /// Synthesized cell area.
    pub area: SquareMicrometers,
    /// Critical path delay.
    pub critical_path: Picoseconds,
    /// Static (leakage) power.
    pub static_power: Nanowatts,
    /// Dynamic power when the block is active.
    pub dynamic_power: Microwatts,
}

impl BlockCost {
    /// Total power (static + dynamic) in µW.
    #[must_use]
    pub fn total_power(&self) -> Microwatts {
        Microwatts::from(self.static_power) + self.dynamic_power
    }
}

/// The full Table I database.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SynthesisDatabase {
    blocks: Vec<BlockCost>,
}

impl SynthesisDatabase {
    /// The 28 nm FDSOI figures published in Table I of the paper.
    #[must_use]
    pub fn table1() -> Self {
        use BlockKind as K;
        use InterfaceSide::{Receiver as Rx, Transmitter as Tx};
        let row = |kind, side, area, path, stat, dyn_| BlockCost {
            kind,
            side,
            area: SquareMicrometers::new(area),
            critical_path: Picoseconds::new(path),
            static_power: Nanowatts::new(stat),
            dynamic_power: Microwatts::new(dyn_),
        };
        Self {
            blocks: vec![
                row(K::TxModeMux, Tx, 14.0, 80.0, 0.2, 0.23),
                row(K::TxHamming74Coders, Tx, 551.0, 210.0, 1.7, 3.13),
                row(K::TxHamming7164Coder, Tx, 490.0, 350.0, 1.6, 2.51),
                row(K::TxSerializer112, Tx, 433.0, 70.0, 6.5, 6.21),
                row(K::TxSerializer71, Tx, 276.0, 70.0, 4.1, 3.24),
                row(K::TxSerializer64, Tx, 249.0, 70.0, 3.6, 2.93),
                row(K::RxModeMux, Rx, 815.0, 80.0, 10.8, 1.55),
                row(K::RxHamming74Decoders, Rx, 783.0, 300.0, 2.5, 3.80),
                row(K::RxHamming7164Decoder, Rx, 648.0, 570.0, 2.2, 2.63),
                row(K::RxDeserializer112, Rx, 365.0, 60.0, 5.5, 4.75),
                row(K::RxDeserializer71, Rx, 231.0, 60.0, 3.5, 3.02),
                row(K::RxDeserializer64, Rx, 208.0, 60.0, 3.0, 2.75),
            ],
        }
    }

    /// All block records.
    #[must_use]
    pub fn blocks(&self) -> &[BlockCost] {
        &self.blocks
    }

    /// Looks up one block record.
    #[must_use]
    pub fn block(&self, kind: BlockKind) -> BlockCost {
        *self
            .blocks
            .iter()
            .find(|b| b.kind == kind)
            .expect("every BlockKind has a Table I record")
    }

    /// Blocks active on the given `side` when the interface operates in
    /// `scheme` mode.  Returns `None` for schemes that were not synthesized
    /// in the paper (everything other than uncoded, H(7,4) and H(71,64)).
    #[must_use]
    pub fn active_blocks(&self, side: InterfaceSide, scheme: EccScheme) -> Option<Vec<BlockCost>> {
        use BlockKind as K;
        let kinds: Vec<K> = match (side, scheme) {
            (InterfaceSide::Transmitter, EccScheme::Uncoded) => {
                vec![K::TxModeMux, K::TxSerializer64]
            }
            (InterfaceSide::Transmitter, EccScheme::Hamming74) => {
                vec![K::TxModeMux, K::TxHamming74Coders, K::TxSerializer112]
            }
            (InterfaceSide::Transmitter, EccScheme::Hamming7164) => {
                vec![K::TxModeMux, K::TxHamming7164Coder, K::TxSerializer71]
            }
            (InterfaceSide::Receiver, EccScheme::Uncoded) => {
                vec![K::RxModeMux, K::RxDeserializer64]
            }
            (InterfaceSide::Receiver, EccScheme::Hamming74) => {
                vec![K::RxModeMux, K::RxHamming74Decoders, K::RxDeserializer112]
            }
            (InterfaceSide::Receiver, EccScheme::Hamming7164) => {
                vec![K::RxModeMux, K::RxHamming7164Decoder, K::RxDeserializer71]
            }
            _ => return None,
        };
        Some(kinds.into_iter().map(|k| self.block(k)).collect())
    }

    /// Dynamic power of the active datapath on `side` in `scheme` mode (the
    /// per-mode totals of Table I), or an extrapolated estimate for schemes
    /// the paper did not synthesize.
    ///
    /// Extrapolation: coder/decoder power is assumed proportional to the
    /// number of parity-bit computations per word, serializer power to the
    /// number of serialized bits per word; this keeps the ablation sweeps
    /// (A1/A2 in DESIGN.md) on a defensible footing and is documented in
    /// EXPERIMENTS.md.
    #[must_use]
    pub fn dynamic_power(&self, side: InterfaceSide, scheme: EccScheme) -> Microwatts {
        if let Some(blocks) = self.active_blocks(side, scheme) {
            return blocks.iter().map(|b| b.dynamic_power).sum();
        }
        // Extrapolated estimate for non-synthesized schemes.
        let word_bits = onoc_ecc_codes::scheme::IP_WORD_BITS;
        let encoded_bits = scheme.encoded_bits_per_word(word_bits) as f64;
        let parity_bits = (scheme.encoded_bits_per_word(word_bits)
            - word_bits.min(scheme.encoded_bits_per_word(word_bits)))
            as f64;
        let (mux, codec_ref, serdes_ref) = match side {
            InterfaceSide::Transmitter => (
                self.block(BlockKind::TxModeMux).dynamic_power,
                self.block(BlockKind::TxHamming74Coders).dynamic_power,
                self.block(BlockKind::TxSerializer112).dynamic_power,
            ),
            InterfaceSide::Receiver => (
                self.block(BlockKind::RxModeMux).dynamic_power,
                self.block(BlockKind::RxHamming74Decoders).dynamic_power,
                self.block(BlockKind::RxDeserializer112).dynamic_power,
            ),
        };
        // Reference mode: H(7,4) has 48 parity bits and 112 serialized bits.
        let codec = codec_ref * (parity_bits / 48.0);
        let serdes = serdes_ref * (encoded_bits / 112.0);
        mux + codec + serdes
    }

    /// Total area of one `side` of the interface (all modes instantiated, as
    /// in the paper: 2013 µm² TX, 3050 µm² RX).
    #[must_use]
    pub fn total_area(&self, side: InterfaceSide) -> SquareMicrometers {
        self.blocks
            .iter()
            .filter(|b| b.side == side)
            .map(|b| b.area)
            .sum()
    }

    /// Total static power of one `side` (all blocks leak regardless of the
    /// selected mode).
    #[must_use]
    pub fn total_static_power(&self, side: InterfaceSide) -> Nanowatts {
        self.blocks
            .iter()
            .filter(|b| b.side == side)
            .map(|b| b.static_power)
            .sum()
    }

    /// Combined encoder + decoder dynamic power for one wavelength lane
    /// operating in `scheme` mode (the P_ENC+DEC term of Section IV-E).
    #[must_use]
    pub fn encoder_decoder_power(&self, scheme: EccScheme) -> Microwatts {
        self.dynamic_power(InterfaceSide::Transmitter, scheme)
            + self.dynamic_power(InterfaceSide::Receiver, scheme)
    }

    /// Worst critical path among the blocks active in `scheme` mode.
    #[must_use]
    pub fn critical_path(&self, scheme: EccScheme) -> Option<Picoseconds> {
        let mut worst = Picoseconds::zero();
        for side in [InterfaceSide::Transmitter, InterfaceSide::Receiver] {
            for block in self.active_blocks(side, scheme)? {
                worst = worst.max(block.critical_path);
            }
        }
        Some(worst)
    }
}

impl Default for SynthesisDatabase {
    fn default() -> Self {
        Self::table1()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_twelve_rows() {
        assert_eq!(SynthesisDatabase::table1().blocks().len(), 12);
    }

    #[test]
    fn per_mode_transmitter_totals_match_table1() {
        let db = SynthesisDatabase::table1();
        let h74 = db.dynamic_power(InterfaceSide::Transmitter, EccScheme::Hamming74);
        let h7164 = db.dynamic_power(InterfaceSide::Transmitter, EccScheme::Hamming7164);
        let uncoded = db.dynamic_power(InterfaceSide::Transmitter, EccScheme::Uncoded);
        assert!((h74.value() - 9.57).abs() < 0.01, "H(7,4) TX = {h74}");
        assert!((h7164.value() - 5.98).abs() < 0.02, "H(71,64) TX = {h7164}");
        assert!(
            (uncoded.value() - 3.16).abs() < 0.01,
            "uncoded TX = {uncoded}"
        );
    }

    #[test]
    fn per_mode_receiver_totals_match_table1() {
        let db = SynthesisDatabase::table1();
        let h74 = db.dynamic_power(InterfaceSide::Receiver, EccScheme::Hamming74);
        let h7164 = db.dynamic_power(InterfaceSide::Receiver, EccScheme::Hamming7164);
        let uncoded = db.dynamic_power(InterfaceSide::Receiver, EccScheme::Uncoded);
        assert!((h74.value() - 10.1).abs() < 0.01, "H(7,4) RX = {h74}");
        assert!((h7164.value() - 7.2).abs() < 0.02, "H(71,64) RX = {h7164}");
        assert!(
            (uncoded.value() - 4.3).abs() < 0.01,
            "uncoded RX = {uncoded}"
        );
    }

    #[test]
    fn total_areas_match_table1() {
        let db = SynthesisDatabase::table1();
        assert!((db.total_area(InterfaceSide::Transmitter).value() - 2013.0).abs() < 1.0);
        assert!((db.total_area(InterfaceSide::Receiver).value() - 3050.0).abs() < 1.0);
    }

    #[test]
    fn static_power_is_negligible_compared_to_dynamic() {
        let db = SynthesisDatabase::table1();
        for side in [InterfaceSide::Transmitter, InterfaceSide::Receiver] {
            let static_uw = Microwatts::from(db.total_static_power(side)).value();
            let dynamic_uw = db.dynamic_power(side, EccScheme::Hamming74).value();
            assert!(static_uw < dynamic_uw / 100.0);
        }
    }

    #[test]
    fn h74_is_the_most_power_hungry_synthesized_mode() {
        let db = SynthesisDatabase::table1();
        let schemes = [
            EccScheme::Uncoded,
            EccScheme::Hamming7164,
            EccScheme::Hamming74,
        ];
        let powers: Vec<f64> = schemes
            .iter()
            .map(|&s| db.encoder_decoder_power(s).value())
            .collect();
        assert!(powers[2] > powers[1] && powers[1] > powers[0]);
        // Paper: 19.67 µW combined for H(7,4).
        assert!((powers[2] - 19.67).abs() < 0.1);
    }

    #[test]
    fn critical_paths_meet_the_clock_targets() {
        let db = SynthesisDatabase::table1();
        for scheme in EccScheme::paper_schemes() {
            let path = db.critical_path(scheme).expect("synthesized scheme");
            // Codec blocks are clocked at F_IP = 1 GHz (1000 ps budget).
            assert!(path.value() < 1000.0, "{scheme}: {path}");
        }
        // SER/DES blocks run at F_mod = 10 GHz (100 ps budget).
        for kind in [
            BlockKind::TxSerializer112,
            BlockKind::TxSerializer71,
            BlockKind::TxSerializer64,
            BlockKind::RxDeserializer112,
            BlockKind::RxDeserializer71,
            BlockKind::RxDeserializer64,
        ] {
            assert!(db.block(kind).critical_path.value() < 100.0);
        }
    }

    #[test]
    fn extrapolated_modes_interpolate_between_synthesized_ones() {
        let db = SynthesisDatabase::table1();
        // SECDED(72,64) is one parity bit wider than H(71,64): its estimated
        // power must sit between the H(71,64) and H(7,4) figures.
        let secded = db.encoder_decoder_power(EccScheme::Secded7264).value();
        let h7164 = db.encoder_decoder_power(EccScheme::Hamming7164).value();
        let h74 = db.encoder_decoder_power(EccScheme::Hamming74).value();
        assert!(secded > h7164 * 0.5 && secded < h74, "secded = {secded}");
    }

    #[test]
    fn active_blocks_are_none_for_unsynthesized_schemes() {
        let db = SynthesisDatabase::table1();
        assert!(db
            .active_blocks(InterfaceSide::Transmitter, EccScheme::Repetition3)
            .is_none());
        assert!(db.critical_path(EccScheme::Repetition3).is_none());
    }

    #[test]
    fn block_total_power_adds_static_and_dynamic() {
        let db = SynthesisDatabase::table1();
        let b = db.block(BlockKind::TxHamming74Coders);
        assert!((b.total_power().value() - 3.1317).abs() < 1e-3);
    }
}
