//! Channel power and energy accounting (Section IV-E and Fig. 6).
//!
//! Per wavelength the paper defines
//!
//! ```text
//! P_channel = P_ENC+DEC + P_MR + P_laser
//! ```
//!
//! where `P_ENC+DEC` comes from the synthesis results (Table I), `P_MR` is
//! the modulator driver power (1.36 mW) and `P_laser` the laser electrical
//! power produced by the photonic solver.  This module aggregates those
//! terms, scales them to the 16-wavelength channel, and derives energy-per-bit
//! figures and the communication-time factor used for the Fig. 6 trade-off.

use onoc_ecc_codes::EccScheme;
use onoc_units::{GigabitsPerSecond, Milliwatts, PicojoulesPerBit};
use serde::{Deserialize, Serialize};

use crate::blocks::SynthesisDatabase;
use crate::config::InterfaceConfig;
use crate::timing::CommunicationTiming;

/// How the energy-per-bit figure charges the channel power to payload bits.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum EnergyAccounting {
    /// The channel only burns power while a word is in flight: energy per
    /// payload bit is `P_channel × CT / payload-bit rate`.  This is the
    /// self-consistent accounting used as the primary mode of this
    /// reproduction.
    #[default]
    ActiveTransfersOnly,
    /// The laser (and modulator bias) stay powered even between transfers;
    /// only a fraction `utilization` of the time carries payload.  This is
    /// the pessimistic accounting relevant when no laser-gating scheme
    /// (ref. \[9\] of the paper) is deployed.
    AlwaysOn {
        /// Fraction of time the channel carries payload, in `(0, 1]`.
        utilization: f64,
    },
}

/// Per-wavelength power breakdown of one operating point (one bar group of
/// Fig. 6a, plus the thermal-tuning term).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChannelPowerBreakdown {
    /// Coding scheme of the operating point.
    pub scheme: EccScheme,
    /// Encoder + decoder dynamic power attributed to this wavelength lane.
    pub encoder_decoder: Milliwatts,
    /// Micro-ring modulator driver power (P_MR).
    pub modulation: Milliwatts,
    /// Laser electrical power (P_laser).
    pub laser: Milliwatts,
    /// Micro-ring thermal tuning (heater) power attributed to this lane
    /// (P_tune; zero at the calibration temperature).
    pub tuning: Milliwatts,
}

impl ChannelPowerBreakdown {
    /// Total power of one wavelength lane.
    #[must_use]
    pub fn per_wavelength_total(&self) -> Milliwatts {
        self.encoder_decoder + self.modulation + self.laser + self.tuning
    }

    /// Total power of a channel with `wavelengths` lanes.
    #[must_use]
    pub fn channel_total(&self, wavelengths: usize) -> Milliwatts {
        self.per_wavelength_total() * wavelengths as f64
    }

    /// Fraction of the per-wavelength power consumed by the laser
    /// (≈ 92% for the uncoded transmission at BER = 10⁻¹¹ in the paper).
    #[must_use]
    pub fn laser_fraction(&self) -> f64 {
        self.laser.value() / self.per_wavelength_total().value()
    }
}

/// Computes power breakdowns and energy figures for an interface
/// configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChannelPowerModel {
    config: InterfaceConfig,
    synthesis: SynthesisDatabase,
    modulation_power: Milliwatts,
}

impl ChannelPowerModel {
    /// Creates a power model from an interface configuration and the
    /// modulator driver power.
    #[must_use]
    pub fn new(config: InterfaceConfig, modulation_power: Milliwatts) -> Self {
        Self {
            config,
            synthesis: SynthesisDatabase::table1(),
            modulation_power,
        }
    }

    /// The paper's configuration: 64-bit bus, 16 wavelengths, P_MR = 1.36 mW.
    #[must_use]
    pub fn paper_default() -> Self {
        Self::new(InterfaceConfig::paper_default(), Milliwatts::new(1.36))
    }

    /// Interface configuration.
    #[must_use]
    pub fn config(&self) -> &InterfaceConfig {
        &self.config
    }

    /// Per-wavelength power breakdown for `scheme` given the laser electrical
    /// power of one wavelength, at the calibration temperature (no thermal
    /// tuning power).
    #[must_use]
    pub fn breakdown(
        &self,
        scheme: EccScheme,
        laser_per_wavelength: Milliwatts,
    ) -> ChannelPowerBreakdown {
        self.breakdown_with_tuning(scheme, laser_per_wavelength, Milliwatts::zero())
    }

    /// Per-wavelength power breakdown including the micro-ring thermal
    /// tuning power of one lane (heater power × rings per lane, computed by
    /// the photonic thermal solver).
    #[must_use]
    pub fn breakdown_with_tuning(
        &self,
        scheme: EccScheme,
        laser_per_wavelength: Milliwatts,
        tuning_per_wavelength: Milliwatts,
    ) -> ChannelPowerBreakdown {
        // Table I characterises the whole 64-bit interface; the paper quotes
        // per-wavelength figures, so the codec power is shared across lanes.
        let enc_dec_total = self.synthesis.encoder_decoder_power(scheme);
        let per_lane = Milliwatts::from(enc_dec_total) / self.config.wavelength_lanes as f64;
        ChannelPowerBreakdown {
            scheme,
            encoder_decoder: per_lane,
            modulation: self.modulation_power,
            laser: laser_per_wavelength,
            tuning: tuning_per_wavelength,
        }
    }

    /// Communication timing for `scheme` on this interface.
    #[must_use]
    pub fn timing(&self, scheme: EccScheme) -> CommunicationTiming {
        CommunicationTiming::evaluate(&self.config, scheme)
    }

    /// Energy per payload bit for a breakdown, under the chosen accounting.
    ///
    /// # Panics
    ///
    /// Panics if `AlwaysOn` is used with a utilization outside `(0, 1]`.
    #[must_use]
    pub fn energy_per_bit(
        &self,
        breakdown: &ChannelPowerBreakdown,
        accounting: EnergyAccounting,
    ) -> PicojoulesPerBit {
        let channel_power = breakdown.channel_total(self.config.wavelength_lanes);
        let payload_rate = self.config.payload_bandwidth();
        let ct = breakdown.scheme.communication_time_factor();
        match accounting {
            EnergyAccounting::ActiveTransfersOnly => {
                // P × CT / payload rate: redundancy stretches the transfer.
                let effective_rate = GigabitsPerSecond::new(payload_rate.value() / ct);
                PicojoulesPerBit::from_power_and_rate(channel_power, effective_rate)
            }
            EnergyAccounting::AlwaysOn { utilization } => {
                assert!(
                    utilization > 0.0 && utilization <= 1.0,
                    "utilization must be in (0, 1]"
                );
                let effective_rate =
                    GigabitsPerSecond::new(payload_rate.value() * utilization / ct);
                PicojoulesPerBit::from_power_and_rate(channel_power, effective_rate)
            }
        }
    }
}

impl Default for ChannelPowerModel {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> ChannelPowerModel {
        ChannelPowerModel::paper_default()
    }

    /// The per-wavelength laser powers reported by the paper at BER = 10⁻¹¹.
    fn paper_breakdowns(m: &ChannelPowerModel) -> [ChannelPowerBreakdown; 3] {
        [
            m.breakdown(EccScheme::Uncoded, Milliwatts::new(14.35)),
            m.breakdown(EccScheme::Hamming7164, Milliwatts::new(7.12)),
            m.breakdown(EccScheme::Hamming74, Milliwatts::new(6.64)),
        ]
    }

    #[test]
    fn uncoded_laser_dominates_the_channel_power() {
        let m = model();
        let [uncoded, _, _] = paper_breakdowns(&m);
        assert!(uncoded.laser_fraction() > 0.9);
        // 14.35 + 1.36 + ~0.0005 ≈ 15.71 mW per wavelength.
        assert!((uncoded.per_wavelength_total().value() - 15.71).abs() < 0.02);
    }

    #[test]
    fn channel_totals_match_the_paper_scale() {
        let m = model();
        let [uncoded, h7164, _] = paper_breakdowns(&m);
        // Paper: 251 mW uncoded vs 136 mW with H(71,64) per 16-wavelength
        // waveguide.
        assert!((uncoded.channel_total(16).value() - 251.0).abs() < 2.0);
        assert!((h7164.channel_total(16).value() - 136.0).abs() < 2.0);
    }

    #[test]
    fn coded_schemes_cut_the_channel_power_by_roughly_half() {
        let m = model();
        let [uncoded, h7164, h74] = paper_breakdowns(&m);
        let r7164 = 1.0 - h7164.channel_total(16).value() / uncoded.channel_total(16).value();
        let r74 = 1.0 - h74.channel_total(16).value() / uncoded.channel_total(16).value();
        // Paper: −45% and −49%.
        assert!((r7164 - 0.45).abs() < 0.03, "H(71,64) saving {r7164}");
        assert!((r74 - 0.49).abs() < 0.03, "H(7,4) saving {r74}");
    }

    #[test]
    fn uncoded_energy_per_bit_matches_the_paper() {
        let m = model();
        let [uncoded, _, _] = paper_breakdowns(&m);
        let e = m.energy_per_bit(&uncoded, EnergyAccounting::ActiveTransfersOnly);
        assert!((e.value() - 3.92).abs() < 0.05, "E/bit = {e}");
    }

    #[test]
    fn h7164_energy_per_bit_beats_uncoded() {
        // The paper's qualitative claim: H(71,64) is the most energy
        // efficient scheme (its 11% time overhead is outweighed by the ~2×
        // laser power reduction).
        let m = model();
        let [uncoded, h7164, _] = paper_breakdowns(&m);
        let e_uncoded = m.energy_per_bit(&uncoded, EnergyAccounting::ActiveTransfersOnly);
        let e_h7164 = m.energy_per_bit(&h7164, EnergyAccounting::ActiveTransfersOnly);
        assert!(e_h7164.value() < e_uncoded.value());
    }

    #[test]
    fn always_on_accounting_penalises_low_utilization() {
        let m = model();
        let [uncoded, _, _] = paper_breakdowns(&m);
        let active = m.energy_per_bit(&uncoded, EnergyAccounting::ActiveTransfersOnly);
        let idle_heavy =
            m.energy_per_bit(&uncoded, EnergyAccounting::AlwaysOn { utilization: 0.25 });
        assert!((idle_heavy.value() - active.value() * 4.0).abs() < 1e-9);
    }

    #[test]
    fn breakdown_component_ordering() {
        let m = model();
        let b = m.breakdown(EccScheme::Hamming74, Milliwatts::new(6.64));
        assert!(b.encoder_decoder.value() < b.modulation.value());
        assert!(b.modulation.value() < b.laser.value());
        // Per-lane codec power ≈ 19.67 µW / 16 ≈ 1.2 µW.
        assert!((b.encoder_decoder.value() - 0.00123).abs() < 0.0002);
    }

    #[test]
    fn tuning_power_enters_the_lane_total_and_energy() {
        let m = model();
        let plain = m.breakdown(EccScheme::Hamming7164, Milliwatts::new(7.12));
        assert!(plain.tuning.is_zero());
        let tuned = m.breakdown_with_tuning(
            EccScheme::Hamming7164,
            Milliwatts::new(7.12),
            Milliwatts::new(4.3),
        );
        assert!(
            (tuned.per_wavelength_total().value() - (plain.per_wavelength_total().value() + 4.3))
                .abs()
                < 1e-12
        );
        // Energy accounting charges the heaters too.
        let e_plain = m.energy_per_bit(&plain, EnergyAccounting::ActiveTransfersOnly);
        let e_tuned = m.energy_per_bit(&tuned, EnergyAccounting::ActiveTransfersOnly);
        assert!(e_tuned.value() > e_plain.value());
        // And the laser share shrinks accordingly.
        assert!(tuned.laser_fraction() < plain.laser_fraction());
    }

    #[test]
    fn timing_is_consistent_with_the_scheme() {
        let m = model();
        let t = m.timing(EccScheme::Hamming74);
        assert!((t.communication_time_factor - 1.75).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "utilization")]
    fn zero_utilization_panics() {
        let m = model();
        let b = m.breakdown(EccScheme::Uncoded, Milliwatts::new(14.35));
        let _ = m.energy_per_bit(&b, EnergyAccounting::AlwaysOn { utilization: 0.0 });
    }
}
