//! Receiver datapath of the ONI.
//!
//! Fig. 2-d of the paper: the photocurrent is amplified and compared to a
//! threshold (modelled upstream by the BER chain), the resulting bit stream
//! is deserialized at F_mod, the decoder bank corrects errors, and the mode
//! mux presents the recovered 64-bit word to the destination IP.

use onoc_ecc_codes::EccScheme;
use onoc_units::{Microwatts, SquareMicrometers};
use serde::{Deserialize, Serialize};

use crate::blocks::{InterfaceSide, SynthesisDatabase};
use crate::config::{InterfaceConfig, InterfaceError};
use crate::serdes::Deserializer;

/// The outcome of receiving one word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DecodedWord {
    /// The recovered IP word.
    pub word: u64,
    /// Number of codewords in which the decoder corrected an error.
    pub corrected_blocks: usize,
    /// Number of codewords flagged as uncorrectable (only for codes with
    /// detection capability, e.g. SECDED or parity).
    pub uncorrectable_blocks: usize,
}

/// The receiver-side interface datapath.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Receiver {
    config: InterfaceConfig,
    synthesis: SynthesisDatabase,
}

impl Receiver {
    /// Creates a receiver for the given configuration.
    #[must_use]
    pub fn new(config: InterfaceConfig) -> Self {
        Self {
            config,
            synthesis: SynthesisDatabase::table1(),
        }
    }

    /// Interface configuration.
    #[must_use]
    pub fn config(&self) -> &InterfaceConfig {
        &self.config
    }

    /// Decodes a serial stream produced by
    /// [`Transmitter::encode_word`](crate::transmitter::Transmitter::encode_word)
    /// (possibly corrupted by the optical channel) back into an IP word.
    ///
    /// # Errors
    ///
    /// * [`InterfaceError::WrongStreamLength`] if the stream does not have
    ///   the length expected for `scheme`;
    /// * [`InterfaceError::Code`] for codec-level failures.
    pub fn decode_stream(
        &self,
        stream: &[bool],
        scheme: EccScheme,
    ) -> Result<DecodedWord, InterfaceError> {
        let expected = self.config.encoded_bits(scheme);
        if stream.len() != expected {
            return Err(InterfaceError::WrongStreamLength {
                expected,
                actual: stream.len(),
            });
        }
        // Deserialize in the F_mod clock domain.
        let mut deserializer = Deserializer::new(expected);
        let parallel = deserializer.deserialize_stream(stream);

        let code = scheme.build()?;
        let n = code.block_length();
        let mut data_bits = Vec::with_capacity(self.config.word_bits);
        let mut corrected_blocks = 0;
        let mut uncorrectable_blocks = 0;
        for chunk in parallel.chunks(n) {
            let outcome = code.decode(chunk)?;
            if outcome.corrected_error {
                corrected_blocks += 1;
            }
            if outcome.detected_uncorrectable {
                uncorrectable_blocks += 1;
            }
            data_bits.extend(outcome.data);
        }
        data_bits.truncate(self.config.word_bits);

        let word = data_bits
            .iter()
            .enumerate()
            .fold(0u64, |acc, (i, &bit)| acc | (u64::from(bit) << i));
        Ok(DecodedWord {
            word,
            corrected_blocks,
            uncorrectable_blocks,
        })
    }

    /// Dynamic power of the receiver datapath in `scheme` mode.
    #[must_use]
    pub fn dynamic_power(&self, scheme: EccScheme) -> Microwatts {
        self.synthesis
            .dynamic_power(InterfaceSide::Receiver, scheme)
    }

    /// Total synthesized area of the receiver (all modes instantiated).
    #[must_use]
    pub fn area(&self) -> SquareMicrometers {
        self.synthesis.total_area(InterfaceSide::Receiver)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transmitter::Transmitter;

    fn pair() -> (Transmitter, Receiver) {
        let config = InterfaceConfig::paper_default();
        (Transmitter::new(config.clone()), Receiver::new(config))
    }

    #[test]
    fn clean_round_trip_for_every_scheme() {
        let (tx, rx) = pair();
        let word = 0xFEED_FACE_DEAD_BEEFu64;
        for scheme in [
            EccScheme::Uncoded,
            EccScheme::Hamming74,
            EccScheme::Hamming7164,
            EccScheme::Secded7264,
            EccScheme::Repetition3,
            EccScheme::ParityOnly,
        ] {
            let stream = tx.encode_word(word, scheme).unwrap();
            let decoded = rx.decode_stream(&stream, scheme).unwrap();
            assert_eq!(decoded.word, word, "{scheme}");
            assert_eq!(decoded.corrected_blocks, 0, "{scheme}");
            assert_eq!(decoded.uncorrectable_blocks, 0, "{scheme}");
        }
    }

    #[test]
    fn single_bit_errors_are_corrected_by_hamming_modes() {
        let (tx, rx) = pair();
        let word = 0x0123_4567_89AB_CDEFu64;
        for scheme in [
            EccScheme::Hamming74,
            EccScheme::Hamming7164,
            EccScheme::Secded7264,
        ] {
            let clean = tx.encode_word(word, scheme).unwrap();
            for position in [0, clean.len() / 2, clean.len() - 1] {
                let mut corrupted = clean.clone();
                corrupted[position] = !corrupted[position];
                let decoded = rx.decode_stream(&corrupted, scheme).unwrap();
                assert_eq!(decoded.word, word, "{scheme} flip at {position}");
                assert_eq!(decoded.corrected_blocks, 1);
            }
        }
    }

    #[test]
    fn h74_corrects_one_error_per_codeword_16_errors_total() {
        let (tx, rx) = pair();
        let word = u64::MAX;
        let clean = tx.encode_word(word, EccScheme::Hamming74).unwrap();
        // Flip the first bit of each of the 16 codewords.
        let mut corrupted = clean;
        for block in 0..16 {
            corrupted[block * 7] = !corrupted[block * 7];
        }
        let decoded = rx.decode_stream(&corrupted, EccScheme::Hamming74).unwrap();
        assert_eq!(decoded.word, word);
        assert_eq!(decoded.corrected_blocks, 16);
    }

    #[test]
    fn uncoded_mode_propagates_errors() {
        let (tx, rx) = pair();
        let word = 0u64;
        let mut stream = tx.encode_word(word, EccScheme::Uncoded).unwrap();
        stream[5] = true;
        let decoded = rx.decode_stream(&stream, EccScheme::Uncoded).unwrap();
        assert_eq!(decoded.word, 1 << 5);
    }

    #[test]
    fn secded_flags_double_errors() {
        let (tx, rx) = pair();
        let clean = tx.encode_word(99, EccScheme::Secded7264).unwrap();
        let mut corrupted = clean;
        corrupted[3] = !corrupted[3];
        corrupted[40] = !corrupted[40];
        let decoded = rx.decode_stream(&corrupted, EccScheme::Secded7264).unwrap();
        assert_eq!(decoded.uncorrectable_blocks, 1);
    }

    #[test]
    fn wrong_stream_length_is_reported() {
        let (_, rx) = pair();
        let err = rx
            .decode_stream(&[false; 70], EccScheme::Hamming7164)
            .unwrap_err();
        assert!(matches!(
            err,
            InterfaceError::WrongStreamLength {
                expected: 71,
                actual: 70
            }
        ));
    }

    #[test]
    fn receiver_costs_come_from_table1() {
        let (_, rx) = pair();
        assert!((rx.area().value() - 3050.0).abs() < 1.0);
        assert!((rx.dynamic_power(EccScheme::Hamming74).value() - 10.1).abs() < 0.01);
        assert!((rx.dynamic_power(EccScheme::Uncoded).value() - 4.3).abs() < 0.01);
    }
}
