//! A minimal JSON document model with a writer and a recursive-descent
//! parser.
//!
//! The build container has no crates.io access, so the workspace's `serde`
//! is an inert compat stub (`crates/compat/serde`): deriving
//! `Serialize`/`Deserialize` compiles but serializes nothing.  Telemetry,
//! however, genuinely needs bytes on disk — the JSONL event stream and the
//! `BENCH_scaling.json` perf-trajectory artifact are consumed by CI and by
//! humans — so this module carries the small, dependency-free JSON kernel
//! those writers share.  It is deliberately tiny: just enough of RFC 8259 to
//! round-trip the event vocabulary and the metrics snapshots (no `\u`
//! escapes beyond what the writer emits, numbers parsed as `f64`).

use std::fmt::Write as _;

/// One JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (integers are exact up to 2⁵³).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved by the writer, so documents
    /// built from sorted inputs render deterministically.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An object builder from `(key, value)` pairs.
    #[must_use]
    pub fn obj(fields: Vec<(&str, Json)>) -> Self {
        Self::Obj(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// The value of `key` when `self` is an object that carries it.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Self::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number when `self` is one.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Self::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The number as a non-negative integer (counters, indices).
    #[must_use]
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Self::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= 2f64.powi(53) => Some(*x as u64),
            _ => None,
        }
    }

    /// The string when `self` is one.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Self::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean when `self` is one.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Self::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements when `self` is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Self::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The fields when `self` is an object.
    #[must_use]
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Self::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// Renders the value as compact single-line JSON.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Renders the value as indented multi-line JSON (2-space steps).
    #[must_use]
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (open_pad, item_pad, close_pad) = match indent {
            Some(step) => (
                "\n".to_owned() + &" ".repeat(step * (depth + 1)),
                "\n".to_owned() + &" ".repeat(step * (depth + 1)),
                "\n".to_owned() + &" ".repeat(step * depth),
            ),
            None => (String::new(), String::new(), String::new()),
        };
        match self {
            Self::Null => out.push_str("null"),
            Self::Bool(true) => out.push_str("true"),
            Self::Bool(false) => out.push_str("false"),
            Self::Num(x) => write_number(out, *x),
            Self::Str(s) => write_string(out, s),
            Self::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                out.push_str(&open_pad);
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                        out.push_str(&item_pad);
                    }
                    item.write(out, indent, depth + 1);
                }
                out.push_str(&close_pad);
                out.push(']');
            }
            Self::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                out.push_str(&open_pad);
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                        out.push_str(&item_pad);
                    }
                    write_string(out, key);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    value.write(out, indent, depth + 1);
                }
                out.push_str(&close_pad);
                out.push('}');
            }
        }
    }

    /// Parses one JSON value from `text` (trailing whitespace allowed,
    /// trailing garbage rejected).
    ///
    /// # Errors
    ///
    /// A human-readable description with the byte offset of the first
    /// problem.
    pub fn parse(text: &str) -> Result<Self, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing characters at byte {pos}"));
        }
        Ok(value)
    }
}

impl From<f64> for Json {
    fn from(value: f64) -> Self {
        Self::Num(value)
    }
}

impl From<u64> for Json {
    #[allow(clippy::cast_precision_loss)]
    fn from(value: u64) -> Self {
        Self::Num(value as f64)
    }
}

impl From<usize> for Json {
    #[allow(clippy::cast_precision_loss)]
    fn from(value: usize) -> Self {
        Self::Num(value as f64)
    }
}

impl From<bool> for Json {
    fn from(value: bool) -> Self {
        Self::Bool(value)
    }
}

impl From<&str> for Json {
    fn from(value: &str) -> Self {
        Self::Str(value.to_owned())
    }
}

impl From<String> for Json {
    fn from(value: String) -> Self {
        Self::Str(value)
    }
}

/// Writes a number the parser can read back exactly: integers without an
/// exponent, everything else via `f64`'s shortest round-trip `Display`.
/// Non-finite values (never produced by the metrics, but a wall clock could
/// conceivably overflow a division) degrade to `null`.
fn write_number(out: &mut String, x: f64) {
    if !x.is_finite() {
        out.push_str("null");
    } else if x.fract() == 0.0 && x.abs() < 2f64.powi(53) {
        let _ = write!(out, "{x:.0}");
    } else {
        let _ = write!(out, "{x}");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, literal: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(value)
    } else {
        Err(format!("expected `{literal}` at byte {pos}", pos = *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => expect(bytes, pos, "null", Json::Null),
        Some(b't') => expect(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected `:` at byte {pos}", pos = *pos));
                }
                *pos += 1;
                let value = parse_value(bytes, pos)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}", pos = *pos));
    }
    *pos += 1;
    let mut out = String::new();
    let text = std::str::from_utf8(bytes).map_err(|e| e.to_string())?;
    let mut chars = text[*pos..].char_indices();
    while let Some((offset, c)) = chars.next() {
        match c {
            '"' => {
                *pos += offset + 1;
                return Ok(out);
            }
            '\\' => match chars.next() {
                Some((_, '"')) => out.push('"'),
                Some((_, '\\')) => out.push('\\'),
                Some((_, '/')) => out.push('/'),
                Some((_, 'n')) => out.push('\n'),
                Some((_, 'r')) => out.push('\r'),
                Some((_, 't')) => out.push('\t'),
                Some((_, 'b')) => out.push('\u{8}'),
                Some((_, 'f')) => out.push('\u{c}'),
                Some((escape_at, 'u')) => {
                    let start = *pos + escape_at + 1;
                    let hex = text
                        .get(start..start + 4)
                        .ok_or_else(|| "truncated \\u escape".to_owned())?;
                    let code =
                        u32::from_str_radix(hex, 16).map_err(|e| format!("bad \\u escape: {e}"))?;
                    out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                    for _ in 0..4 {
                        chars.next();
                    }
                }
                other => return Err(format!("bad escape {other:?}")),
            },
            c => out.push(c),
        }
    }
    Err("unterminated string".into())
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number `{text}` at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_and_parses_scalars() {
        for (value, expected) in [
            (Json::Null, "null"),
            (Json::Bool(true), "true"),
            (Json::Bool(false), "false"),
            (Json::Num(42.0), "42"),
            (Json::Num(-1.5), "-1.5"),
            (
                Json::Str("hi \"there\"\n".into()),
                "\"hi \\\"there\\\"\\n\"",
            ),
        ] {
            assert_eq!(value.render(), expected);
            assert_eq!(Json::parse(expected).unwrap(), value);
        }
    }

    #[test]
    fn round_trips_nested_documents() {
        let doc = Json::obj(vec![
            ("name", "perf_trajectory".into()),
            ("counts", Json::Arr(vec![1u64.into(), 2u64.into()])),
            (
                "nested",
                Json::obj(vec![
                    ("pi", std::f64::consts::PI.into()),
                    ("none", Json::Null),
                ]),
            ),
            ("ok", true.into()),
        ]);
        for text in [doc.render(), doc.render_pretty()] {
            assert_eq!(Json::parse(&text).unwrap(), doc, "{text}");
        }
    }

    #[test]
    fn accessors_navigate_objects() {
        let doc = Json::parse(r#"{"a": {"b": [1, "x", true]}, "n": 7}"#).unwrap();
        assert_eq!(doc.get("n").and_then(Json::as_u64), Some(7));
        let items = doc
            .get("a")
            .and_then(|a| a.get("b"))
            .and_then(Json::as_array)
            .unwrap();
        assert_eq!(items[0].as_f64(), Some(1.0));
        assert_eq!(items[1].as_str(), Some("x"));
        assert_eq!(items[2].as_bool(), Some(true));
        assert!(doc.get("missing").is_none());
        assert_eq!(doc.as_object().unwrap().len(), 2);
        assert!(Json::Num(1.5).as_u64().is_none());
        assert!(Json::Num(-1.0).as_u64().is_none());
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "tru",
            "{\"a\" 1}",
            "1 2",
            "{\"a\":}",
            "nope",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn large_integers_render_without_exponent() {
        let big = (1u64 << 52) + 12345;
        let json = Json::from(big);
        assert_eq!(json.render(), format!("{big}"));
        assert_eq!(Json::parse(&json.render()).unwrap().as_u64(), Some(big));
        assert_eq!(Json::Num(f64::NAN).render(), "null");
    }

    #[test]
    fn unicode_and_control_escapes_round_trip() {
        let s = Json::Str("tabs\tand\u{1}bells — ünïcode".into());
        assert_eq!(Json::parse(&s.render()).unwrap(), s);
        assert_eq!(
            Json::parse("\"\\u0041\\u00e9\"").unwrap(),
            Json::Str("Aé".into())
        );
    }
}
