//! Structured event tracing and deterministic metrics for the DAC'17
//! nanophotonic-interconnect reproduction.
//!
//! The crate has three pieces:
//!
//! 1. **Events** ([`TelemetryEvent`]): the typed vocabulary every
//!    instrumented layer emits — solver invocations, operating-point cache
//!    hits/misses, runtime decisions, scheme switches, epoch boundaries,
//!    wavelength-assignment search steps, and shard completions.
//! 2. **Recorders** ([`Recorder`]): sinks for that stream.  The default
//!    [`NullRecorder`] is zero-cost (event construction is skipped entirely
//!    via [`RecorderHandle::emit`]'s lazy closure), [`MemoryRecorder`]
//!    buffers events for tests, [`JsonlRecorder`] writes one JSON object per
//!    line, and [`RegistryRecorder`] folds the stream into metrics.
//! 3. **Registries**: [`MetricsRegistry`] holds monotonic counters and
//!    fixed-bucket histograms whose contents are **bit-identical across runs
//!    at any thread count** (they only ever accumulate order-independent
//!    sums of deterministic events).  Wall-clock timings are quarantined in
//!    [`WallClockRegistry`], a separate and explicitly non-deterministic
//!    section, so an artifact diff can gate on the former and ignore the
//!    latter.
//!
//! Producers hold a [`RecorderHandle`] — a cheap clonable `Option<Arc<dyn
//! Recorder>>` that defaults to disabled, keeping telemetry-off runs
//! bit-identical to (and as fast as) the uninstrumented code.

#![forbid(unsafe_code)]

pub mod events;
pub mod json;

use std::collections::BTreeMap;
use std::fmt;
use std::io::Write;
use std::sync::{Arc, Mutex};

pub use events::TelemetryEvent;
pub use json::Json;

/// A sink for [`TelemetryEvent`]s.  Implementations must tolerate
/// concurrent calls from sharded workers.
pub trait Recorder: Send + Sync {
    /// Consumes one event.
    fn record(&self, event: &TelemetryEvent);

    /// Whether producers should bother constructing events at all.
    /// [`RecorderHandle::emit`] skips its closure when this is `false`.
    fn is_enabled(&self) -> bool {
        true
    }
}

/// The zero-cost default sink: reports itself disabled, so producers never
/// even construct events.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    fn record(&self, _event: &TelemetryEvent) {}

    fn is_enabled(&self) -> bool {
        false
    }
}

/// An in-memory sink that buffers every event, in arrival order.
#[derive(Debug, Default)]
pub struct MemoryRecorder {
    events: Mutex<Vec<TelemetryEvent>>,
}

impl MemoryRecorder {
    /// Creates an empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot of everything recorded so far.
    ///
    /// # Panics
    ///
    /// If a previous holder of the buffer lock panicked.
    #[must_use]
    pub fn events(&self) -> Vec<TelemetryEvent> {
        self.events
            .lock()
            .expect("memory recorder poisoned")
            .clone()
    }

    /// Number of events recorded so far.
    ///
    /// # Panics
    ///
    /// If a previous holder of the buffer lock panicked.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.lock().expect("memory recorder poisoned").len()
    }

    /// Whether nothing has been recorded yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Recorder for MemoryRecorder {
    fn record(&self, event: &TelemetryEvent) {
        self.events
            .lock()
            .expect("memory recorder poisoned")
            .push(event.clone());
    }
}

/// A sink that writes one compact JSON object per event per line (JSONL).
///
/// The workspace's `serde` is an offline no-op stub, so the wire format is
/// produced by the crate's own [`json`] kernel; [`parse_jsonl`] reads it
/// back.  Write errors never panic a simulation — they are counted and
/// surfaced via [`JsonlRecorder::write_errors`].
#[derive(Debug)]
pub struct JsonlRecorder<W: Write + Send> {
    sink: Mutex<W>,
    write_errors: std::sync::atomic::AtomicU64,
}

impl<W: Write + Send> JsonlRecorder<W> {
    /// Wraps a writer.
    pub fn new(sink: W) -> Self {
        Self {
            sink: Mutex::new(sink),
            write_errors: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Flushes and returns the underlying writer.
    ///
    /// # Panics
    ///
    /// If a previous holder of the sink lock panicked.
    pub fn into_inner(self) -> W {
        let mut sink = self.sink.into_inner().expect("jsonl recorder poisoned");
        let _ = sink.flush();
        sink
    }

    /// Number of events dropped because the underlying writer failed.
    #[must_use]
    pub fn write_errors(&self) -> u64 {
        self.write_errors.load(std::sync::atomic::Ordering::Relaxed)
    }
}

impl<W: Write + Send> Recorder for JsonlRecorder<W> {
    fn record(&self, event: &TelemetryEvent) {
        let line = event.to_json().render();
        let mut sink = self.sink.lock().expect("jsonl recorder poisoned");
        if writeln!(sink, "{line}").is_err() {
            self.write_errors
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
    }
}

/// Parses a JSONL stream produced by [`JsonlRecorder`] back into events.
///
/// Blank lines are skipped.
///
/// # Errors
///
/// The 1-based line number and cause of the first malformed line.
pub fn parse_jsonl(stream: &str) -> Result<Vec<TelemetryEvent>, String> {
    let mut events = Vec::new();
    for (index, line) in stream.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let json = Json::parse(line).map_err(|e| format!("line {}: {e}", index + 1))?;
        events.push(
            TelemetryEvent::from_json(&json).map_err(|e| format!("line {}: {e}", index + 1))?,
        );
    }
    Ok(events)
}

/// A cheap, clonable, optional handle to a shared [`Recorder`].
///
/// This is what instrumented types store.  The default is disabled: no
/// allocation, no virtual call, and — because [`RecorderHandle::emit`] takes
/// a closure — no event construction either, so the off path costs one
/// branch on an `Option`.
#[derive(Clone, Default)]
pub struct RecorderHandle {
    recorder: Option<Arc<dyn Recorder>>,
}

impl RecorderHandle {
    /// The disabled handle (same as `Default`).
    #[must_use]
    pub fn none() -> Self {
        Self::default()
    }

    /// Wraps a shared recorder.
    #[must_use]
    pub fn new(recorder: Arc<dyn Recorder>) -> Self {
        Self {
            recorder: Some(recorder),
        }
    }

    /// Whether events will actually be delivered anywhere.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.recorder.as_ref().is_some_and(|r| r.is_enabled())
    }

    /// Builds and records an event — but only when a live recorder is
    /// attached, so disabled handles never pay for event construction.
    pub fn emit(&self, build: impl FnOnce() -> TelemetryEvent) {
        if let Some(recorder) = &self.recorder {
            if recorder.is_enabled() {
                recorder.record(&build());
            }
        }
    }
}

impl fmt::Debug for RecorderHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.recorder {
            Some(r) if r.is_enabled() => f.write_str("RecorderHandle(enabled)"),
            Some(_) => f.write_str("RecorderHandle(disabled)"),
            None => f.write_str("RecorderHandle(none)"),
        }
    }
}

/// A fixed-bucket histogram: `counts[i]` tallies observations `<=
/// bounds[i]`, with one overflow bucket at the end.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Ascending upper bounds, fixed at creation.
    pub bounds: Vec<f64>,
    /// Per-bucket observation counts; `bounds.len() + 1` entries.
    pub counts: Vec<u64>,
}

impl Histogram {
    fn new(bounds: &[f64]) -> Self {
        debug_assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        Self {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
        }
    }

    fn observe(&mut self, value: f64) {
        let bucket = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[bucket] += 1;
    }

    /// Total observations across all buckets.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    fn to_json(&self) -> Json {
        Json::obj(vec![
            (
                "bounds",
                Json::Arr(self.bounds.iter().map(|&b| b.into()).collect()),
            ),
            (
                "counts",
                Json::Arr(self.counts.iter().map(|&c| c.into()).collect()),
            ),
        ])
    }
}

/// Monotonic counters and fixed-bucket histograms that are bit-identical
/// across runs at any thread count.
///
/// The guarantee holds because every entry is an order-independent sum of
/// deterministic events: sharding a workload changes *when* increments
/// arrive, never *how many*.  Anything wall-clock-derived is rejected by
/// convention and lives in [`WallClockRegistry`] instead.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, u64>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to a named monotonic counter, creating it at zero.
    ///
    /// # Panics
    ///
    /// If a previous holder of the counter lock panicked.
    pub fn add(&self, name: &str, delta: u64) {
        *self
            .counters
            .lock()
            .expect("metrics registry poisoned")
            .entry(name.to_owned())
            .or_insert(0) += delta;
    }

    /// Increments a named monotonic counter by one.
    pub fn increment(&self, name: &str) {
        self.add(name, 1);
    }

    /// Current value of a counter (zero when never touched).
    ///
    /// # Panics
    ///
    /// If a previous holder of the counter lock panicked.
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .lock()
            .expect("metrics registry poisoned")
            .get(name)
            .copied()
            .unwrap_or(0)
    }

    /// Records one observation into a named fixed-bucket histogram.  The
    /// first observation fixes the bucket bounds; later calls must pass the
    /// same bounds.
    ///
    /// # Panics
    ///
    /// If `bounds` disagrees with the histogram's existing bounds, or a
    /// previous holder of the histogram lock panicked.
    pub fn observe(&self, name: &str, bounds: &[f64], value: f64) {
        let mut histograms = self.histograms.lock().expect("metrics registry poisoned");
        let histogram = histograms
            .entry(name.to_owned())
            .or_insert_with(|| Histogram::new(bounds));
        assert_eq!(
            histogram.bounds, bounds,
            "histogram `{name}` re-registered with different bounds"
        );
        histogram.observe(value);
    }

    /// An ordered, immutable snapshot of every counter and histogram.
    ///
    /// # Panics
    ///
    /// If a previous holder of either lock panicked.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .lock()
                .expect("metrics registry poisoned")
                .clone(),
            histograms: self
                .histograms
                .lock()
                .expect("metrics registry poisoned")
                .clone(),
        }
    }
}

/// Point-in-time copy of a [`MetricsRegistry`], ordered by name (BTreeMap)
/// so rendering is deterministic.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// Counter name → value.
    pub counters: BTreeMap<String, u64>,
    /// Histogram name → buckets.
    pub histograms: BTreeMap<String, Histogram>,
}

impl MetricsSnapshot {
    /// Whether nothing was ever recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty()
    }

    /// Renders as `{"counters": {...}, "histograms": {...}}` with keys in
    /// lexicographic order.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            (
                "counters".to_owned(),
                Json::Obj(
                    self.counters
                        .iter()
                        .map(|(name, &value)| (name.clone(), value.into()))
                        .collect(),
                ),
            ),
            (
                "histograms".to_owned(),
                Json::Obj(
                    self.histograms
                        .iter()
                        .map(|(name, histogram)| (name.clone(), histogram.to_json()))
                        .collect(),
                ),
            ),
        ])
    }
}

/// Aggregated wall-clock samples for one label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WallClockStats {
    /// Number of samples.
    pub samples: u64,
    /// Sum of all samples, in microseconds.
    pub total_micros: u64,
    /// Largest single sample, in microseconds.
    pub max_micros: u64,
}

/// Wall-clock timing aggregates — the explicitly **non-deterministic**
/// section.  Kept apart from [`MetricsRegistry`] so artifact diffs can gate
/// on deterministic counters while ignoring machine-speed noise.
#[derive(Debug, Default)]
pub struct WallClockRegistry {
    stats: Mutex<BTreeMap<String, WallClockStats>>,
}

impl WallClockRegistry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one duration sample into a named aggregate.
    ///
    /// # Panics
    ///
    /// If a previous holder of the lock panicked.
    pub fn record(&self, name: &str, micros: u64) {
        let mut stats = self.stats.lock().expect("wall-clock registry poisoned");
        let entry = stats.entry(name.to_owned()).or_default();
        entry.samples += 1;
        entry.total_micros += micros;
        entry.max_micros = entry.max_micros.max(micros);
    }

    /// Ordered snapshot of every aggregate.
    ///
    /// # Panics
    ///
    /// If a previous holder of the lock panicked.
    #[must_use]
    pub fn snapshot(&self) -> BTreeMap<String, WallClockStats> {
        self.stats
            .lock()
            .expect("wall-clock registry poisoned")
            .clone()
    }

    /// Renders as `{name: {samples, total_micros, max_micros}}`.
    ///
    /// # Panics
    ///
    /// If a previous holder of the lock panicked.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::Obj(
            self.snapshot()
                .iter()
                .map(|(name, s)| {
                    (
                        name.clone(),
                        Json::obj(vec![
                            ("samples", s.samples.into()),
                            ("total_micros", s.total_micros.into()),
                            ("max_micros", s.max_micros.into()),
                        ]),
                    )
                })
                .collect(),
        )
    }
}

/// A [`Recorder`] that folds the event stream into registries: every
/// deterministic event increments [`MetricsRegistry`] counters (and a
/// candidate-cost histogram for assignment search), while
/// [`TelemetryEvent::ShardCompleted`] — whose *count* depends on the shard
/// split and whose payload is a wall clock — is quarantined into the
/// [`WallClockRegistry`].  Optionally forwards the raw stream to another
/// recorder.
pub struct RegistryRecorder {
    metrics: Arc<MetricsRegistry>,
    wall_clock: Arc<WallClockRegistry>,
    forward: Option<Arc<dyn Recorder>>,
}

/// Bucket bounds (µW) for the assignment candidate-cost histogram.
pub const ASSIGNMENT_COST_BOUNDS_UW: [f64; 6] = [50.0, 100.0, 200.0, 400.0, 800.0, 1600.0];

impl RegistryRecorder {
    /// Builds a recorder feeding the given registries.
    #[must_use]
    pub fn new(metrics: Arc<MetricsRegistry>, wall_clock: Arc<WallClockRegistry>) -> Self {
        Self {
            metrics,
            wall_clock,
            forward: None,
        }
    }

    /// Also forwards every event to `recorder` (e.g. a [`JsonlRecorder`]).
    #[must_use]
    pub fn with_forward(mut self, recorder: Arc<dyn Recorder>) -> Self {
        self.forward = Some(recorder);
        self
    }

    /// The deterministic registry this recorder feeds.
    #[must_use]
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// The non-deterministic registry this recorder feeds.
    #[must_use]
    pub fn wall_clock(&self) -> &Arc<WallClockRegistry> {
        &self.wall_clock
    }
}

impl fmt::Debug for RegistryRecorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RegistryRecorder")
            .field("metrics", &self.metrics)
            .field("wall_clock", &self.wall_clock)
            .field("forward", &self.forward.as_ref().map(|_| "..."))
            .finish()
    }
}

impl Recorder for RegistryRecorder {
    fn record(&self, event: &TelemetryEvent) {
        match event {
            TelemetryEvent::ShardCompleted {
                label, wall_micros, ..
            } => {
                // Wall-clock payload AND shard-split-dependent count: the
                // one event that must never touch the deterministic side.
                self.wall_clock
                    .record(&format!("shard.{label}"), *wall_micros);
            }
            TelemetryEvent::SolverInvoked { feasible, .. } => {
                self.metrics.increment("solver.invocations");
                if !*feasible {
                    self.metrics.increment("solver.infeasible");
                }
            }
            TelemetryEvent::CacheHit { .. } => self.metrics.increment("cache.hits"),
            TelemetryEvent::CacheMiss { .. } => self.metrics.increment("cache.misses"),
            TelemetryEvent::DecisionResolved { scheme, .. } => {
                self.metrics.increment("manager.decisions");
                if scheme.is_none() {
                    self.metrics.increment("manager.infeasible");
                }
            }
            TelemetryEvent::SchemeSwitched { .. } => self.metrics.increment("scheme.switches"),
            TelemetryEvent::EpochAdvanced { .. } => self.metrics.increment("epochs.advanced"),
            TelemetryEvent::RouteResolved {
                hops,
                electrical_hops,
                ..
            } => {
                self.metrics.increment("route.flows");
                self.metrics.add("route.hops", *hops);
                self.metrics.add("route.electrical_hops", *electrical_hops);
            }
            TelemetryEvent::HopTraversed { electrical, .. } => {
                self.metrics.increment("hop.traversals");
                if *electrical {
                    self.metrics.increment("hop.electrical");
                }
            }
            TelemetryEvent::AssignmentSearchStep {
                candidate_cost_uw,
                accepted,
                swaps_applied,
                ..
            } => {
                self.metrics.increment("assignment.steps");
                self.metrics.increment(if *accepted {
                    "assignment.steps_accepted"
                } else {
                    "assignment.steps_rejected"
                });
                self.metrics.add("assignment.swaps_applied", *swaps_applied);
                self.metrics.observe(
                    "assignment.candidate_cost_uw",
                    &ASSIGNMENT_COST_BOUNDS_UW,
                    *candidate_cost_uw,
                );
            }
            TelemetryEvent::PhaseEntered { .. } => self.metrics.increment("phase.entries"),
            TelemetryEvent::AssignmentSwapped { .. } => {
                self.metrics.increment("assignment.swaps");
            }
        }
        if let Some(forward) = &self.forward {
            forward.record(event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hit(fp: u64) -> TelemetryEvent {
        TelemetryEvent::CacheHit {
            fingerprint: fp,
            scheme: "Uncoded".into(),
            temperature_c: 25.0,
        }
    }

    #[test]
    fn null_recorder_reports_disabled_and_handle_skips_construction() {
        let handle = RecorderHandle::new(Arc::new(NullRecorder));
        assert!(!handle.is_enabled());
        handle.emit(|| panic!("event must not be constructed for a disabled recorder"));
        let default = RecorderHandle::default();
        assert!(!default.is_enabled());
        default.emit(|| panic!("event must not be constructed for an absent recorder"));
    }

    #[test]
    fn memory_recorder_buffers_in_order() {
        let memory = Arc::new(MemoryRecorder::new());
        let handle = RecorderHandle::new(memory.clone());
        assert!(handle.is_enabled());
        handle.emit(|| hit(1));
        handle.emit(|| hit(2));
        assert_eq!(memory.events(), vec![hit(1), hit(2)]);
        assert_eq!(memory.len(), 2);
        assert!(!memory.is_empty());
    }

    #[test]
    fn jsonl_recorder_round_trips_the_full_vocabulary() {
        let recorder = JsonlRecorder::new(Vec::new());
        for event in TelemetryEvent::examples() {
            recorder.record(&event);
        }
        assert_eq!(recorder.write_errors(), 0);
        let stream = String::from_utf8(recorder.into_inner()).unwrap();
        assert_eq!(parse_jsonl(&stream).unwrap(), TelemetryEvent::examples());
    }

    #[test]
    fn jsonl_recorder_counts_write_errors_instead_of_panicking() {
        struct Broken;
        impl Write for Broken {
            fn write(&mut self, _buf: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("disk on fire"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let recorder = JsonlRecorder::new(Broken);
        recorder.record(&hit(1));
        assert_eq!(recorder.write_errors(), 1);
    }

    #[test]
    fn parse_jsonl_reports_line_numbers() {
        let err = parse_jsonl("{\"type\":\"epoch_advanced\"}\n\nnot json\n").unwrap_err();
        assert!(err.starts_with("line 1"), "{err}");
        let err = parse_jsonl(
            "{\"type\":\"shard_completed\",\"label\":\"x\",\"shard\":0,\"items\":1,\"wall_micros\":2}\nnot json\n",
        )
        .unwrap_err();
        assert!(err.starts_with("line 2"), "{err}");
    }

    #[test]
    fn registry_counters_are_order_independent_sums() {
        let metrics = Arc::new(MetricsRegistry::new());
        let wall = Arc::new(WallClockRegistry::new());
        let recorder = RegistryRecorder::new(metrics.clone(), wall.clone());
        let mut events = TelemetryEvent::examples();
        for event in &events {
            recorder.record(event);
        }
        let forward_order = metrics.snapshot();

        let metrics_rev = Arc::new(MetricsRegistry::new());
        let recorder_rev =
            RegistryRecorder::new(metrics_rev.clone(), Arc::new(WallClockRegistry::new()));
        events.reverse();
        for event in &events {
            recorder_rev.record(event);
        }
        assert_eq!(forward_order, metrics_rev.snapshot());
        assert_eq!(forward_order.counters["solver.invocations"], 1);
        assert_eq!(forward_order.counters["cache.hits"], 1);
        assert_eq!(forward_order.counters["cache.misses"], 1);
        assert_eq!(forward_order.counters["manager.decisions"], 2);
        assert_eq!(forward_order.counters["manager.infeasible"], 1);
        assert_eq!(forward_order.counters["scheme.switches"], 2);
        assert_eq!(forward_order.counters["epochs.advanced"], 1);
        assert_eq!(forward_order.counters["assignment.steps_accepted"], 1);
        assert_eq!(forward_order.counters["assignment.swaps_applied"], 4);
        assert_eq!(
            forward_order.histograms["assignment.candidate_cost_uw"].total(),
            1
        );
    }

    #[test]
    fn shard_completions_stay_out_of_deterministic_metrics() {
        let metrics = Arc::new(MetricsRegistry::new());
        let wall = Arc::new(WallClockRegistry::new());
        let recorder = RegistryRecorder::new(metrics.clone(), wall.clone());
        recorder.record(&TelemetryEvent::ShardCompleted {
            label: "solve".into(),
            shard: 0,
            items: 4,
            wall_micros: 900,
        });
        recorder.record(&TelemetryEvent::ShardCompleted {
            label: "solve".into(),
            shard: 1,
            items: 4,
            wall_micros: 1100,
        });
        assert!(metrics.snapshot().is_empty());
        let wall_stats = wall.snapshot();
        assert_eq!(
            wall_stats["shard.solve"],
            WallClockStats {
                samples: 2,
                total_micros: 2000,
                max_micros: 1100
            }
        );
    }

    #[test]
    fn histograms_bucket_and_reject_bound_changes() {
        let metrics = MetricsRegistry::new();
        metrics.observe("h", &[1.0, 10.0], 0.5);
        metrics.observe("h", &[1.0, 10.0], 5.0);
        metrics.observe("h", &[1.0, 10.0], 50.0);
        let snapshot = metrics.snapshot();
        assert_eq!(snapshot.histograms["h"].counts, vec![1, 1, 1]);
        assert_eq!(snapshot.histograms["h"].total(), 3);
        let rendered = snapshot.to_json().render();
        let parsed = Json::parse(&rendered).unwrap();
        assert_eq!(
            parsed
                .get("histograms")
                .and_then(|h| h.get("h"))
                .and_then(|h| h.get("counts"))
                .and_then(Json::as_array)
                .map(<[Json]>::len),
            Some(3)
        );
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            metrics.observe("h", &[2.0], 1.0);
        }));
        assert!(result.is_err(), "bound mismatch must be rejected");
    }

    #[test]
    fn registry_recorder_forwards_downstream() {
        let memory = Arc::new(MemoryRecorder::new());
        let recorder = RegistryRecorder::new(
            Arc::new(MetricsRegistry::new()),
            Arc::new(WallClockRegistry::new()),
        )
        .with_forward(memory.clone());
        recorder.record(&hit(7));
        assert_eq!(memory.events(), vec![hit(7)]);
        assert_eq!(recorder.metrics().counter("cache.hits"), 1);
    }
}
