//! The typed event vocabulary every instrumented layer speaks.
//!
//! Events are deliberately flat and self-describing — plain numbers and
//! strings, no workspace types — so the telemetry crate sits at the bottom
//! of the dependency graph and a JSONL stream is readable without the
//! producing binary.  Every variant round-trips through
//! [`TelemetryEvent::to_json`] / [`TelemetryEvent::from_json`]
//! (property-tested in `tests/telemetry.rs`).

use serde::{Deserialize, Serialize};

use crate::json::Json;

/// One structured runtime event.
///
/// All variants except [`TelemetryEvent::ShardCompleted`] describe
/// *deterministic* facts of a run: their counts are bit-identical across
/// repeated runs and across thread counts.  `ShardCompleted` carries a wall
/// clock and belongs to the explicitly non-deterministic section of any
/// aggregate (see [`crate::RegistryRecorder`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TelemetryEvent {
    /// The full photonic solver ran for one `(scheme, BER, temperature)`
    /// triple — the expensive path the operating-point cache exists to
    /// avoid.
    SolverInvoked {
        /// Coding scheme that was solved.
        scheme: String,
        /// Decoded-BER target of the solve.
        target_ber: f64,
        /// Chip temperature of the solve, in °C.
        temperature_c: f64,
        /// Whether a feasible operating point exists there.
        feasible: bool,
    },
    /// A memoized operating-point query was answered from the cache.
    CacheHit {
        /// `ThermalLinkStack::fingerprint` component of the cache key (the
        /// chip instance the entry belongs to).
        fingerprint: u64,
        /// Coding scheme of the query.
        scheme: String,
        /// Bucket-snapped temperature of the query, in °C.
        temperature_c: f64,
    },
    /// A memoized operating-point query missed and fell through to the
    /// solver.
    CacheMiss {
        /// Stack fingerprint component of the cache key.
        fingerprint: u64,
        /// Coding scheme of the query.
        scheme: String,
        /// Bucket-snapped temperature of the query, in °C.
        temperature_c: f64,
    },
    /// The runtime manager answered (or failed to answer) one configuration
    /// request.
    DecisionResolved {
        /// Traffic class of the request.
        class: String,
        /// Temperature the request was served at, in °C.
        temperature_c: f64,
        /// Scheme of the selected operating point; `None` when no candidate
        /// satisfied the constraints (an infeasible request).
        scheme: Option<String>,
    },
    /// A destination channel changed coding scheme.
    SchemeSwitched {
        /// Destination ONI whose channel switched.
        oni: u64,
        /// Scheme before the switch.
        from: String,
        /// Scheme after the switch.
        to: String,
        /// Simulated time of the switch, in nanoseconds.
        time_ns: f64,
        /// Channel temperature that triggered the re-decision, in °C.
        temperature_c: f64,
        /// Epoch whose boundary took the decision (`None` per-message).
        epoch: Option<u64>,
    },
    /// The epoch-gated engine finished one epoch, with the fleet's
    /// temperature envelope.
    EpochAdvanced {
        /// Epoch index (0-based).
        epoch: u64,
        /// End of the epoch, in nanoseconds.
        time_ns: f64,
        /// Coolest node temperature, in °C.
        min_temperature_c: f64,
        /// Hottest node temperature, in °C.
        max_temperature_c: f64,
        /// Destination channels currently off their baseline scheme.
        reconfigured_onis: u64,
    },
    /// The design-time wavelength assigner evaluated one candidate (a
    /// rotation, the greedy matching, or one refinement pass).
    AssignmentSearchStep {
        /// Which stage produced the candidate: `rotation`, `greedy`,
        /// `refine-pass`, or `guard` (the final never-worse-than-identity
        /// check).
        stage: String,
        /// Predicted total heater power of the candidate, in µW.
        candidate_cost_uw: f64,
        /// Whether the candidate was adopted (for `refine-pass`: whether the
        /// pass applied at least one improving swap).
        accepted: bool,
        /// Refinement swaps applied in this step (0 outside `refine-pass`).
        swaps_applied: u64,
    },
    /// The scenario router resolved one flow's route over the configured
    /// fabric topology (emitted once per ordered node pair at prepare
    /// time).
    RouteResolved {
        /// Source node of the flow.
        source: u64,
        /// Destination node of the flow.
        destination: u64,
        /// Total hops on the resolved route.
        hops: u64,
        /// Electrical fallback hops among them.
        electrical_hops: u64,
    },
    /// A message finished traversing one hop of its multi-hop route
    /// (emitted by the epoch-gated engine when a topology is configured).
    HopTraversed {
        /// Message identifier.
        message: u64,
        /// Node the hop arrived at.
        node: u64,
        /// 0-based position of the hop on the message's route.
        hop_index: u64,
        /// Whether the hop rode an electrical fallback wire.
        electrical: bool,
        /// Simulated completion time of the hop, in nanoseconds.
        time_ns: f64,
    },
    /// The epoch-gated engine crossed into a new workload-schedule phase
    /// at an epoch boundary.
    PhaseEntered {
        /// 0-based index of the phase being entered.
        phase: u64,
        /// Scheduled start of the phase, in nanoseconds (the epoch edge it
        /// lands on).
        time_ns: f64,
        /// Index of the first epoch played inside the new phase.
        epoch: u64,
    },
    /// One ONI's wavelength assignment was swapped hitlessly at a phase
    /// boundary (in-flight transfers complete on their granted operating
    /// points; the new mapping applies from the next grant).
    AssignmentSwapped {
        /// Destination ONI whose assignment changed.
        oni: u64,
        /// Phase whose design assignment is now active.
        phase: u64,
        /// Fingerprint of the assignment being retired.
        from_fingerprint: u64,
        /// Fingerprint of the assignment taking over.
        to_fingerprint: u64,
        /// Simulated time of the swap, in nanoseconds.
        time_ns: f64,
        /// Index of the first epoch played under the new assignment.
        epoch: u64,
    },
    /// One `parallel_map` worker finished its chunk.  **Wall-clock data** —
    /// explicitly non-deterministic, never counted with the deterministic
    /// metrics.
    ShardCompleted {
        /// What was being sharded (the caller's label).
        label: String,
        /// Shard index within the call.
        shard: u64,
        /// Work items the shard processed.
        items: u64,
        /// Wall-clock duration of the shard, in microseconds.
        wall_micros: u64,
    },
}

impl TelemetryEvent {
    /// The snake-case discriminant used as the JSON `type` tag and in
    /// per-event counter names.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Self::SolverInvoked { .. } => "solver_invoked",
            Self::CacheHit { .. } => "cache_hit",
            Self::CacheMiss { .. } => "cache_miss",
            Self::DecisionResolved { .. } => "decision_resolved",
            Self::SchemeSwitched { .. } => "scheme_switched",
            Self::EpochAdvanced { .. } => "epoch_advanced",
            Self::AssignmentSearchStep { .. } => "assignment_search_step",
            Self::RouteResolved { .. } => "route_resolved",
            Self::HopTraversed { .. } => "hop_traversed",
            Self::PhaseEntered { .. } => "phase_entered",
            Self::AssignmentSwapped { .. } => "assignment_swapped",
            Self::ShardCompleted { .. } => "shard_completed",
        }
    }

    /// `true` for events carrying wall-clock measurements, which must stay
    /// out of deterministic aggregates.
    #[must_use]
    pub fn is_wall_clock(&self) -> bool {
        matches!(self, Self::ShardCompleted { .. })
    }

    /// One exemplar per variant (schema tests iterate the whole vocabulary
    /// without hand-maintaining a list at every call site).
    #[must_use]
    pub fn examples() -> Vec<Self> {
        vec![
            Self::SolverInvoked {
                scheme: "Hamming(71,64)".into(),
                target_ber: 1e-11,
                temperature_c: 55.0,
                feasible: true,
            },
            Self::CacheHit {
                fingerprint: 0xDEAD_BEEF,
                scheme: "Uncoded".into(),
                temperature_c: 25.0,
            },
            Self::CacheMiss {
                fingerprint: 42,
                scheme: "Hamming(7,4)".into(),
                temperature_c: 85.0,
            },
            Self::DecisionResolved {
                class: "LatencyFirst".into(),
                temperature_c: 61.5,
                scheme: Some("Hamming(71,64)".into()),
            },
            Self::DecisionResolved {
                class: "RealTime".into(),
                temperature_c: 85.0,
                scheme: None,
            },
            Self::SchemeSwitched {
                oni: 3,
                from: "Uncoded".into(),
                to: "Hamming(71,64)".into(),
                time_ns: 325.0,
                temperature_c: 53.2,
                epoch: Some(12),
            },
            Self::SchemeSwitched {
                oni: 0,
                from: "Hamming(7,4)".into(),
                to: "Uncoded".into(),
                time_ns: 10.0,
                temperature_c: 25.0,
                epoch: None,
            },
            Self::EpochAdvanced {
                epoch: 12,
                time_ns: 325.0,
                min_temperature_c: 24.9,
                max_temperature_c: 53.2,
                reconfigured_onis: 6,
            },
            Self::AssignmentSearchStep {
                stage: "refine-pass".into(),
                candidate_cost_uw: 812.5,
                accepted: true,
                swaps_applied: 4,
            },
            Self::RouteResolved {
                source: 1,
                destination: 6,
                hops: 3,
                electrical_hops: 1,
            },
            Self::HopTraversed {
                message: 17,
                node: 4,
                hop_index: 1,
                electrical: true,
                time_ns: 86.5,
            },
            Self::PhaseEntered {
                phase: 2,
                time_ns: 500.0,
                epoch: 20,
            },
            Self::AssignmentSwapped {
                oni: 5,
                phase: 2,
                from_fingerprint: 0xFEED_FACE_CAFE_BEEF,
                to_fingerprint: 77,
                time_ns: 500.0,
                epoch: 20,
            },
            Self::ShardCompleted {
                label: "epoch-reask".into(),
                shard: 1,
                items: 6,
                wall_micros: 1234,
            },
        ]
    }

    /// Serializes the event to a JSON object with a `type` tag.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut fields: Vec<(&str, Json)> = vec![("type", self.kind().into())];
        match self {
            Self::SolverInvoked {
                scheme,
                target_ber,
                temperature_c,
                feasible,
            } => {
                fields.push(("scheme", scheme.as_str().into()));
                fields.push(("target_ber", (*target_ber).into()));
                fields.push(("temperature_c", (*temperature_c).into()));
                fields.push(("feasible", (*feasible).into()));
            }
            Self::CacheHit {
                fingerprint,
                scheme,
                temperature_c,
            }
            | Self::CacheMiss {
                fingerprint,
                scheme,
                temperature_c,
            } => {
                // Fingerprints use the full u64 range; split into two 32-bit
                // halves so the f64-backed number model stays exact.
                fields.push(("fingerprint_hi", (fingerprint >> 32).into()));
                fields.push(("fingerprint_lo", (fingerprint & 0xFFFF_FFFF).into()));
                fields.push(("scheme", scheme.as_str().into()));
                fields.push(("temperature_c", (*temperature_c).into()));
            }
            Self::DecisionResolved {
                class,
                temperature_c,
                scheme,
            } => {
                fields.push(("class", class.as_str().into()));
                fields.push(("temperature_c", (*temperature_c).into()));
                fields.push((
                    "scheme",
                    scheme.as_ref().map_or(Json::Null, |s| s.as_str().into()),
                ));
            }
            Self::SchemeSwitched {
                oni,
                from,
                to,
                time_ns,
                temperature_c,
                epoch,
            } => {
                fields.push(("oni", (*oni).into()));
                fields.push(("from", from.as_str().into()));
                fields.push(("to", to.as_str().into()));
                fields.push(("time_ns", (*time_ns).into()));
                fields.push(("temperature_c", (*temperature_c).into()));
                fields.push(("epoch", epoch.map_or(Json::Null, Json::from)));
            }
            Self::EpochAdvanced {
                epoch,
                time_ns,
                min_temperature_c,
                max_temperature_c,
                reconfigured_onis,
            } => {
                fields.push(("epoch", (*epoch).into()));
                fields.push(("time_ns", (*time_ns).into()));
                fields.push(("min_temperature_c", (*min_temperature_c).into()));
                fields.push(("max_temperature_c", (*max_temperature_c).into()));
                fields.push(("reconfigured_onis", (*reconfigured_onis).into()));
            }
            Self::AssignmentSearchStep {
                stage,
                candidate_cost_uw,
                accepted,
                swaps_applied,
            } => {
                fields.push(("stage", stage.as_str().into()));
                fields.push(("candidate_cost_uw", (*candidate_cost_uw).into()));
                fields.push(("accepted", (*accepted).into()));
                fields.push(("swaps_applied", (*swaps_applied).into()));
            }
            Self::RouteResolved {
                source,
                destination,
                hops,
                electrical_hops,
            } => {
                fields.push(("source", (*source).into()));
                fields.push(("destination", (*destination).into()));
                fields.push(("hops", (*hops).into()));
                fields.push(("electrical_hops", (*electrical_hops).into()));
            }
            Self::HopTraversed {
                message,
                node,
                hop_index,
                electrical,
                time_ns,
            } => {
                fields.push(("message", (*message).into()));
                fields.push(("node", (*node).into()));
                fields.push(("hop_index", (*hop_index).into()));
                fields.push(("electrical", (*electrical).into()));
                fields.push(("time_ns", (*time_ns).into()));
            }
            Self::PhaseEntered {
                phase,
                time_ns,
                epoch,
            } => {
                fields.push(("phase", (*phase).into()));
                fields.push(("time_ns", (*time_ns).into()));
                fields.push(("epoch", (*epoch).into()));
            }
            Self::AssignmentSwapped {
                oni,
                phase,
                from_fingerprint,
                to_fingerprint,
                time_ns,
                epoch,
            } => {
                fields.push(("oni", (*oni).into()));
                fields.push(("phase", (*phase).into()));
                // Same exactness split as the cache fingerprints above.
                fields.push(("from_fingerprint_hi", (from_fingerprint >> 32).into()));
                fields.push((
                    "from_fingerprint_lo",
                    (from_fingerprint & 0xFFFF_FFFF).into(),
                ));
                fields.push(("to_fingerprint_hi", (to_fingerprint >> 32).into()));
                fields.push(("to_fingerprint_lo", (to_fingerprint & 0xFFFF_FFFF).into()));
                fields.push(("time_ns", (*time_ns).into()));
                fields.push(("epoch", (*epoch).into()));
            }
            Self::ShardCompleted {
                label,
                shard,
                items,
                wall_micros,
            } => {
                fields.push(("label", label.as_str().into()));
                fields.push(("shard", (*shard).into()));
                fields.push(("items", (*items).into()));
                fields.push(("wall_micros", (*wall_micros).into()));
            }
        }
        Json::obj(fields)
    }

    /// Parses an event back from its [`TelemetryEvent::to_json`] form.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first missing or mistyped field.
    pub fn from_json(json: &Json) -> Result<Self, String> {
        let kind = json
            .get("type")
            .and_then(Json::as_str)
            .ok_or("event object lacks a string `type` tag")?;
        let str_field = |name: &str| -> Result<String, String> {
            json.get(name)
                .and_then(Json::as_str)
                .map(str::to_owned)
                .ok_or(format!("`{kind}` lacks string field `{name}`"))
        };
        let f64_field = |name: &str| -> Result<f64, String> {
            json.get(name)
                .and_then(Json::as_f64)
                .ok_or(format!("`{kind}` lacks number field `{name}`"))
        };
        let u64_field = |name: &str| -> Result<u64, String> {
            json.get(name)
                .and_then(Json::as_u64)
                .ok_or(format!("`{kind}` lacks integer field `{name}`"))
        };
        let bool_field = |name: &str| -> Result<bool, String> {
            json.get(name)
                .and_then(Json::as_bool)
                .ok_or(format!("`{kind}` lacks boolean field `{name}`"))
        };
        let fingerprint = || -> Result<u64, String> {
            Ok((u64_field("fingerprint_hi")? << 32) | u64_field("fingerprint_lo")?)
        };
        match kind {
            "solver_invoked" => Ok(Self::SolverInvoked {
                scheme: str_field("scheme")?,
                target_ber: f64_field("target_ber")?,
                temperature_c: f64_field("temperature_c")?,
                feasible: bool_field("feasible")?,
            }),
            "cache_hit" => Ok(Self::CacheHit {
                fingerprint: fingerprint()?,
                scheme: str_field("scheme")?,
                temperature_c: f64_field("temperature_c")?,
            }),
            "cache_miss" => Ok(Self::CacheMiss {
                fingerprint: fingerprint()?,
                scheme: str_field("scheme")?,
                temperature_c: f64_field("temperature_c")?,
            }),
            "decision_resolved" => Ok(Self::DecisionResolved {
                class: str_field("class")?,
                temperature_c: f64_field("temperature_c")?,
                scheme: match json.get("scheme") {
                    Some(Json::Null) | None => None,
                    Some(value) => Some(
                        value
                            .as_str()
                            .map(str::to_owned)
                            .ok_or("`decision_resolved` scheme must be a string or null")?,
                    ),
                },
            }),
            "scheme_switched" => Ok(Self::SchemeSwitched {
                oni: u64_field("oni")?,
                from: str_field("from")?,
                to: str_field("to")?,
                time_ns: f64_field("time_ns")?,
                temperature_c: f64_field("temperature_c")?,
                epoch: match json.get("epoch") {
                    Some(Json::Null) | None => None,
                    Some(value) => Some(
                        value
                            .as_u64()
                            .ok_or("`scheme_switched` epoch must be an integer or null")?,
                    ),
                },
            }),
            "epoch_advanced" => Ok(Self::EpochAdvanced {
                epoch: u64_field("epoch")?,
                time_ns: f64_field("time_ns")?,
                min_temperature_c: f64_field("min_temperature_c")?,
                max_temperature_c: f64_field("max_temperature_c")?,
                reconfigured_onis: u64_field("reconfigured_onis")?,
            }),
            "assignment_search_step" => Ok(Self::AssignmentSearchStep {
                stage: str_field("stage")?,
                candidate_cost_uw: f64_field("candidate_cost_uw")?,
                accepted: bool_field("accepted")?,
                swaps_applied: u64_field("swaps_applied")?,
            }),
            "route_resolved" => Ok(Self::RouteResolved {
                source: u64_field("source")?,
                destination: u64_field("destination")?,
                hops: u64_field("hops")?,
                electrical_hops: u64_field("electrical_hops")?,
            }),
            "hop_traversed" => Ok(Self::HopTraversed {
                message: u64_field("message")?,
                node: u64_field("node")?,
                hop_index: u64_field("hop_index")?,
                electrical: bool_field("electrical")?,
                time_ns: f64_field("time_ns")?,
            }),
            "phase_entered" => Ok(Self::PhaseEntered {
                phase: u64_field("phase")?,
                time_ns: f64_field("time_ns")?,
                epoch: u64_field("epoch")?,
            }),
            "assignment_swapped" => Ok(Self::AssignmentSwapped {
                oni: u64_field("oni")?,
                phase: u64_field("phase")?,
                from_fingerprint: (u64_field("from_fingerprint_hi")? << 32)
                    | u64_field("from_fingerprint_lo")?,
                to_fingerprint: (u64_field("to_fingerprint_hi")? << 32)
                    | u64_field("to_fingerprint_lo")?,
                time_ns: f64_field("time_ns")?,
                epoch: u64_field("epoch")?,
            }),
            "shard_completed" => Ok(Self::ShardCompleted {
                label: str_field("label")?,
                shard: u64_field("shard")?,
                items: u64_field("items")?,
                wall_micros: u64_field("wall_micros")?,
            }),
            other => Err(format!("unknown event type `{other}`")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_variant_round_trips_through_json() {
        for event in TelemetryEvent::examples() {
            let rendered = event.to_json().render();
            let parsed = TelemetryEvent::from_json(&Json::parse(&rendered).unwrap())
                .unwrap_or_else(|e| panic!("{rendered}: {e}"));
            assert_eq!(parsed, event, "{rendered}");
        }
    }

    #[test]
    fn kinds_are_distinct_and_tagged() {
        let examples = TelemetryEvent::examples();
        let kinds: std::collections::HashSet<_> = examples.iter().map(|e| e.kind()).collect();
        assert_eq!(kinds.len(), 12, "one kind per variant");
        for event in &examples {
            assert_eq!(
                event.to_json().get("type").and_then(Json::as_str),
                Some(event.kind())
            );
        }
    }

    #[test]
    fn only_shard_completions_carry_wall_clocks() {
        for event in TelemetryEvent::examples() {
            assert_eq!(
                event.is_wall_clock(),
                matches!(event, TelemetryEvent::ShardCompleted { .. })
            );
        }
    }

    #[test]
    fn full_range_fingerprints_survive_the_number_model() {
        let event = TelemetryEvent::CacheHit {
            fingerprint: u64::MAX - 7,
            scheme: "Uncoded".into(),
            temperature_c: 25.0,
        };
        let json = Json::parse(&event.to_json().render()).unwrap();
        assert_eq!(TelemetryEvent::from_json(&json).unwrap(), event);
    }

    #[test]
    fn malformed_events_are_rejected_with_context() {
        let err = TelemetryEvent::from_json(&Json::parse(r#"{"type":"cache_hit"}"#).unwrap())
            .unwrap_err();
        assert!(err.contains("cache_hit"), "{err}");
        assert!(
            TelemetryEvent::from_json(&Json::parse(r#"{"type":"warp_drive"}"#).unwrap())
                .unwrap_err()
                .contains("warp_drive")
        );
        assert!(TelemetryEvent::from_json(&Json::parse("{}").unwrap()).is_err());
    }
}
