//! The WDM wavelength comb shared by the lasers, modulators and drop filters.

use onoc_units::Nanometers;
use serde::{Deserialize, Serialize};

/// An evenly-spaced grid of N_W signal wavelengths λ₀ … λ_{N_W−1}.
///
/// ```
/// use onoc_photonics::spectrum::WavelengthGrid;
/// use onoc_units::Nanometers;
///
/// let grid = WavelengthGrid::paper_grid(16);
/// assert_eq!(grid.count(), 16);
/// let spacing = grid.wavelength(1).value() - grid.wavelength(0).value();
/// assert!((spacing - 0.8).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WavelengthGrid {
    first: Nanometers,
    spacing: Nanometers,
    count: usize,
}

impl WavelengthGrid {
    /// Creates a grid of `count` wavelengths starting at `first` with a
    /// constant `spacing`.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero or `spacing` is zero for more than one
    /// wavelength.
    #[must_use]
    pub fn new(first: Nanometers, spacing: Nanometers, count: usize) -> Self {
        assert!(count > 0, "a wavelength grid needs at least one channel");
        assert!(
            count == 1 || spacing.value() > 0.0,
            "spacing must be positive for multi-wavelength grids"
        );
        Self {
            first,
            spacing,
            count,
        }
    }

    /// The grid used for the paper configuration: `count` channels on a
    /// 100 GHz (0.8 nm) spacing starting near 1550 nm, matching the MR
    /// spectra shown in Fig. 3.
    #[must_use]
    pub fn paper_grid(count: usize) -> Self {
        Self::new(Nanometers::new(1550.0), Nanometers::new(0.8), count)
    }

    /// Number of wavelengths.
    #[must_use]
    pub fn count(&self) -> usize {
        self.count
    }

    /// Channel spacing.
    #[must_use]
    pub fn spacing(&self) -> Nanometers {
        self.spacing
    }

    /// Wavelength of channel `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= count()`.
    #[must_use]
    pub fn wavelength(&self, index: usize) -> Nanometers {
        assert!(index < self.count, "wavelength index {index} out of range");
        Nanometers::new(self.first.value() + self.spacing.value() * index as f64)
    }

    /// Iterator over all channel wavelengths.
    pub fn iter(&self) -> impl Iterator<Item = Nanometers> + '_ {
        (0..self.count).map(move |i| self.wavelength(i))
    }

    /// Indices of all channels other than `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= count()`.
    #[must_use]
    pub fn other_channels(&self, index: usize) -> Vec<usize> {
        assert!(index < self.count, "wavelength index {index} out of range");
        (0..self.count).filter(|&i| i != index).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_generates_evenly_spaced_channels() {
        let grid = WavelengthGrid::paper_grid(16);
        let all: Vec<_> = grid.iter().collect();
        assert_eq!(all.len(), 16);
        for pair in all.windows(2) {
            assert!((pair[1].value() - pair[0].value() - 0.8).abs() < 1e-9);
        }
    }

    #[test]
    fn single_channel_grid_is_allowed() {
        let grid = WavelengthGrid::new(Nanometers::new(1310.0), Nanometers::zero(), 1);
        assert_eq!(grid.count(), 1);
        assert_eq!(grid.other_channels(0).len(), 0);
    }

    #[test]
    fn other_channels_excludes_self() {
        let grid = WavelengthGrid::paper_grid(4);
        assert_eq!(grid.other_channels(2), vec![0, 1, 3]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_index_panics() {
        let _ = WavelengthGrid::paper_grid(4).wavelength(4);
    }

    #[test]
    #[should_panic(expected = "at least one channel")]
    fn zero_channels_rejected() {
        let _ = WavelengthGrid::new(Nanometers::new(1550.0), Nanometers::new(0.8), 0);
    }
}
