//! End-to-end laser power solver.
//!
//! This module chains every model of the workspace below the interface layer:
//!
//! ```text
//! target BER ──(ECC transfer, Eq. 2)──▶ raw channel BER
//!            ──(Eq. 1/3)─────────────▶ required SNR
//!            ──(Eq. 4)───────────────▶ required optical swing at the detector
//!            ──(MWSR link budget)────▶ required laser output power OP_laser
//!            ──(VCSEL thermal model)─▶ laser electrical power P_laser
//! ```
//!
//! which is exactly the computation behind Fig. 5 of the paper, and the
//! building block for Fig. 6.

use onoc_ber::snr::ber_from_snr;
use onoc_ber::ReceiverModel;
use onoc_ecc_codes::ber::raw_ber_for_target;
use onoc_ecc_codes::EccScheme;
use onoc_units::{Microwatts, Milliwatts};
use serde::{Deserialize, Serialize};

use crate::mwsr::MwsrChannel;

/// Why a (scheme, target BER) pair has no feasible operating point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SolveError {
    /// The required laser output power exceeds what the laser can deliver.
    LaserPowerExceeded {
        /// Scheme that was being solved for.
        scheme: EccScheme,
        /// Target decoded BER.
        target_ber: f64,
        /// Required optical output power in µW.
        required_microwatts: f64,
        /// Maximum deliverable optical output power in µW.
        maximum_microwatts: f64,
    },
    /// The requested BER target is outside the supported range.
    InvalidTarget {
        /// The offending value.
        target_ber: f64,
    },
    /// The laser's electro-thermal fixed point diverged: the junction heats
    /// faster than efficiency can pay for it, so no finite electrical power
    /// emits the required output (the paper VCSEL hits this near 85 °C).
    ThermalRunaway {
        /// Scheme that was being solved for.
        scheme: EccScheme,
        /// Target decoded BER.
        target_ber: f64,
        /// Requested laser optical output in µW when the solve diverged.
        optical_microwatts: f64,
    },
}

impl std::fmt::Display for SolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::LaserPowerExceeded {
                scheme,
                target_ber,
                required_microwatts,
                maximum_microwatts,
            } => write!(
                f,
                "{scheme} at BER {target_ber:.1e} needs {required_microwatts:.1} uW of optical power \
                 but the laser delivers at most {maximum_microwatts:.1} uW"
            ),
            Self::InvalidTarget { target_ber } => {
                write!(f, "target BER {target_ber} is outside (0, 0.5)")
            }
            Self::ThermalRunaway {
                scheme,
                target_ber,
                optical_microwatts,
            } => write!(
                f,
                "{scheme} at BER {target_ber:.1e} drives the laser into thermal runaway \
                 at {optical_microwatts:.1} uW of optical output"
            ),
        }
    }
}

impl std::error::Error for SolveError {}

/// A feasible laser/ECC operating point for one wavelength of the channel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LaserOperatingPoint {
    /// Coding scheme.
    pub scheme: EccScheme,
    /// Target decoded BER.
    pub target_ber: f64,
    /// Raw channel BER tolerated by the scheme at this target.
    pub raw_ber: f64,
    /// Required linear SNR at the decision circuit.
    pub snr: f64,
    /// Worst-case crosstalk power at the photodetector.
    pub crosstalk: Microwatts,
    /// Required optical signal swing at the photodetector.
    pub required_swing: Microwatts,
    /// Required laser optical output power (OP_laser).
    pub laser_output_power: Microwatts,
    /// Laser electrical power (P_laser).
    pub laser_electrical_power: Milliwatts,
    /// Wall-plug efficiency of the laser at this operating point.
    pub laser_efficiency: f64,
}

/// Solves laser operating points over an [`MwsrChannel`].
#[derive(Debug, Clone)]
pub struct LaserPowerSolver {
    channel: MwsrChannel,
    receiver: ReceiverModel,
}

impl LaserPowerSolver {
    /// Creates a solver for the given channel.
    #[must_use]
    pub fn new(channel: MwsrChannel) -> Self {
        let receiver = channel.photodetector().to_receiver_model();
        Self { channel, receiver }
    }

    /// The channel being solved over.
    #[must_use]
    pub fn channel(&self) -> &MwsrChannel {
        &self.channel
    }

    /// Index of the wavelength with the worst (largest) crosstalk, used as
    /// the sizing case for the whole channel.
    #[must_use]
    pub fn worst_case_wavelength(&self) -> usize {
        let count = self.channel.geometry().wavelength_count();
        (0..count)
            .max_by(|&a, &b| {
                self.channel
                    .worst_case_crosstalk(a)
                    .value()
                    .partial_cmp(&self.channel.worst_case_crosstalk(b).value())
                    .expect("crosstalk powers are finite")
            })
            .expect("grid has at least one wavelength")
    }

    /// Solves the operating point of `scheme` for `target_ber` on the
    /// worst-case wavelength of the channel.
    ///
    /// # Errors
    ///
    /// * [`SolveError::InvalidTarget`] if `target_ber` is outside `(0, 0.5)`.
    /// * [`SolveError::LaserPowerExceeded`] if the laser cannot deliver the
    ///   required optical power (this is how the solver reports that a BER
    ///   target such as 10⁻¹² is unreachable without coding).
    pub fn solve(
        &self,
        scheme: EccScheme,
        target_ber: f64,
    ) -> Result<LaserOperatingPoint, SolveError> {
        self.solve_on_wavelength(scheme, target_ber, self.worst_case_wavelength())
    }

    /// Solves the operating point on a specific wavelength index.
    ///
    /// # Errors
    ///
    /// Same as [`LaserPowerSolver::solve`].
    ///
    /// # Panics
    ///
    /// Panics if `wavelength` is outside the channel's grid.
    pub fn solve_on_wavelength(
        &self,
        scheme: EccScheme,
        target_ber: f64,
        wavelength: usize,
    ) -> Result<LaserOperatingPoint, SolveError> {
        if !(target_ber > 0.0 && target_ber < 0.5) {
            return Err(SolveError::InvalidTarget { target_ber });
        }
        let raw_ber = raw_ber_for_target(scheme, target_ber);
        let snr = onoc_ber::snr::snr_from_ber_uncoded(raw_ber);
        let crosstalk = self.channel.worst_case_crosstalk(wavelength);
        let required_swing = self.receiver.required_signal_power(snr, crosstalk);
        let laser = self.channel.laser();
        // Thermal drift can invert the modulation contrast entirely; no
        // finite laser power helps then, so report it as a power ceiling
        // violation with an unbounded requirement.
        if self.channel.swing_factor(wavelength) <= 0.0 {
            return Err(SolveError::LaserPowerExceeded {
                scheme,
                target_ber,
                required_microwatts: f64::INFINITY,
                maximum_microwatts: laser.max_output().value(),
            });
        }
        let laser_output = self
            .channel
            .required_laser_output(required_swing, wavelength);

        if !laser.can_emit(laser_output) {
            return Err(SolveError::LaserPowerExceeded {
                scheme,
                target_ber,
                required_microwatts: laser_output.value(),
                maximum_microwatts: laser.max_output().value(),
            });
        }
        let activity = self.channel.geometry().chip_activity;
        let electrical = laser
            .try_electrical_power(laser_output, activity)
            .map_err(|runaway| SolveError::ThermalRunaway {
                scheme,
                target_ber,
                optical_microwatts: runaway.optical_output.value(),
            })?;
        // Efficiency from the solved point directly; a second fixed-point
        // solve via `laser.efficiency` would repeat the same iteration.
        let laser_efficiency = if electrical.is_zero() {
            laser
                .thermal_model()
                .efficiency_at(laser.junction_temperature(Milliwatts::zero(), activity))
        } else {
            laser_output.to_milliwatts().value() / electrical.value()
        };
        Ok(LaserOperatingPoint {
            scheme,
            target_ber,
            raw_ber,
            snr,
            crosstalk,
            required_swing,
            laser_output_power: laser_output,
            laser_electrical_power: electrical,
            laser_efficiency,
        })
    }

    /// Solves every wavelength of the channel and returns the operating
    /// point of the **worst ring** — the wavelength demanding the highest
    /// laser output power — together with its index.
    ///
    /// On a perfectly aligned channel this is dominated by the
    /// worst-crosstalk wavelength; on a channel with per-ring detuning
    /// ([`MwsrChannel::with_ring_detunings`]) the worst ring is whichever
    /// combination of detuning-collapsed swing and crosstalk bites hardest.
    /// Every lane must close its budget, so the worst ring sizes the shared
    /// laser comb.
    ///
    /// # Errors
    ///
    /// Same as [`LaserPowerSolver::solve`]; any single infeasible wavelength
    /// makes the whole channel infeasible.
    pub fn solve_worst_case(
        &self,
        scheme: EccScheme,
        target_ber: f64,
    ) -> Result<(LaserOperatingPoint, usize), SolveError> {
        let count = self.channel.geometry().wavelength_count();
        let mut worst: Option<(LaserOperatingPoint, usize)> = None;
        for wavelength in 0..count {
            let point = self.solve_on_wavelength(scheme, target_ber, wavelength)?;
            let harder = worst.as_ref().is_none_or(|(best, _)| {
                point.laser_output_power.value() > best.laser_output_power.value()
            });
            if harder {
                worst = Some((point, wavelength));
            }
        }
        Ok(worst.expect("the grid has at least one wavelength"))
    }

    /// Achievable decoded BER when the laser runs at `laser_output` with the
    /// given `scheme` (the forward direction, used by the NoC simulator to
    /// derive error-injection probabilities).
    ///
    /// # Panics
    ///
    /// Panics if `wavelength` is outside the channel's grid.
    #[must_use]
    pub fn achievable_ber(
        &self,
        scheme: EccScheme,
        laser_output: Microwatts,
        wavelength: usize,
    ) -> f64 {
        let crosstalk = self.channel.worst_case_crosstalk(wavelength);
        let swing = self.channel.signal_swing(laser_output, wavelength);
        let snr = self.receiver.snr(swing, crosstalk);
        let raw = if snr <= 0.0 { 0.5 } else { ber_from_snr(snr) };
        onoc_ecc_codes::ber::coded_ber(scheme, raw.min(0.5))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibration::PaperCalibration;

    fn solver() -> LaserPowerSolver {
        LaserPowerSolver::new(PaperCalibration::dac17().into_channel())
    }

    #[test]
    fn uncoded_1e11_is_feasible_and_expensive() {
        let s = solver();
        let point = s
            .solve(EccScheme::Uncoded, 1e-11)
            .expect("feasible per the paper");
        assert!(
            point.laser_electrical_power.value() > 10.0
                && point.laser_electrical_power.value() < 18.0,
            "P_laser = {}",
            point.laser_electrical_power
        );
        assert!(point.laser_output_power.value() < 700.0);
    }

    #[test]
    fn uncoded_1e12_is_infeasible_but_coded_is_feasible() {
        let s = solver();
        assert!(matches!(
            s.solve(EccScheme::Uncoded, 1e-12),
            Err(SolveError::LaserPowerExceeded { .. })
        ));
        assert!(s.solve(EccScheme::Hamming74, 1e-12).is_ok());
        assert!(s.solve(EccScheme::Hamming7164, 1e-12).is_ok());
    }

    #[test]
    fn coding_halves_the_laser_power_at_1e11() {
        let s = solver();
        let uncoded = s.solve(EccScheme::Uncoded, 1e-11).unwrap();
        let h74 = s.solve(EccScheme::Hamming74, 1e-11).unwrap();
        let h7164 = s.solve(EccScheme::Hamming7164, 1e-11).unwrap();
        let ratio74 = uncoded.laser_electrical_power.value() / h74.laser_electrical_power.value();
        let ratio7164 =
            uncoded.laser_electrical_power.value() / h7164.laser_electrical_power.value();
        assert!(ratio74 > 1.7 && ratio74 < 3.0, "H(7,4) ratio = {ratio74}");
        assert!(
            ratio7164 > 1.6 && ratio7164 < 2.8,
            "H(71,64) ratio = {ratio7164}"
        );
        // H(7,4) tolerates the noisiest channel, so it needs the least power.
        assert!(h74.laser_electrical_power.value() <= h7164.laser_electrical_power.value() + 1e-9);
    }

    #[test]
    fn laser_power_is_monotone_in_ber_strictness() {
        let s = solver();
        for scheme in EccScheme::paper_schemes() {
            let mut last = 0.0;
            for exp in 3..=11 {
                let target = 10f64.powi(-exp);
                if let Ok(point) = s.solve(scheme, target) {
                    assert!(
                        point.laser_electrical_power.value() >= last,
                        "{scheme} at 1e-{exp}"
                    );
                    last = point.laser_electrical_power.value();
                }
            }
        }
    }

    #[test]
    fn operating_point_fields_are_consistent() {
        let s = solver();
        let p = s.solve(EccScheme::Hamming7164, 1e-9).unwrap();
        assert!(p.raw_ber > p.target_ber);
        assert!(p.required_swing.value() > p.crosstalk.value());
        assert!(p.laser_efficiency > 0.0 && p.laser_efficiency < 0.06);
        let swing = s
            .channel()
            .signal_swing(p.laser_output_power, s.worst_case_wavelength());
        assert!((swing.value() - p.required_swing.value()).abs() / p.required_swing.value() < 1e-6);
    }

    #[test]
    fn achievable_ber_inverts_the_solver() {
        let s = solver();
        let wavelength = s.worst_case_wavelength();
        let p = s.solve(EccScheme::Hamming74, 1e-9).unwrap();
        let ber = s.achievable_ber(EccScheme::Hamming74, p.laser_output_power, wavelength);
        assert!(ber < 1.5e-9, "achievable BER {ber} misses the target");
        assert!(ber > 1e-12, "achievable BER {ber} suspiciously optimistic");
    }

    #[test]
    fn achievable_ber_degrades_gracefully_at_low_power() {
        let s = solver();
        let ber = s.achievable_ber(EccScheme::Uncoded, Microwatts::new(1.0), 0);
        assert!(ber > 0.01, "almost no light should mean a terrible BER");
    }

    #[test]
    fn worst_case_solve_matches_the_worst_crosstalk_wavelength_when_aligned() {
        let s = solver();
        let (point, wavelength) = s.solve_worst_case(EccScheme::Hamming7164, 1e-11).unwrap();
        // On an aligned channel the worst ring is the worst-crosstalk one.
        assert_eq!(wavelength, s.worst_case_wavelength());
        let direct = s
            .solve_on_wavelength(EccScheme::Hamming7164, 1e-11, wavelength)
            .unwrap();
        assert_eq!(point, direct);
    }

    #[test]
    fn a_detuned_ring_becomes_the_worst_ring() {
        let base = solver();
        let aligned_worst = base.worst_case_wavelength();
        let victim = if aligned_worst == 0 { 1 } else { 0 };
        let mut detunings = [0.0; 16];
        detunings[victim] = 0.03; // a fifth of a linewidth: dominant penalty
        let s = LaserPowerSolver::new(base.channel().with_ring_detunings(&detunings));
        let (point, wavelength) = s.solve_worst_case(EccScheme::Hamming7164, 1e-11).unwrap();
        assert_eq!(wavelength, victim);
        let (aligned_point, _) = base
            .solve_worst_case(EccScheme::Hamming7164, 1e-11)
            .unwrap();
        assert!(point.laser_output_power.value() > aligned_point.laser_output_power.value());
    }

    #[test]
    fn invalid_target_is_rejected() {
        let s = solver();
        assert!(matches!(
            s.solve(EccScheme::Uncoded, 0.0),
            Err(SolveError::InvalidTarget { .. })
        ));
        assert!(matches!(
            s.solve(EccScheme::Uncoded, 0.7),
            Err(SolveError::InvalidTarget { .. })
        ));
    }

    #[test]
    fn runaway_surfaces_as_a_typed_solve_error() {
        // A laser baked far past its envelope still needs less than the
        // 700 µW ceiling, so the ceiling check passes and the electro-thermal
        // fixed point is what fails — as a typed error, not a panic.
        let s = LaserPowerSolver::new(
            PaperCalibration::dac17()
                .into_channel()
                .with_laser_ambient(onoc_units::Celsius::new(200.0)),
        );
        let err = s.solve(EccScheme::Uncoded, 1e-11).unwrap_err();
        assert!(
            matches!(err, SolveError::ThermalRunaway { .. }),
            "expected runaway, got {err}"
        );
        assert!(err.to_string().contains("thermal runaway"));
    }

    #[test]
    fn error_messages_are_informative() {
        let s = solver();
        let err = s.solve(EccScheme::Uncoded, 1e-12).unwrap_err();
        let text = err.to_string();
        assert!(text.contains("uW"));
        assert!(text.contains("w/o ECC"));
    }
}
