//! Multiple-Writer Single-Reader (MWSR) channel link budget.
//!
//! Following the transmission model of ref. \[8\] of the paper, the optical
//! signal of each wavelength is tracked from its laser source through the
//! multiplexer, the waveguide, every micro-ring it passes (the parked rings
//! of intermediate writers, the modulating ring of the granted writer, the
//! detuned drop filters of the reader) down to the photodetector of the
//! destination ONI.  The same spectral model provides the worst-case
//! inter-wavelength crosstalk collected by each drop filter.
//!
//! The quantity the rest of the workspace needs is the *signal swing* at the
//! photodetector — the difference between the received power for a '1'
//! (modulator OFF) and for a '0' (modulator ON, attenuated by the extinction
//! ratio) — because that is what Eq. 4 of the paper compares against the dark
//! current to form the SNR.

use onoc_units::{Decibels, LinearRatio, Microwatts, Milliwatts, Nanometers};
use serde::{Deserialize, Serialize};

use crate::devices::{
    MicroRingResonator, Multiplexer, Photodetector, RingState, VcselLaser, Waveguide,
};
use crate::spectrum::WavelengthGrid;

/// Structural description of one MWSR channel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChannelGeometry {
    /// Number of optical network interfaces sharing the interconnect
    /// (12 in the paper's evaluation).
    pub oni_count: usize,
    /// Wavelength comb used by the channel (16 wavelengths in the paper).
    pub grid: WavelengthGrid,
    /// The waveguide the channel is routed on (6 cm, 0.274 dB/cm).
    pub waveguide: Waveguide,
    /// Activity of the electrical layer, used by the laser thermal model
    /// (0.25 in the paper).
    pub chip_activity: f64,
}

impl ChannelGeometry {
    /// The geometry evaluated in Section V of the paper.
    #[must_use]
    pub fn paper_geometry() -> Self {
        Self {
            oni_count: 12,
            grid: WavelengthGrid::paper_grid(16),
            waveguide: Waveguide::paper_waveguide(),
            chip_activity: 0.25,
        }
    }

    /// Number of writers on the channel (every ONI except the reader).
    #[must_use]
    pub fn writer_count(&self) -> usize {
        self.oni_count.saturating_sub(1)
    }

    /// Number of intermediate (non-granted) writers the worst-case signal
    /// crosses before reaching the reader.
    #[must_use]
    pub fn worst_case_intermediate_writers(&self) -> usize {
        self.writer_count().saturating_sub(1)
    }

    /// Number of wavelengths.
    #[must_use]
    pub fn wavelength_count(&self) -> usize {
        self.grid.count()
    }
}

/// A fully-instantiated MWSR channel: geometry plus device models.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MwsrChannel {
    geometry: ChannelGeometry,
    modulator: MicroRingResonator,
    drop_filter: MicroRingResonator,
    multiplexer: Multiplexer,
    photodetector: Photodetector,
    laser: VcselLaser,
    /// Per-wavelength-index residual ring detuning in nm (empty = every ring
    /// on grid).  Applied on top of any uniform prototype shift, so the two
    /// mechanisms compose additively.
    ring_detunings: Vec<f64>,
}

impl MwsrChannel {
    /// Assembles a channel from its geometry and device prototypes.
    ///
    /// The `modulator` and `drop_filter` prototypes are re-centred on each
    /// channel wavelength as needed, so a single prototype describes the
    /// whole bank.
    #[must_use]
    pub fn new(
        geometry: ChannelGeometry,
        modulator: MicroRingResonator,
        drop_filter: MicroRingResonator,
        multiplexer: Multiplexer,
        photodetector: Photodetector,
        laser: VcselLaser,
    ) -> Self {
        Self {
            geometry,
            modulator,
            drop_filter,
            multiplexer,
            photodetector,
            laser,
            ring_detunings: Vec::new(),
        }
    }

    /// Channel geometry.
    #[must_use]
    pub fn geometry(&self) -> &ChannelGeometry {
        &self.geometry
    }

    /// The laser source model (shared by all wavelengths of the channel).
    #[must_use]
    pub fn laser(&self) -> &VcselLaser {
        &self.laser
    }

    /// The photodetector model.
    #[must_use]
    pub fn photodetector(&self) -> &Photodetector {
        &self.photodetector
    }

    /// The modulator prototype.
    #[must_use]
    pub fn modulator(&self) -> &MicroRingResonator {
        &self.modulator
    }

    /// The drop-filter prototype.
    #[must_use]
    pub fn drop_filter(&self) -> &MicroRingResonator {
        &self.drop_filter
    }

    /// Electrical power of one modulating ring (P_MR, 1.36 mW in the paper).
    #[must_use]
    pub fn modulation_power(&self) -> Milliwatts {
        self.modulator.modulation_power()
    }

    /// Extinction ratio of the modulator at channel `index`.
    #[must_use]
    pub fn extinction_ratio(&self, index: usize) -> Decibels {
        let carrier = self.geometry.grid.wavelength(index);
        self.modulator_at(index).extinction_ratio(carrier)
    }

    /// Residual ring detuning of channel `index`, in nm (0 when the bank is
    /// on grid).
    #[must_use]
    pub fn ring_detuning_nm(&self, index: usize) -> f64 {
        self.ring_detunings.get(index).copied().unwrap_or(0.0)
    }

    /// `true` when any ring of the channel carries a per-index detuning.
    #[must_use]
    pub fn has_ring_detunings(&self) -> bool {
        self.ring_detunings.iter().any(|&d| d != 0.0)
    }

    /// The modulator prototype re-centred on channel `index`, including that
    /// ring's residual detuning.
    fn modulator_at(&self, index: usize) -> MicroRingResonator {
        let carrier = self.geometry.grid.wavelength(index);
        let ring = self.modulator.recentered(self.prototype_carrier(), carrier);
        match self.ring_detuning_nm(index) {
            0.0 => ring,
            shift => ring.detuned_by(shift),
        }
    }

    /// The drop-filter prototype re-centred on channel `index`, including
    /// that ring's residual detuning.
    fn drop_filter_at(&self, index: usize) -> MicroRingResonator {
        let carrier = self.geometry.grid.wavelength(index);
        let ring = self
            .drop_filter
            .recentered(self.prototype_carrier(), carrier);
        match self.ring_detuning_nm(index) {
            0.0 => ring,
            shift => ring.detuned_by(shift),
        }
    }

    /// Both prototypes are constructed for the first grid wavelength.
    fn prototype_carrier(&self) -> Nanometers {
        self.geometry.grid.wavelength(0)
    }

    /// Number of micro-rings one wavelength lane must keep on grid: one
    /// modulator per writer plus the reader's drop filter.  This is the ring
    /// count that thermal tuning power is charged for, per lane.
    #[must_use]
    pub fn rings_per_lane(&self) -> usize {
        self.geometry.writer_count() + 1
    }

    /// Returns a copy of this channel with every ring resonance shifted by
    /// `drift` while the laser comb stays fixed (the lasers are assumed
    /// wavelength-stabilized; the rings are not).  A zero drift reproduces
    /// the original channel bit-for-bit.
    ///
    /// This is the *uniform* (per-bank) detuning mechanism; a heterogeneous
    /// bank uses [`MwsrChannel::with_ring_detunings`] instead.
    #[must_use]
    pub fn with_resonance_drift(&self, drift: onoc_thermal::ResonanceDrift) -> Self {
        Self {
            modulator: self.modulator.detuned_by(drift.nanometers()),
            drop_filter: self.drop_filter.detuned_by(drift.nanometers()),
            ..self.clone()
        }
    }

    /// Returns a copy of this channel whose ring at wavelength index `i` is
    /// detuned by `detunings[i]` nanometres (positive = red shift), while
    /// the laser comb stays fixed.  Every wavelength of the lane now has its
    /// own transmission, extinction and crosstalk figures — the per-ring
    /// model the per-bank [`MwsrChannel::with_resonance_drift`] cannot
    /// express.  An all-zero vector reproduces the original channel
    /// bit-for-bit.
    ///
    /// # Panics
    ///
    /// Panics if `detunings` does not have one entry per wavelength or any
    /// entry is not finite.
    #[must_use]
    pub fn with_ring_detunings(&self, detunings: &[f64]) -> Self {
        assert_eq!(
            detunings.len(),
            self.geometry.wavelength_count(),
            "one detuning per wavelength is required"
        );
        assert!(
            detunings.iter().all(|d| d.is_finite()),
            "ring detunings must be finite"
        );
        Self {
            ring_detunings: detunings.to_vec(),
            ..self.clone()
        }
    }

    /// Returns a copy of this channel with **per-physical-ring** residual
    /// detunings re-indexed through a design-time wavelength assignment:
    /// `detunings_by_ring[r]` is the residual of physical ring `r`, and the
    /// channel applies it to the logical wavelength index that ring serves
    /// (`assignment.ring_for_lane(j) == r`).  With the identity assignment
    /// this is exactly [`MwsrChannel::with_ring_detunings`].
    ///
    /// # Panics
    ///
    /// Panics if the assignment or the detuning vector does not carry one
    /// entry per wavelength, or any detuning is not finite.
    #[must_use]
    pub fn with_assigned_ring_detunings(
        &self,
        detunings_by_ring: &[f64],
        assignment: &onoc_thermal::WavelengthAssignment,
    ) -> Self {
        assert_eq!(
            assignment.len(),
            self.geometry.wavelength_count(),
            "one assignment entry per wavelength is required"
        );
        assert_eq!(
            detunings_by_ring.len(),
            self.geometry.wavelength_count(),
            "one detuning per wavelength is required"
        );
        let by_lane: Vec<f64> = (0..self.geometry.wavelength_count())
            .map(|lane| detunings_by_ring[assignment.ring_for_lane(lane)])
            .collect();
        self.with_ring_detunings(&by_lane)
    }

    /// Returns a copy of this channel whose laser operates at `ambient`.
    #[must_use]
    pub fn with_laser_ambient(&self, ambient: onoc_units::Celsius) -> Self {
        Self {
            laser: self.laser.with_ambient(ambient),
            ..self.clone()
        }
    }

    /// Worst-case path transmission for a '1' bit (modulator OFF) on channel
    /// `index`: laser → multiplexer → waveguide → parked rings of the
    /// intermediate writers → the granted writer's ring bank → the reader's
    /// detuned drop filters → the drop into the destination filter.
    ///
    /// # Panics
    ///
    /// Panics if `index` is outside the wavelength grid.
    #[must_use]
    pub fn path_transmission(&self, index: usize) -> LinearRatio {
        let carrier = self.geometry.grid.wavelength(index);
        let modulator = self.modulator_at(index);
        let own_drop = self.drop_filter_at(index);

        let mut transmission = self.multiplexer.transmission();
        transmission = transmission * self.geometry.waveguide.transmission();

        // Intermediate writers: every ring is parked far off resonance
        // (thermal detuning), so each crossing costs only the broadband
        // insertion loss.
        let parked_crossings =
            self.geometry.worst_case_intermediate_writers() * self.geometry.wavelength_count();
        let per_crossing = self.modulator.through_insertion_loss().to_attenuation();
        transmission =
            transmission * LinearRatio::new(per_crossing.value().powi(parked_crossings as i32));

        // Granted writer: its own-wavelength ring is in the OFF state for a
        // '1' (this is where the extinction ratio is defined); its other
        // rings are parked.
        transmission = transmission * modulator.through_transmission(carrier, RingState::Off);
        let sibling_crossings = self.geometry.wavelength_count().saturating_sub(1);
        transmission =
            transmission * LinearRatio::new(per_crossing.value().powi(sibling_crossings as i32));

        // Reader: the signal passes the drop filters of the other wavelengths
        // (detuned, small residual loss from their Lorentzian tails) and is
        // finally dropped by its own filter.
        for other in self.geometry.grid.other_channels(index) {
            let other_filter = self.drop_filter_at(other);
            transmission =
                transmission * other_filter.through_transmission(carrier, RingState::Off);
        }
        transmission = transmission * own_drop.drop_transmission(carrier, RingState::Off);

        transmission
    }

    /// Fraction of the received '1' power that constitutes the usable swing:
    /// `1 − 10^(−ER/10)`.
    #[must_use]
    pub fn extinction_factor(&self, index: usize) -> f64 {
        1.0 - self.extinction_ratio(index).to_attenuation().value()
    }

    /// Worst-case crosstalk power collected by the drop filter of channel
    /// `index`, assuming every other wavelength is simultaneously carrying a
    /// '1' at the full laser output power (the conservative assumption of
    /// ref. \[8\]).
    ///
    /// # Panics
    ///
    /// Panics if `index` is outside the wavelength grid.
    #[must_use]
    pub fn worst_case_crosstalk(&self, index: usize) -> Microwatts {
        let victim = self.drop_filter_at(index);
        let mut total = Microwatts::zero();
        for other in self.geometry.grid.other_channels(index) {
            let aggressor_wavelength = self.geometry.grid.wavelength(other);
            // The aggressor reaches the reader with the same path loss as the
            // victim (same worst-case writer), at the maximum laser output.
            let received = self
                .laser
                .max_output()
                .scaled_by(self.path_transmission(other));
            let leak = victim.drop_transmission(aggressor_wavelength, RingState::Off);
            total += received.scaled_by(leak);
        }
        total
    }

    /// Fraction of the laser output that ends up as usable swing at the
    /// photodetector of channel `index`: path transmission × extinction
    /// factor.  Under heavy thermal drift the modulator's ON/OFF contrast can
    /// invert, making this factor zero or negative — the channel then carries
    /// no usable signal at any laser power.
    #[must_use]
    pub fn swing_factor(&self, index: usize) -> f64 {
        self.path_transmission(index).value() * self.extinction_factor(index)
    }

    /// Signal swing at the photodetector of channel `index` when the laser
    /// emits `laser_output`.  Clamped at zero when drift has inverted the
    /// modulation contrast (no usable signal).
    #[must_use]
    pub fn signal_swing(&self, laser_output: Microwatts, index: usize) -> Microwatts {
        Microwatts::new((laser_output.value() * self.swing_factor(index)).max(0.0))
    }

    /// Laser output power required to produce `swing` at the photodetector of
    /// channel `index`.  The result is *not* clamped to the laser's
    /// capability; use [`VcselLaser::can_emit`] to check feasibility.
    ///
    /// # Panics
    ///
    /// Panics if the swing factor is not positive (check
    /// [`MwsrChannel::swing_factor`] first): no finite laser power can
    /// produce a swing through a collapsed channel.
    #[must_use]
    pub fn required_laser_output(&self, swing: Microwatts, index: usize) -> Microwatts {
        let factor = self.swing_factor(index);
        assert!(
            factor > 0.0,
            "channel {index} carries no usable swing (factor = {factor})"
        );
        Microwatts::new(swing.value() / factor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibration::PaperCalibration;

    fn channel() -> MwsrChannel {
        PaperCalibration::dac17().into_channel()
    }

    #[test]
    fn geometry_counts() {
        let g = ChannelGeometry::paper_geometry();
        assert_eq!(g.oni_count, 12);
        assert_eq!(g.writer_count(), 11);
        assert_eq!(g.worst_case_intermediate_writers(), 10);
        assert_eq!(g.wavelength_count(), 16);
    }

    #[test]
    fn path_loss_is_in_a_plausible_on_chip_range() {
        let ch = channel();
        let t = ch.path_transmission(0);
        let loss_db = -10.0 * t.value().log10();
        assert!(loss_db > 5.0 && loss_db < 10.0, "path loss = {loss_db} dB");
    }

    #[test]
    fn extinction_ratio_close_to_the_paper_value() {
        let ch = channel();
        for index in [0, 7, 15] {
            let er = ch.extinction_ratio(index);
            assert!((er.value() - 6.9).abs() < 0.3, "ER({index}) = {er}");
        }
    }

    #[test]
    fn all_wavelengths_have_similar_budgets() {
        let ch = channel();
        let losses: Vec<f64> = (0..16).map(|i| ch.path_transmission(i).value()).collect();
        let min = losses.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = losses.iter().cloned().fold(0.0f64, f64::max);
        assert!(max / min < 1.1, "budgets spread too widely: {min}..{max}");
    }

    #[test]
    fn crosstalk_is_small_but_non_zero() {
        let ch = channel();
        let xt = ch.worst_case_crosstalk(8);
        assert!(xt.value() > 0.1, "crosstalk unexpectedly negligible: {xt}");
        assert!(xt.value() < 10.0, "crosstalk unreasonably large: {xt}");
    }

    #[test]
    fn edge_channels_collect_less_crosstalk_than_middle_channels() {
        let ch = channel();
        let edge = ch.worst_case_crosstalk(0);
        let middle = ch.worst_case_crosstalk(8);
        assert!(edge.value() < middle.value());
    }

    #[test]
    fn swing_and_required_output_are_inverse_operations() {
        let ch = channel();
        let swing = ch.signal_swing(Microwatts::new(500.0), 3);
        let back = ch.required_laser_output(swing, 3);
        assert!((back.value() - 500.0).abs() < 1e-6);
    }

    #[test]
    fn swing_is_linear_in_laser_output() {
        let ch = channel();
        let s1 = ch.signal_swing(Microwatts::new(100.0), 0);
        let s2 = ch.signal_swing(Microwatts::new(200.0), 0);
        assert!((s2.value() / s1.value() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn modulation_power_matches_the_paper() {
        assert!((channel().modulation_power().value() - 1.36).abs() < 1e-12);
    }

    #[test]
    fn rings_per_lane_counts_writers_plus_the_drop_filter() {
        assert_eq!(channel().rings_per_lane(), 12);
    }

    #[test]
    fn zero_drift_reproduces_the_channel_exactly() {
        let ch = channel();
        let drifted = ch.with_resonance_drift(onoc_thermal::ResonanceDrift::zero());
        for index in [0, 8, 15] {
            assert_eq!(
                ch.path_transmission(index).value(),
                drifted.path_transmission(index).value()
            );
            assert_eq!(
                ch.worst_case_crosstalk(index).value(),
                drifted.worst_case_crosstalk(index).value()
            );
        }
    }

    #[test]
    fn residual_drift_shrinks_the_swing_monotonically() {
        let ch = channel();
        let baseline = ch.signal_swing(Microwatts::new(500.0), 8).value();
        let mut last = baseline;
        for step in 1..=8 {
            let drift = onoc_thermal::ResonanceDrift::new(f64::from(step) * 0.01);
            let swing = ch
                .with_resonance_drift(drift)
                .signal_swing(Microwatts::new(500.0), 8)
                .value();
            assert!(swing < last, "swing should fall at drift {drift}");
            last = swing;
        }
        // Even half a linewidth of drift must not drive the swing negative.
        assert!(last > 0.0);
    }

    #[test]
    fn zero_ring_detunings_reproduce_the_channel_exactly() {
        let ch = channel();
        let detuned = ch.with_ring_detunings(&[0.0; 16]);
        assert!(!detuned.has_ring_detunings());
        for index in 0..16 {
            assert_eq!(
                ch.path_transmission(index).value(),
                detuned.path_transmission(index).value()
            );
            assert_eq!(
                ch.worst_case_crosstalk(index).value(),
                detuned.worst_case_crosstalk(index).value()
            );
            assert_eq!(
                ch.extinction_ratio(index).value(),
                detuned.extinction_ratio(index).value()
            );
        }
    }

    #[test]
    fn per_index_detuning_only_degrades_the_detuned_ring() {
        let ch = channel();
        let mut detunings = [0.0; 16];
        detunings[8] = 0.08; // ~half a linewidth on ring 8 only
        let detuned = ch.with_ring_detunings(&detunings);
        assert!(detuned.has_ring_detunings());
        assert!((detuned.ring_detuning_nm(8) - 0.08).abs() < 1e-12);
        assert_eq!(detuned.ring_detuning_nm(3), 0.0);
        // The drifted ring loses swing…
        assert!(detuned.swing_factor(8) < ch.swing_factor(8));
        // …the extinction contrast of that ring collapses toward 0 dB…
        assert!(detuned.extinction_ratio(8).value() < ch.extinction_ratio(8).value());
        // …while a far-away ring's own budget is essentially untouched
        // (only the parked-tail of ring 8 moved).
        let far = (detuned.swing_factor(0) - ch.swing_factor(0)).abs() / ch.swing_factor(0);
        assert!(far < 1e-3, "far-channel relative change = {far}");
    }

    #[test]
    fn per_index_detuning_matches_the_uniform_shift_when_all_equal() {
        let ch = channel();
        let uniform = ch.with_resonance_drift(onoc_thermal::ResonanceDrift::new(0.03));
        let per_index = ch.with_ring_detunings(&[0.03; 16]);
        for index in [0, 8, 15] {
            let a = uniform.path_transmission(index).value();
            let b = per_index.path_transmission(index).value();
            assert!((a - b).abs() / a < 1e-9, "channel {index}: {a} vs {b}");
        }
    }

    #[test]
    fn assigned_detunings_land_on_the_served_lane() {
        let ch = channel();
        // Physical ring 5 carries the only residual; under a one-slot
        // rotation it serves lane 6, so lane 6 must degrade, not lane 5.
        let mut by_ring = [0.0; 16];
        by_ring[5] = 0.08;
        let rotation = onoc_thermal::WavelengthAssignment::new(
            (0..16).map(|j: usize| (j + 15) % 16).collect(),
        )
        .unwrap();
        let assigned = ch.with_assigned_ring_detunings(&by_ring, &rotation);
        assert!((assigned.ring_detuning_nm(6) - 0.08).abs() < 1e-12);
        assert_eq!(assigned.ring_detuning_nm(5), 0.0);
        assert!(assigned.swing_factor(6) < ch.swing_factor(6));
        // The identity assignment reproduces with_ring_detunings exactly.
        let identity = onoc_thermal::WavelengthAssignment::identity(16);
        let a = ch.with_assigned_ring_detunings(&by_ring, &identity);
        let b = ch.with_ring_detunings(&by_ring);
        for index in 0..16 {
            assert_eq!(a.ring_detuning_nm(index), b.ring_detuning_nm(index));
        }
    }

    #[test]
    #[should_panic(expected = "one assignment entry per wavelength")]
    fn wrong_length_assignment_is_rejected() {
        let _ = channel().with_assigned_ring_detunings(
            &[0.0; 16],
            &onoc_thermal::WavelengthAssignment::identity(4),
        );
    }

    #[test]
    #[should_panic(expected = "one detuning per wavelength")]
    fn wrong_length_detuning_vector_is_rejected() {
        let _ = channel().with_ring_detunings(&[0.0; 3]);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_detuning_is_rejected() {
        let mut detunings = [0.0; 16];
        detunings[0] = f64::NAN;
        let _ = channel().with_ring_detunings(&detunings);
    }

    #[test]
    fn laser_ambient_propagates_to_the_laser_model() {
        let ch = channel().with_laser_ambient(onoc_units::Celsius::new(85.0));
        assert!((ch.laser().ambient().value() - 85.0).abs() < 1e-12);
        // The optical path itself is unaffected by the laser ambient.
        assert_eq!(
            ch.path_transmission(0).value(),
            channel().path_transmission(0).value()
        );
    }
}
