//! Silicon waveguide propagation-loss model.

use onoc_units::{Centimeters, Decibels, DecibelsPerCentimeter, LinearRatio};
use serde::{Deserialize, Serialize};

/// A straight silicon waveguide section characterised by its length and
/// propagation loss.
///
/// The paper assumes a 6 cm waveguide with 0.274 dB/cm loss (ref. \[17\]).
///
/// ```
/// use onoc_photonics::devices::Waveguide;
/// let wg = Waveguide::paper_waveguide();
/// assert!((wg.total_loss().value() - 1.644).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Waveguide {
    length: Centimeters,
    loss_per_cm: DecibelsPerCentimeter,
}

impl Waveguide {
    /// Creates a waveguide from its length and per-centimetre loss.
    #[must_use]
    pub fn new(length: Centimeters, loss_per_cm: DecibelsPerCentimeter) -> Self {
        Self {
            length,
            loss_per_cm,
        }
    }

    /// The 6 cm, 0.274 dB/cm waveguide of the paper.
    #[must_use]
    pub fn paper_waveguide() -> Self {
        Self::new(Centimeters::new(6.0), DecibelsPerCentimeter::new(0.274))
    }

    /// Physical length.
    #[must_use]
    pub fn length(&self) -> Centimeters {
        self.length
    }

    /// Propagation loss per centimetre.
    #[must_use]
    pub fn loss_per_cm(&self) -> DecibelsPerCentimeter {
        self.loss_per_cm
    }

    /// Total propagation loss end to end.
    #[must_use]
    pub fn total_loss(&self) -> Decibels {
        self.loss_per_cm.over(self.length)
    }

    /// Loss accumulated over the first `distance` of the waveguide.
    ///
    /// # Panics
    ///
    /// Panics if `distance` exceeds the waveguide length.
    #[must_use]
    pub fn loss_over(&self, distance: Centimeters) -> Decibels {
        assert!(
            distance.value() <= self.length.value() + 1e-12,
            "distance exceeds the waveguide length"
        );
        self.loss_per_cm.over(distance)
    }

    /// End-to-end power transmission factor.
    #[must_use]
    pub fn transmission(&self) -> LinearRatio {
        self.total_loss().to_attenuation()
    }
}

impl Default for Waveguide {
    fn default() -> Self {
        Self::paper_waveguide()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_waveguide_loss() {
        let wg = Waveguide::paper_waveguide();
        assert!((wg.total_loss().value() - 1.644).abs() < 1e-9);
        assert!((wg.transmission().value() - 0.685).abs() < 1e-2);
        assert_eq!(wg.length().value(), 6.0);
        assert_eq!(wg.loss_per_cm().value(), 0.274);
    }

    #[test]
    fn partial_loss_scales_linearly_in_db() {
        let wg = Waveguide::paper_waveguide();
        let half = wg.loss_over(Centimeters::new(3.0));
        assert!((half.value() * 2.0 - wg.total_loss().value()).abs() < 1e-12);
    }

    #[test]
    fn zero_length_waveguide_is_lossless() {
        let wg = Waveguide::new(Centimeters::zero(), DecibelsPerCentimeter::new(0.274));
        assert!((wg.transmission().value() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "exceeds the waveguide length")]
    fn distance_beyond_length_panics() {
        let wg = Waveguide::paper_waveguide();
        let _ = wg.loss_over(Centimeters::new(7.0));
    }
}
