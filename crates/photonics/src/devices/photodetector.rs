//! Photodetector model (thin wrapper around the receiver model of
//! `onoc-ber`, plus the optical-side parameters that belong to the device).

use onoc_ber::ReceiverModel;
use onoc_units::{AmpsPerWatt, Microamps, Microwatts};
use serde::{Deserialize, Serialize};

/// A photodetector characterised by its responsivity and dark current.
///
/// ```
/// use onoc_photonics::devices::Photodetector;
/// use onoc_units::Microwatts;
///
/// let pd = Photodetector::paper_photodetector();
/// let current = pd.photocurrent(Microwatts::new(91.0));
/// assert!((current.value() - 91.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Photodetector {
    responsivity: AmpsPerWatt,
    dark_current: Microamps,
}

impl Photodetector {
    /// Creates a photodetector.
    ///
    /// # Panics
    ///
    /// Panics if responsivity or dark current are non-positive.
    #[must_use]
    pub fn new(responsivity: AmpsPerWatt, dark_current: Microamps) -> Self {
        assert!(responsivity.value() > 0.0, "responsivity must be positive");
        assert!(dark_current.value() > 0.0, "dark current must be positive");
        Self {
            responsivity,
            dark_current,
        }
    }

    /// The detector assumed by the paper: 1 A/W responsivity, 4 µA dark
    /// current.
    #[must_use]
    pub fn paper_photodetector() -> Self {
        Self::new(AmpsPerWatt::new(1.0), Microamps::new(4.0))
    }

    /// Responsivity.
    #[must_use]
    pub fn responsivity(&self) -> AmpsPerWatt {
        self.responsivity
    }

    /// Dark current.
    #[must_use]
    pub fn dark_current(&self) -> Microamps {
        self.dark_current
    }

    /// Photocurrent for a given incident optical power.
    #[must_use]
    pub fn photocurrent(&self, power: Microwatts) -> Microamps {
        self.responsivity.photocurrent(power)
    }

    /// The equivalent decision-circuit model used by the BER math.
    #[must_use]
    pub fn to_receiver_model(self) -> ReceiverModel {
        ReceiverModel::new(self.responsivity, self.dark_current)
    }
}

impl Default for Photodetector {
    fn default() -> Self {
        Self::paper_photodetector()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_values() {
        let pd = Photodetector::paper_photodetector();
        assert_eq!(pd.responsivity().value(), 1.0);
        assert_eq!(pd.dark_current().value(), 4.0);
    }

    #[test]
    fn receiver_model_round_trip() {
        let pd = Photodetector::paper_photodetector();
        let rx = pd.to_receiver_model();
        let signal = rx.required_signal_power(22.75, Microwatts::zero());
        assert!((signal.value() - 91.0).abs() < 0.01);
    }

    #[test]
    fn photocurrent_scales_with_responsivity() {
        let pd = Photodetector::new(AmpsPerWatt::new(0.5), Microamps::new(4.0));
        assert!((pd.photocurrent(Microwatts::new(100.0)).value() - 50.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "dark current")]
    fn zero_dark_current_rejected() {
        let _ = Photodetector::new(AmpsPerWatt::new(1.0), Microamps::new(0.0));
    }
}
