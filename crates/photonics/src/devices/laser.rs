//! On-chip VCSEL laser model with temperature-dependent efficiency.
//!
//! The paper uses CMOS-compatible photonic-crystal VCSELs (ref. [16]) whose
//! wall-plug efficiency drops as the device heats up.  The electrical power
//! `P_laser` needed to emit an optical power `OP_laser` therefore grows
//! linearly at low output levels and super-linearly once self-heating and the
//! activity of the underlying electrical layer raise the junction
//! temperature — the behaviour plotted in Fig. 4 of the paper for a 25% chip
//! activity.
//!
//! The model here makes that feedback loop explicit:
//!
//! 1. junction temperature = ambient + activity heating + θ·P_laser,
//! 2. efficiency η(T) = η₀ · exp(−(T − T_ref)/T_scale),
//! 3. P_laser = OP_laser / η(T),
//!
//! solved as a fixed point.  The default constants are calibrated so that the
//! curve reproduces the shape and the anchor points of Fig. 4 (≈ 5%
//! efficiency in the linear region, a hard 700 µW ceiling on the deliverable
//! optical power, and ≈ 14 mW of electrical power at that ceiling).

use onoc_units::{Celsius, Microwatts, Milliwatts};
use serde::{Deserialize, Serialize};

/// The electro-thermal fixed point diverged: every extra milliwatt of
/// electrical power heats the junction enough to cost more than a milliwatt
/// of efficiency — no finite electrical power emits the requested output.
///
/// With the paper VCSEL this happens around 85 °C ambient; topology sweeps
/// probe that whole envelope, so the condition is a typed error rather than
/// a panic (the link layer reports it as `LinkError::Infeasible`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThermalRunaway {
    /// Requested optical output the solve was running for.
    pub optical_output: Microwatts,
    /// Electrical-layer activity of the failing solve.
    pub activity: f64,
}

impl std::fmt::Display for ThermalRunaway {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "laser thermal runaway while solving for {} at activity {:.2}",
            self.optical_output, self.activity
        )
    }
}

impl std::error::Error for ThermalRunaway {}

/// Thermal/efficiency description of a VCSEL.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LaserThermalModel {
    /// Wall-plug efficiency at the reference temperature.
    pub base_efficiency: f64,
    /// Temperature at which `base_efficiency` is measured.
    pub reference_temperature: Celsius,
    /// Exponential roll-off scale of the efficiency with temperature.
    pub efficiency_decay_scale: Celsius,
    /// Junction heating contributed by full (100%) electrical-layer activity.
    pub activity_heating: Celsius,
    /// Self-heating per milliwatt of electrical laser power.
    pub self_heating_per_milliwatt: Celsius,
}

impl LaserThermalModel {
    /// Thermal model calibrated against Fig. 4 of the paper.
    #[must_use]
    pub fn paper_calibrated() -> Self {
        Self {
            base_efficiency: 0.055,
            reference_temperature: Celsius::new(35.0),
            efficiency_decay_scale: Celsius::new(105.0),
            activity_heating: Celsius::new(40.0),
            self_heating_per_milliwatt: Celsius::new(1.0),
        }
    }

    /// Wall-plug efficiency at junction temperature `t`.
    #[must_use]
    pub fn efficiency_at(&self, t: Celsius) -> f64 {
        let delta = t.value() - self.reference_temperature.value();
        self.base_efficiency * (-delta / self.efficiency_decay_scale.value()).exp()
    }
}

impl Default for LaserThermalModel {
    fn default() -> Self {
        Self::paper_calibrated()
    }
}

/// A CMOS-compatible VCSEL laser source.
///
/// ```
/// use onoc_photonics::devices::VcselLaser;
/// use onoc_units::Microwatts;
///
/// let laser = VcselLaser::paper_vcsel();
/// let low = laser.electrical_power(Microwatts::new(100.0), 0.25);
/// let high = laser.electrical_power(Microwatts::new(700.0), 0.25);
/// // The high-output point costs more than 7× the low-output point: the
/// // efficiency roll-off makes the curve super-linear (Fig. 4).
/// assert!(high.value() / low.value() > 7.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VcselLaser {
    thermal: LaserThermalModel,
    ambient: Celsius,
    max_output: Microwatts,
}

impl VcselLaser {
    /// Creates a laser from a thermal model, ambient temperature and maximum
    /// deliverable optical output power.
    ///
    /// # Panics
    ///
    /// Panics if the maximum output power is zero.
    #[must_use]
    pub fn new(thermal: LaserThermalModel, ambient: Celsius, max_output: Microwatts) -> Self {
        assert!(
            max_output.value() > 0.0,
            "maximum optical output must be positive"
        );
        Self {
            thermal,
            ambient,
            max_output,
        }
    }

    /// The laser assumed by the paper: Fig. 4 calibration, 25 °C ambient and
    /// a 700 µW ceiling on the optical output power.
    #[must_use]
    pub fn paper_vcsel() -> Self {
        Self::new(
            LaserThermalModel::paper_calibrated(),
            Celsius::new(25.0),
            Microwatts::new(700.0),
        )
    }

    /// Maximum optical output power the laser can deliver.
    #[must_use]
    pub fn max_output(&self) -> Microwatts {
        self.max_output
    }

    /// Ambient temperature of the optical layer this laser sits in.
    #[must_use]
    pub fn ambient(&self) -> Celsius {
        self.ambient
    }

    /// Returns a copy of this laser operating at a different ambient
    /// temperature.  A hotter ambient lowers the wall-plug efficiency, so the
    /// same optical output costs more electrical power (Fig. 4's curve shifts
    /// up) — the laser-side half of the thermal model.
    #[must_use]
    pub fn with_ambient(&self, ambient: Celsius) -> Self {
        Self { ambient, ..*self }
    }

    /// The thermal/efficiency model.
    #[must_use]
    pub fn thermal_model(&self) -> &LaserThermalModel {
        &self.thermal
    }

    /// Returns `true` when the laser can emit `optical_output`.
    #[must_use]
    pub fn can_emit(&self, optical_output: Microwatts) -> bool {
        optical_output.value() <= self.max_output.value() + 1e-9
    }

    /// Junction temperature for a given electrical power and chip activity.
    #[must_use]
    pub fn junction_temperature(&self, electrical: Milliwatts, activity: f64) -> Celsius {
        Celsius::new(
            self.ambient.value()
                + self.thermal.activity_heating.value() * activity.clamp(0.0, 1.0)
                + self.thermal.self_heating_per_milliwatt.value() * electrical.value(),
        )
    }

    /// Electrical power needed to emit `optical_output` with the electrical
    /// layer running at `activity` (0.0–1.0).
    ///
    /// The electro-thermal feedback is resolved by damped fixed-point
    /// iteration; the solution is unique because the efficiency is a
    /// monotonically decreasing function of the electrical power.
    ///
    /// # Panics
    ///
    /// Panics if `optical_output` exceeds the laser's deliverable maximum
    /// (check with [`VcselLaser::can_emit`] first) or if the thermal runaway
    /// prevents convergence; use [`VcselLaser::try_electrical_power`] to get
    /// the runaway as a typed error instead.
    #[must_use]
    pub fn electrical_power(&self, optical_output: Microwatts, activity: f64) -> Milliwatts {
        self.try_electrical_power(optical_output, activity)
            .unwrap_or_else(|runaway| panic!("{runaway}"))
    }

    /// Fallible form of [`VcselLaser::electrical_power`]: a diverging
    /// electro-thermal fixed point is reported as [`ThermalRunaway`] instead
    /// of aborting, so envelope sweeps can record the point as infeasible.
    ///
    /// # Errors
    ///
    /// [`ThermalRunaway`] when the fixed point diverges (or fails to
    /// converge) — no finite electrical power can emit `optical_output` at
    /// this ambient/activity.
    ///
    /// # Panics
    ///
    /// Panics if `optical_output` exceeds the laser's deliverable maximum
    /// (check with [`VcselLaser::can_emit`] first); that is a precondition
    /// violation, not a physical infeasibility.
    pub fn try_electrical_power(
        &self,
        optical_output: Microwatts,
        activity: f64,
    ) -> Result<Milliwatts, ThermalRunaway> {
        assert!(
            self.can_emit(optical_output),
            "requested optical output {optical_output} exceeds the laser maximum {}",
            self.max_output
        );
        if optical_output.is_zero() {
            return Ok(Milliwatts::zero());
        }
        let runaway = ThermalRunaway {
            optical_output,
            activity,
        };
        let op_mw = optical_output.to_milliwatts().value();
        // Initial guess: constant base efficiency.
        let mut electrical = op_mw / self.thermal.base_efficiency;
        let mut converged = false;
        for _ in 0..500 {
            let t = self.junction_temperature(Milliwatts::new(electrical), activity);
            let eta = self.thermal.efficiency_at(t);
            let next = op_mw / eta;
            if !next.is_finite() || next > 1e4 {
                return Err(runaway);
            }
            if (next - electrical).abs() < 1e-9 {
                electrical = next;
                converged = true;
                break;
            }
            // Damping keeps the iteration stable close to the runaway region.
            electrical = 0.5 * electrical + 0.5 * next;
        }
        // The damped iteration on a monotone map only fails to settle when it
        // is creeping towards the divergence; classify that as runaway too.
        if !converged {
            return Err(runaway);
        }
        Ok(Milliwatts::new(electrical))
    }

    /// Wall-plug efficiency at the operating point (`optical_output`,
    /// `activity`).
    ///
    /// # Panics
    ///
    /// Same conditions as [`VcselLaser::electrical_power`].
    #[must_use]
    pub fn efficiency(&self, optical_output: Microwatts, activity: f64) -> f64 {
        if optical_output.is_zero() {
            let t = self.junction_temperature(Milliwatts::zero(), activity);
            return self.thermal.efficiency_at(t);
        }
        let electrical = self.electrical_power(optical_output, activity);
        optical_output.to_milliwatts().value() / electrical.value()
    }
}

impl Default for VcselLaser {
    fn default() -> Self {
        Self::paper_vcsel()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn efficiency_decreases_with_temperature() {
        let model = LaserThermalModel::paper_calibrated();
        let cool = model.efficiency_at(Celsius::new(35.0));
        let hot = model.efficiency_at(Celsius::new(85.0));
        assert!((cool - 0.055).abs() < 1e-12);
        assert!(hot < cool);
    }

    #[test]
    fn electrical_power_is_monotone_in_optical_output() {
        let laser = VcselLaser::paper_vcsel();
        let mut last = Milliwatts::zero();
        for op in (0..=14).map(|i| Microwatts::new(i as f64 * 50.0)) {
            let p = laser.electrical_power(op, 0.25);
            assert!(p.value() >= last.value(), "not monotone at {op}");
            last = p;
        }
    }

    #[test]
    fn low_output_region_is_roughly_linear_at_5_percent_efficiency() {
        let laser = VcselLaser::paper_vcsel();
        let p100 = laser.electrical_power(Microwatts::new(100.0), 0.25);
        let p200 = laser.electrical_power(Microwatts::new(200.0), 0.25);
        // Doubling the output should cost close to (but slightly more than)
        // twice the power.
        let ratio = p200.value() / p100.value();
        assert!(ratio > 1.95 && ratio < 2.3, "ratio = {ratio}");
        let eff = laser.efficiency(Microwatts::new(100.0), 0.25);
        assert!(eff > 0.035 && eff < 0.055, "efficiency = {eff}");
    }

    #[test]
    fn high_output_region_is_super_linear() {
        let laser = VcselLaser::paper_vcsel();
        let p350 = laser.electrical_power(Microwatts::new(350.0), 0.25);
        let p700 = laser.electrical_power(Microwatts::new(700.0), 0.25);
        // Fig. 4: beyond ~500 µW the curve bends upwards.
        assert!(p700.value() / p350.value() > 2.05);
    }

    #[test]
    fn fig4_anchor_point_at_the_ceiling() {
        let laser = VcselLaser::paper_vcsel();
        let p = laser.electrical_power(Microwatts::new(700.0), 0.25);
        assert!(
            p.value() > 12.0 && p.value() < 17.0,
            "P_laser(700 uW) = {p}"
        );
    }

    #[test]
    fn activity_raises_the_electrical_power() {
        let laser = VcselLaser::paper_vcsel();
        let idle = laser.electrical_power(Microwatts::new(400.0), 0.0);
        let busy = laser.electrical_power(Microwatts::new(400.0), 1.0);
        assert!(busy.value() > idle.value());
    }

    #[test]
    fn zero_output_costs_nothing() {
        let laser = VcselLaser::paper_vcsel();
        assert!(laser.electrical_power(Microwatts::zero(), 0.25).is_zero());
        assert!(laser.efficiency(Microwatts::zero(), 0.25) > 0.0);
    }

    #[test]
    fn ceiling_is_enforced() {
        let laser = VcselLaser::paper_vcsel();
        assert!(laser.can_emit(Microwatts::new(700.0)));
        assert!(!laser.can_emit(Microwatts::new(701.0)));
    }

    #[test]
    #[should_panic(expected = "exceeds the laser maximum")]
    fn over_ceiling_request_panics() {
        let laser = VcselLaser::paper_vcsel();
        let _ = laser.electrical_power(Microwatts::new(900.0), 0.25);
    }

    #[test]
    fn runaway_is_a_typed_error_on_the_fallible_path() {
        // Far beyond the paper envelope the electro-thermal fixed point has
        // no solution: every milliwatt heats the junction enough to cost
        // more than a milliwatt of efficiency.
        let furnace = VcselLaser::paper_vcsel().with_ambient(Celsius::new(150.0));
        let err = furnace
            .try_electrical_power(Microwatts::new(700.0), 1.0)
            .expect_err("no fixed point exists at 150 degC ambient");
        assert!((err.optical_output.value() - 700.0).abs() < 1e-9);
        assert!(err.to_string().contains("thermal runaway"));
        // The feasible region is still served normally by the same path.
        assert!(VcselLaser::paper_vcsel()
            .try_electrical_power(Microwatts::new(700.0), 0.25)
            .is_ok());
    }

    #[test]
    #[should_panic(expected = "thermal runaway")]
    fn runaway_still_panics_on_the_infallible_path() {
        let furnace = VcselLaser::paper_vcsel().with_ambient(Celsius::new(150.0));
        let _ = furnace.electrical_power(Microwatts::new(700.0), 1.0);
    }

    #[test]
    fn hotter_ambient_costs_more_electrical_power() {
        let laser = VcselLaser::paper_vcsel();
        assert!((laser.ambient().value() - 25.0).abs() < 1e-12);
        let hot = laser.with_ambient(Celsius::new(85.0));
        assert!((hot.ambient().value() - 85.0).abs() < 1e-12);
        let op = Microwatts::new(400.0);
        assert!(hot.electrical_power(op, 0.25).value() > laser.electrical_power(op, 0.25).value());
        // The optical ceiling is a device property, unaffected by ambient.
        assert_eq!(hot.max_output(), laser.max_output());
        // Same ambient reproduces the same numbers exactly.
        let same = laser.with_ambient(Celsius::new(25.0));
        assert_eq!(
            same.electrical_power(op, 0.25).value(),
            laser.electrical_power(op, 0.25).value()
        );
    }

    #[test]
    fn junction_temperature_composition() {
        let laser = VcselLaser::paper_vcsel();
        let t = laser.junction_temperature(Milliwatts::new(10.0), 0.25);
        // 25 + 40*0.25 + 1.0*10 = 45 °C.
        assert!((t.value() - 45.0).abs() < 1e-9);
    }
}
