//! Micro-ring resonator (MR) model.
//!
//! The MR is the workhorse of the MWSR channel: forward-biasing the ring
//! blue-shifts its resonance (ON state), aligning it with the optical carrier
//! and absorbing most of the signal power; in the OFF state the carrier is
//! detuned from the resonance and passes with low loss.  The difference
//! between the two through-port transmissions at the carrier wavelength is
//! the extinction ratio (ER = 6.9 dB in the paper, from ref. [15]).
//!
//! The spectral response is modelled as a Lorentzian, which is the standard
//! first-order approximation of an add-drop ring close to resonance and is
//! what produces the characteristic notch of Fig. 3.

use onoc_units::{Decibels, LinearRatio, Milliwatts, Nanometers};
use serde::{Deserialize, Serialize};

/// Electro-optic state of a ring modulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RingState {
    /// Resonance detuned from the carrier: the signal passes (data '1').
    Off,
    /// Resonance aligned with the carrier: the signal is absorbed (data '0').
    On,
}

/// An add-drop micro-ring resonator with Lorentzian line shape.
///
/// ```
/// use onoc_photonics::devices::{MicroRingResonator, RingState};
/// use onoc_units::{Decibels, Nanometers};
///
/// let ring = MicroRingResonator::paper_modulator(Nanometers::new(1550.0));
/// let carrier = Nanometers::new(1550.0);
/// let on = ring.through_transmission(carrier, RingState::On);
/// let off = ring.through_transmission(carrier, RingState::Off);
/// // ER = 10·log10(off/on) ≈ 6.9 dB.
/// let er = 10.0 * (off.value() / on.value()).log10();
/// assert!((er - 6.9).abs() < 0.2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MicroRingResonator {
    /// Resonant wavelength in the OFF (unbiased) state.
    resonance_off: Nanometers,
    /// Blue shift of the resonance when the ring is driven ON.
    on_shift: Nanometers,
    /// Full width at half maximum of the Lorentzian resonance.
    fwhm: Nanometers,
    /// Maximum attenuation at exact resonance, through port (dB).
    peak_through_attenuation: Decibels,
    /// Fraction of on-resonance power coupled to the drop port (dB loss).
    drop_insertion_loss: Decibels,
    /// Broadband insertion loss seen by any wavelength crossing the ring.
    through_insertion_loss: Decibels,
    /// Electrical power of the driver when modulating.
    modulation_power: Milliwatts,
}

impl MicroRingResonator {
    /// Creates a ring from its full parameter set.
    ///
    /// # Panics
    ///
    /// Panics if the FWHM is zero.
    #[allow(clippy::too_many_arguments)]
    #[must_use]
    pub fn new(
        resonance_off: Nanometers,
        on_shift: Nanometers,
        fwhm: Nanometers,
        peak_through_attenuation: Decibels,
        drop_insertion_loss: Decibels,
        through_insertion_loss: Decibels,
        modulation_power: Milliwatts,
    ) -> Self {
        assert!(fwhm.value() > 0.0, "resonance FWHM must be positive");
        Self {
            resonance_off,
            on_shift,
            fwhm,
            peak_through_attenuation,
            drop_insertion_loss,
            through_insertion_loss,
            modulation_power,
        }
    }

    /// The modulator assumed by the paper: ER = 6.9 dB, P_MR = 1.36 mW
    /// (ref. \[15\]), with a resonance width typical of a Q ≈ 9,000 silicon
    /// ring, tuned so that the OFF state sits half a linewidth away from the
    /// carrier.
    #[must_use]
    pub fn paper_modulator(carrier: Nanometers) -> Self {
        let fwhm = Nanometers::new(0.17);
        // In the OFF state the resonance is parked one FWHM below the
        // carrier; driving the ring ON shifts it up onto the carrier.
        let resonance_off = Nanometers::new(carrier.value() - fwhm.value());
        Self::new(
            resonance_off,
            Nanometers::new(fwhm.value()),
            fwhm,
            // Peak attenuation chosen so that the ON/OFF contrast at the
            // carrier is the paper's 6.9 dB extinction ratio.
            Decibels::new(7.55),
            Decibels::new(1.5),
            Decibels::new(0.015),
            Milliwatts::new(1.36),
        )
    }

    /// A passive drop filter (used in front of each photodetector of the
    /// reader): resonance centred on the carrier, no modulation power.
    #[must_use]
    pub fn paper_drop_filter(carrier: Nanometers) -> Self {
        Self::new(
            carrier,
            Nanometers::zero(),
            Nanometers::new(0.17),
            Decibels::new(13.0),
            Decibels::new(1.5),
            Decibels::new(0.015),
            Milliwatts::zero(),
        )
    }

    /// Resonant wavelength in the given state.
    #[must_use]
    pub fn resonance(&self, state: RingState) -> Nanometers {
        match state {
            RingState::Off => self.resonance_off,
            RingState::On => Nanometers::new(self.resonance_off.value() + self.on_shift.value()),
        }
    }

    /// Resonance full width at half maximum.
    #[must_use]
    pub fn fwhm(&self) -> Nanometers {
        self.fwhm
    }

    /// Electrical power dissipated by the driver while modulating.
    #[must_use]
    pub fn modulation_power(&self) -> Milliwatts {
        self.modulation_power
    }

    /// Broadband (far-off-resonance) through insertion loss.
    #[must_use]
    pub fn through_insertion_loss(&self) -> Decibels {
        self.through_insertion_loss
    }

    /// Peak through-port attenuation at exact resonance.
    #[must_use]
    pub fn peak_through_attenuation(&self) -> Decibels {
        self.peak_through_attenuation
    }

    /// Insertion loss of the drop port at exact resonance.
    #[must_use]
    pub fn drop_insertion_loss(&self) -> Decibels {
        self.drop_insertion_loss
    }

    /// Returns a copy of this ring re-centred so that its OFF-state resonance
    /// keeps the same offset relative to the new `carrier` as it had relative
    /// to `old_carrier`.
    #[must_use]
    pub fn recentered(&self, old_carrier: Nanometers, carrier: Nanometers) -> Self {
        let shift = carrier.value() - old_carrier.value();
        Self {
            resonance_off: Nanometers::new(self.resonance_off.value() + shift),
            ..*self
        }
    }

    /// Returns a copy of this ring with its resonance shifted by `shift_nm`
    /// (positive = red shift).  This is how thermal drift enters the model:
    /// a temperature excursion moves the resonance relative to the (fixed)
    /// carrier grid, and every transmission figure follows from the same
    /// Lorentzian line shape evaluated at the shifted centre.
    #[must_use]
    pub fn detuned_by(&self, shift_nm: f64) -> Self {
        assert!(shift_nm.is_finite(), "resonance shift must be finite");
        Self {
            resonance_off: Nanometers::new(self.resonance_off.value() + shift_nm),
            ..*self
        }
    }

    /// Lorentzian weight at `wavelength` for a resonance centred on `center`:
    /// 1 at resonance, 0.5 at ±FWHM/2.
    fn lorentzian(&self, wavelength: Nanometers, center: Nanometers) -> f64 {
        let half_width = self.fwhm.value() / 2.0;
        let detuning = (wavelength.value() - center.value()) / half_width;
        1.0 / (1.0 + detuning * detuning)
    }

    /// Through-port power transmission at `wavelength` with the ring in
    /// `state` (includes the broadband insertion loss).
    #[must_use]
    pub fn through_transmission(&self, wavelength: Nanometers, state: RingState) -> LinearRatio {
        let notch_depth = 1.0 - self.peak_through_attenuation.to_attenuation().value();
        let weight = self.lorentzian(wavelength, self.resonance(state));
        let resonant_term = 1.0 - notch_depth * weight;
        let broadband = self.through_insertion_loss.to_attenuation().value();
        LinearRatio::new(resonant_term * broadband)
    }

    /// Drop-port power transmission at `wavelength` with the ring in `state`.
    #[must_use]
    pub fn drop_transmission(&self, wavelength: Nanometers, state: RingState) -> LinearRatio {
        let peak = self.drop_insertion_loss.to_attenuation().value();
        let weight = self.lorentzian(wavelength, self.resonance(state));
        LinearRatio::new(peak * weight)
    }

    /// Extinction ratio at `carrier`: the ratio of OFF to ON through-port
    /// transmission, in dB.
    #[must_use]
    pub fn extinction_ratio(&self, carrier: Nanometers) -> Decibels {
        let off = self.through_transmission(carrier, RingState::Off).value();
        let on = self.through_transmission(carrier, RingState::On).value();
        Decibels::new(10.0 * (off / on).log10())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn carrier() -> Nanometers {
        Nanometers::new(1550.0)
    }

    #[test]
    fn paper_modulator_reaches_the_quoted_extinction_ratio() {
        let ring = MicroRingResonator::paper_modulator(carrier());
        let er = ring.extinction_ratio(carrier());
        assert!((er.value() - 6.9).abs() < 0.2, "ER = {er}");
    }

    #[test]
    fn on_state_absorbs_more_than_off_state() {
        let ring = MicroRingResonator::paper_modulator(carrier());
        let on = ring.through_transmission(carrier(), RingState::On);
        let off = ring.through_transmission(carrier(), RingState::Off);
        assert!(on.value() < off.value());
        assert!(off.value() > 0.7, "OFF-state loss should be mild: {off}");
    }

    #[test]
    fn far_detuned_wavelength_sees_only_insertion_loss() {
        let ring = MicroRingResonator::paper_modulator(carrier());
        let far = Nanometers::new(1557.0);
        let t = ring.through_transmission(far, RingState::Off);
        let insertion = ring.through_insertion_loss().to_attenuation();
        assert!((t.value() - insertion.value()).abs() < 0.01);
    }

    #[test]
    fn transmission_spectrum_has_a_notch_at_the_resonance() {
        // Mirrors Fig. 3: the ON and OFF curves are identical notches shifted
        // by Δλ.
        let ring = MicroRingResonator::paper_modulator(carrier());
        let res_off = ring.resonance(RingState::Off);
        let res_on = ring.resonance(RingState::On);
        assert!(res_on.value() > res_off.value());
        let at_off_res = ring.through_transmission(res_off, RingState::Off);
        let away =
            ring.through_transmission(Nanometers::new(res_off.value() - 1.0), RingState::Off);
        assert!(at_off_res.value() < 0.3);
        assert!(away.value() > 0.9);
    }

    #[test]
    fn drop_filter_peaks_at_its_resonance() {
        let ring = MicroRingResonator::paper_drop_filter(carrier());
        let on_res = ring.drop_transmission(carrier(), RingState::Off);
        let neighbour = ring.drop_transmission(Nanometers::new(1550.8), RingState::Off);
        assert!(on_res.value() > 0.6);
        assert!(
            neighbour.value() < 0.05,
            "adjacent-channel crosstalk should be small"
        );
        assert!(
            neighbour.value() > 0.0,
            "Lorentzian tails never vanish completely"
        );
    }

    #[test]
    fn modulation_power_matches_the_paper() {
        let ring = MicroRingResonator::paper_modulator(carrier());
        assert!((ring.modulation_power().value() - 1.36).abs() < 1e-12);
        let filter = MicroRingResonator::paper_drop_filter(carrier());
        assert!(filter.modulation_power().is_zero());
    }

    #[test]
    fn lorentzian_half_width_property() {
        let ring = MicroRingResonator::paper_drop_filter(carrier());
        let half = Nanometers::new(carrier().value() + ring.fwhm().value() / 2.0);
        let peak = ring.drop_transmission(carrier(), RingState::Off).value();
        let at_half = ring.drop_transmission(half, RingState::Off).value();
        assert!((at_half / peak - 0.5).abs() < 1e-9);
    }

    #[test]
    fn detuning_shifts_the_resonance_and_degrades_the_notch() {
        let ring = MicroRingResonator::paper_drop_filter(carrier());
        let drifted = ring.detuned_by(0.05);
        assert!(
            (drifted.resonance(RingState::Off).value() - (carrier().value() + 0.05)).abs() < 1e-9
        );
        // The drifted filter drops less of the carrier power…
        let aligned = ring.drop_transmission(carrier(), RingState::Off);
        let off_grid = drifted.drop_transmission(carrier(), RingState::Off);
        assert!(off_grid.value() < aligned.value());
        // …and a zero shift is exactly the identity.
        let same = ring
            .detuned_by(0.0)
            .drop_transmission(carrier(), RingState::Off);
        assert_eq!(same.value(), aligned.value());
        // Blue shifts are symmetric for the symmetric Lorentzian.
        let blue = ring
            .detuned_by(-0.05)
            .drop_transmission(carrier(), RingState::Off);
        assert!((blue.value() - off_grid.value()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "FWHM")]
    fn zero_fwhm_rejected() {
        let _ = MicroRingResonator::new(
            carrier(),
            Nanometers::zero(),
            Nanometers::zero(),
            Decibels::new(10.0),
            Decibels::new(1.5),
            Decibels::new(0.01),
            Milliwatts::zero(),
        );
    }
}
