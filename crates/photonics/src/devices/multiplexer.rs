//! Wavelength multiplexer (MMI coupler) model.
//!
//! The paper combines the N_W un-modulated laser outputs onto the waveguide
//! with a multimode-interference (MMI) coupler (ref. [12]).  From the link
//! budget's point of view the device is a broadband insertion loss.

use onoc_units::{Decibels, LinearRatio};
use serde::{Deserialize, Serialize};

/// An N-to-1 wavelength multiplexer with a flat insertion loss.
///
/// ```
/// use onoc_photonics::devices::Multiplexer;
/// let mux = Multiplexer::paper_mmi(16);
/// assert_eq!(mux.inputs(), 16);
/// assert!(mux.transmission().value() < 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Multiplexer {
    inputs: usize,
    insertion_loss: Decibels,
}

impl Multiplexer {
    /// Creates a multiplexer with `inputs` input ports and the given
    /// insertion loss.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is zero.
    #[must_use]
    pub fn new(inputs: usize, insertion_loss: Decibels) -> Self {
        assert!(inputs > 0, "a multiplexer needs at least one input");
        Self {
            inputs,
            insertion_loss,
        }
    }

    /// The MMI coupler assumed for the paper configuration: 1 dB insertion
    /// loss regardless of the port count.
    #[must_use]
    pub fn paper_mmi(inputs: usize) -> Self {
        Self::new(inputs, Decibels::new(1.0))
    }

    /// Number of input ports (one per wavelength).
    #[must_use]
    pub fn inputs(&self) -> usize {
        self.inputs
    }

    /// Insertion loss in dB.
    #[must_use]
    pub fn insertion_loss(&self) -> Decibels {
        self.insertion_loss
    }

    /// Power transmission factor from any input to the output.
    #[must_use]
    pub fn transmission(&self) -> LinearRatio {
        self.insertion_loss.to_attenuation()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_mmi_loss_is_one_db() {
        let mux = Multiplexer::paper_mmi(16);
        assert!((mux.insertion_loss().value() - 1.0).abs() < 1e-12);
        assert!((mux.transmission().value() - 0.794).abs() < 1e-3);
    }

    #[test]
    fn lossless_mux_passes_everything() {
        let mux = Multiplexer::new(4, Decibels::new(0.0));
        assert!((mux.transmission().value() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one input")]
    fn zero_inputs_rejected() {
        let _ = Multiplexer::new(0, Decibels::new(1.0));
    }
}
