//! Individual nanophotonic device models.
//!
//! Each sub-module models one of the active or passive devices that make up
//! the MWSR channel of the paper; [`crate::mwsr`] composes them into the
//! channel-level link budget.

mod laser;
mod micro_ring;
mod multiplexer;
mod photodetector;
mod waveguide;

pub use laser::{LaserThermalModel, ThermalRunaway, VcselLaser};
pub use micro_ring::{MicroRingResonator, RingState};
pub use multiplexer::Multiplexer;
pub use photodetector::Photodetector;
pub use waveguide::Waveguide;
