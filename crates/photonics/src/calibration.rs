//! Calibrated parameter sets.
//!
//! [`PaperCalibration::dac17`] collects every physical constant quoted in the
//! paper (Section IV-D and V-B) plus the handful of parameters the paper
//! leaves implicit (multiplexer insertion loss, drop-filter loss, per-ring
//! crossing loss, ring linewidth).  The implicit parameters are chosen so
//! that the resulting link budget reproduces the anchor behaviours of the
//! evaluation:
//!
//! * the uncoded transmission at BER = 10⁻¹¹ is *feasible* but close to the
//!   700 µW laser ceiling (P_laser ≈ 14 mW),
//! * BER = 10⁻¹² is *infeasible* without coding but feasible with H(7,4) and
//!   H(71,64),
//! * the laser power drops by roughly a factor of two with either Hamming
//!   code at iso-BER.
//!
//! EXPERIMENTS.md documents the residual quantitative differences.

use onoc_units::{Celsius, Decibels, Microwatts, Milliwatts, Nanometers};
use serde::{Deserialize, Serialize};

use crate::devices::{
    LaserThermalModel, MicroRingResonator, Multiplexer, Photodetector, VcselLaser, Waveguide,
};
use crate::mwsr::{ChannelGeometry, MwsrChannel};
use crate::spectrum::WavelengthGrid;

/// Every tunable constant of the paper's evaluation setup, in one place.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PaperCalibration {
    /// Channel geometry (ONIs, wavelengths, waveguide, activity).
    pub geometry: ChannelGeometry,
    /// Lorentzian FWHM of every ring.
    pub ring_fwhm: Nanometers,
    /// Peak through-port attenuation of a modulator at exact resonance.
    pub modulator_peak_attenuation: Decibels,
    /// Broadband insertion loss of every ring crossing.
    pub ring_crossing_loss: Decibels,
    /// Electrical power of a modulating ring (P_MR).
    pub modulation_power: Milliwatts,
    /// Peak through-port attenuation of a drop filter.
    pub drop_peak_attenuation: Decibels,
    /// Drop-port insertion loss of a drop filter.
    pub drop_insertion_loss: Decibels,
    /// Insertion loss of the MMI multiplexer.
    pub mux_insertion_loss: Decibels,
    /// Laser thermal/efficiency model.
    pub laser_thermal: LaserThermalModel,
    /// Ambient temperature of the optical layer.
    pub ambient: Celsius,
    /// Maximum optical power the laser can deliver.
    pub laser_max_output: Microwatts,
}

impl PaperCalibration {
    /// The DAC'17 evaluation setup: 12 ONIs, 16 wavelengths, 6 cm waveguide,
    /// 0.274 dB/cm, ER ≈ 6.9 dB, P_MR = 1.36 mW, ℜ = 1 A/W, i_n = 4 µA,
    /// 25% chip activity, 700 µW laser ceiling.
    #[must_use]
    pub fn dac17() -> Self {
        Self {
            geometry: ChannelGeometry::paper_geometry(),
            ring_fwhm: Nanometers::new(0.17),
            modulator_peak_attenuation: Decibels::new(7.55),
            ring_crossing_loss: Decibels::new(0.0135),
            modulation_power: Milliwatts::new(1.36),
            drop_peak_attenuation: Decibels::new(13.0),
            drop_insertion_loss: Decibels::new(1.35),
            mux_insertion_loss: Decibels::new(1.0),
            laser_thermal: LaserThermalModel::paper_calibrated(),
            ambient: Celsius::new(25.0),
            laser_max_output: Microwatts::new(700.0),
        }
    }

    /// A smaller point-to-point configuration (2 ONIs, 4 wavelengths, 1 cm
    /// waveguide) matching the introductory example of Fig. 1; useful for
    /// fast unit tests and the quickstart example.
    #[must_use]
    pub fn point_to_point() -> Self {
        let mut calibration = Self::dac17();
        calibration.geometry = ChannelGeometry {
            oni_count: 2,
            grid: WavelengthGrid::paper_grid(4),
            waveguide: Waveguide::new(
                onoc_units::Centimeters::new(1.0),
                onoc_units::DecibelsPerCentimeter::new(0.274),
            ),
            chip_activity: 0.25,
        };
        calibration
    }

    /// Builds the modulator prototype for the first grid wavelength.
    #[must_use]
    pub fn modulator_prototype(&self) -> MicroRingResonator {
        let carrier = self.geometry.grid.wavelength(0);
        // OFF-state resonance parked one FWHM below the carrier; driving the
        // ring ON shifts it onto the carrier (blue shift of the carrier
        // relative to the resonance, as described in Section III-A).
        MicroRingResonator::new(
            Nanometers::new(carrier.value() - self.ring_fwhm.value()),
            self.ring_fwhm,
            self.ring_fwhm,
            self.modulator_peak_attenuation,
            self.drop_insertion_loss,
            self.ring_crossing_loss,
            self.modulation_power,
        )
    }

    /// Builds the drop-filter prototype for the first grid wavelength.
    #[must_use]
    pub fn drop_filter_prototype(&self) -> MicroRingResonator {
        let carrier = self.geometry.grid.wavelength(0);
        MicroRingResonator::new(
            carrier,
            Nanometers::zero(),
            self.ring_fwhm,
            self.drop_peak_attenuation,
            self.drop_insertion_loss,
            self.ring_crossing_loss,
            Milliwatts::zero(),
        )
    }

    /// Builds the laser model.
    #[must_use]
    pub fn laser(&self) -> VcselLaser {
        VcselLaser::new(self.laser_thermal, self.ambient, self.laser_max_output)
    }

    /// Assembles the full MWSR channel described by this calibration.
    #[must_use]
    pub fn into_channel(self) -> MwsrChannel {
        let modulator = self.modulator_prototype();
        let drop = self.drop_filter_prototype();
        let laser = self.laser();
        let mux = Multiplexer::new(self.geometry.grid.count(), self.mux_insertion_loss);
        MwsrChannel::new(
            self.geometry,
            modulator,
            drop,
            mux,
            Photodetector::paper_photodetector(),
            laser,
        )
    }
}

impl Default for PaperCalibration {
    fn default() -> Self {
        Self::dac17()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dac17_constants_match_the_paper() {
        let c = PaperCalibration::dac17();
        assert_eq!(c.geometry.oni_count, 12);
        assert_eq!(c.geometry.grid.count(), 16);
        assert!((c.geometry.waveguide.total_loss().value() - 1.644).abs() < 1e-9);
        assert!((c.modulation_power.value() - 1.36).abs() < 1e-12);
        assert!((c.laser_max_output.value() - 700.0).abs() < 1e-12);
        assert!((c.geometry.chip_activity - 0.25).abs() < 1e-12);
    }

    #[test]
    fn channel_assembly_preserves_the_extinction_ratio() {
        let channel = PaperCalibration::dac17().into_channel();
        let er = channel.extinction_ratio(0);
        assert!((er.value() - 6.9).abs() < 0.3, "ER = {er}");
    }

    #[test]
    fn point_to_point_is_a_smaller_geometry() {
        let c = PaperCalibration::point_to_point();
        assert_eq!(c.geometry.oni_count, 2);
        assert_eq!(c.geometry.grid.count(), 4);
        let channel = c.into_channel();
        // Fewer crossings mean a healthier budget than the 12-ONI channel.
        let big = PaperCalibration::dac17().into_channel();
        assert!(channel.path_transmission(0).value() > big.path_transmission(0).value());
    }

    #[test]
    fn prototypes_are_centred_on_the_first_wavelength() {
        let c = PaperCalibration::dac17();
        let drop = c.drop_filter_prototype();
        let first = c.geometry.grid.wavelength(0);
        assert!(
            (drop.resonance(crate::devices::RingState::Off).value() - first.value()).abs() < 1e-9
        );
    }
}
