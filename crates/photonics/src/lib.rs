//! Nanophotonic device and channel models for the DAC'17 ECC/laser-power
//! trade-off reproduction.
//!
//! The paper evaluates its coding proposal on a Multiple-Writer Single-Reader
//! (MWSR) optical channel built from CMOS-compatible VCSEL laser sources,
//! micro-ring resonator (MR) modulators, a silicon waveguide and a
//! photodetector per wavelength.  None of these device models exist as
//! reusable open-source Rust code, so this crate provides them:
//!
//! * [`devices::MicroRingResonator`] — Lorentzian through/drop response,
//!   ON/OFF electro-optic detuning, extinction ratio (Fig. 3 of the paper);
//! * [`devices::VcselLaser`] — electrical-power model with temperature
//!   dependent efficiency and a self-heating fixed point (Fig. 4);
//! * [`devices::Waveguide`], [`devices::Photodetector`],
//!   [`devices::Multiplexer`] — propagation loss, responsivity/dark current,
//!   MMI combiner insertion loss;
//! * [`spectrum::WavelengthGrid`] — the N_W-wavelength WDM comb;
//! * [`mwsr::MwsrChannel`] — the worst-case link budget and crosstalk model
//!   (after ref. \[8\] of the paper) that turns a required optical swing at the
//!   photodetector into a laser output power requirement;
//! * [`power::LaserPowerSolver`] — the end-to-end chain *target BER → raw BER
//!   (per ECC) → SNR → optical swing → laser output power → laser electrical
//!   power* used by Figs. 5 and 6.
//!
//! # Example
//!
//! ```
//! use onoc_photonics::calibration::PaperCalibration;
//! use onoc_photonics::power::LaserPowerSolver;
//! use onoc_ecc_codes::EccScheme;
//!
//! let solver = LaserPowerSolver::new(PaperCalibration::dac17().into_channel());
//! let uncoded = solver.solve(EccScheme::Uncoded, 1e-9)?;
//! let coded = solver.solve(EccScheme::Hamming74, 1e-9)?;
//! assert!(coded.laser_electrical_power.value() < uncoded.laser_electrical_power.value());
//! # Ok::<(), onoc_photonics::power::SolveError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calibration;
pub mod devices;
pub mod mwsr;
pub mod power;
pub mod spectrum;
pub mod thermal;

pub use calibration::PaperCalibration;
pub use devices::{MicroRingResonator, Multiplexer, Photodetector, VcselLaser, Waveguide};
pub use mwsr::{ChannelGeometry, MwsrChannel};
pub use power::{LaserOperatingPoint, LaserPowerSolver, SolveError};
pub use spectrum::WavelengthGrid;
pub use thermal::{ThermalLinkStack, ThermalSolver, ThermalSummary};
