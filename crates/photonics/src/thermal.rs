//! Temperature-aware link budget: ring drift penalty, tune-vs-tolerate and
//! tuning power.
//!
//! This module connects the temperature-domain models of `onoc-thermal` to
//! the photonic link budget:
//!
//! 1. the chip temperature and the [`RingThermalModel`] give the
//!    free-running resonance drift of every ring;
//! 2. the [`ThermalTuner`] (under the configured [`TuningPolicy`]) decides
//!    how much of that drift the heaters cancel, at what per-ring power;
//! 3. the *residual* drift detunes the Lorentzian rings of the
//!    [`MwsrChannel`], shrinking the received swing and
//!    raising the required laser output power;
//! 4. the laser itself runs hotter, so its wall-plug efficiency drops and the
//!    same optical output costs more electrical power.
//!
//! The solver returns both the laser operating point on the detuned channel
//! and a [`ThermalSummary`] carrying the tuning-power term that the channel
//! power report must now include:
//!
//! ```text
//! P_channel = P_ENC+DEC + P_MR + P_laser + P_tune
//! ```

use onoc_ecc_codes::EccScheme;
use onoc_thermal::{ResonanceDrift, RingThermalModel, ThermalTuner, TuningPolicy};
use onoc_units::{Celsius, Microwatts, Milliwatts};
use serde::{Deserialize, Serialize};

use crate::mwsr::MwsrChannel;
use crate::power::{LaserOperatingPoint, LaserPowerSolver, SolveError};

/// The thermal configuration of a link: ring drift, heaters and policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThermalLinkStack {
    /// Resonance drift model of the ring banks.
    pub rings: RingThermalModel,
    /// Heater/controller model of each ring.
    pub tuner: ThermalTuner,
    /// Tune-vs-tolerate policy.
    pub policy: TuningPolicy,
}

impl ThermalLinkStack {
    /// The reproduction's default stack: silicon drift (0.1 nm/K, 25 °C
    /// calibration), the paper heater and the adaptive policy.
    #[must_use]
    pub fn paper_default() -> Self {
        Self {
            rings: RingThermalModel::paper_silicon(),
            tuner: ThermalTuner::paper_heater(),
            policy: TuningPolicy::Adaptive,
        }
    }
}

impl Default for ThermalLinkStack {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Thermal side of an operating point: what the temperature did to the link
/// and what keeping the rings on grid costs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThermalSummary {
    /// Chip temperature this point was solved at.
    pub temperature: Celsius,
    /// Free-running ring drift at that temperature.
    pub free_drift: ResonanceDrift,
    /// Residual drift after the selected tuning action.
    pub residual_drift: ResonanceDrift,
    /// Heater power per ring.
    pub tuning_power_per_ring: Microwatts,
    /// Rings one wavelength lane keeps on grid.
    pub rings_per_lane: usize,
    /// Heater power charged to one wavelength lane
    /// (`tuning_power_per_ring × rings_per_lane`).
    pub tuning_power_per_lane: Milliwatts,
}

impl ThermalSummary {
    /// The summary of a perfectly calibrated link: no drift, no tuning power.
    #[must_use]
    pub fn calibrated(temperature: Celsius, rings_per_lane: usize) -> Self {
        Self {
            temperature,
            free_drift: ResonanceDrift::zero(),
            residual_drift: ResonanceDrift::zero(),
            tuning_power_per_ring: Microwatts::zero(),
            rings_per_lane,
            tuning_power_per_lane: Milliwatts::zero(),
        }
    }
}

/// A laser power solver that understands temperature.
///
/// ```
/// use onoc_photonics::calibration::PaperCalibration;
/// use onoc_photonics::thermal::{ThermalLinkStack, ThermalSolver};
/// use onoc_ecc_codes::EccScheme;
/// use onoc_units::Celsius;
///
/// let solver = ThermalSolver::new(
///     PaperCalibration::dac17().into_channel(),
///     ThermalLinkStack::paper_default(),
/// );
/// let cool = solver.solve_at(EccScheme::Hamming7164, 1e-11, Celsius::new(25.0))?;
/// let hot = solver.solve_at(EccScheme::Hamming7164, 1e-11, Celsius::new(85.0))?;
/// // Heat costs laser power *and* tuning power.
/// assert!(hot.0.laser_electrical_power.value() > cool.0.laser_electrical_power.value());
/// assert!(hot.1.tuning_power_per_lane.value() > 0.0);
/// # Ok::<(), onoc_photonics::power::SolveError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ThermalSolver {
    base: LaserPowerSolver,
    stack: ThermalLinkStack,
}

impl ThermalSolver {
    /// Creates a thermal solver over `channel` with the given stack.
    #[must_use]
    pub fn new(channel: MwsrChannel, stack: ThermalLinkStack) -> Self {
        Self {
            base: LaserPowerSolver::new(channel),
            stack,
        }
    }

    /// The underlying (calibration-temperature) solver.
    #[must_use]
    pub fn base(&self) -> &LaserPowerSolver {
        &self.base
    }

    /// The thermal stack in use.
    #[must_use]
    pub fn stack(&self) -> &ThermalLinkStack {
        &self.stack
    }

    /// Solves `scheme` at `target_ber` with the chip at `temperature`.
    ///
    /// Every tuning action allowed by the policy is evaluated on the
    /// correspondingly detuned channel; the feasible candidate with the
    /// lowest *total* per-lane power (laser electrical + heater) wins.  At
    /// the calibration temperature this reproduces the paper's numbers
    /// bit-for-bit: the drift is zero, tolerating is free, and the channel is
    /// untouched.
    ///
    /// # Errors
    ///
    /// Returns the laser-side [`SolveError`] of the best-tuned candidate when
    /// no action yields a feasible operating point (e.g. the uncoded link at
    /// 85 °C, where even the tuned residual drift pushes the required laser
    /// output past its ceiling).
    pub fn solve_at(
        &self,
        scheme: EccScheme,
        target_ber: f64,
        temperature: Celsius,
    ) -> Result<(LaserOperatingPoint, ThermalSummary), SolveError> {
        let delta = self.stack.rings.delta_at(temperature);
        let free_drift = self.stack.rings.drift_for(delta);
        let rings_per_lane = self.base.channel().rings_per_lane();

        // Distinct compensations the policy can produce; at zero excursion
        // every action degenerates to "heaters off", so the dedup collapses
        // the adaptive policy to a single solve on the hot path every
        // calibration-ambient query takes.
        let mut compensations: Vec<onoc_thermal::ThermalCompensation> = Vec::new();
        for &action in self.stack.policy.candidates() {
            let compensation = self.stack.tuner.apply(action, delta);
            if !compensations.iter().any(|c| {
                c.residual == compensation.residual
                    && c.heater_power_per_ring == compensation.heater_power_per_ring
            }) {
                compensations.push(compensation);
            }
        }

        let mut best: Option<(LaserOperatingPoint, ThermalSummary, f64)> = None;
        let mut last_error: Option<SolveError> = None;
        for compensation in compensations {
            let residual = self.stack.rings.drift_for(compensation.residual);
            // An undrifted channel at the base laser ambient is the base
            // solver itself — reuse it instead of cloning the channel.
            let reuse_base =
                residual.is_zero() && temperature == self.base.channel().laser().ambient();
            let detuned;
            let solver = if reuse_base {
                &self.base
            } else {
                detuned = LaserPowerSolver::new(
                    self.base
                        .channel()
                        .with_resonance_drift(residual)
                        .with_laser_ambient(temperature),
                );
                &detuned
            };
            match solver.solve(scheme, target_ber) {
                Ok(point) => {
                    let per_lane = Milliwatts::new(
                        compensation.heater_power_per_ring.value() * rings_per_lane as f64 * 1e-3,
                    );
                    let total = point.laser_electrical_power.value() + per_lane.value();
                    let summary = ThermalSummary {
                        temperature,
                        free_drift,
                        residual_drift: residual,
                        tuning_power_per_ring: compensation.heater_power_per_ring,
                        rings_per_lane,
                        tuning_power_per_lane: per_lane,
                    };
                    let better = best
                        .as_ref()
                        .is_none_or(|(_, _, best_total)| total < *best_total);
                    if better {
                        best = Some((point, summary, total));
                    }
                }
                Err(error) => last_error = Some(error),
            }
        }
        match best {
            Some((point, summary, _)) => Ok((point, summary)),
            None => Err(last_error.expect("policy always has at least one candidate")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibration::PaperCalibration;

    fn solver() -> ThermalSolver {
        ThermalSolver::new(
            PaperCalibration::dac17().into_channel(),
            ThermalLinkStack::paper_default(),
        )
    }

    #[test]
    fn calibration_temperature_reproduces_the_baseline_exactly() {
        let thermal = solver();
        let (point, summary) = thermal
            .solve_at(EccScheme::Uncoded, 1e-11, Celsius::new(25.0))
            .unwrap();
        let baseline = thermal.base().solve(EccScheme::Uncoded, 1e-11).unwrap();
        assert_eq!(point, baseline);
        assert!(summary.free_drift.is_zero());
        assert!(summary.residual_drift.is_zero());
        assert!(summary.tuning_power_per_lane.is_zero());
        assert_eq!(summary.rings_per_lane, 12);
    }

    #[test]
    fn laser_power_is_monotone_in_temperature_for_coded_schemes() {
        let thermal = solver();
        for scheme in [EccScheme::Hamming74, EccScheme::Hamming7164] {
            let mut last_total = 0.0;
            for t in (25..=85).step_by(10) {
                let (point, summary) = thermal
                    .solve_at(scheme, 1e-11, Celsius::new(f64::from(t)))
                    .unwrap_or_else(|e| panic!("{scheme} at {t} C: {e}"));
                let total =
                    point.laser_electrical_power.value() + summary.tuning_power_per_lane.value();
                assert!(total >= last_total, "{scheme} not monotone at {t} C");
                last_total = total;
            }
        }
    }

    #[test]
    fn uncoded_link_dies_at_high_temperature_but_hamming_survives() {
        let thermal = solver();
        assert!(thermal
            .solve_at(EccScheme::Uncoded, 1e-11, Celsius::new(25.0))
            .is_ok());
        let hot = Celsius::new(85.0);
        assert!(matches!(
            thermal.solve_at(EccScheme::Uncoded, 1e-11, hot),
            Err(SolveError::LaserPowerExceeded { .. })
        ));
        assert!(thermal.solve_at(EccScheme::Hamming74, 1e-11, hot).is_ok());
        assert!(thermal.solve_at(EccScheme::Hamming7164, 1e-11, hot).is_ok());
    }

    #[test]
    fn tolerating_wins_only_for_tiny_excursions() {
        let thermal = solver();
        // 0.02 K is below the control loop's lock floor: the heaters cannot
        // improve on tolerating, so the policy reports zero tuning power.
        let (_, tiny) = thermal
            .solve_at(EccScheme::Hamming7164, 1e-11, Celsius::new(25.02))
            .unwrap();
        assert!(tiny.tuning_power_per_lane.is_zero());
        assert!((tiny.residual_drift.nanometers() - 0.002).abs() < 1e-12);
        // 10 K of drift (1 nm, ~6 linewidths) would kill the link: it tunes.
        let (_, big) = thermal
            .solve_at(EccScheme::Hamming7164, 1e-11, Celsius::new(35.0))
            .unwrap();
        assert!(big.tuning_power_per_lane.value() > 0.0);
        assert!(big.residual_drift.abs().nanometers() < 0.05);
    }

    #[test]
    fn tolerate_policy_fails_where_adaptive_succeeds() {
        let channel = PaperCalibration::dac17().into_channel();
        let stubborn = ThermalSolver::new(
            channel.clone(),
            ThermalLinkStack {
                policy: TuningPolicy::Tolerate,
                ..ThermalLinkStack::paper_default()
            },
        );
        let hot = Celsius::new(55.0);
        assert!(stubborn.solve_at(EccScheme::Hamming74, 1e-11, hot).is_err());
        let adaptive = ThermalSolver::new(channel, ThermalLinkStack::paper_default());
        assert!(adaptive.solve_at(EccScheme::Hamming74, 1e-11, hot).is_ok());
    }

    #[test]
    fn cooling_below_calibration_also_costs_tuning_power() {
        let thermal = solver();
        let (_, summary) = thermal
            .solve_at(EccScheme::Hamming7164, 1e-11, Celsius::new(5.0))
            .unwrap();
        assert!(summary.free_drift.nanometers() < 0.0);
        assert!(summary.tuning_power_per_lane.value() > 0.0);
    }
}
