//! Temperature-aware link budget: ring drift penalty, tune-vs-tolerate and
//! tuning power.
//!
//! This module connects the temperature-domain models of `onoc-thermal` to
//! the photonic link budget:
//!
//! 1. the chip temperature and the [`RingThermalModel`] give the
//!    free-running resonance drift of every ring;
//! 2. the [`ThermalTuner`] (under the configured [`TuningPolicy`]) decides
//!    how much of that drift the heaters cancel, at what per-ring power;
//! 3. the *residual* drift detunes the Lorentzian rings of the
//!    [`MwsrChannel`], shrinking the received swing and
//!    raising the required laser output power;
//! 4. the laser itself runs hotter, so its wall-plug efficiency drops and the
//!    same optical output costs more electrical power.
//!
//! The solver returns both the laser operating point on the detuned channel
//! and a [`ThermalSummary`] carrying the tuning-power term that the channel
//! power report must now include:
//!
//! ```text
//! P_channel = P_ENC+DEC + P_MR + P_laser + P_tune
//! ```

use onoc_ecc_codes::EccScheme;
use onoc_thermal::tuning::TuningAction;
use onoc_thermal::{
    BankCompensation, BankTuningMode, FabricationVariation, ResonanceDrift, RingBankState,
    RingThermalModel, ThermalTuner, TuningPolicy, WavelengthAssignment,
};
use onoc_units::{Celsius, Microwatts, Milliwatts};
use serde::{Deserialize, Serialize};

use crate::mwsr::MwsrChannel;
use crate::power::{LaserOperatingPoint, LaserPowerSolver, SolveError};

/// The thermal configuration of a link: ring drift, heaters, per-ring
/// fabrication variation, the design-time wavelength assignment and the
/// tuning policy/mode.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThermalLinkStack {
    /// Resonance drift model of the ring banks.
    pub rings: RingThermalModel,
    /// Heater/controller model of each ring.
    pub tuner: ThermalTuner,
    /// Tune-vs-tolerate policy.
    pub policy: TuningPolicy,
    /// Per-ring fabrication variation of this chip instance (σ = 0 is the
    /// per-bank scalar model).
    pub variation: FabricationVariation,
    /// How a tuned bank spends its per-ring freedom: pure heating, or
    /// barrel-shift channel hopping plus heating of the residual.
    pub mode: BankTuningMode,
    /// Design-time (GLOW-style) logical-wavelength → ring assignment of the
    /// bank; `None` keeps the design (identity) mapping bit-identically.
    /// Runtime barrel shifting composes on top of it.
    pub assignment: Option<WavelengthAssignment>,
}

impl ThermalLinkStack {
    /// The reproduction's default stack: silicon drift (0.1 nm/K, 25 °C
    /// calibration), the paper heater, the adaptive policy, no fabrication
    /// variation and pure-heater tuning — exactly the per-bank scalar model.
    #[must_use]
    pub fn paper_default() -> Self {
        Self {
            rings: RingThermalModel::paper_silicon(),
            tuner: ThermalTuner::paper_heater(),
            policy: TuningPolicy::Adaptive,
            variation: FabricationVariation::none(),
            mode: BankTuningMode::PureHeater,
            assignment: None,
        }
    }

    /// Checks every parameter a caller can reach through the public fields:
    /// drift slope, heater powers and lock loop, fabrication σ, and the
    /// tuning mode.
    ///
    /// # Errors
    ///
    /// Returns a human-readable reason for the first invalid parameter.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.rings.drift_nm_per_kelvin.is_finite() && self.rings.drift_nm_per_kelvin >= 0.0) {
            return Err(format!(
                "drift slope must be finite and non-negative, got {} nm/K",
                self.rings.drift_nm_per_kelvin
            ));
        }
        if !self.rings.calibration.value().is_finite() {
            return Err(format!(
                "calibration temperature must be finite, got {}",
                self.rings.calibration.value()
            ));
        }
        for (name, value) in [
            ("heater power per kelvin", self.tuner.power_per_kelvin),
            ("heater saturation limit", self.tuner.max_power_per_ring),
        ] {
            if !value.value().is_finite() || value.value() < 0.0 {
                return Err(format!(
                    "{name} must be finite and non-negative, got {} uW",
                    value.value()
                ));
            }
        }
        if !(0.0..1.0).contains(&self.tuner.lock_fraction) {
            return Err(format!(
                "lock fraction must be in [0, 1), got {}",
                self.tuner.lock_fraction
            ));
        }
        if !(self.tuner.lock_floor.value().is_finite() && self.tuner.lock_floor.value() >= 0.0) {
            return Err(format!(
                "lock floor must be finite and non-negative, got {} K",
                self.tuner.lock_floor.value()
            ));
        }
        self.variation.validate()?;
        self.mode.validate()?;
        if let Some(assignment) = &self.assignment {
            assignment.validate()?;
        }
        Ok(())
    }

    /// A 64-bit fingerprint of every parameter that changes operating
    /// points: two stacks with different drift, heaters, policy, variation
    /// or tuning mode fingerprint differently.  The memoized operating-point
    /// cache keys on this, so entries solved under one chip instance can
    /// never be served for another.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        use onoc_thermal::bank::{fnv1a_seed, fnv1a_u64};
        let mut hash = fnv1a_seed();
        let mut mix = |value: u64| hash = fnv1a_u64(hash, value);
        mix(self.rings.drift_nm_per_kelvin.to_bits());
        mix(self.rings.calibration.value().to_bits());
        mix(self.tuner.power_per_kelvin.value().to_bits());
        mix(self.tuner.max_power_per_ring.value().to_bits());
        mix(self.tuner.lock_fraction.to_bits());
        mix(self.tuner.lock_floor.value().to_bits());
        mix(match self.policy {
            TuningPolicy::Tolerate => 1,
            TuningPolicy::AlwaysTune => 2,
            TuningPolicy::Adaptive => 3,
        });
        mix(self.variation.sigma_nm.to_bits());
        mix(self.variation.seed);
        match self.mode {
            BankTuningMode::PureHeater => mix(1),
            BankTuningMode::BarrelShift { max_shift } => {
                mix(2);
                mix(max_shift as u64);
            }
        }
        match &self.assignment {
            None => mix(0),
            Some(assignment) => {
                mix(1);
                mix(assignment.fingerprint());
            }
        }
        hash
    }
}

impl Default for ThermalLinkStack {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Thermal side of an operating point: what the temperature did to the link
/// and what keeping the rings on grid costs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThermalSummary {
    /// Chip temperature this point was solved at.
    pub temperature: Celsius,
    /// Free-running ring drift at that temperature.
    pub free_drift: ResonanceDrift,
    /// Residual drift after the selected tuning action.
    pub residual_drift: ResonanceDrift,
    /// Heater power per ring.
    pub tuning_power_per_ring: Microwatts,
    /// Rings one wavelength lane keeps on grid.
    pub rings_per_lane: usize,
    /// Heater power charged to one wavelength lane
    /// (`tuning_power_per_ring × rings_per_lane`).
    pub tuning_power_per_lane: Milliwatts,
    /// Rings of barrel shift the tuning applied (0 when the wavelengths keep
    /// their design rings).
    pub barrel_shift: i64,
    /// Wavelength index of the worst ring — the lane that sized the laser.
    pub worst_lane: usize,
}

impl ThermalSummary {
    /// The summary of a perfectly calibrated link: no drift, no tuning power.
    #[must_use]
    pub fn calibrated(temperature: Celsius, rings_per_lane: usize) -> Self {
        Self {
            temperature,
            free_drift: ResonanceDrift::zero(),
            residual_drift: ResonanceDrift::zero(),
            tuning_power_per_ring: Microwatts::zero(),
            rings_per_lane,
            tuning_power_per_lane: Milliwatts::zero(),
            barrel_shift: 0,
            worst_lane: 0,
        }
    }
}

/// A laser power solver that understands temperature.
///
/// ```
/// use onoc_photonics::calibration::PaperCalibration;
/// use onoc_photonics::thermal::{ThermalLinkStack, ThermalSolver};
/// use onoc_ecc_codes::EccScheme;
/// use onoc_units::Celsius;
///
/// let solver = ThermalSolver::new(
///     PaperCalibration::dac17().into_channel(),
///     ThermalLinkStack::paper_default(),
/// );
/// let cool = solver.solve_at(EccScheme::Hamming7164, 1e-11, Celsius::new(25.0))?;
/// let hot = solver.solve_at(EccScheme::Hamming7164, 1e-11, Celsius::new(85.0))?;
/// // Heat costs laser power *and* tuning power.
/// assert!(hot.0.laser_electrical_power.value() > cool.0.laser_electrical_power.value());
/// assert!(hot.1.tuning_power_per_lane.value() > 0.0);
/// # Ok::<(), onoc_photonics::power::SolveError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ThermalSolver {
    base: LaserPowerSolver,
    stack: ThermalLinkStack,
}

impl ThermalSolver {
    /// Creates a thermal solver over `channel` with the given stack.
    ///
    /// # Panics
    ///
    /// Panics if the stack carries an invalid parameter (non-finite drift
    /// slope, negative fabrication σ, a wavelength assignment that does not
    /// cover the channel's grid, …) — see [`ThermalLinkStack::validate`] —
    /// so a bad configuration surfaces at construction instead of as NaN
    /// budgets mid-sweep.
    #[must_use]
    pub fn new(channel: MwsrChannel, stack: ThermalLinkStack) -> Self {
        if let Err(reason) = stack.validate() {
            panic!("invalid thermal stack: {reason}");
        }
        if let Some(assignment) = &stack.assignment {
            assert_eq!(
                assignment.len(),
                channel.geometry().wavelength_count(),
                "invalid thermal stack: the wavelength assignment must cover every channel \
                 wavelength"
            );
        }
        Self {
            base: LaserPowerSolver::new(channel),
            stack,
        }
    }

    /// The underlying (calibration-temperature) solver.
    #[must_use]
    pub fn base(&self) -> &LaserPowerSolver {
        &self.base
    }

    /// The thermal stack in use.
    #[must_use]
    pub fn stack(&self) -> &ThermalLinkStack {
        &self.stack
    }

    /// The per-ring spectral state of the channel's bank at `temperature`:
    /// the chip instance's fabrication offsets plus the common-mode thermal
    /// excursion from the calibration point.
    #[must_use]
    pub fn bank_state_at(&self, temperature: Celsius) -> RingBankState {
        let count = self.base.channel().geometry().wavelength_count();
        RingBankState::new(
            self.stack.variation.offsets_nm(count),
            self.stack.rings.delta_at(temperature),
        )
    }

    /// Solves `scheme` at `target_ber` with the chip at `temperature`.
    ///
    /// The per-ring bank state (fabrication offsets + common-mode drift) is
    /// compensated under every tuning action the policy allows — tolerating,
    /// or tuning via the stack's [`BankTuningMode`] (pure heating, or
    /// barrel-shifting the wavelength assignment and heating only the
    /// residual).  A design-time [`WavelengthAssignment`] in the stack
    /// re-indexes the detuning of every lane first (ring
    /// `assignment.ring_for_lane(j)` serves grid slot `j`); the runtime
    /// barrel shift composes on top of it.  Each candidate is solved on the
    /// correspondingly detuned channel, **sized by its worst ring**, and the
    /// feasible candidate with the lowest total per-lane power (laser
    /// electrical + heater) wins.
    ///
    /// With zero fabrication variation the bank is uniform and the pipeline
    /// degenerates bit-identically to the per-bank scalar model: at the
    /// calibration temperature this reproduces the paper's numbers
    /// bit-for-bit.
    ///
    /// # Errors
    ///
    /// Returns the laser-side [`SolveError`] of the best-tuned candidate when
    /// no action yields a feasible operating point (e.g. the uncoded link at
    /// 85 °C, where even the tuned residual drift pushes the required laser
    /// output past its ceiling).
    pub fn solve_at(
        &self,
        scheme: EccScheme,
        target_ber: f64,
        temperature: Celsius,
    ) -> Result<(LaserOperatingPoint, ThermalSummary), SolveError> {
        let delta = self.stack.rings.delta_at(temperature);
        let free_drift = self.stack.rings.drift_for(delta);
        let rings_per_lane = self.base.channel().rings_per_lane();
        let state = self.bank_state_at(temperature);
        let slope = self.stack.rings.drift_nm_per_kelvin;
        let spacing = self.base.channel().geometry().grid.spacing().value();

        // Distinct bank compensations the policy can produce; at zero
        // excursion with a uniform bank every action degenerates to "heaters
        // off", so the dedup collapses the adaptive policy to a single solve
        // on the hot path every calibration-ambient query takes.
        let mut compensations: Vec<BankCompensation> = Vec::new();
        let assignment = self.stack.assignment.as_ref();
        for &action in self.stack.policy.candidates() {
            let compensation = match action {
                TuningAction::Tolerate => {
                    BankCompensation::off_assigned(&state, spacing, slope, assignment)
                }
                TuningAction::Tune => self.stack.tuner.compensate_bank_assigned(
                    &state,
                    spacing,
                    slope,
                    self.stack.mode,
                    assignment,
                ),
            };
            if !compensations.contains(&compensation) {
                compensations.push(compensation);
            }
        }

        let mut best: Option<(LaserOperatingPoint, ThermalSummary, f64)> = None;
        let mut last_error: Option<SolveError> = None;
        for compensation in compensations {
            let tuning_power_per_ring = compensation.mean_heater_power_per_ring();
            let solved = match compensation.uniform_residual_nm() {
                // A uniform bank is the per-bank scalar model: one shared
                // residual, solved on the worst-crosstalk wavelength.
                Some(residual_nm) => {
                    let residual = ResonanceDrift::new(residual_nm);
                    // An undrifted channel at the base laser ambient is the
                    // base solver itself — reuse it instead of cloning.
                    let reuse_base =
                        residual.is_zero() && temperature == self.base.channel().laser().ambient();
                    let detuned;
                    let solver = if reuse_base {
                        &self.base
                    } else {
                        detuned = LaserPowerSolver::new(
                            self.base
                                .channel()
                                .with_resonance_drift(residual)
                                .with_laser_ambient(temperature),
                        );
                        &detuned
                    };
                    let worst_lane = solver.worst_case_wavelength();
                    solver
                        .solve_on_wavelength(scheme, target_ber, worst_lane)
                        .map(|point| (point, worst_lane))
                }
                // A heterogeneous bank: per-index detuning, sized by the
                // worst ring across all wavelengths.
                None => LaserPowerSolver::new(
                    self.base
                        .channel()
                        .with_ring_detunings(&compensation.residual_nm)
                        .with_laser_ambient(temperature),
                )
                .solve_worst_case(scheme, target_ber),
            };
            match solved {
                Ok((point, worst_lane)) => {
                    let per_lane = Milliwatts::new(
                        tuning_power_per_ring.value() * rings_per_lane as f64 * 1e-3,
                    );
                    let total = point.laser_electrical_power.value() + per_lane.value();
                    let summary = ThermalSummary {
                        temperature,
                        free_drift,
                        residual_drift: compensation.worst_residual(),
                        tuning_power_per_ring,
                        rings_per_lane,
                        tuning_power_per_lane: per_lane,
                        barrel_shift: compensation.shift,
                        worst_lane,
                    };
                    let better = best
                        .as_ref()
                        .is_none_or(|(_, _, best_total)| total < *best_total);
                    if better {
                        best = Some((point, summary, total));
                    }
                }
                Err(error) => last_error = Some(error),
            }
        }
        match best {
            Some((point, summary, _)) => Ok((point, summary)),
            None => Err(last_error.expect("policy always has at least one candidate")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibration::PaperCalibration;

    fn solver() -> ThermalSolver {
        ThermalSolver::new(
            PaperCalibration::dac17().into_channel(),
            ThermalLinkStack::paper_default(),
        )
    }

    #[test]
    fn calibration_temperature_reproduces_the_baseline_exactly() {
        let thermal = solver();
        let (point, summary) = thermal
            .solve_at(EccScheme::Uncoded, 1e-11, Celsius::new(25.0))
            .unwrap();
        let baseline = thermal.base().solve(EccScheme::Uncoded, 1e-11).unwrap();
        assert_eq!(point, baseline);
        assert!(summary.free_drift.is_zero());
        assert!(summary.residual_drift.is_zero());
        assert!(summary.tuning_power_per_lane.is_zero());
        assert_eq!(summary.rings_per_lane, 12);
    }

    #[test]
    fn laser_power_is_monotone_in_temperature_for_coded_schemes() {
        let thermal = solver();
        for scheme in [EccScheme::Hamming74, EccScheme::Hamming7164] {
            let mut last_total = 0.0;
            for t in (25..=85).step_by(10) {
                let (point, summary) = thermal
                    .solve_at(scheme, 1e-11, Celsius::new(f64::from(t)))
                    .unwrap_or_else(|e| panic!("{scheme} at {t} C: {e}"));
                let total =
                    point.laser_electrical_power.value() + summary.tuning_power_per_lane.value();
                assert!(total >= last_total, "{scheme} not monotone at {t} C");
                last_total = total;
            }
        }
    }

    #[test]
    fn uncoded_link_dies_at_high_temperature_but_hamming_survives() {
        let thermal = solver();
        assert!(thermal
            .solve_at(EccScheme::Uncoded, 1e-11, Celsius::new(25.0))
            .is_ok());
        let hot = Celsius::new(85.0);
        assert!(matches!(
            thermal.solve_at(EccScheme::Uncoded, 1e-11, hot),
            Err(SolveError::LaserPowerExceeded { .. })
        ));
        assert!(thermal.solve_at(EccScheme::Hamming74, 1e-11, hot).is_ok());
        assert!(thermal.solve_at(EccScheme::Hamming7164, 1e-11, hot).is_ok());
    }

    #[test]
    fn tolerating_wins_only_for_tiny_excursions() {
        let thermal = solver();
        // 0.02 K is below the control loop's lock floor: the heaters cannot
        // improve on tolerating, so the policy reports zero tuning power.
        let (_, tiny) = thermal
            .solve_at(EccScheme::Hamming7164, 1e-11, Celsius::new(25.02))
            .unwrap();
        assert!(tiny.tuning_power_per_lane.is_zero());
        assert!((tiny.residual_drift.nanometers() - 0.002).abs() < 1e-12);
        // 10 K of drift (1 nm, ~6 linewidths) would kill the link: it tunes.
        let (_, big) = thermal
            .solve_at(EccScheme::Hamming7164, 1e-11, Celsius::new(35.0))
            .unwrap();
        assert!(big.tuning_power_per_lane.value() > 0.0);
        assert!(big.residual_drift.abs().nanometers() < 0.05);
    }

    #[test]
    fn tolerate_policy_fails_where_adaptive_succeeds() {
        let channel = PaperCalibration::dac17().into_channel();
        let stubborn = ThermalSolver::new(
            channel.clone(),
            ThermalLinkStack {
                policy: TuningPolicy::Tolerate,
                ..ThermalLinkStack::paper_default()
            },
        );
        let hot = Celsius::new(55.0);
        assert!(stubborn.solve_at(EccScheme::Hamming74, 1e-11, hot).is_err());
        let adaptive = ThermalSolver::new(channel, ThermalLinkStack::paper_default());
        assert!(adaptive.solve_at(EccScheme::Hamming74, 1e-11, hot).is_ok());
    }

    #[test]
    fn zero_variation_pipeline_is_bit_identical_to_the_scalar_model() {
        // σ = 0 with an explicit FabricationVariation and the pure-heater
        // mode must reproduce the default (per-bank) stack bit for bit at
        // every temperature — the regression guard of the per-ring refactor.
        let baseline = solver();
        let explicit = ThermalSolver::new(
            PaperCalibration::dac17().into_channel(),
            ThermalLinkStack {
                variation: FabricationVariation::new(0.0, 12345),
                mode: BankTuningMode::PureHeater,
                ..ThermalLinkStack::paper_default()
            },
        );
        for scheme in [
            EccScheme::Uncoded,
            EccScheme::Hamming74,
            EccScheme::Hamming7164,
        ] {
            for t in [25.0, 25.02, 35.0, 55.0, 85.0] {
                let a = baseline.solve_at(scheme, 1e-11, Celsius::new(t));
                let b = explicit.solve_at(scheme, 1e-11, Celsius::new(t));
                assert_eq!(a, b, "{scheme} at {t} C");
            }
        }
    }

    #[test]
    fn barrel_shift_cuts_tuning_power_at_high_temperature() {
        let channel = PaperCalibration::dac17().into_channel();
        let pure = solver();
        let barrel = ThermalSolver::new(
            channel,
            ThermalLinkStack {
                mode: BankTuningMode::full_barrel_shift(16),
                ..ThermalLinkStack::paper_default()
            },
        );
        let (_, p) = pure
            .solve_at(EccScheme::Hamming7164, 1e-11, Celsius::new(85.0))
            .unwrap();
        let (_, b) = barrel
            .solve_at(EccScheme::Hamming7164, 1e-11, Celsius::new(85.0))
            .unwrap();
        // 60 K of drift is 6 nm = 7.5 grid spacings: hopping 7–8 rings
        // leaves a fraction of a spacing for the heaters.
        assert!(
            b.barrel_shift == 7 || b.barrel_shift == 8,
            "k = {}",
            b.barrel_shift
        );
        assert_eq!(p.barrel_shift, 0);
        assert!(
            b.tuning_power_per_lane.value() < 0.2 * p.tuning_power_per_lane.value(),
            "barrel {} vs pure {}",
            b.tuning_power_per_lane,
            p.tuning_power_per_lane
        );
        // At the calibration point the shift is a no-op.
        let (_, cool) = barrel
            .solve_at(EccScheme::Hamming7164, 1e-11, Celsius::new(25.0))
            .unwrap();
        assert_eq!(cool.barrel_shift, 0);
        assert!(cool.tuning_power_per_lane.is_zero());
    }

    #[test]
    fn fabrication_variation_raises_the_bill_and_moves_the_worst_lane() {
        let channel = PaperCalibration::dac17().into_channel();
        let varied = ThermalSolver::new(
            channel,
            ThermalLinkStack {
                variation: FabricationVariation::new(0.04, 9),
                ..ThermalLinkStack::paper_default()
            },
        );
        let (aligned_point, aligned) = solver()
            .solve_at(EccScheme::Hamming7164, 1e-11, Celsius::new(45.0))
            .unwrap();
        let (varied_point, summary) = varied
            .solve_at(EccScheme::Hamming7164, 1e-11, Celsius::new(45.0))
            .unwrap();
        // The worst ring of a varied bank can only need more laser power
        // than the uniform bank's sizing lane.
        assert!(
            varied_point.laser_output_power.value()
                >= aligned_point.laser_output_power.value() - 1e-9
        );
        // The heaters now fight per-ring offsets too.
        assert!(summary.tuning_power_per_lane.value() > aligned.tuning_power_per_lane.value());
        // The free-running worst detuning differs across rings.
        let state = varied.bank_state_at(Celsius::new(45.0));
        assert!(!state.is_uniform());
        assert_eq!(state.ring_count(), 16);
    }

    #[test]
    fn identity_assignment_is_bit_identical_to_the_unassigned_solver() {
        let baseline = solver();
        let assigned = ThermalSolver::new(
            PaperCalibration::dac17().into_channel(),
            ThermalLinkStack {
                assignment: Some(WavelengthAssignment::identity(16)),
                ..ThermalLinkStack::paper_default()
            },
        );
        for scheme in [EccScheme::Uncoded, EccScheme::Hamming7164] {
            for t in [25.0, 35.0, 55.0, 85.0] {
                assert_eq!(
                    baseline.solve_at(scheme, 1e-11, Celsius::new(t)),
                    assigned.solve_at(scheme, 1e-11, Celsius::new(t)),
                    "{scheme} at {t} C"
                );
            }
        }
    }

    #[test]
    fn design_assignment_cuts_tuning_power_and_extends_uncoded_feasibility() {
        use onoc_thermal::{AssignmentStrategy, WavelengthAssigner};
        let hot = Celsius::new(85.0);
        let unassigned = solver();
        let assigner = WavelengthAssigner {
            tuner: ThermalTuner::paper_heater(),
            grid_spacing_nm: 0.8,
            slope_nm_per_kelvin: 0.1,
            strategy: AssignmentStrategy::GreedyRefine,
            seed: 1,
        };
        let assignment = assigner.assign(&unassigned.bank_state_at(hot));
        let assigned = ThermalSolver::new(
            PaperCalibration::dac17().into_channel(),
            ThermalLinkStack {
                assignment: Some(assignment),
                ..ThermalLinkStack::paper_default()
            },
        );
        let (_, plain) = unassigned
            .solve_at(EccScheme::Hamming7164, 1e-11, hot)
            .unwrap();
        let (_, designed) = assigned
            .solve_at(EccScheme::Hamming7164, 1e-11, hot)
            .unwrap();
        assert!(
            designed.tuning_power_per_lane.value() < 0.2 * plain.tuning_power_per_lane.value(),
            "designed {} vs plain {}",
            designed.tuning_power_per_lane,
            plain.tuning_power_per_lane
        );
        // The uncoded path dies at 85 °C without the assignment (the tuned
        // residual still needs too much laser) but survives with it.
        assert!(unassigned.solve_at(EccScheme::Uncoded, 1e-11, hot).is_err());
        assert!(assigned.solve_at(EccScheme::Uncoded, 1e-11, hot).is_ok());
    }

    #[test]
    #[should_panic(expected = "cover every channel wavelength")]
    fn mismatched_assignment_is_rejected_at_construction() {
        let _ = ThermalSolver::new(
            PaperCalibration::dac17().into_channel(),
            ThermalLinkStack {
                assignment: Some(WavelengthAssignment::identity(4)),
                ..ThermalLinkStack::paper_default()
            },
        );
    }

    #[test]
    fn stack_fingerprints_separate_chip_instances() {
        let a = ThermalLinkStack::paper_default();
        let b = ThermalLinkStack {
            variation: FabricationVariation::new(0.04, 1),
            ..ThermalLinkStack::paper_default()
        };
        let c = ThermalLinkStack {
            variation: FabricationVariation::new(0.04, 2),
            ..ThermalLinkStack::paper_default()
        };
        let d = ThermalLinkStack {
            mode: BankTuningMode::full_barrel_shift(16),
            ..ThermalLinkStack::paper_default()
        };
        let e = ThermalLinkStack {
            assignment: Some(WavelengthAssignment::identity(16)),
            ..ThermalLinkStack::paper_default()
        };
        let f = ThermalLinkStack {
            assignment: Some(
                WavelengthAssignment::new((0..16).map(|j| (j + 1) % 16).collect()).unwrap(),
            ),
            ..ThermalLinkStack::paper_default()
        };
        assert_eq!(
            a.fingerprint(),
            ThermalLinkStack::paper_default().fingerprint()
        );
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_ne!(b.fingerprint(), c.fingerprint());
        assert_ne!(a.fingerprint(), d.fingerprint());
        // The op-cache can never alias assignments: no assignment, the
        // explicit identity and a rotation all fingerprint apart.
        assert_ne!(a.fingerprint(), e.fingerprint());
        assert_ne!(e.fingerprint(), f.fingerprint());
    }

    #[test]
    fn invalid_stacks_are_rejected_at_construction() {
        let mut stack = ThermalLinkStack::paper_default();
        stack.rings.drift_nm_per_kelvin = f64::NAN;
        assert!(stack.validate().unwrap_err().contains("drift slope"));

        let mut stack = ThermalLinkStack::paper_default();
        stack.variation.sigma_nm = -1.0;
        assert!(stack.validate().unwrap_err().contains("sigma"));

        let mut stack = ThermalLinkStack::paper_default();
        stack.tuner.lock_fraction = f64::INFINITY;
        assert!(stack.validate().unwrap_err().contains("lock fraction"));

        let mut stack = ThermalLinkStack::paper_default();
        stack.mode = BankTuningMode::BarrelShift { max_shift: 0 };
        assert!(stack.validate().unwrap_err().contains("barrel-shift"));

        assert!(ThermalLinkStack::paper_default().validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "invalid thermal stack")]
    fn solver_construction_rejects_nan_saturation() {
        let mut stack = ThermalLinkStack::paper_default();
        stack.tuner.max_power_per_ring = Microwatts::new(1.0) * f64::NAN;
        let _ = ThermalSolver::new(PaperCalibration::dac17().into_channel(), stack);
    }

    #[test]
    fn cooling_below_calibration_also_costs_tuning_power() {
        let thermal = solver();
        let (_, summary) = thermal
            .solve_at(EccScheme::Hamming7164, 1e-11, Celsius::new(5.0))
            .unwrap();
        assert!(summary.free_drift.nanometers() < 0.0);
        assert!(summary.tuning_power_per_lane.value() > 0.0);
    }
}
