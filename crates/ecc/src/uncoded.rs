//! Uncoded pass-through — the "w/o ECC" transmission mode of the paper.

use serde::{Deserialize, Serialize};

use crate::code::{check_codeword_len, check_message_len, BlockCode, CodeError, DecodeOutcome};

/// Identity "code": data bits are transmitted as-is.
///
/// Modelling the uncoded mode with the same [`BlockCode`] interface keeps the
/// interface, power and simulation layers free of special cases.
///
/// ```
/// use onoc_ecc_codes::{BlockCode, UncodedPassthrough};
///
/// let code = UncodedPassthrough::new(64);
/// assert_eq!(code.block_length(), 64);
/// assert!((code.communication_time_factor() - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct UncodedPassthrough {
    message_length: usize,
}

impl UncodedPassthrough {
    /// Creates an uncoded pass-through over `message_length` bits.
    ///
    /// # Panics
    ///
    /// Panics if `message_length` is zero.
    #[must_use]
    pub fn new(message_length: usize) -> Self {
        assert!(message_length > 0, "message length must be at least 1");
        Self { message_length }
    }
}

impl BlockCode for UncodedPassthrough {
    fn block_length(&self) -> usize {
        self.message_length
    }

    fn message_length(&self) -> usize {
        self.message_length
    }

    fn min_distance(&self) -> usize {
        1
    }

    fn name(&self) -> String {
        "w/o ECC".to_owned()
    }

    fn encode(&self, data: &[bool]) -> Result<Vec<bool>, CodeError> {
        check_message_len(self.message_length, data.len())?;
        Ok(data.to_vec())
    }

    fn decode(&self, received: &[bool]) -> Result<DecodeOutcome, CodeError> {
        check_codeword_len(self.message_length, received.len())?;
        Ok(DecodeOutcome::clean(received.to_vec()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_round_trip() {
        let c = UncodedPassthrough::new(16);
        let msg: Vec<bool> = (0..16).map(|i| i % 4 == 0).collect();
        assert_eq!(c.decode(&c.encode(&msg).unwrap()).unwrap().data, msg);
    }

    #[test]
    fn no_overhead() {
        let c = UncodedPassthrough::new(64);
        assert_eq!(c.parity_bits(), 0);
        assert_eq!(c.correctable_errors(), 0);
        assert!((c.rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn errors_pass_through_silently() {
        let c = UncodedPassthrough::new(4);
        let mut cw = c.encode(&[true, true, true, true]).unwrap();
        cw[2] = false;
        let out = c.decode(&cw).unwrap();
        assert_eq!(out.data, vec![true, true, false, true]);
        assert!(!out.corrected_error && !out.detected_uncorrectable);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_length_panics() {
        let _ = UncodedPassthrough::new(0);
    }

    #[test]
    fn wrong_lengths_rejected() {
        let c = UncodedPassthrough::new(4);
        assert!(c.encode(&[true; 3]).is_err());
        assert!(c.decode(&[true; 5]).is_err());
    }
}
