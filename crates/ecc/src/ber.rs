//! Analytic bit-error-rate transfer functions.
//!
//! The paper's Section IV-D characterises the decoded BER of a Hamming code as
//!
//! ```text
//! BER = p − p·(1 − p)^(n−1)          (Eq. 2)
//! ```
//!
//! where `p` is the raw (channel) bit-error probability and `n` the block
//! length.  This module implements Eq. 2, equivalent transfer functions for
//! the other code families in this crate, and the numerical inversion needed
//! to answer the design question the paper actually asks: *given a target
//! decoded BER, how bad may the raw channel be?*  The answer (`p`) then feeds
//! the SNR/optical-power chain of `onoc-ber` and `onoc-photonics`.

use serde::{Deserialize, Serialize};

use crate::scheme::EccScheme;

/// Decoded BER of the paper's Hamming model (Eq. 2) for a raw error
/// probability `p` and block length `n`.
///
/// ```
/// use onoc_ecc_codes::ber::hamming_output_ber;
/// let out = hamming_output_ber(1e-6, 7);
/// // ≈ (n−1)·p² for small p.
/// assert!((out / 6e-12 - 1.0).abs() < 1e-3);
/// ```
#[must_use]
pub fn hamming_output_ber(p: f64, n: usize) -> f64 {
    assert!((0.0..=0.5).contains(&p), "raw BER must be in [0, 0.5]");
    assert!(n >= 2, "block length must be at least 2");
    p - p * (1.0 - p).powi(n as i32 - 1)
}

/// Decoded BER of an odd-`r` repetition code (majority vote).
#[must_use]
pub fn repetition_output_ber(p: f64, repetitions: usize) -> f64 {
    assert!((0.0..=0.5).contains(&p), "raw BER must be in [0, 0.5]");
    assert!(
        repetitions >= 3 && repetitions % 2 == 1,
        "repetitions must be odd and >= 3"
    );
    let r = repetitions;
    let mut sum = 0.0;
    for errors in (r / 2 + 1)..=r {
        sum += binomial(r, errors) * p.powi(errors as i32) * (1.0 - p).powi((r - errors) as i32);
    }
    sum
}

/// Decoded BER of a SECDED (extended Hamming) code.
///
/// Detected-but-uncorrectable double errors are counted as erroneous bits
/// (worst case: the word is consumed as-is), which keeps the model
/// conservative and monotone.
#[must_use]
pub fn secded_output_ber(p: f64, n: usize) -> f64 {
    // Same residual-error structure as Hamming; the extra parity bit slightly
    // lengthens the block.
    hamming_output_ber(p, n)
}

/// Decoded BER of a given scheme as a function of the raw channel BER.
#[must_use]
pub fn coded_ber(scheme: EccScheme, raw_ber: f64) -> f64 {
    match scheme {
        EccScheme::Uncoded => raw_ber,
        EccScheme::ParityOnly => raw_ber,
        EccScheme::Repetition3 => repetition_output_ber(raw_ber, 3),
        _ => hamming_output_ber(raw_ber, scheme.block_length()),
    }
}

/// Largest raw channel BER that still meets `target_ber` after decoding with
/// `scheme`.
///
/// This is the inversion of Eq. 2 that Section IV-D alludes to ("Calculating
/// the SNR from BER when considering Hamming codes requires to invert
/// Equations 3 and 2"); it is solved by bisection since the transfer function
/// is strictly increasing in `p`.
///
/// # Panics
///
/// Panics if `target_ber` is not in `(0, 0.5)`.
///
/// ```
/// use onoc_ecc_codes::{raw_ber_for_target, EccScheme};
/// let p = raw_ber_for_target(EccScheme::Hamming74, 1e-11);
/// // The channel may be ~5 orders of magnitude noisier than the target.
/// assert!(p > 1e-6 && p < 1e-5);
/// ```
#[must_use]
pub fn raw_ber_for_target(scheme: EccScheme, target_ber: f64) -> f64 {
    assert!(
        target_ber > 0.0 && target_ber < 0.5,
        "target BER must be in (0, 0.5)"
    );
    if matches!(scheme, EccScheme::Uncoded | EccScheme::ParityOnly) {
        return target_ber;
    }
    let mut lo = 0.0f64;
    let mut hi = 0.5f64;
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if coded_ber(scheme, mid) > target_ber {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    lo
}

/// Summary of a code's analytic performance at a given operating point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CodePerformance {
    /// Scheme under evaluation.
    pub scheme: EccScheme,
    /// Target decoded BER.
    pub target_ber: f64,
    /// Maximum tolerable raw channel BER.
    pub raw_ber: f64,
    /// Coding gain expressed as the ratio `raw_ber / target_ber`.
    pub raw_ber_relaxation: f64,
    /// Relative communication-time overhead (`n/k`).
    pub communication_time_factor: f64,
}

impl CodePerformance {
    /// Evaluates `scheme` at `target_ber`.
    ///
    /// # Panics
    ///
    /// Panics if `target_ber` is not in `(0, 0.5)`.
    #[must_use]
    pub fn evaluate(scheme: EccScheme, target_ber: f64) -> Self {
        let raw_ber = raw_ber_for_target(scheme, target_ber);
        Self {
            scheme,
            target_ber,
            raw_ber,
            raw_ber_relaxation: raw_ber / target_ber,
            communication_time_factor: scheme.communication_time_factor(),
        }
    }
}

/// Binomial coefficient as `f64` (exact for the small arguments used here).
fn binomial(n: usize, k: usize) -> f64 {
    let k = k.min(n - k);
    let mut result = 1.0;
    for i in 0..k {
        result = result * (n - i) as f64 / (i + 1) as f64;
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hamming_ber_small_p_quadratic() {
        // BER_out ≈ (n−1) p² for p → 0.
        for &(p, n) in &[(1e-4, 7usize), (1e-5, 71), (1e-6, 127)] {
            let exact = hamming_output_ber(p, n);
            let approx = (n - 1) as f64 * p * p;
            assert!((exact / approx - 1.0).abs() < 0.01, "p={p}, n={n}");
        }
    }

    #[test]
    fn hamming_ber_is_monotone_in_p() {
        let mut last = 0.0;
        for i in 1..100 {
            let p = i as f64 * 0.005;
            let out = hamming_output_ber(p, 7);
            assert!(out >= last);
            last = out;
        }
    }

    #[test]
    fn coding_always_improves_ber_for_small_p() {
        for &p in &[1e-3, 1e-4, 1e-6] {
            assert!(hamming_output_ber(p, 7) < p);
            assert!(hamming_output_ber(p, 71) < p);
            assert!(repetition_output_ber(p, 3) < p);
        }
    }

    #[test]
    fn repetition_ber_matches_closed_form_r3() {
        // r = 3: BER = 3p²(1−p) + p³.
        let p: f64 = 0.01;
        let expected = 3.0 * p * p * (1.0 - p) + p.powi(3);
        assert!((repetition_output_ber(p, 3) - expected).abs() < 1e-15);
    }

    #[test]
    fn raw_ber_inversion_round_trips() {
        for scheme in [
            EccScheme::Hamming74,
            EccScheme::Hamming7164,
            EccScheme::Hamming1511,
            EccScheme::Secded7264,
            EccScheme::Repetition3,
        ] {
            for &target in &[1e-3, 1e-6, 1e-9, 1e-12] {
                let p = raw_ber_for_target(scheme, target);
                let back = coded_ber(scheme, p);
                assert!(
                    (back - target).abs() / target < 1e-6,
                    "{scheme:?} target {target}: back {back}"
                );
            }
        }
    }

    #[test]
    fn uncoded_inversion_is_identity() {
        assert_eq!(raw_ber_for_target(EccScheme::Uncoded, 1e-9), 1e-9);
    }

    #[test]
    fn shorter_blocks_tolerate_noisier_channels() {
        // H(7,4) has fewer chances of a double error per block than H(71,64),
        // so for the same target BER it tolerates a larger raw BER.  This is
        // exactly why the paper finds the lowest laser power with H(7,4).
        let target = 1e-11;
        let p74 = raw_ber_for_target(EccScheme::Hamming74, target);
        let p7164 = raw_ber_for_target(EccScheme::Hamming7164, target);
        assert!(p74 > p7164);
        assert!(p7164 > target);
    }

    #[test]
    fn performance_summary_is_consistent() {
        let perf = CodePerformance::evaluate(EccScheme::Hamming74, 1e-9);
        assert_eq!(perf.scheme, EccScheme::Hamming74);
        assert!((perf.communication_time_factor - 1.75).abs() < 1e-12);
        assert!(perf.raw_ber_relaxation > 1.0);
        assert!((perf.raw_ber / perf.target_ber - perf.raw_ber_relaxation).abs() < 1e-9);
    }

    #[test]
    fn binomial_reference_values() {
        assert_eq!(binomial(3, 2), 3.0);
        assert_eq!(binomial(5, 0), 1.0);
        assert_eq!(binomial(7, 3), 35.0);
    }

    #[test]
    #[should_panic(expected = "raw BER")]
    fn out_of_range_p_panics() {
        let _ = hamming_output_ber(0.6, 7);
    }

    #[test]
    #[should_panic(expected = "target BER")]
    fn out_of_range_target_panics() {
        let _ = raw_ber_for_target(EccScheme::Hamming74, 0.0);
    }
}
