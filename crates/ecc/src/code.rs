//! The [`BlockCode`] trait shared by every code in this crate.

use serde::{Deserialize, Serialize};

use crate::bits::BitBlock;

/// Errors produced by encoders and decoders.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum CodeError {
    /// The caller supplied a data block whose length does not match `k`.
    WrongMessageLength {
        /// Expected message length `k`.
        expected: usize,
        /// Actual number of bits supplied.
        actual: usize,
    },
    /// The caller supplied a codeword whose length does not match `n`.
    WrongCodewordLength {
        /// Expected block length `n`.
        expected: usize,
        /// Actual number of bits supplied.
        actual: usize,
    },
    /// The requested code parameters are not supported.
    InvalidParameters {
        /// Human-readable description of the constraint that was violated.
        reason: String,
    },
}

impl std::fmt::Display for CodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::WrongMessageLength { expected, actual } => {
                write!(f, "expected {expected} message bits, got {actual}")
            }
            Self::WrongCodewordLength { expected, actual } => {
                write!(f, "expected {expected} codeword bits, got {actual}")
            }
            Self::InvalidParameters { reason } => write!(f, "invalid code parameters: {reason}"),
        }
    }
}

impl std::error::Error for CodeError {}

/// Result of decoding one received codeword.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DecodeOutcome {
    /// The decoded message bits (length `k`).
    pub data: Vec<bool>,
    /// `true` when the decoder corrected at least one bit error.
    pub corrected_error: bool,
    /// `true` when the decoder detected an error pattern it cannot correct
    /// (only possible for codes with detection capability beyond their
    /// correction radius, e.g. SECDED).
    pub detected_uncorrectable: bool,
}

impl DecodeOutcome {
    /// Convenience constructor for a clean (error-free) decode.
    #[must_use]
    pub fn clean(data: Vec<bool>) -> Self {
        Self {
            data,
            corrected_error: false,
            detected_uncorrectable: false,
        }
    }
}

/// A binary block code mapping `k` message bits to `n` codeword bits.
///
/// All codes in this crate are systematic or behave as systematic from the
/// caller's perspective: `decode(encode(m)).data == m` in the absence of
/// errors.
pub trait BlockCode: std::fmt::Debug + Send + Sync {
    /// Codeword (block) length `n` in bits.
    fn block_length(&self) -> usize;

    /// Message length `k` in bits.
    fn message_length(&self) -> usize;

    /// Minimum Hamming distance of the code.
    fn min_distance(&self) -> usize;

    /// Human-readable name, e.g. `"H(7,4)"`.
    fn name(&self) -> String;

    /// Encodes `data` (exactly `k` bits) into a codeword of `n` bits.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::WrongMessageLength`] if `data.len() != k`.
    fn encode(&self, data: &[bool]) -> Result<Vec<bool>, CodeError>;

    /// Decodes a received word of `n` bits, correcting errors when possible.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::WrongCodewordLength`] if `received.len() != n`.
    fn decode(&self, received: &[bool]) -> Result<DecodeOutcome, CodeError>;

    /// Code rate `R_c = k / n`.
    fn rate(&self) -> f64 {
        self.message_length() as f64 / self.block_length() as f64
    }

    /// Number of parity (redundancy) bits `n − k`.
    fn parity_bits(&self) -> usize {
        self.block_length() - self.message_length()
    }

    /// Number of errors the code corrects per block, `⌊(d_min − 1)/2⌋`.
    fn correctable_errors(&self) -> usize {
        (self.min_distance() - 1) / 2
    }

    /// Relative communication-time overhead `n / k` (the paper's CT factor:
    /// 1.75 for H(7,4), ≈1.11 for H(71,64), 1.0 for an uncoded link).
    fn communication_time_factor(&self) -> f64 {
        self.block_length() as f64 / self.message_length() as f64
    }

    /// Encodes a [`BitBlock`]; convenience wrapper over [`BlockCode::encode`].
    ///
    /// # Errors
    ///
    /// Same as [`BlockCode::encode`].
    fn encode_block(&self, data: &BitBlock) -> Result<BitBlock, CodeError> {
        Ok(BitBlock::from_bools(&self.encode(&data.to_bools())?))
    }

    /// Decodes a [`BitBlock`]; convenience wrapper over [`BlockCode::decode`].
    ///
    /// # Errors
    ///
    /// Same as [`BlockCode::decode`].
    fn decode_block(&self, received: &BitBlock) -> Result<DecodeOutcome, CodeError> {
        self.decode(&received.to_bools())
    }
}

/// Validates a message-length argument, producing the conventional error.
pub(crate) fn check_message_len(expected: usize, actual: usize) -> Result<(), CodeError> {
    if expected == actual {
        Ok(())
    } else {
        Err(CodeError::WrongMessageLength { expected, actual })
    }
}

/// Validates a codeword-length argument, producing the conventional error.
pub(crate) fn check_codeword_len(expected: usize, actual: usize) -> Result<(), CodeError> {
    if expected == actual {
        Ok(())
    } else {
        Err(CodeError::WrongCodewordLength { expected, actual })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_informative() {
        let e = CodeError::WrongMessageLength {
            expected: 4,
            actual: 7,
        };
        assert_eq!(e.to_string(), "expected 4 message bits, got 7");
        let e = CodeError::WrongCodewordLength {
            expected: 7,
            actual: 4,
        };
        assert!(e.to_string().contains("codeword"));
        let e = CodeError::InvalidParameters {
            reason: "m must be >= 2".into(),
        };
        assert!(e.to_string().contains("m must be >= 2"));
    }

    #[test]
    fn clean_outcome_has_no_flags() {
        let o = DecodeOutcome::clean(vec![true, false]);
        assert!(!o.corrected_error);
        assert!(!o.detected_uncorrectable);
        assert_eq!(o.data.len(), 2);
    }

    #[test]
    fn length_checks() {
        assert!(check_message_len(4, 4).is_ok());
        assert!(check_message_len(4, 5).is_err());
        assert!(check_codeword_len(7, 7).is_ok());
        assert!(check_codeword_len(7, 6).is_err());
    }
}
