//! Block error-correcting codes for nanophotonic interconnects.
//!
//! This crate implements the coding layer of the DAC'17 paper
//! *"Energy and Performance Trade-off in Nanophotonic Interconnects using
//! Coding Techniques"*: the Hamming code family used by the optical network
//! interfaces (H(7,4) and the shortened H(71,64)), plus a number of baseline
//! and extension codes (repetition, single parity check, extended
//! Hamming/SECDED, uncoded pass-through), the analytic bit-error-rate transfer
//! functions of Section IV-D, and a Monte-Carlo binary-symmetric-channel
//! harness to validate them.
//!
//! # Quick example
//!
//! ```
//! use onoc_ecc_codes::{BlockCode, hamming::HammingCode, scheme::EccScheme};
//!
//! // The paper's H(7,4): 4 data bits protected by 3 parity bits.
//! let code = HammingCode::new(3)?;
//! let data = [true, false, true, true];
//! let mut codeword = code.encode(&data)?;
//!
//! // Flip any single bit: the decoder corrects it.
//! codeword[5] = !codeword[5];
//! let decoded = code.decode(&codeword)?;
//! assert_eq!(decoded.data, data);
//! assert!(decoded.corrected_error);
//!
//! // The scheme registry exposes the exact configurations of the paper.
//! let h7164 = EccScheme::Hamming7164;
//! assert_eq!(h7164.block_length(), 71);
//! assert_eq!(h7164.message_length(), 64);
//! # Ok::<(), onoc_ecc_codes::CodeError>(())
//! ```
//!
//! # Modules
//!
//! * [`bits`] — a compact bit-vector and bit-twiddling helpers.
//! * [`code`] — the [`BlockCode`] trait and decode outcome types.
//! * [`hamming`] — perfect Hamming codes H(2^m−1, 2^m−1−m).
//! * [`shortened`] — shortened Hamming codes such as H(71,64).
//! * [`extended`] — extended Hamming (SECDED) codes.
//! * [`repetition`], [`parity`], [`uncoded`] — baselines.
//! * [`ber`] — analytic BER transfer functions (Eq. 2 of the paper).
//! * [`monte_carlo`] — binary-symmetric-channel simulation.
//! * [`interleave`] — bit interleaving across wavelengths.
//! * [`scheme`] — the [`scheme::EccScheme`] registry used by the rest of the
//!   workspace.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ber;
pub mod bits;
pub mod code;
pub mod extended;
pub mod hamming;
pub mod interleave;
pub mod monte_carlo;
pub mod parity;
pub mod repetition;
pub mod scheme;
pub mod shortened;
pub mod uncoded;

pub use ber::{coded_ber, raw_ber_for_target, CodePerformance};
pub use bits::BitBlock;
pub use code::{BlockCode, CodeError, DecodeOutcome};
pub use extended::ExtendedHammingCode;
pub use hamming::HammingCode;
pub use parity::ParityCheckCode;
pub use repetition::RepetitionCode;
pub use scheme::EccScheme;
pub use shortened::ShortenedHammingCode;
pub use uncoded::UncodedPassthrough;
