//! Single parity-check code (detection only, no correction).

use serde::{Deserialize, Serialize};

use crate::code::{check_codeword_len, check_message_len, BlockCode, CodeError, DecodeOutcome};

/// A single parity-check code: `k` data bits plus one even-parity bit.
///
/// The code detects any odd number of errors but corrects none; it is
/// included as a detection-only baseline (useful together with
/// retransmission in the NoC simulator).
///
/// ```
/// use onoc_ecc_codes::{BlockCode, ParityCheckCode};
///
/// let code = ParityCheckCode::new(8)?;
/// assert_eq!(code.block_length(), 9);
/// assert_eq!(code.correctable_errors(), 0);
/// # Ok::<(), onoc_ecc_codes::CodeError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParityCheckCode {
    message_length: usize,
}

impl ParityCheckCode {
    /// Creates a parity-check code over `message_length` data bits.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::InvalidParameters`] if `message_length` is zero.
    pub fn new(message_length: usize) -> Result<Self, CodeError> {
        if message_length == 0 {
            return Err(CodeError::InvalidParameters {
                reason: "message length must be at least 1".to_owned(),
            });
        }
        Ok(Self { message_length })
    }

    fn parity(bits: &[bool]) -> bool {
        bits.iter().filter(|&&b| b).count() % 2 == 1
    }
}

impl BlockCode for ParityCheckCode {
    fn block_length(&self) -> usize {
        self.message_length + 1
    }

    fn message_length(&self) -> usize {
        self.message_length
    }

    fn min_distance(&self) -> usize {
        2
    }

    fn name(&self) -> String {
        format!("Parity({},{})", self.block_length(), self.message_length)
    }

    fn encode(&self, data: &[bool]) -> Result<Vec<bool>, CodeError> {
        check_message_len(self.message_length, data.len())?;
        let mut cw = data.to_vec();
        cw.push(Self::parity(data));
        Ok(cw)
    }

    fn decode(&self, received: &[bool]) -> Result<DecodeOutcome, CodeError> {
        check_codeword_len(self.block_length(), received.len())?;
        let (data, parity) = received.split_at(self.message_length);
        let detected = Self::parity(data) != parity[0];
        Ok(DecodeOutcome {
            data: data.to_vec(),
            corrected_error: false,
            detected_uncorrectable: detected,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parameters() {
        let c = ParityCheckCode::new(64).unwrap();
        assert_eq!(c.block_length(), 65);
        assert_eq!(c.parity_bits(), 1);
        assert_eq!(c.min_distance(), 2);
        assert_eq!(c.correctable_errors(), 0);
    }

    #[test]
    fn zero_length_rejected() {
        assert!(ParityCheckCode::new(0).is_err());
    }

    #[test]
    fn clean_round_trip() {
        let c = ParityCheckCode::new(8).unwrap();
        let msg: Vec<bool> = (0..8).map(|i| i % 3 == 0).collect();
        let out = c.decode(&c.encode(&msg).unwrap()).unwrap();
        assert_eq!(out.data, msg);
        assert!(!out.detected_uncorrectable);
    }

    #[test]
    fn detects_single_errors() {
        let c = ParityCheckCode::new(8).unwrap();
        let msg: Vec<bool> = (0..8).map(|i| i % 2 == 0).collect();
        let cw = c.encode(&msg).unwrap();
        for flip in 0..9 {
            let mut bad = cw.clone();
            bad[flip] = !bad[flip];
            assert!(c.decode(&bad).unwrap().detected_uncorrectable);
        }
    }

    #[test]
    fn misses_double_errors() {
        let c = ParityCheckCode::new(8).unwrap();
        let msg = vec![false; 8];
        let mut cw = c.encode(&msg).unwrap();
        cw[0] = !cw[0];
        cw[5] = !cw[5];
        assert!(!c.decode(&cw).unwrap().detected_uncorrectable);
    }
}
