//! Bit interleaving across wavelengths.
//!
//! The paper transmits one encoded sub-stream per wavelength (Section IV-B).
//! An optional improvement — evaluated in our ablation benches — is to
//! interleave each codeword across the N_W wavelengths so that a burst of
//! errors on one wavelength (e.g. caused by a thermally-drifted micro-ring)
//! is spread over many codewords and stays within the single-error
//! correction capability of the Hamming code.

use serde::{Deserialize, Serialize};

/// A block interleaver writing row-by-row and reading column-by-column.
///
/// ```
/// use onoc_ecc_codes::interleave::BlockInterleaver;
///
/// let il = BlockInterleaver::new(4, 2)?;
/// let data = vec![true, false, true, true, false, false, true, false];
/// let interleaved = il.interleave(&data)?;
/// assert_eq!(il.deinterleave(&interleaved)?, data);
/// # Ok::<(), onoc_ecc_codes::interleave::InterleaveError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockInterleaver {
    rows: usize,
    columns: usize,
}

/// Errors produced by the interleaver.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum InterleaveError {
    /// Rows and columns must both be non-zero.
    ZeroDimension,
    /// The supplied data length does not equal `rows × columns`.
    WrongLength {
        /// Expected number of bits.
        expected: usize,
        /// Actual number of bits supplied.
        actual: usize,
    },
}

impl std::fmt::Display for InterleaveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::ZeroDimension => write!(f, "interleaver dimensions must be non-zero"),
            Self::WrongLength { expected, actual } => {
                write!(f, "expected {expected} bits, got {actual}")
            }
        }
    }
}

impl std::error::Error for InterleaveError {}

impl BlockInterleaver {
    /// Creates a `rows × columns` block interleaver.
    ///
    /// In the wavelength-striping use case, `rows` is the number of
    /// wavelengths and `columns` the number of bits each wavelength carries
    /// per interleaving frame.
    ///
    /// # Errors
    ///
    /// Returns [`InterleaveError::ZeroDimension`] when either dimension is 0.
    pub fn new(rows: usize, columns: usize) -> Result<Self, InterleaveError> {
        if rows == 0 || columns == 0 {
            return Err(InterleaveError::ZeroDimension);
        }
        Ok(Self { rows, columns })
    }

    /// Number of bits per frame.
    #[must_use]
    pub fn frame_bits(&self) -> usize {
        self.rows * self.columns
    }

    /// Interleaves one frame.
    ///
    /// # Errors
    ///
    /// Returns [`InterleaveError::WrongLength`] when `data.len()` is not the
    /// frame size.
    pub fn interleave(&self, data: &[bool]) -> Result<Vec<bool>, InterleaveError> {
        self.check_len(data.len())?;
        let mut out = Vec::with_capacity(data.len());
        for column in 0..self.columns {
            for row in 0..self.rows {
                out.push(data[row * self.columns + column]);
            }
        }
        Ok(out)
    }

    /// Inverts [`BlockInterleaver::interleave`].
    ///
    /// # Errors
    ///
    /// Returns [`InterleaveError::WrongLength`] when `data.len()` is not the
    /// frame size.
    pub fn deinterleave(&self, data: &[bool]) -> Result<Vec<bool>, InterleaveError> {
        self.check_len(data.len())?;
        let mut out = vec![false; data.len()];
        let mut index = 0;
        for column in 0..self.columns {
            for row in 0..self.rows {
                out[row * self.columns + column] = data[index];
                index += 1;
            }
        }
        Ok(out)
    }

    /// Longest error burst (in interleaved-bit positions) that lands at most
    /// one error in any deinterleaved group of `columns` bits.
    #[must_use]
    pub fn burst_tolerance(&self) -> usize {
        self.rows
    }

    fn check_len(&self, len: usize) -> Result<(), InterleaveError> {
        if len == self.frame_bits() {
            Ok(())
        } else {
            Err(InterleaveError::WrongLength {
                expected: self.frame_bits(),
                actual: len,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_for_various_geometries() {
        for (rows, cols) in [(2, 3), (16, 7), (4, 71), (1, 5), (5, 1)] {
            let il = BlockInterleaver::new(rows, cols).unwrap();
            let data: Vec<bool> = (0..il.frame_bits()).map(|i| i % 3 == 0).collect();
            let round = il.deinterleave(&il.interleave(&data).unwrap()).unwrap();
            assert_eq!(round, data, "{rows}x{cols}");
        }
    }

    #[test]
    fn zero_dimension_rejected() {
        assert_eq!(
            BlockInterleaver::new(0, 4),
            Err(InterleaveError::ZeroDimension)
        );
        assert_eq!(
            BlockInterleaver::new(4, 0),
            Err(InterleaveError::ZeroDimension)
        );
    }

    #[test]
    fn wrong_length_rejected() {
        let il = BlockInterleaver::new(4, 4).unwrap();
        assert!(matches!(
            il.interleave(&[true; 15]),
            Err(InterleaveError::WrongLength {
                expected: 16,
                actual: 15
            })
        ));
        assert!(il.deinterleave(&[true; 17]).is_err());
    }

    #[test]
    fn burst_is_spread_across_rows() {
        // 4 "wavelengths" × 7 bits: a burst of 4 consecutive interleaved bits
        // must touch 4 distinct rows, i.e. at most one bit per codeword.
        let il = BlockInterleaver::new(4, 7).unwrap();
        let clean = vec![false; il.frame_bits()];
        let mut corrupted = il.interleave(&clean).unwrap();
        for bit in corrupted.iter_mut().take(4) {
            *bit = true;
        }
        let restored = il.deinterleave(&corrupted).unwrap();
        for row in 0..4 {
            let errors_in_row = (0..7).filter(|&c| restored[row * 7 + c]).count();
            assert!(errors_in_row <= 1, "row {row} got {errors_in_row} errors");
        }
        assert_eq!(il.burst_tolerance(), 4);
    }

    #[test]
    fn error_display() {
        assert!(InterleaveError::ZeroDimension
            .to_string()
            .contains("non-zero"));
        let e = InterleaveError::WrongLength {
            expected: 8,
            actual: 9,
        };
        assert!(e.to_string().contains("8"));
    }
}
