//! Monte-Carlo validation of the analytic BER models.
//!
//! The optical channel of the paper is, from the coding layer's point of
//! view, a binary symmetric channel (BSC): every transmitted bit is flipped
//! independently with probability `p` set by the optical signal-to-noise
//! ratio.  This module provides a BSC, an end-to-end encode → corrupt →
//! decode experiment, and empirical BER estimation used by the test-suite to
//! cross-check Eq. 2 of the paper.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::code::{BlockCode, CodeError};

/// A binary symmetric channel flipping each bit with probability `p`.
#[derive(Debug, Clone)]
pub struct BinarySymmetricChannel {
    flip_probability: f64,
    rng: StdRng,
}

impl BinarySymmetricChannel {
    /// Creates a BSC with the given flip probability and RNG seed.
    ///
    /// # Panics
    ///
    /// Panics if `flip_probability` is not in `[0, 1]`.
    #[must_use]
    pub fn new(flip_probability: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&flip_probability),
            "flip probability must be in [0, 1]"
        );
        Self {
            flip_probability,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Flip probability of this channel.
    #[must_use]
    pub fn flip_probability(&self) -> f64 {
        self.flip_probability
    }

    /// Transmits a word through the channel, returning the (possibly
    /// corrupted) received word and the number of flips that occurred.
    pub fn transmit(&mut self, word: &[bool]) -> (Vec<bool>, usize) {
        let mut flips = 0;
        let received = word
            .iter()
            .map(|&bit| {
                if self.rng.gen_bool(self.flip_probability) {
                    flips += 1;
                    !bit
                } else {
                    bit
                }
            })
            .collect();
        (received, flips)
    }
}

/// Result of a Monte-Carlo BER experiment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BerExperimentResult {
    /// Raw channel flip probability used for the experiment.
    pub raw_ber: f64,
    /// Number of codewords transmitted.
    pub blocks: u64,
    /// Number of payload bits transmitted.
    pub payload_bits: u64,
    /// Number of payload bits still erroneous after decoding.
    pub residual_bit_errors: u64,
    /// Number of blocks with at least one residual error.
    pub block_errors: u64,
    /// Number of blocks flagged as detected-uncorrectable by the decoder.
    pub detected_uncorrectable_blocks: u64,
}

impl BerExperimentResult {
    /// Empirical decoded bit-error rate.
    #[must_use]
    pub fn decoded_ber(&self) -> f64 {
        if self.payload_bits == 0 {
            0.0
        } else {
            self.residual_bit_errors as f64 / self.payload_bits as f64
        }
    }

    /// Empirical block-error rate.
    #[must_use]
    pub fn block_error_rate(&self) -> f64 {
        if self.blocks == 0 {
            0.0
        } else {
            self.block_errors as f64 / self.blocks as f64
        }
    }
}

/// Runs an encode → BSC → decode experiment over `blocks` random codewords.
///
/// # Errors
///
/// Propagates [`CodeError`] from the codec (only possible for mismatched
/// geometry, which would be a bug in the caller).
pub fn run_ber_experiment(
    code: &dyn BlockCode,
    raw_ber: f64,
    blocks: u64,
    seed: u64,
) -> Result<BerExperimentResult, CodeError> {
    let mut channel = BinarySymmetricChannel::new(raw_ber, seed);
    let mut data_rng = StdRng::seed_from_u64(seed.wrapping_add(0x9E37_79B9_7F4A_7C15));
    let k = code.message_length();

    let mut residual_bit_errors = 0u64;
    let mut block_errors = 0u64;
    let mut detected = 0u64;

    for _ in 0..blocks {
        let message: Vec<bool> = (0..k).map(|_| data_rng.gen_bool(0.5)).collect();
        let codeword = code.encode(&message)?;
        let (received, _) = channel.transmit(&codeword);
        let outcome = code.decode(&received)?;
        let errors = outcome
            .data
            .iter()
            .zip(&message)
            .filter(|(a, b)| a != b)
            .count() as u64;
        residual_bit_errors += errors;
        if errors > 0 {
            block_errors += 1;
        }
        if outcome.detected_uncorrectable {
            detected += 1;
        }
    }

    Ok(BerExperimentResult {
        raw_ber,
        blocks,
        payload_bits: blocks * k as u64,
        residual_bit_errors,
        block_errors,
        detected_uncorrectable_blocks: detected,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ber::hamming_output_ber;
    use crate::hamming::HammingCode;
    use crate::shortened::ShortenedHammingCode;
    use crate::uncoded::UncodedPassthrough;

    #[test]
    fn bsc_with_zero_probability_never_flips() {
        let mut ch = BinarySymmetricChannel::new(0.0, 1);
        let word = vec![true; 1000];
        let (rx, flips) = ch.transmit(&word);
        assert_eq!(flips, 0);
        assert_eq!(rx, word);
    }

    #[test]
    fn bsc_with_unit_probability_always_flips() {
        let mut ch = BinarySymmetricChannel::new(1.0, 1);
        let word = vec![false; 100];
        let (rx, flips) = ch.transmit(&word);
        assert_eq!(flips, 100);
        assert!(rx.iter().all(|&b| b));
    }

    #[test]
    fn bsc_flip_rate_statistically_matches_p() {
        let mut ch = BinarySymmetricChannel::new(0.1, 42);
        let word = vec![false; 100_000];
        let (_, flips) = ch.transmit(&word);
        let rate = flips as f64 / 100_000.0;
        assert!((rate - 0.1).abs() < 0.01, "rate = {rate}");
    }

    #[test]
    #[should_panic(expected = "flip probability")]
    fn invalid_probability_panics() {
        let _ = BinarySymmetricChannel::new(1.5, 0);
    }

    #[test]
    fn uncoded_empirical_ber_matches_channel() {
        let code = UncodedPassthrough::new(64);
        let result = run_ber_experiment(&code, 0.02, 2_000, 7).unwrap();
        let ber = result.decoded_ber();
        assert!((ber - 0.02).abs() < 0.005, "ber = {ber}");
    }

    #[test]
    fn hamming74_empirical_ber_matches_analytic_model() {
        let code = HammingCode::h74();
        let p = 0.02;
        let result = run_ber_experiment(&code, p, 200_000, 11).unwrap();
        let empirical = result.decoded_ber();
        let analytic = hamming_output_ber(p, 7);
        // Eq. (2) is itself an approximation of the exact post-decoding BER
        // (it counts the probability that a bit participates in a block with
        // more than one error, not the exact miscorrection pattern), so only
        // require order-of-magnitude agreement.
        let ratio = empirical / analytic;
        assert!(
            ratio > 0.3 && ratio < 3.0,
            "empirical {empirical}, analytic {analytic}"
        );
        // And coding must beat the raw channel by a wide margin.
        assert!(empirical < p / 5.0);
    }

    #[test]
    fn hamming7164_empirical_ber_improves_on_raw_channel() {
        let code = ShortenedHammingCode::h7164();
        let p = 0.002;
        let result = run_ber_experiment(&code, p, 20_000, 3).unwrap();
        assert!(result.decoded_ber() < p / 2.0);
    }

    #[test]
    fn experiment_is_reproducible_for_a_fixed_seed() {
        let code = HammingCode::h74();
        let a = run_ber_experiment(&code, 0.01, 5_000, 99).unwrap();
        let b = run_ber_experiment(&code, 0.01, 5_000, 99).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn zero_blocks_yields_zero_rates() {
        let code = HammingCode::h74();
        let r = run_ber_experiment(&code, 0.01, 0, 1).unwrap();
        assert_eq!(r.decoded_ber(), 0.0);
        assert_eq!(r.block_error_rate(), 0.0);
    }
}
