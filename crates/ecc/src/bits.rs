//! Compact bit-vector used by the encoders, decoders and serializers.
//!
//! The workspace deliberately avoids pulling in an external `bitvec`-style
//! dependency; the codes used by the paper operate on blocks of at most a few
//! hundred bits, so a simple `Vec<u64>`-backed structure is more than enough
//! and keeps the dependency footprint at the pre-approved set.

use serde::{Deserialize, Serialize};

/// A growable, indexable sequence of bits.
///
/// ```
/// use onoc_ecc_codes::bits::BitBlock;
///
/// let mut block = BitBlock::zeros(7);
/// block.set(2, true);
/// block.set(6, true);
/// assert_eq!(block.count_ones(), 2);
/// assert_eq!(block.to_bools(), vec![false, false, true, false, false, false, true]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct BitBlock {
    words: Vec<u64>,
    len: usize,
}

impl BitBlock {
    /// Creates an empty bit block.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a block of `len` zero bits.
    #[must_use]
    pub fn zeros(len: usize) -> Self {
        Self {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Creates a block from a slice of booleans.
    #[must_use]
    pub fn from_bools(bits: &[bool]) -> Self {
        let mut block = Self::zeros(bits.len());
        for (i, &b) in bits.iter().enumerate() {
            block.set(i, b);
        }
        block
    }

    /// Creates a block holding the `len` least-significant bits of `value`,
    /// LSB first.
    ///
    /// # Panics
    ///
    /// Panics if `len > 64`.
    #[must_use]
    pub fn from_u64(value: u64, len: usize) -> Self {
        assert!(len <= 64, "from_u64 supports at most 64 bits");
        let mut block = Self::zeros(len);
        for i in 0..len {
            block.set(i, (value >> i) & 1 == 1);
        }
        block
    }

    /// Creates a block from bytes, LSB-first within each byte.
    #[must_use]
    pub fn from_bytes(bytes: &[u8]) -> Self {
        let mut block = Self::zeros(bytes.len() * 8);
        for (byte_index, byte) in bytes.iter().enumerate() {
            for bit in 0..8 {
                block.set(byte_index * 8 + bit, (byte >> bit) & 1 == 1);
            }
        }
        block
    }

    /// Number of bits in the block.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when the block contains no bits.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads the bit at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    #[must_use]
    pub fn get(&self, index: usize) -> bool {
        assert!(
            index < self.len,
            "bit index {index} out of range ({})",
            self.len
        );
        (self.words[index / 64] >> (index % 64)) & 1 == 1
    }

    /// Writes the bit at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    pub fn set(&mut self, index: usize, value: bool) {
        assert!(
            index < self.len,
            "bit index {index} out of range ({})",
            self.len
        );
        let word = &mut self.words[index / 64];
        let mask = 1u64 << (index % 64);
        if value {
            *word |= mask;
        } else {
            *word &= !mask;
        }
    }

    /// Flips the bit at `index` and returns its new value.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    pub fn toggle(&mut self, index: usize) -> bool {
        let new = !self.get(index);
        self.set(index, new);
        new
    }

    /// Appends a bit at the end of the block.
    pub fn push(&mut self, value: bool) {
        if self.len.is_multiple_of(64) {
            self.words.push(0);
        }
        self.len += 1;
        self.set(self.len - 1, value);
    }

    /// Number of bits set to one.
    #[must_use]
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Hamming distance (number of differing bit positions) to `other`.
    ///
    /// # Panics
    ///
    /// Panics if the two blocks have different lengths.
    #[must_use]
    pub fn hamming_distance(&self, other: &Self) -> usize {
        assert_eq!(
            self.len, other.len,
            "hamming distance requires equal lengths"
        );
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a ^ b).count_ones() as usize)
            .sum()
    }

    /// Converts to a vector of booleans.
    #[must_use]
    pub fn to_bools(&self) -> Vec<bool> {
        (0..self.len).map(|i| self.get(i)).collect()
    }

    /// Converts the first `min(len, 64)` bits to a `u64`, LSB first.
    #[must_use]
    pub fn to_u64(&self) -> u64 {
        let mut value = 0u64;
        for i in 0..self.len.min(64) {
            if self.get(i) {
                value |= 1 << i;
            }
        }
        value
    }

    /// Converts to a byte vector (LSB-first within each byte, zero padded).
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut bytes = vec![0u8; self.len.div_ceil(8)];
        for i in 0..self.len {
            if self.get(i) {
                bytes[i / 8] |= 1 << (i % 8);
            }
        }
        bytes
    }

    /// Iterator over the bits, LSB (index 0) first.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// Returns a sub-block of `count` bits starting at `start`.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the block length.
    #[must_use]
    pub fn slice(&self, start: usize, count: usize) -> Self {
        assert!(start + count <= self.len, "slice out of range");
        let mut out = Self::zeros(count);
        for i in 0..count {
            out.set(i, self.get(start + i));
        }
        out
    }

    /// Concatenates `other` after `self`.
    #[must_use]
    pub fn concat(&self, other: &Self) -> Self {
        let mut out = self.clone();
        for bit in other.iter() {
            out.push(bit);
        }
        out
    }

    /// XORs `other` into `self` bitwise.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn xor_assign(&mut self, other: &Self) {
        assert_eq!(self.len, other.len, "xor requires equal lengths");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a ^= b;
        }
    }
}

impl FromIterator<bool> for BitBlock {
    fn from_iter<T: IntoIterator<Item = bool>>(iter: T) -> Self {
        let mut block = Self::new();
        for bit in iter {
            block.push(bit);
        }
        block
    }
}

impl std::fmt::Display for BitBlock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for bit in self.iter() {
            write!(f, "{}", u8::from(bit))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_len() {
        let b = BitBlock::zeros(71);
        assert_eq!(b.len(), 71);
        assert_eq!(b.count_ones(), 0);
        assert!(!b.is_empty());
        assert!(BitBlock::new().is_empty());
    }

    #[test]
    fn set_get_toggle() {
        let mut b = BitBlock::zeros(130);
        b.set(0, true);
        b.set(64, true);
        b.set(129, true);
        assert!(b.get(0) && b.get(64) && b.get(129));
        assert_eq!(b.count_ones(), 3);
        assert!(!b.toggle(0));
        assert_eq!(b.count_ones(), 2);
    }

    #[test]
    fn from_to_bools_round_trip() {
        let bits = vec![true, false, true, true, false, false, true];
        assert_eq!(BitBlock::from_bools(&bits).to_bools(), bits);
    }

    #[test]
    fn from_to_u64_round_trip() {
        let b = BitBlock::from_u64(0xDEAD_BEEF, 32);
        assert_eq!(b.to_u64(), 0xDEAD_BEEF);
        assert_eq!(b.len(), 32);
    }

    #[test]
    fn from_to_bytes_round_trip() {
        let bytes = vec![0xAB, 0xCD, 0x01, 0xFF];
        assert_eq!(BitBlock::from_bytes(&bytes).to_bytes(), bytes);
    }

    #[test]
    fn hamming_distance_counts_flips() {
        let a = BitBlock::from_u64(0b1010_1010, 8);
        let b = BitBlock::from_u64(0b1010_0010, 8);
        assert_eq!(a.hamming_distance(&b), 1);
        assert_eq!(a.hamming_distance(&a), 0);
    }

    #[test]
    fn push_and_collect() {
        let b: BitBlock = (0..100).map(|i| i % 3 == 0).collect();
        assert_eq!(b.len(), 100);
        assert_eq!(b.count_ones(), 34);
    }

    #[test]
    fn slice_and_concat() {
        let b = BitBlock::from_u64(0b1111_0000, 8);
        let low = b.slice(0, 4);
        let high = b.slice(4, 4);
        assert_eq!(low.count_ones(), 0);
        assert_eq!(high.count_ones(), 4);
        assert_eq!(low.concat(&high), b);
    }

    #[test]
    fn xor_assign_clears_identical_blocks() {
        let a = BitBlock::from_u64(0b1011, 4);
        let mut c = a.clone();
        c.xor_assign(&a);
        assert_eq!(c.count_ones(), 0);
    }

    #[test]
    fn display_is_binary_string() {
        let b = BitBlock::from_bools(&[true, false, true]);
        assert_eq!(b.to_string(), "101");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_get_panics() {
        let b = BitBlock::zeros(4);
        let _ = b.get(4);
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn distance_with_mismatched_lengths_panics() {
        let _ = BitBlock::zeros(4).hamming_distance(&BitBlock::zeros(5));
    }
}
