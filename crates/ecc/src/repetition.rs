//! Repetition codes — the simplest possible baseline.
//!
//! A rate-1/r repetition code transmits each bit `r` times and decodes by
//! majority vote.  It is hopeless in terms of throughput but useful as a
//! sanity baseline in the design-space exploration: any sensible code should
//! dominate it on the power/performance Pareto front for the same BER target.

use serde::{Deserialize, Serialize};

use crate::code::{check_codeword_len, check_message_len, BlockCode, CodeError, DecodeOutcome};

/// A bit-repetition code with odd repetition factor.
///
/// ```
/// use onoc_ecc_codes::{BlockCode, RepetitionCode};
///
/// let code = RepetitionCode::new(3, 4)?;
/// let cw = code.encode(&[true, false, true, true])?;
/// assert_eq!(cw.len(), 12);
/// # Ok::<(), onoc_ecc_codes::CodeError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RepetitionCode {
    repetitions: usize,
    message_length: usize,
}

impl RepetitionCode {
    /// Creates a repetition code repeating each of `message_length` bits
    /// `repetitions` times.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::InvalidParameters`] if `repetitions` is even or
    /// smaller than 3, or if `message_length` is zero.
    pub fn new(repetitions: usize, message_length: usize) -> Result<Self, CodeError> {
        if repetitions < 3 || repetitions.is_multiple_of(2) {
            return Err(CodeError::InvalidParameters {
                reason: format!("repetition factor must be odd and >= 3, got {repetitions}"),
            });
        }
        if message_length == 0 {
            return Err(CodeError::InvalidParameters {
                reason: "message length must be at least 1".to_owned(),
            });
        }
        Ok(Self {
            repetitions,
            message_length,
        })
    }

    /// Repetition factor `r`.
    #[must_use]
    pub fn repetitions(&self) -> usize {
        self.repetitions
    }
}

impl BlockCode for RepetitionCode {
    fn block_length(&self) -> usize {
        self.message_length * self.repetitions
    }

    fn message_length(&self) -> usize {
        self.message_length
    }

    fn min_distance(&self) -> usize {
        self.repetitions
    }

    fn name(&self) -> String {
        format!("Rep{}x{}", self.repetitions, self.message_length)
    }

    fn encode(&self, data: &[bool]) -> Result<Vec<bool>, CodeError> {
        check_message_len(self.message_length, data.len())?;
        let mut out = Vec::with_capacity(self.block_length());
        for &bit in data {
            out.extend(std::iter::repeat_n(bit, self.repetitions));
        }
        Ok(out)
    }

    fn decode(&self, received: &[bool]) -> Result<DecodeOutcome, CodeError> {
        check_codeword_len(self.block_length(), received.len())?;
        let mut data = Vec::with_capacity(self.message_length);
        let mut corrected = false;
        for chunk in received.chunks(self.repetitions) {
            let ones = chunk.iter().filter(|&&b| b).count();
            let majority = ones * 2 > self.repetitions;
            let unanimous = ones == 0 || ones == self.repetitions;
            if !unanimous {
                corrected = true;
            }
            data.push(majority);
        }
        Ok(DecodeOutcome {
            data,
            corrected_error: corrected,
            detected_uncorrectable: false,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parameters() {
        let c = RepetitionCode::new(3, 8).unwrap();
        assert_eq!(c.block_length(), 24);
        assert_eq!(c.min_distance(), 3);
        assert_eq!(c.correctable_errors(), 1);
        assert!((c.rate() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(c.name(), "Rep3x8");
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(RepetitionCode::new(2, 4).is_err());
        assert!(RepetitionCode::new(1, 4).is_err());
        assert!(RepetitionCode::new(3, 0).is_err());
        assert!(RepetitionCode::new(5, 1).is_ok());
    }

    #[test]
    fn majority_vote_corrects_single_error_per_group() {
        let c = RepetitionCode::new(3, 4).unwrap();
        let msg = vec![true, false, true, false];
        let mut cw = c.encode(&msg).unwrap();
        cw[1] = !cw[1]; // corrupt one copy of bit 0
        cw[9] = !cw[9]; // corrupt one copy of bit 3
        let out = c.decode(&cw).unwrap();
        assert_eq!(out.data, msg);
        assert!(out.corrected_error);
    }

    #[test]
    fn two_errors_in_same_group_flip_the_bit() {
        let c = RepetitionCode::new(3, 1).unwrap();
        let cw = c.encode(&[true]).unwrap();
        let mut bad = cw;
        bad[0] = false;
        bad[1] = false;
        assert_eq!(c.decode(&bad).unwrap().data, vec![false]);
    }

    #[test]
    fn rep5_corrects_two_errors_per_group() {
        let c = RepetitionCode::new(5, 2).unwrap();
        let msg = vec![true, false];
        let mut cw = c.encode(&msg).unwrap();
        cw[0] = !cw[0];
        cw[4] = !cw[4];
        assert_eq!(c.decode(&cw).unwrap().data, msg);
    }

    #[test]
    fn wrong_lengths_rejected() {
        let c = RepetitionCode::new(3, 4).unwrap();
        assert!(c.encode(&[true; 3]).is_err());
        assert!(c.decode(&[true; 11]).is_err());
    }
}
