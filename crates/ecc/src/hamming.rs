//! Perfect binary Hamming codes H(2^m − 1, 2^m − 1 − m).
//!
//! These are the codes used by the paper: a minimum-distance-3 linear code
//! with the highest possible rate for single-error correction at a given
//! block length.  H(7,4) is the `m = 3` member; the shortened H(71,64) used
//! for the 64-bit IP bus is derived from the `m = 7` member H(127,120) (see
//! [`crate::shortened`]).

use serde::{Deserialize, Serialize};

use crate::code::{check_codeword_len, check_message_len, BlockCode, CodeError, DecodeOutcome};

/// A perfect Hamming code with `m ≥ 2` parity bits.
///
/// The codeword layout follows the classic convention: bit positions are
/// numbered from 1 to `n = 2^m − 1`, parity bits occupy the power-of-two
/// positions and message bits fill the remaining positions in increasing
/// order.  Decoding computes the syndrome as the XOR of the (1-based) indices
/// of all set bits; a non-zero syndrome directly names the flipped position.
///
/// ```
/// use onoc_ecc_codes::{BlockCode, HammingCode};
///
/// let h74 = HammingCode::new(3)?;
/// assert_eq!(h74.block_length(), 7);
/// assert_eq!(h74.message_length(), 4);
/// assert_eq!(h74.correctable_errors(), 1);
/// assert!((h74.rate() - 4.0 / 7.0).abs() < 1e-12);
/// # Ok::<(), onoc_ecc_codes::CodeError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HammingCode {
    parity_count: usize,
    block_length: usize,
    message_length: usize,
}

impl HammingCode {
    /// Creates the Hamming code with `parity_count = m` parity bits.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::InvalidParameters`] if `m < 2` or `m > 16`
    /// (larger codes would exceed any realistic on-chip serialisation width).
    pub fn new(parity_count: usize) -> Result<Self, CodeError> {
        if !(2..=16).contains(&parity_count) {
            return Err(CodeError::InvalidParameters {
                reason: format!("hamming parity count must be in 2..=16, got {parity_count}"),
            });
        }
        let block_length = (1usize << parity_count) - 1;
        Ok(Self {
            parity_count,
            block_length,
            message_length: block_length - parity_count,
        })
    }

    /// The paper's H(7,4) code (`m = 3`).
    #[must_use]
    pub fn h74() -> Self {
        Self::new(3).expect("m = 3 is always valid")
    }

    /// The H(15,11) code (`m = 4`).
    #[must_use]
    pub fn h1511() -> Self {
        Self::new(4).expect("m = 4 is always valid")
    }

    /// The H(127,120) code (`m = 7`), parent of the shortened H(71,64).
    #[must_use]
    pub fn h127120() -> Self {
        Self::new(7).expect("m = 7 is always valid")
    }

    /// Number of parity bits `m`.
    #[must_use]
    pub fn parity_count(&self) -> usize {
        self.parity_count
    }

    /// Returns `true` when the 1-based position holds a parity bit.
    fn is_parity_position(position: usize) -> bool {
        position.is_power_of_two()
    }

    /// Computes the syndrome of a full codeword laid out 1-based in `word`
    /// (index 0 unused).
    fn syndrome(word: &[bool]) -> usize {
        word.iter()
            .enumerate()
            .skip(1)
            .filter(|&(_, &bit)| bit)
            .fold(0, |acc, (pos, _)| acc ^ pos)
    }

    /// Encodes into the positional (1-based) representation; helper shared
    /// with the shortened code.
    pub(crate) fn encode_positional(&self, data: &[bool]) -> Result<Vec<bool>, CodeError> {
        check_message_len(self.message_length, data.len())?;
        let n = self.block_length;
        let mut word = vec![false; n + 1];
        let mut data_iter = data.iter();
        for (position, slot) in word.iter_mut().enumerate().skip(1) {
            if !Self::is_parity_position(position) {
                *slot = *data_iter.next().expect("message length checked");
            }
        }
        // Each parity bit at position 2^i covers all positions with bit i set.
        for i in 0..self.parity_count {
            let parity_pos = 1usize << i;
            let parity = (1..=n)
                .filter(|&p| p != parity_pos && (p & parity_pos) != 0 && word[p])
                .count()
                % 2
                == 1;
            word[parity_pos] = parity;
        }
        Ok(word)
    }

    /// Decodes from the positional (1-based) representation.
    pub(crate) fn decode_positional(&self, word: &mut [bool]) -> DecodeOutcome {
        let n = self.block_length;
        let syndrome = Self::syndrome(word);
        let mut corrected = false;
        if syndrome != 0 && syndrome <= n {
            word[syndrome] = !word[syndrome];
            corrected = true;
        }
        let data = (1..=n)
            .filter(|&p| !Self::is_parity_position(p))
            .map(|p| word[p])
            .collect();
        DecodeOutcome {
            data,
            corrected_error: corrected,
            detected_uncorrectable: false,
        }
    }
}

impl BlockCode for HammingCode {
    fn block_length(&self) -> usize {
        self.block_length
    }

    fn message_length(&self) -> usize {
        self.message_length
    }

    fn min_distance(&self) -> usize {
        3
    }

    fn name(&self) -> String {
        format!("H({},{})", self.block_length, self.message_length)
    }

    fn encode(&self, data: &[bool]) -> Result<Vec<bool>, CodeError> {
        let word = self.encode_positional(data)?;
        Ok(word[1..].to_vec())
    }

    fn decode(&self, received: &[bool]) -> Result<DecodeOutcome, CodeError> {
        check_codeword_len(self.block_length, received.len())?;
        let mut word = Vec::with_capacity(self.block_length + 1);
        word.push(false);
        word.extend_from_slice(received);
        Ok(self.decode_positional(&mut word))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_messages(k: usize) -> impl Iterator<Item = Vec<bool>> {
        (0u64..(1 << k)).map(move |v| (0..k).map(|i| (v >> i) & 1 == 1).collect())
    }

    #[test]
    fn h74_parameters() {
        let c = HammingCode::h74();
        assert_eq!(c.block_length(), 7);
        assert_eq!(c.message_length(), 4);
        assert_eq!(c.parity_bits(), 3);
        assert_eq!(c.min_distance(), 3);
        assert_eq!(c.name(), "H(7,4)");
        assert!((c.communication_time_factor() - 1.75).abs() < 1e-12);
    }

    #[test]
    fn h127120_parameters() {
        let c = HammingCode::h127120();
        assert_eq!(c.block_length(), 127);
        assert_eq!(c.message_length(), 120);
        assert_eq!(c.parity_count(), 7);
    }

    #[test]
    fn invalid_parity_count_rejected() {
        assert!(HammingCode::new(1).is_err());
        assert!(HammingCode::new(17).is_err());
        assert!(HammingCode::new(2).is_ok());
    }

    #[test]
    fn round_trip_without_errors_h74_exhaustive() {
        let c = HammingCode::h74();
        for msg in all_messages(4) {
            let cw = c.encode(&msg).unwrap();
            assert_eq!(cw.len(), 7);
            let out = c.decode(&cw).unwrap();
            assert_eq!(out.data, msg);
            assert!(!out.corrected_error);
        }
    }

    #[test]
    fn corrects_every_single_bit_error_h74_exhaustive() {
        let c = HammingCode::h74();
        for msg in all_messages(4) {
            let cw = c.encode(&msg).unwrap();
            for flip in 0..7 {
                let mut bad = cw.clone();
                bad[flip] = !bad[flip];
                let out = c.decode(&bad).unwrap();
                assert_eq!(out.data, msg, "flip at {flip} not corrected");
                assert!(out.corrected_error);
            }
        }
    }

    #[test]
    fn corrects_single_bit_errors_h1511() {
        let c = HammingCode::h1511();
        let msg: Vec<bool> = (0..11).map(|i| i % 2 == 0).collect();
        let cw = c.encode(&msg).unwrap();
        for flip in 0..15 {
            let mut bad = cw.clone();
            bad[flip] = !bad[flip];
            let out = c.decode(&bad).unwrap();
            assert_eq!(out.data, msg);
        }
    }

    #[test]
    fn double_error_is_miscorrected_not_detected() {
        // A distance-3 code cannot detect double errors: the decoder produces a
        // wrong codeword without raising a flag.  This is the behaviour Eq. (2)
        // of the paper accounts for.
        let c = HammingCode::h74();
        let msg = vec![true, true, false, true];
        let cw = c.encode(&msg).unwrap();
        let mut bad = cw.clone();
        bad[0] = !bad[0];
        bad[3] = !bad[3];
        let out = c.decode(&bad).unwrap();
        assert!(!out.detected_uncorrectable);
        assert_ne!(out.data, msg);
    }

    #[test]
    fn all_codewords_have_min_distance_three_h74() {
        let c = HammingCode::h74();
        let codewords: Vec<Vec<bool>> = all_messages(4).map(|m| c.encode(&m).unwrap()).collect();
        for (i, a) in codewords.iter().enumerate() {
            for b in codewords.iter().skip(i + 1) {
                let dist = a.iter().zip(b).filter(|(x, y)| x != y).count();
                assert!(dist >= 3, "distance {dist} < 3");
            }
        }
    }

    #[test]
    fn wrong_lengths_are_rejected() {
        let c = HammingCode::h74();
        assert!(matches!(
            c.encode(&[true; 5]),
            Err(CodeError::WrongMessageLength {
                expected: 4,
                actual: 5
            })
        ));
        assert!(matches!(
            c.decode(&[true; 8]),
            Err(CodeError::WrongCodewordLength {
                expected: 7,
                actual: 8
            })
        ));
    }

    #[test]
    fn rate_is_highest_for_larger_codes() {
        let rates: Vec<f64> = (3..=8)
            .map(|m| HammingCode::new(m).unwrap().rate())
            .collect();
        for pair in rates.windows(2) {
            assert!(pair[1] > pair[0]);
        }
    }
}
