//! The [`EccScheme`] registry: the concrete coding configurations evaluated in
//! the paper plus the extensions used by the ablation studies.

use serde::{Deserialize, Serialize};

use crate::code::{BlockCode, CodeError};
use crate::extended::ExtendedHammingCode;
use crate::hamming::HammingCode;
use crate::parity::ParityCheckCode;
use crate::repetition::RepetitionCode;
use crate::shortened::ShortenedHammingCode;
use crate::uncoded::UncodedPassthrough;

/// Width of the IP-core data bus assumed throughout the paper (N_data).
pub const IP_WORD_BITS: usize = 64;

/// A named coding configuration selectable by the optical-link manager.
///
/// The three configurations of the paper are [`EccScheme::Uncoded`],
/// [`EccScheme::Hamming74`] and [`EccScheme::Hamming7164`]; the remaining
/// variants support the code-length ablation (`A1` in DESIGN.md).
///
/// ```
/// use onoc_ecc_codes::EccScheme;
///
/// assert_eq!(EccScheme::Hamming74.codecs_per_word(64), 16);
/// assert_eq!(EccScheme::Hamming74.encoded_bits_per_word(64), 112);
/// assert_eq!(EccScheme::Hamming7164.encoded_bits_per_word(64), 71);
/// assert!((EccScheme::Uncoded.communication_time_factor() - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[non_exhaustive]
#[derive(Default)]
pub enum EccScheme {
    /// Direct modulation without coding ("w/o ECC" in the paper).
    #[default]
    Uncoded,
    /// Hamming(7,4): 16 parallel codecs protect a 64-bit word (paper).
    Hamming74,
    /// Hamming(15,11).
    Hamming1511,
    /// Hamming(31,26).
    Hamming3126,
    /// Hamming(63,57) — the label that appears on Fig. 6a of the paper.
    Hamming6357,
    /// Shortened Hamming(71,64): a single codec protects the 64-bit word (paper).
    Hamming7164,
    /// Hamming(127,120).
    Hamming127120,
    /// Extended Hamming / SECDED(72,64).
    Secded7264,
    /// Extended Hamming / SECDED(8,4).
    Secded84,
    /// Rate-1/3 repetition code (baseline).
    Repetition3,
    /// Single parity check over the word (detection only).
    ParityOnly,
}

impl EccScheme {
    /// All supported schemes, in increasing block-length order.
    #[must_use]
    pub fn all() -> Vec<Self> {
        vec![
            Self::Uncoded,
            Self::ParityOnly,
            Self::Repetition3,
            Self::Hamming74,
            Self::Secded84,
            Self::Hamming1511,
            Self::Hamming3126,
            Self::Hamming6357,
            Self::Hamming7164,
            Self::Secded7264,
            Self::Hamming127120,
        ]
    }

    /// The three schemes evaluated in the paper (Figs. 5 and 6).
    #[must_use]
    pub fn paper_schemes() -> [Self; 3] {
        [Self::Uncoded, Self::Hamming7164, Self::Hamming74]
    }

    /// Codeword (block) length `n` of one codec instance.
    #[must_use]
    pub fn block_length(self) -> usize {
        match self {
            Self::Uncoded => IP_WORD_BITS,
            Self::ParityOnly => IP_WORD_BITS + 1,
            Self::Repetition3 => 3 * IP_WORD_BITS,
            Self::Hamming74 => 7,
            Self::Hamming1511 => 15,
            Self::Hamming3126 => 31,
            Self::Hamming6357 => 63,
            Self::Hamming7164 => 71,
            Self::Hamming127120 => 127,
            Self::Secded7264 => 72,
            Self::Secded84 => 8,
        }
    }

    /// Message length `k` of one codec instance.
    #[must_use]
    pub fn message_length(self) -> usize {
        match self {
            Self::Uncoded | Self::ParityOnly | Self::Repetition3 => IP_WORD_BITS,
            Self::Hamming74 | Self::Secded84 => 4,
            Self::Hamming1511 => 11,
            Self::Hamming3126 => 26,
            Self::Hamming6357 => 57,
            Self::Hamming7164 | Self::Secded7264 => 64,
            Self::Hamming127120 => 120,
        }
    }

    /// Code rate `k/n`.
    #[must_use]
    pub fn rate(self) -> f64 {
        self.message_length() as f64 / self.block_length() as f64
    }

    /// Communication-time factor `n/k` (1.0 uncoded, 1.75 for H(7,4), ≈1.11
    /// for H(71,64)).
    #[must_use]
    pub fn communication_time_factor(self) -> f64 {
        self.block_length() as f64 / self.message_length() as f64
    }

    /// Number of errors corrected per codeword.
    #[must_use]
    pub fn correctable_errors(self) -> usize {
        match self {
            Self::Uncoded | Self::ParityOnly => 0,
            Self::Repetition3 => 1,
            _ => 1,
        }
    }

    /// Number of parallel codec instances required to cover a `word_bits`-wide
    /// IP word (16 for H(7,4) on a 64-bit bus, 1 for H(71,64)).
    ///
    /// When the word width is not a multiple of the codec message length the
    /// last codec's message is zero-padded, so the count rounds up.
    #[must_use]
    pub fn codecs_per_word(self, word_bits: usize) -> usize {
        let k = self.message_length();
        if k >= word_bits {
            1
        } else {
            word_bits.div_ceil(k)
        }
    }

    /// Total number of encoded bits needed to carry a `word_bits` payload.
    #[must_use]
    pub fn encoded_bits_per_word(self, word_bits: usize) -> usize {
        if self.message_length() >= word_bits {
            // A single codec whose message is padded up to its k.
            self.block_length()
        } else {
            self.codecs_per_word(word_bits) * self.block_length()
        }
    }

    /// Human-readable name matching the paper's notation.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::Uncoded => "w/o ECC",
            Self::ParityOnly => "Parity(65,64)",
            Self::Repetition3 => "Rep3",
            Self::Hamming74 => "H(7,4)",
            Self::Hamming1511 => "H(15,11)",
            Self::Hamming3126 => "H(31,26)",
            Self::Hamming6357 => "H(63,57)",
            Self::Hamming7164 => "H(71,64)",
            Self::Hamming127120 => "H(127,120)",
            Self::Secded7264 => "SECDED(72,64)",
            Self::Secded84 => "SECDED(8,4)",
        }
    }

    /// Instantiates the codec behind this scheme.
    ///
    /// # Errors
    ///
    /// Never fails for the built-in variants; the `Result` mirrors the
    /// fallible constructors it delegates to.
    pub fn build(self) -> Result<Box<dyn BlockCode>, CodeError> {
        Ok(match self {
            Self::Uncoded => Box::new(UncodedPassthrough::new(IP_WORD_BITS)),
            Self::ParityOnly => Box::new(ParityCheckCode::new(IP_WORD_BITS)?),
            Self::Repetition3 => Box::new(RepetitionCode::new(3, IP_WORD_BITS)?),
            Self::Hamming74 => Box::new(HammingCode::new(3)?),
            Self::Hamming1511 => Box::new(HammingCode::new(4)?),
            Self::Hamming3126 => Box::new(HammingCode::new(5)?),
            Self::Hamming6357 => Box::new(HammingCode::new(6)?),
            Self::Hamming127120 => Box::new(HammingCode::new(7)?),
            Self::Hamming7164 => Box::new(ShortenedHammingCode::h7164()),
            Self::Secded7264 => Box::new(ExtendedHammingCode::h7264()),
            Self::Secded84 => Box::new(ExtendedHammingCode::h84()),
        })
    }
}

impl std::fmt::Display for EccScheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_schemes_are_the_three_evaluated_configurations() {
        let schemes = EccScheme::paper_schemes();
        assert_eq!(schemes[0], EccScheme::Uncoded);
        assert_eq!(schemes[1], EccScheme::Hamming7164);
        assert_eq!(schemes[2], EccScheme::Hamming74);
    }

    #[test]
    fn geometry_matches_built_codes() {
        for scheme in EccScheme::all() {
            let code = scheme.build().unwrap();
            assert_eq!(code.block_length(), scheme.block_length(), "{scheme}");
            assert_eq!(code.message_length(), scheme.message_length(), "{scheme}");
        }
    }

    #[test]
    fn communication_time_factors_match_the_paper() {
        assert!((EccScheme::Uncoded.communication_time_factor() - 1.0).abs() < 1e-12);
        assert!((EccScheme::Hamming74.communication_time_factor() - 1.75).abs() < 1e-12);
        assert!((EccScheme::Hamming7164.communication_time_factor() - 1.109).abs() < 1e-3);
    }

    #[test]
    fn codec_counts_for_the_64_bit_bus() {
        assert_eq!(EccScheme::Hamming74.codecs_per_word(64), 16);
        assert_eq!(EccScheme::Hamming7164.codecs_per_word(64), 1);
        assert_eq!(EccScheme::Uncoded.codecs_per_word(64), 1);
        assert_eq!(EccScheme::Hamming1511.codecs_per_word(66), 6);
    }

    #[test]
    fn encoded_bits_for_the_64_bit_bus() {
        assert_eq!(EccScheme::Hamming74.encoded_bits_per_word(64), 112);
        assert_eq!(EccScheme::Hamming7164.encoded_bits_per_word(64), 71);
        assert_eq!(EccScheme::Uncoded.encoded_bits_per_word(64), 64);
        assert_eq!(EccScheme::Secded7264.encoded_bits_per_word(64), 72);
    }

    #[test]
    fn misaligned_word_width_rounds_up() {
        // 64 bits over 11-bit messages → 6 codecs, the last one zero-padded.
        assert_eq!(EccScheme::Hamming1511.codecs_per_word(64), 6);
        assert_eq!(EccScheme::Hamming1511.encoded_bits_per_word(64), 90);
    }

    #[test]
    fn labels_are_unique() {
        let labels: std::collections::HashSet<_> =
            EccScheme::all().into_iter().map(EccScheme::label).collect();
        assert_eq!(labels.len(), EccScheme::all().len());
    }

    #[test]
    fn display_uses_paper_notation() {
        assert_eq!(EccScheme::Hamming74.to_string(), "H(7,4)");
        assert_eq!(EccScheme::Uncoded.to_string(), "w/o ECC");
    }

    #[test]
    fn default_is_uncoded() {
        assert_eq!(EccScheme::default(), EccScheme::Uncoded);
    }
}
