//! Shortened Hamming codes, e.g. the paper's H(71,64).
//!
//! A shortened Hamming code is obtained from a parent H(2^m−1, 2^m−1−m) by
//! fixing the leading `s` message bits to zero and not transmitting them.
//! The resulting (n−s, k−s) code keeps the minimum distance (3) and the
//! single-error-correction capability of the parent while matching the data
//! width of the electrical interface: protecting a 64-bit IP word requires
//! m = 7 parity bits, so the natural code is H(127,120) shortened by 56
//! positions to H(71,64).

use serde::{Deserialize, Serialize};

use crate::code::{check_codeword_len, check_message_len, BlockCode, CodeError, DecodeOutcome};
use crate::hamming::HammingCode;

/// A Hamming code shortened to an arbitrary message length.
///
/// ```
/// use onoc_ecc_codes::{BlockCode, ShortenedHammingCode};
///
/// // The paper's H(71,64): one codec protects the whole 64-bit bus.
/// let code = ShortenedHammingCode::for_message_length(64)?;
/// assert_eq!(code.block_length(), 71);
/// assert_eq!(code.message_length(), 64);
/// assert!((code.communication_time_factor() - 71.0 / 64.0).abs() < 1e-12);
/// # Ok::<(), onoc_ecc_codes::CodeError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShortenedHammingCode {
    parent: HammingCode,
    message_length: usize,
    shortened_by: usize,
}

impl ShortenedHammingCode {
    /// Creates a shortened Hamming code with exactly `message_length` data
    /// bits, using the smallest parent code that can host them.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::InvalidParameters`] if `message_length` is zero or
    /// requires more than 16 parity bits.
    pub fn for_message_length(message_length: usize) -> Result<Self, CodeError> {
        if message_length == 0 {
            return Err(CodeError::InvalidParameters {
                reason: "message length must be at least 1".to_owned(),
            });
        }
        // Smallest m such that 2^m - 1 - m >= message_length.
        let parity_count = (2..=16)
            .find(|&m| ((1usize << m) - 1 - m) >= message_length)
            .ok_or_else(|| CodeError::InvalidParameters {
                reason: format!(
                    "no Hamming code with <= 16 parity bits hosts {message_length} data bits"
                ),
            })?;
        let parent = HammingCode::new(parity_count)?;
        let shortened_by = parent.message_length() - message_length;
        Ok(Self {
            parent,
            message_length,
            shortened_by,
        })
    }

    /// The paper's H(71,64) code (64 data bits + 7 parity bits).
    #[must_use]
    pub fn h7164() -> Self {
        Self::for_message_length(64).expect("64-bit message is always valid")
    }

    /// An H(38,32) code protecting a 32-bit word (6 parity bits).
    #[must_use]
    pub fn h3832() -> Self {
        Self::for_message_length(32).expect("32-bit message is always valid")
    }

    /// An H(12,8) code protecting one byte (4 parity bits).
    #[must_use]
    pub fn h128() -> Self {
        Self::for_message_length(8).expect("8-bit message is always valid")
    }

    /// The parent (unshortened) Hamming code.
    #[must_use]
    pub fn parent(&self) -> &HammingCode {
        &self.parent
    }

    /// Number of message positions removed from the parent code.
    #[must_use]
    pub fn shortened_by(&self) -> usize {
        self.shortened_by
    }
}

impl BlockCode for ShortenedHammingCode {
    fn block_length(&self) -> usize {
        self.parent.block_length() - self.shortened_by
    }

    fn message_length(&self) -> usize {
        self.message_length
    }

    fn min_distance(&self) -> usize {
        3
    }

    fn name(&self) -> String {
        format!("H({},{})", self.block_length(), self.message_length())
    }

    fn encode(&self, data: &[bool]) -> Result<Vec<bool>, CodeError> {
        check_message_len(self.message_length, data.len())?;
        // Pad the message with `shortened_by` zero bits at the *end* (the
        // highest-numbered data positions of the parent), encode with the
        // parent, then drop those positions from the codeword.
        let mut padded = data.to_vec();
        padded.extend(std::iter::repeat_n(false, self.shortened_by));
        let parent_cw = self.parent.encode(&padded)?;
        // The padded zero data bits occupy the last `shortened_by`
        // non-parity positions of the parent codeword; because data bits are
        // placed in increasing position order, those are exactly the last
        // `shortened_by` data positions.  Removing them requires knowing
        // which codeword indices are data positions.
        let n_parent = self.parent.block_length();
        let keep_data = self.message_length;
        let mut kept = Vec::with_capacity(self.block_length());
        let mut data_seen = 0;
        for (idx, bit) in parent_cw.iter().enumerate() {
            let position = idx + 1;
            if position.is_power_of_two() {
                kept.push(*bit);
            } else {
                if data_seen < keep_data {
                    kept.push(*bit);
                }
                data_seen += 1;
            }
            debug_assert!(position <= n_parent);
        }
        Ok(kept)
    }

    fn decode(&self, received: &[bool]) -> Result<DecodeOutcome, CodeError> {
        check_codeword_len(self.block_length(), received.len())?;
        // Re-insert the shortened (zero) data positions, decode with the
        // parent, then truncate the decoded message.
        let mut expanded = Vec::with_capacity(self.parent.block_length());
        let mut iter = received.iter();
        let mut data_seen = 0;
        for position in 1..=self.parent.block_length() {
            if position.is_power_of_two() {
                expanded.push(*iter.next().expect("length checked"));
            } else if data_seen < self.message_length {
                expanded.push(*iter.next().expect("length checked"));
                data_seen += 1;
            } else {
                expanded.push(false);
                data_seen += 1;
            }
        }
        let mut outcome = self.parent.decode(&expanded)?;
        outcome.data.truncate(self.message_length);
        Ok(outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn h7164_parameters_match_the_paper() {
        let c = ShortenedHammingCode::h7164();
        assert_eq!(c.block_length(), 71);
        assert_eq!(c.message_length(), 64);
        assert_eq!(c.parity_bits(), 7);
        assert_eq!(c.name(), "H(71,64)");
        assert_eq!(c.parent().block_length(), 127);
        assert_eq!(c.shortened_by(), 56);
        // CT factor quoted as 1.1 in the paper.
        assert!((c.communication_time_factor() - 1.109_375).abs() < 1e-6);
    }

    #[test]
    fn other_presets() {
        assert_eq!(ShortenedHammingCode::h3832().block_length(), 38);
        assert_eq!(ShortenedHammingCode::h128().block_length(), 12);
    }

    #[test]
    fn degenerate_and_oversized_messages_rejected() {
        assert!(ShortenedHammingCode::for_message_length(0).is_err());
        assert!(ShortenedHammingCode::for_message_length(1 << 17).is_err());
    }

    #[test]
    fn unshortened_request_matches_parent() {
        // 4 data bits need m = 3 and no shortening at all.
        let c = ShortenedHammingCode::for_message_length(4).unwrap();
        assert_eq!(c.block_length(), 7);
        assert_eq!(c.shortened_by(), 0);
    }

    #[test]
    fn round_trip_without_errors() {
        let c = ShortenedHammingCode::h7164();
        let msg: Vec<bool> = (0..64).map(|i| (i * 7 + 3) % 5 < 2).collect();
        let cw = c.encode(&msg).unwrap();
        assert_eq!(cw.len(), 71);
        let out = c.decode(&cw).unwrap();
        assert_eq!(out.data, msg);
        assert!(!out.corrected_error);
    }

    #[test]
    fn corrects_every_single_bit_error_h7164() {
        let c = ShortenedHammingCode::h7164();
        let msg: Vec<bool> = (0..64).map(|i| i % 3 == 1).collect();
        let cw = c.encode(&msg).unwrap();
        for flip in 0..71 {
            let mut bad = cw.clone();
            bad[flip] = !bad[flip];
            let out = c.decode(&bad).unwrap();
            assert_eq!(out.data, msg, "flip at {flip} not corrected");
            assert!(out.corrected_error);
        }
    }

    #[test]
    fn corrects_every_single_bit_error_h3832_all_zero_and_all_one() {
        let c = ShortenedHammingCode::h3832();
        for msg in [vec![false; 32], vec![true; 32]] {
            let cw = c.encode(&msg).unwrap();
            for flip in 0..c.block_length() {
                let mut bad = cw.clone();
                bad[flip] = !bad[flip];
                assert_eq!(c.decode(&bad).unwrap().data, msg);
            }
        }
    }

    #[test]
    fn wrong_lengths_are_rejected() {
        let c = ShortenedHammingCode::h7164();
        assert!(c.encode(&[true; 63]).is_err());
        assert!(c.decode(&[true; 70]).is_err());
    }
}
