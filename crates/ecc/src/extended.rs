//! Extended Hamming (SECDED) codes.
//!
//! Adding one overall parity bit to a Hamming code raises the minimum distance
//! from 3 to 4: single errors are still corrected, and double errors are now
//! *detected* instead of being silently miscorrected.  The paper mentions that
//! "other coding techniques can be used"; SECDED is the most common extension
//! in on-chip memories and interconnects, so we provide it as an optional
//! scheme for the design-space exploration and ablation benches.

use serde::{Deserialize, Serialize};

use crate::code::{check_codeword_len, check_message_len, BlockCode, CodeError, DecodeOutcome};
use crate::shortened::ShortenedHammingCode;

/// An extended (SECDED) Hamming code built on a possibly-shortened base code.
///
/// ```
/// use onoc_ecc_codes::{BlockCode, ExtendedHammingCode};
///
/// // SECDED over a 64-bit word: H(72,64), the classic DRAM ECC geometry.
/// let code = ExtendedHammingCode::for_message_length(64)?;
/// assert_eq!(code.block_length(), 72);
/// assert_eq!(code.min_distance(), 4);
/// # Ok::<(), onoc_ecc_codes::CodeError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExtendedHammingCode {
    base: ShortenedHammingCode,
}

impl ExtendedHammingCode {
    /// Creates a SECDED code protecting `message_length` data bits.
    ///
    /// # Errors
    ///
    /// Propagates [`CodeError::InvalidParameters`] from the base code
    /// construction.
    pub fn for_message_length(message_length: usize) -> Result<Self, CodeError> {
        Ok(Self {
            base: ShortenedHammingCode::for_message_length(message_length)?,
        })
    }

    /// SECDED over 4 data bits: the extended H(8,4) code.
    #[must_use]
    pub fn h84() -> Self {
        Self::for_message_length(4).expect("4-bit message is always valid")
    }

    /// SECDED over 64 data bits: the extended H(72,64) code.
    #[must_use]
    pub fn h7264() -> Self {
        Self::for_message_length(64).expect("64-bit message is always valid")
    }

    /// Access to the inner single-error-correcting code.
    #[must_use]
    pub fn base(&self) -> &ShortenedHammingCode {
        &self.base
    }

    fn overall_parity(bits: &[bool]) -> bool {
        bits.iter().filter(|&&b| b).count() % 2 == 1
    }
}

impl BlockCode for ExtendedHammingCode {
    fn block_length(&self) -> usize {
        self.base.block_length() + 1
    }

    fn message_length(&self) -> usize {
        self.base.message_length()
    }

    fn min_distance(&self) -> usize {
        4
    }

    fn name(&self) -> String {
        format!("SECDED({},{})", self.block_length(), self.message_length())
    }

    fn encode(&self, data: &[bool]) -> Result<Vec<bool>, CodeError> {
        check_message_len(self.message_length(), data.len())?;
        let mut cw = self.base.encode(data)?;
        cw.push(Self::overall_parity(&cw));
        Ok(cw)
    }

    fn decode(&self, received: &[bool]) -> Result<DecodeOutcome, CodeError> {
        check_codeword_len(self.block_length(), received.len())?;
        let (inner, overall) = received.split_at(self.base.block_length());
        let overall_received = overall[0];
        let overall_computed = Self::overall_parity(inner);
        let parity_mismatch = overall_received != overall_computed;

        let inner_outcome = self.base.decode(inner)?;

        if parity_mismatch {
            // Odd number of errors within the whole extended word: the inner
            // decoder either saw a clean word (error hit only the extra parity
            // bit) or corrected the single inner error.  Either way the data
            // is trustworthy.
            Ok(DecodeOutcome {
                data: inner_outcome.data,
                corrected_error: true,
                detected_uncorrectable: false,
            })
        } else if inner_outcome.corrected_error {
            // Even overall parity but the inner decoder "corrected" something:
            // this is the signature of a double error — flag it instead of
            // returning silently-corrupted data.
            Ok(DecodeOutcome {
                data: inner_outcome.data,
                corrected_error: false,
                detected_uncorrectable: true,
            })
        } else {
            Ok(DecodeOutcome::clean(inner_outcome.data))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_of_the_presets() {
        assert_eq!(ExtendedHammingCode::h84().block_length(), 8);
        assert_eq!(ExtendedHammingCode::h84().message_length(), 4);
        let c = ExtendedHammingCode::h7264();
        assert_eq!(c.block_length(), 72);
        assert_eq!(c.parity_bits(), 8);
        assert_eq!(c.name(), "SECDED(72,64)");
        assert_eq!(c.correctable_errors(), 1);
    }

    #[test]
    fn clean_round_trip() {
        let c = ExtendedHammingCode::h7264();
        let msg: Vec<bool> = (0..64).map(|i| i % 5 == 0).collect();
        let out = c.decode(&c.encode(&msg).unwrap()).unwrap();
        assert_eq!(out.data, msg);
        assert!(!out.corrected_error && !out.detected_uncorrectable);
    }

    #[test]
    fn corrects_all_single_errors() {
        let c = ExtendedHammingCode::h84();
        for value in 0..16u8 {
            let msg: Vec<bool> = (0..4).map(|i| (value >> i) & 1 == 1).collect();
            let cw = c.encode(&msg).unwrap();
            for flip in 0..8 {
                let mut bad = cw.clone();
                bad[flip] = !bad[flip];
                let out = c.decode(&bad).unwrap();
                assert_eq!(out.data, msg, "flip {flip} of value {value}");
                assert!(out.corrected_error);
                assert!(!out.detected_uncorrectable);
            }
        }
    }

    #[test]
    fn detects_all_double_errors() {
        let c = ExtendedHammingCode::h84();
        let msg = vec![true, false, false, true];
        let cw = c.encode(&msg).unwrap();
        for i in 0..8 {
            for j in (i + 1)..8 {
                let mut bad = cw.clone();
                bad[i] = !bad[i];
                bad[j] = !bad[j];
                let out = c.decode(&bad).unwrap();
                assert!(
                    out.detected_uncorrectable || out.data == msg,
                    "double error ({i},{j}) neither detected nor harmless"
                );
            }
        }
    }

    #[test]
    fn detects_double_errors_h7264_sampled() {
        let c = ExtendedHammingCode::h7264();
        let msg: Vec<bool> = (0..64).map(|i| i % 7 < 3).collect();
        let cw = c.encode(&msg).unwrap();
        for (i, j) in [(0, 1), (5, 40), (70, 71), (13, 64), (31, 32)] {
            let mut bad = cw.clone();
            bad[i] = !bad[i];
            bad[j] = !bad[j];
            let out = c.decode(&bad).unwrap();
            assert!(out.detected_uncorrectable || out.data == msg);
        }
    }

    #[test]
    fn wrong_lengths_rejected() {
        let c = ExtendedHammingCode::h84();
        assert!(c.encode(&[true; 5]).is_err());
        assert!(c.decode(&[true; 7]).is_err());
    }
}
