//! The event-driven simulation engine.
//!
//! The engine models one MWSR interconnect: every destination ONI owns a
//! channel guarded by a [`TokenArbiter`]; messages request the destination
//! channel, transmit for `codec latency + words × serialization time`
//! nanoseconds at the operating point chosen by the link manager, and are
//! delivered with stochastic residual errors derived from the operating
//! point's decoded BER.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use onoc_ecc_codes::EccScheme;
use onoc_link::{LinkManager, ManagerDecision, NanophotonicLink, TrafficClass};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::arbiter::TokenArbiter;
use crate::packet::{Message, MessageId};
use crate::stats::SimStats;
use crate::time::SimTime;
use crate::traffic::{TrafficGenerator, TrafficPattern};

/// Configuration of one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimulationConfig {
    /// Number of ONIs in the interconnect.
    pub oni_count: usize,
    /// Spatial/temporal traffic pattern.
    pub pattern: TrafficPattern,
    /// Traffic class of every message (drives the manager's scheme choice).
    pub class: TrafficClass,
    /// Number of 64-bit words per message.
    pub words_per_message: u64,
    /// Mean inter-arrival time at each source, in nanoseconds.
    pub mean_inter_arrival_ns: f64,
    /// Deadline slack granted to each message, in nanoseconds (`None` = no
    /// deadlines).
    pub deadline_slack_ns: Option<f64>,
    /// Nominal BER target the platform guarantees.
    pub nominal_ber: f64,
    /// RNG seed (traffic and error injection are fully reproducible).
    pub seed: u64,
}

impl Default for SimulationConfig {
    fn default() -> Self {
        Self {
            oni_count: 12,
            pattern: TrafficPattern::UniformRandom { messages_per_node: 10 },
            class: TrafficClass::Bulk,
            words_per_message: 16,
            mean_inter_arrival_ns: 5.0,
            deadline_slack_ns: None,
            nominal_ber: 1e-11,
            seed: 1,
        }
    }
}

/// Errors raised when setting up a simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SimulationError {
    /// The configuration is structurally invalid.
    InvalidConfiguration {
        /// Description of the problem.
        reason: String,
    },
    /// The link manager found no operating point for the requested class.
    NoFeasibleConfiguration {
        /// The class that could not be served.
        class: TrafficClass,
    },
}

impl std::fmt::Display for SimulationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::InvalidConfiguration { reason } => write!(f, "invalid configuration: {reason}"),
            Self::NoFeasibleConfiguration { class } => {
                write!(f, "no feasible link configuration for {class:?} traffic")
            }
        }
    }
}

impl std::error::Error for SimulationError {}

/// Outcome of one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimulationReport {
    /// The configuration that was simulated.
    pub config: SimulationConfig,
    /// The scheme the manager selected for this run's traffic class.
    pub scheme: EccScheme,
    /// Per-waveguide channel power of the selected operating point, in mW.
    pub channel_power_mw: f64,
    /// Decoded BER of the selected operating point.
    pub decoded_ber: f64,
    /// Aggregate statistics.
    pub stats: SimStats,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EventKind {
    Inject,
    Complete,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Event {
    time: SimTime,
    sequence: u64,
    kind: EventKind,
    message: MessageId,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.sequence).cmp(&(other.time, other.sequence))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// An event-driven simulation of the optical NoC.
#[derive(Debug)]
pub struct Simulation {
    config: SimulationConfig,
    decision: ManagerDecision,
    messages: HashMap<MessageId, Message>,
    injection_order: Vec<MessageId>,
    rng: StdRng,
}

impl Simulation {
    /// Prepares a simulation: generates the traffic and asks the link
    /// manager for the operating point of the configured traffic class.
    ///
    /// # Errors
    ///
    /// * [`SimulationError::InvalidConfiguration`] for structurally invalid
    ///   configurations (fewer than 2 ONIs, zero-sized messages, bad BER);
    /// * [`SimulationError::NoFeasibleConfiguration`] when the manager cannot
    ///   serve the requested class at the nominal BER.
    pub fn new(config: SimulationConfig) -> Result<Self, SimulationError> {
        if config.oni_count < 2 {
            return Err(SimulationError::InvalidConfiguration {
                reason: "at least two ONIs are required".into(),
            });
        }
        if config.words_per_message == 0 {
            return Err(SimulationError::InvalidConfiguration {
                reason: "messages must carry at least one word".into(),
            });
        }
        if !(config.nominal_ber > 0.0 && config.nominal_ber < 0.5) {
            return Err(SimulationError::InvalidConfiguration {
                reason: "nominal BER must be in (0, 0.5)".into(),
            });
        }
        let manager = LinkManager::new(
            NanophotonicLink::paper_link(),
            EccScheme::paper_schemes().to_vec(),
            config.nominal_ber,
        );
        let decision = manager
            .configure(config.class)
            .ok_or(SimulationError::NoFeasibleConfiguration { class: config.class })?;

        let generated = TrafficGenerator::new(
            config.pattern,
            config.oni_count,
            config.words_per_message,
            config.class,
            config.mean_inter_arrival_ns,
            config.deadline_slack_ns,
            config.seed,
        )
        .generate();
        let injection_order = generated.iter().map(|m| m.id).collect();
        let messages = generated.into_iter().map(|m| (m.id, m)).collect();

        Ok(Self {
            rng: StdRng::seed_from_u64(config.seed ^ 0xC0FF_EE00),
            config,
            decision,
            messages,
            injection_order,
        })
    }

    /// The operating point selected by the manager for this run.
    #[must_use]
    pub fn decision(&self) -> &ManagerDecision {
        &self.decision
    }

    /// Number of messages that will be injected.
    #[must_use]
    pub fn message_count(&self) -> usize {
        self.messages.len()
    }

    /// Runs the simulation to completion and returns the report.
    #[must_use]
    pub fn run(mut self) -> SimulationReport {
        let point = self.decision.point;
        let scheme = point.scheme();
        let decoded_ber = point.target_ber();
        let word_duration = point.timing.serialization_time;
        let codec_latency = point.timing.codec_latency;
        let channel_power_mw = point.channel_power.value();

        // Residual-error probability per delivered 64-bit word, and the
        // probability that the decoder had to correct something in a word.
        let word_error_probability = 1.0 - (1.0 - decoded_ber).powi(64);
        let encoded_bits = scheme.encoded_bits_per_word(64) as i32;
        let corrected_probability = 1.0 - (1.0 - point.laser.raw_ber).powi(encoded_bits);

        let mut stats = SimStats {
            injected_messages: self.messages.len() as u64,
            ..SimStats::default()
        };
        let mut arbiters: HashMap<usize, TokenArbiter> = HashMap::new();
        let mut queue: BinaryHeap<Reverse<Event>> = BinaryHeap::new();
        let mut sequence = 0u64;

        for &id in &self.injection_order {
            let message = self.messages[&id];
            queue.push(Reverse(Event {
                time: message.injected_at,
                sequence,
                kind: EventKind::Inject,
                message: id,
            }));
            sequence += 1;
        }

        let mut busy: HashMap<usize, bool> = HashMap::new();
        let mut makespan = SimTime::ZERO;

        while let Some(Reverse(event)) = queue.pop() {
            makespan = makespan.max_time(event.time);
            let message = self.messages[&event.message];
            match event.kind {
                EventKind::Inject => {
                    let arbiter = arbiters.entry(message.destination).or_default();
                    arbiter.request(message.source, message.id);
                    Self::try_start(
                        message.destination,
                        event.time,
                        &mut arbiters,
                        &mut busy,
                        &mut queue,
                        &mut sequence,
                        &self.messages,
                        word_duration,
                        codec_latency,
                    );
                }
                EventKind::Complete => {
                    let duration_ns =
                        codec_latency.value() + word_duration.value() * message.words as f64;
                    stats.delivered_messages += 1;
                    stats.delivered_bits += message.payload_bits();
                    stats.channel_busy_ns += duration_ns;
                    stats.energy_pj += channel_power_mw * duration_ns;
                    let latency = event.time.since(message.injected_at).value();
                    stats.total_latency_ns += latency;
                    stats.max_latency_ns = stats.max_latency_ns.max(latency);
                    if message.misses_deadline(event.time) {
                        stats.deadline_misses += 1;
                    }
                    for _ in 0..message.words {
                        if self.rng.gen_bool(word_error_probability.clamp(0.0, 1.0)) {
                            stats.corrupted_bits += 1;
                        }
                        if self.rng.gen_bool(corrected_probability.clamp(0.0, 1.0)) {
                            stats.corrected_words += 1;
                        }
                    }
                    let arbiter = arbiters
                        .get_mut(&message.destination)
                        .expect("completion implies a prior grant");
                    arbiter.release(message.id);
                    busy.insert(message.destination, false);
                    Self::try_start(
                        message.destination,
                        event.time,
                        &mut arbiters,
                        &mut busy,
                        &mut queue,
                        &mut sequence,
                        &self.messages,
                        word_duration,
                        codec_latency,
                    );
                }
            }
        }

        stats.makespan_ns = makespan.as_nanos();
        SimulationReport {
            config: self.config,
            scheme,
            channel_power_mw,
            decoded_ber,
            stats,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn try_start(
        destination: usize,
        now: SimTime,
        arbiters: &mut HashMap<usize, TokenArbiter>,
        busy: &mut HashMap<usize, bool>,
        queue: &mut BinaryHeap<Reverse<Event>>,
        sequence: &mut u64,
        messages: &HashMap<MessageId, Message>,
        word_duration: onoc_units::Nanoseconds,
        codec_latency: onoc_units::Nanoseconds,
    ) {
        if *busy.get(&destination).unwrap_or(&false) {
            return;
        }
        let arbiter = arbiters.entry(destination).or_default();
        if let Some((_, id)) = arbiter.grant() {
            let message = messages[&id];
            let duration = onoc_units::Nanoseconds::new(
                codec_latency.value() + word_duration.value() * message.words as f64,
            );
            busy.insert(destination, true);
            queue.push(Reverse(Event {
                time: now.advanced_by(duration),
                sequence: *sequence,
                kind: EventKind::Complete,
                message: id,
            }));
            *sequence += 1;
        }
    }
}

impl SimTime {
    /// Maximum of two timestamps (small helper local to the engine).
    #[must_use]
    fn max_time(self, other: Self) -> Self {
        if self >= other {
            self
        } else {
            other
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> SimulationConfig {
        SimulationConfig {
            oni_count: 6,
            pattern: TrafficPattern::UniformRandom { messages_per_node: 15 },
            class: TrafficClass::Bulk,
            words_per_message: 8,
            mean_inter_arrival_ns: 2.0,
            deadline_slack_ns: None,
            nominal_ber: 1e-11,
            seed: 3,
            ..SimulationConfig::default()
        }
    }

    #[test]
    fn all_injected_messages_are_delivered() {
        let sim = Simulation::new(quick_config()).unwrap();
        let injected = sim.message_count() as u64;
        let report = sim.run();
        assert_eq!(report.stats.injected_messages, injected);
        assert_eq!(report.stats.delivered_messages, injected);
        assert_eq!(report.stats.delivered_bits, injected * 8 * 64);
        assert!(report.stats.makespan_ns > 0.0);
        assert!(report.stats.mean_latency_ns() > 0.0);
    }

    #[test]
    fn bulk_traffic_runs_on_h7164() {
        let report = Simulation::new(quick_config()).unwrap().run();
        assert_eq!(report.scheme, EccScheme::Hamming7164);
        assert!(report.channel_power_mw > 50.0 && report.channel_power_mw < 300.0);
    }

    #[test]
    fn real_time_traffic_is_faster_but_hungrier() {
        let bulk = Simulation::new(quick_config()).unwrap().run();
        let rt = Simulation::new(SimulationConfig {
            class: TrafficClass::RealTime,
            ..quick_config()
        })
        .unwrap()
        .run();
        assert_eq!(rt.scheme, EccScheme::Uncoded);
        assert!(rt.stats.mean_latency_ns() < bulk.stats.mean_latency_ns());
        assert!(rt.channel_power_mw > bulk.channel_power_mw);
        assert!(rt.stats.energy_per_bit_pj() > 0.0);
    }

    #[test]
    fn hotspot_congestion_increases_latency() {
        let uniform = Simulation::new(quick_config()).unwrap().run();
        let hotspot = Simulation::new(SimulationConfig {
            pattern: TrafficPattern::Hotspot { destination: 0, messages_per_node: 15 },
            ..quick_config()
        })
        .unwrap()
        .run();
        assert!(hotspot.stats.mean_latency_ns() > uniform.stats.mean_latency_ns());
    }

    #[test]
    fn deadlines_are_tracked() {
        let report = Simulation::new(SimulationConfig {
            class: TrafficClass::RealTime,
            pattern: TrafficPattern::Hotspot { destination: 1, messages_per_node: 30 },
            deadline_slack_ns: Some(10.0),
            mean_inter_arrival_ns: 0.5,
            ..quick_config()
        })
        .unwrap()
        .run();
        // A congested hotspot with tight deadlines must miss some of them.
        assert!(report.stats.deadline_misses > 0);
        assert!(report.stats.deadline_miss_rate() <= 1.0);
    }

    #[test]
    fn runs_are_reproducible() {
        let a = Simulation::new(quick_config()).unwrap().run();
        let b = Simulation::new(quick_config()).unwrap().run();
        assert_eq!(a, b);
    }

    #[test]
    fn residual_errors_are_rare_at_strict_ber() {
        let report = Simulation::new(quick_config()).unwrap().run();
        // At BER 1e-11 the expected number of corrupted words over this run
        // is far below one.
        assert_eq!(report.stats.corrupted_bits, 0);
        assert!((report.stats.observed_ber() - 0.0).abs() < 1e-12);
    }

    #[test]
    fn relaxed_ber_multimedia_run_still_delivers_everything() {
        let report = Simulation::new(SimulationConfig {
            class: TrafficClass::Multimedia,
            nominal_ber: 1e-6,
            ..quick_config()
        })
        .unwrap()
        .run();
        assert_eq!(report.stats.delivered_messages, report.stats.injected_messages);
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        assert!(matches!(
            Simulation::new(SimulationConfig { oni_count: 1, ..quick_config() }),
            Err(SimulationError::InvalidConfiguration { .. })
        ));
        assert!(matches!(
            Simulation::new(SimulationConfig { words_per_message: 0, ..quick_config() }),
            Err(SimulationError::InvalidConfiguration { .. })
        ));
        assert!(matches!(
            Simulation::new(SimulationConfig { nominal_ber: 0.7, ..quick_config() }),
            Err(SimulationError::InvalidConfiguration { .. })
        ));
    }

    #[test]
    fn infeasible_class_is_reported() {
        // Real-time traffic (CT = 1.0 → uncoded only) at an unreachable BER.
        let err = Simulation::new(SimulationConfig {
            class: TrafficClass::RealTime,
            nominal_ber: 1e-12,
            ..quick_config()
        })
        .unwrap_err();
        assert!(matches!(err, SimulationError::NoFeasibleConfiguration { .. }));
        assert!(err.to_string().contains("RealTime"));
    }

    #[test]
    fn energy_scales_with_channel_occupancy() {
        let report = Simulation::new(quick_config()).unwrap().run();
        let expected = report.channel_power_mw * report.stats.channel_busy_ns;
        assert!((report.stats.energy_pj - expected).abs() / expected < 1e-9);
    }
}
