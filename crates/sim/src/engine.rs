//! The legacy simulation entry point and the engine-shared primitives.
//!
//! The engine models one MWSR interconnect: every destination ONI owns a
//! channel guarded by a token arbiter; messages request the destination
//! channel, transmit for `codec latency + words × serialization time`
//! nanoseconds at the operating point chosen by the link manager, and are
//! delivered with stochastic residual errors derived from the operating
//! point's decoded BER.
//!
//! The run loops now live in [`crate::scenario`]; [`Simulation`] survives as
//! a thin deprecated shim over [`crate::ScenarioBuilder`], pinned
//! bit-identical by `tests/scenario_migration.rs`.  This module keeps the
//! shared primitives both engines use ([`SimulationError`], the event and
//! decision-parameter types) and the legacy configuration/report types.

// This is a legacy-shim module: it intentionally uses the deprecated entry
// points it provides.
#![allow(deprecated)]

use onoc_ecc_codes::EccScheme;
use onoc_link::{ManagerDecision, TrafficClass};
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::packet::MessageId;
use crate::scenario::{DecisionPolicy, ScenarioBuilder};
use crate::stats::SimStats;
use crate::thermal::{OniThermalReport, ThermalRunReport, ThermalScenario};
use crate::time::SimTime;
use crate::traffic::TrafficPattern;

use crate::scenario::Scenario;

/// Configuration of one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimulationConfig {
    /// Number of ONIs in the interconnect.
    pub oni_count: usize,
    /// Spatial/temporal traffic pattern.
    pub pattern: TrafficPattern,
    /// Traffic class of every message (drives the manager's scheme choice).
    pub class: TrafficClass,
    /// Number of 64-bit words per message.
    pub words_per_message: u64,
    /// Mean inter-arrival time at each source, in nanoseconds.
    pub mean_inter_arrival_ns: f64,
    /// Deadline slack granted to each message, in nanoseconds (`None` = no
    /// deadlines).
    pub deadline_slack_ns: Option<f64>,
    /// Nominal BER target the platform guarantees.
    pub nominal_ber: f64,
    /// RNG seed (traffic and error injection are fully reproducible).
    pub seed: u64,
    /// Thermal scenario the run plays back; `None` = the paper's fixed
    /// 25 °C ambient.  With a scenario, every message is configured at the
    /// temperature of its destination channel at injection time.
    pub thermal: Option<ThermalScenario>,
}

impl SimulationConfig {
    /// Checks the configuration's structural validity (shared by
    /// [`Simulation::new`] and the feedback engine).
    ///
    /// # Errors
    ///
    /// [`SimulationError::InvalidConfiguration`] for fewer than 2 ONIs,
    /// zero-sized messages, a BER outside (0, 0.5), a non-positive or
    /// non-finite mean inter-arrival time, or an invalid thermal scenario.
    pub fn validate(&self) -> Result<(), SimulationError> {
        if self.oni_count < 2 {
            return Err(SimulationError::InvalidConfiguration {
                reason: "at least two ONIs are required".into(),
            });
        }
        if self.words_per_message == 0 {
            return Err(SimulationError::InvalidConfiguration {
                reason: "messages must carry at least one word".into(),
            });
        }
        if !(self.nominal_ber > 0.0 && self.nominal_ber < 0.5) {
            return Err(SimulationError::InvalidConfiguration {
                reason: "nominal BER must be in (0, 0.5)".into(),
            });
        }
        if !(self.mean_inter_arrival_ns > 0.0 && self.mean_inter_arrival_ns.is_finite()) {
            return Err(SimulationError::InvalidConfiguration {
                reason: format!(
                    "mean inter-arrival time must be positive and finite, got {}",
                    self.mean_inter_arrival_ns
                ),
            });
        }
        if let Some(scenario) = &self.thermal {
            scenario
                .validate()
                .map_err(|reason| SimulationError::InvalidConfiguration { reason })?;
        }
        Ok(())
    }
}

impl Default for SimulationConfig {
    fn default() -> Self {
        Self {
            oni_count: 12,
            pattern: TrafficPattern::UniformRandom {
                messages_per_node: 10,
            },
            class: TrafficClass::Bulk,
            words_per_message: 16,
            mean_inter_arrival_ns: 5.0,
            deadline_slack_ns: None,
            nominal_ber: 1e-11,
            seed: 1,
            thermal: None,
        }
    }
}

/// Errors raised when setting up a simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SimulationError {
    /// The configuration is structurally invalid.
    InvalidConfiguration {
        /// Description of the problem.
        reason: String,
    },
    /// The link manager found no operating point for the requested class.
    NoFeasibleConfiguration {
        /// The class that could not be served.
        class: TrafficClass,
    },
}

impl std::fmt::Display for SimulationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::InvalidConfiguration { reason } => write!(f, "invalid configuration: {reason}"),
            Self::NoFeasibleConfiguration { class } => {
                write!(f, "no feasible link configuration for {class:?} traffic")
            }
        }
    }
}

impl std::error::Error for SimulationError {}

/// Outcome of one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimulationReport {
    /// The configuration that was simulated.
    pub config: SimulationConfig,
    /// The scheme the manager selected for this run's traffic class at the
    /// calibration ambient (the baseline; thermal scenarios may override it
    /// per destination).
    pub scheme: EccScheme,
    /// Per-waveguide channel power of the baseline operating point, in mW.
    pub channel_power_mw: f64,
    /// Decoded BER of the baseline operating point.
    pub decoded_ber: f64,
    /// Aggregate statistics.
    pub stats: SimStats,
    /// Per-ONI thermal decisions (present when a thermal scenario ran).
    pub thermal: Option<ThermalRunReport>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum EventKind {
    Inject,
    Complete,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Event {
    pub(crate) time: SimTime,
    pub(crate) sequence: u64,
    pub(crate) kind: EventKind,
    pub(crate) message: MessageId,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.sequence).cmp(&(other.time, other.sequence))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Pre-derived per-decision transmission parameters.
#[derive(Debug, Clone, Copy)]
pub(crate) struct DecisionParams {
    pub(crate) scheme: EccScheme,
    pub(crate) channel_power_mw: f64,
    /// Laser + ring-heater share of the channel power: burns over the whole
    /// wall-clock residency of the decision, idle or not.
    pub(crate) static_power_mw: f64,
    /// Modulation + codec share of the channel power: burns only while a
    /// word is in flight.
    pub(crate) dynamic_power_mw: f64,
    pub(crate) tuning_power_mw: f64,
    pub(crate) temperature_c: f64,
    pub(crate) decoded_ber: f64,
    word_duration: onoc_units::Nanoseconds,
    codec_latency: onoc_units::Nanoseconds,
    pub(crate) word_error_probability: f64,
    pub(crate) corrected_probability: f64,
}

impl DecisionParams {
    pub(crate) fn from_decision(decision: &ManagerDecision) -> Self {
        let point = decision.point;
        let decoded_ber = point.target_ber();
        let word_error_probability = 1.0 - (1.0 - decoded_ber).powi(64);
        let encoded_bits = point.scheme().encoded_bits_per_word(64) as i32;
        let corrected_probability = 1.0 - (1.0 - point.laser.raw_ber).powi(encoded_bits);
        let channel_power_mw = point.channel_power.value();
        // Split the channel power into its always-on share (laser + thermal
        // tuning) and its transfer-gated share (modulation + codec) using the
        // per-lane breakdown; both scale to the full lane count alike.
        let per_lane_total = point.power.per_wavelength_total().value();
        let per_lane_static = point.power.laser.value() + point.power.tuning.value();
        let static_fraction = if per_lane_total > 0.0 {
            per_lane_static / per_lane_total
        } else {
            0.0
        };
        let static_power_mw = channel_power_mw * static_fraction;
        Self {
            scheme: point.scheme(),
            channel_power_mw,
            static_power_mw,
            dynamic_power_mw: channel_power_mw - static_power_mw,
            tuning_power_mw: point.power.tuning.value(),
            temperature_c: point.temperature().value(),
            decoded_ber,
            word_duration: point.timing.serialization_time,
            codec_latency: point.timing.codec_latency,
            word_error_probability,
            corrected_probability,
        }
    }

    pub(crate) fn transfer_duration(&self, words: u64) -> onoc_units::Nanoseconds {
        onoc_units::Nanoseconds::new(
            self.codec_latency.value() + self.word_duration.value() * words as f64,
        )
    }

    /// The transmission parameters of an electrical fallback hop: a fixed
    /// router latency plus per-word serialization, with the transfer energy
    /// expressed as an average power over the hop duration (1 pJ/ns = 1 mW).
    /// Electrical hops carry their own line coding, so they are error-free
    /// by model and burn no photonic static power.
    pub(crate) fn electrical_hop(
        latency_ns: f64,
        ns_per_word: f64,
        energy_pj_per_bit: f64,
        words: u64,
    ) -> Self {
        let duration_ns = latency_ns + ns_per_word * words as f64;
        let bits = words as f64 * 64.0;
        let dynamic_power_mw = if duration_ns > 0.0 {
            energy_pj_per_bit * bits / duration_ns
        } else {
            0.0
        };
        Self {
            scheme: EccScheme::Uncoded,
            channel_power_mw: dynamic_power_mw,
            static_power_mw: 0.0,
            dynamic_power_mw,
            tuning_power_mw: 0.0,
            temperature_c: 0.0,
            decoded_ber: 0.0,
            word_duration: onoc_units::Nanoseconds::new(ns_per_word),
            codec_latency: onoc_units::Nanoseconds::new(latency_ns),
            word_error_probability: 0.0,
            corrected_probability: 0.0,
        }
    }
}

/// Samples how many payload bits of a corrupted 64-bit word are flipped:
/// the Binomial(`bits`, `ber`) law conditioned on at least one error (the
/// word-error event has already fired), drawn by inverse CDF.
pub(crate) fn conditional_corrupted_bits(rng: &mut StdRng, bits: u32, ber: f64) -> u64 {
    let p = ber.clamp(0.0, 1.0);
    if p <= 0.0 {
        return 1;
    }
    if p >= 1.0 {
        return u64::from(bits);
    }
    let q = 1.0 - p;
    let total = 1.0 - q.powi(bits as i32);
    if total <= 0.0 {
        return 1;
    }
    let mut k = 1u32;
    let mut pmf = f64::from(bits) * p * q.powi(bits as i32 - 1);
    let mut cdf = pmf;
    let u: f64 = rng.gen_range(0.0..1.0) * total;
    while u > cdf && k < bits {
        pmf *= f64::from(bits - k) / f64::from(k + 1) * (p / q);
        k += 1;
        cdf += pmf;
    }
    u64::from(k)
}

/// An event-driven simulation of the optical NoC (legacy entry point).
///
/// This is now a thin shim over [`ScenarioBuilder`]: the configuration is
/// translated into a [`Scenario`] with a prescribed thermal model and the
/// per-message decision policy, and the unified run report is mapped back
/// onto [`SimulationReport`].  Golden tests pin the two paths bit-identical.
#[deprecated(
    since = "0.1.0",
    note = "use onoc_sim::ScenarioBuilder (prescribed thermal model + per-message policy); \
            see the README migration table"
)]
#[derive(Debug)]
pub struct Simulation {
    scenario: Scenario,
    config: SimulationConfig,
}

impl Simulation {
    /// Prepares a simulation: generates the traffic and asks the link
    /// manager for the operating point of the configured traffic class.
    ///
    /// # Errors
    ///
    /// * [`SimulationError::InvalidConfiguration`] for structurally invalid
    ///   configurations (fewer than 2 ONIs, zero-sized messages, bad BER);
    /// * [`SimulationError::NoFeasibleConfiguration`] when the manager cannot
    ///   serve the requested class at the nominal BER.
    pub fn new(config: SimulationConfig) -> Result<Self, SimulationError> {
        config.validate()?;
        let mut builder = ScenarioBuilder::new()
            .oni_count(config.oni_count)
            .pattern(config.pattern)
            .class(config.class)
            .words_per_message(config.words_per_message)
            .mean_inter_arrival_ns(config.mean_inter_arrival_ns)
            .deadline_slack_ns(config.deadline_slack_ns)
            .nominal_ber(config.nominal_ber)
            .seed(config.seed);
        if let Some(scenario) = &config.thermal {
            builder = builder
                .prescribed(scenario.environment)
                .policy(DecisionPolicy::PerMessage {
                    quantization_k: scenario.quantization_k,
                });
        }
        Ok(Self {
            scenario: builder.build()?,
            config,
        })
    }

    /// The baseline operating point (calibration ambient) selected by the
    /// manager for this run's traffic class.
    #[must_use]
    pub fn decision(&self) -> &ManagerDecision {
        self.scenario.baseline_decision()
    }

    /// All distinct operating points in use (baseline first).
    #[must_use]
    pub fn decisions(&self) -> &[ManagerDecision] {
        self.scenario.decisions()
    }

    /// Number of messages that will be injected.
    #[must_use]
    pub fn message_count(&self) -> usize {
        self.scenario.message_count()
    }

    /// Runs the simulation to completion and returns the report.
    #[must_use]
    pub fn run(self) -> SimulationReport {
        let run = self.scenario.run();
        let thermal = self.config.thermal.as_ref().map(|_| ThermalRunReport {
            per_oni: run
                .active_onis()
                .map(|o| OniThermalReport {
                    oni: o.oni,
                    temperature_c: o.final_temperature_c,
                    scheme: o.scheme,
                    channel_power_mw: o.channel_power_mw,
                    tuning_power_mw_per_lane: o.tuning_power_mw_per_lane,
                })
                .collect(),
            reconfigured_messages: run.reconfigured_messages,
        });
        SimulationReport {
            scheme: run.baseline_scheme,
            channel_power_mw: run.baseline_channel_power_mw,
            decoded_ber: run.baseline_decoded_ber,
            stats: run.stats,
            thermal,
            config: self.config,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn quick_config() -> SimulationConfig {
        SimulationConfig {
            oni_count: 6,
            pattern: TrafficPattern::UniformRandom {
                messages_per_node: 15,
            },
            class: TrafficClass::Bulk,
            words_per_message: 8,
            mean_inter_arrival_ns: 2.0,
            deadline_slack_ns: None,
            nominal_ber: 1e-11,
            seed: 3,
            ..SimulationConfig::default()
        }
    }

    #[test]
    fn all_injected_messages_are_delivered() {
        let sim = Simulation::new(quick_config()).unwrap();
        let injected = sim.message_count() as u64;
        let report = sim.run();
        assert_eq!(report.stats.injected_messages, injected);
        assert_eq!(report.stats.delivered_messages, injected);
        assert_eq!(report.stats.delivered_bits, injected * 8 * 64);
        assert!(report.stats.makespan_ns > 0.0);
        assert!(report.stats.mean_latency_ns() > 0.0);
    }

    #[test]
    fn bulk_traffic_runs_on_h7164() {
        let report = Simulation::new(quick_config()).unwrap().run();
        assert_eq!(report.scheme, EccScheme::Hamming7164);
        assert!(report.channel_power_mw > 50.0 && report.channel_power_mw < 300.0);
    }

    #[test]
    fn real_time_traffic_is_faster_but_hungrier() {
        let bulk = Simulation::new(quick_config()).unwrap().run();
        let rt = Simulation::new(SimulationConfig {
            class: TrafficClass::RealTime,
            ..quick_config()
        })
        .unwrap()
        .run();
        assert_eq!(rt.scheme, EccScheme::Uncoded);
        assert!(rt.stats.mean_latency_ns() < bulk.stats.mean_latency_ns());
        assert!(rt.channel_power_mw > bulk.channel_power_mw);
        assert!(rt.stats.energy_per_bit_pj() > 0.0);
    }

    #[test]
    fn hotspot_congestion_increases_latency() {
        let uniform = Simulation::new(quick_config()).unwrap().run();
        let hotspot = Simulation::new(SimulationConfig {
            pattern: TrafficPattern::Hotspot {
                destination: 0,
                messages_per_node: 15,
            },
            ..quick_config()
        })
        .unwrap()
        .run();
        assert!(hotspot.stats.mean_latency_ns() > uniform.stats.mean_latency_ns());
    }

    #[test]
    fn deadlines_are_tracked() {
        let report = Simulation::new(SimulationConfig {
            class: TrafficClass::RealTime,
            pattern: TrafficPattern::Hotspot {
                destination: 1,
                messages_per_node: 30,
            },
            deadline_slack_ns: Some(10.0),
            mean_inter_arrival_ns: 0.5,
            ..quick_config()
        })
        .unwrap()
        .run();
        // A congested hotspot with tight deadlines must miss some of them.
        assert!(report.stats.deadline_misses > 0);
        assert!(report.stats.deadline_miss_rate() <= 1.0);
    }

    #[test]
    fn runs_are_reproducible() {
        let a = Simulation::new(quick_config()).unwrap().run();
        let b = Simulation::new(quick_config()).unwrap().run();
        assert_eq!(a, b);
    }

    #[test]
    fn residual_errors_are_rare_at_strict_ber() {
        let report = Simulation::new(quick_config()).unwrap().run();
        // At BER 1e-11 the expected number of corrupted words over this run
        // is far below one.
        assert_eq!(report.stats.corrupted_bits, 0);
        assert!((report.stats.observed_ber() - 0.0).abs() < 1e-12);
    }

    #[test]
    fn relaxed_ber_multimedia_run_still_delivers_everything() {
        let report = Simulation::new(SimulationConfig {
            class: TrafficClass::Multimedia,
            nominal_ber: 1e-6,
            ..quick_config()
        })
        .unwrap()
        .run();
        assert_eq!(
            report.stats.delivered_messages,
            report.stats.injected_messages
        );
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        assert!(matches!(
            Simulation::new(SimulationConfig {
                oni_count: 1,
                ..quick_config()
            }),
            Err(SimulationError::InvalidConfiguration { .. })
        ));
        assert!(matches!(
            Simulation::new(SimulationConfig {
                words_per_message: 0,
                ..quick_config()
            }),
            Err(SimulationError::InvalidConfiguration { .. })
        ));
        assert!(matches!(
            Simulation::new(SimulationConfig {
                nominal_ber: 0.7,
                ..quick_config()
            }),
            Err(SimulationError::InvalidConfiguration { .. })
        ));
        for bad_inter_arrival in [0.0, -3.0, f64::NAN, f64::INFINITY] {
            let err = Simulation::new(SimulationConfig {
                mean_inter_arrival_ns: bad_inter_arrival,
                ..quick_config()
            })
            .unwrap_err();
            assert!(
                matches!(err, SimulationError::InvalidConfiguration { .. }),
                "{bad_inter_arrival}"
            );
            assert!(err.to_string().contains("inter-arrival"));
        }
    }

    #[test]
    fn observed_ber_tracks_the_decoded_ber_at_a_relaxed_target() {
        // A deliberately loose BER target makes residual errors frequent
        // enough to measure: the sampled corrupted-bit count must land near
        // `decoded_ber × delivered_bits`, pinning both the per-word error
        // draw and the conditional bits-per-bad-word sampling.
        let report = Simulation::new(SimulationConfig {
            oni_count: 8,
            pattern: TrafficPattern::UniformRandom {
                messages_per_node: 60,
            },
            words_per_message: 32,
            nominal_ber: 1e-3,
            ..quick_config()
        })
        .unwrap()
        .run();
        let expected_ber = report.decoded_ber;
        assert!(expected_ber >= 1e-3, "decoded BER meets the nominal target");
        let observed = report.stats.observed_ber();
        assert!(
            observed > expected_ber * 0.7 && observed < expected_ber * 1.3,
            "observed {observed:e} vs decoded {expected_ber:e}"
        );
        // Bits are counted per corrupted word (≥ 1 each), so the bit count
        // can never undercut the word count.
        assert!(report.stats.corrupted_bits >= report.stats.corrupted_words);
        assert!(report.stats.corrupted_words > 0);
        let wer = report.stats.observed_word_error_rate();
        let expected_wer = 1.0 - (1.0 - expected_ber).powi(64);
        assert!(
            wer > expected_wer * 0.7 && wer < expected_wer * 1.3,
            "word error rate {wer} vs {expected_wer}"
        );
    }

    #[test]
    fn conditional_corrupted_bit_sampling_matches_the_conditional_mean() {
        let mut rng = StdRng::seed_from_u64(99);
        // At a tiny BER a corrupted word almost surely has exactly one bad bit.
        for _ in 0..50 {
            assert_eq!(conditional_corrupted_bits(&mut rng, 64, 1e-11), 1);
        }
        // At a large BER the conditional mean is 64p / (1 − (1−p)^64).
        let p = 0.05;
        let samples = 20_000;
        let total: u64 = (0..samples)
            .map(|_| conditional_corrupted_bits(&mut rng, 64, p))
            .sum();
        let mean = total as f64 / f64::from(samples);
        let expected = 64.0 * p / (1.0 - (1.0 - p).powi(64));
        assert!(
            (mean - expected).abs() < 0.1,
            "conditional mean {mean} vs {expected}"
        );
        // Degenerate inputs stay in range.
        assert_eq!(conditional_corrupted_bits(&mut rng, 64, 0.0), 1);
        assert_eq!(conditional_corrupted_bits(&mut rng, 64, 1.0), 64);
    }

    #[test]
    fn infeasible_class_is_reported() {
        // Real-time traffic (CT = 1.0 → uncoded only) at an unreachable BER.
        let err = Simulation::new(SimulationConfig {
            class: TrafficClass::RealTime,
            nominal_ber: 1e-12,
            ..quick_config()
        })
        .unwrap_err();
        assert!(matches!(
            err,
            SimulationError::NoFeasibleConfiguration { .. }
        ));
        assert!(err.to_string().contains("RealTime"));
    }

    #[test]
    fn energy_charges_static_power_over_wall_clock_and_dynamic_over_occupancy() {
        let config = quick_config();
        let sim = Simulation::new(config.clone()).unwrap();
        let point = sim.decision().point;
        let per_lane_static = point.power.laser.value() + point.power.tuning.value();
        let static_fraction = per_lane_static / point.power.per_wavelength_total().value();
        let static_mw = point.channel_power.value() * static_fraction;
        let dynamic_mw = point.channel_power.value() - static_mw;
        let report = sim.run();
        // Every one of the 6 destination channels holds the baseline decision
        // for the whole run, so its laser + heaters burn over the makespan;
        // modulation + codec power only burns while a word is in flight.
        let expected_static = static_mw * report.stats.makespan_ns * config.oni_count as f64;
        let expected = expected_static + dynamic_mw * report.stats.channel_busy_ns;
        assert!((report.stats.energy_pj - expected).abs() / expected < 1e-9);
        assert!((report.stats.static_energy_pj - expected_static).abs() / expected_static < 1e-9);
        // The old occupancy-only accounting understated the energy.
        let occupancy_only = report.channel_power_mw * report.stats.channel_busy_ns;
        assert!(report.stats.energy_pj > occupancy_only);
    }

    #[test]
    fn idle_channels_are_not_free_but_an_empty_run_is() {
        // Zero traffic: zero makespan, zero residency, zero energy.
        let empty = Simulation::new(SimulationConfig {
            pattern: TrafficPattern::UniformRandom {
                messages_per_node: 0,
            },
            ..quick_config()
        })
        .unwrap()
        .run();
        assert_eq!(empty.stats.makespan_ns, 0.0);
        assert_eq!(empty.stats.energy_pj, 0.0);
        // A single message still charges every idle channel's static power
        // over the (non-zero) makespan: energy per bit rises at low load.
        let sparse = Simulation::new(SimulationConfig {
            pattern: TrafficPattern::Streaming {
                source: 0,
                destination: 1,
                bursts: 1,
                burst_messages: 1,
            },
            ..quick_config()
        })
        .unwrap()
        .run();
        let busy = Simulation::new(quick_config()).unwrap().run();
        assert!(sparse.stats.energy_per_bit_pj() > busy.stats.energy_per_bit_pj());
    }

    fn thermal_config(environment: onoc_thermal::ThermalEnvironment) -> SimulationConfig {
        SimulationConfig {
            oni_count: 12,
            class: TrafficClass::LatencyFirst,
            pattern: TrafficPattern::UniformRandom {
                messages_per_node: 8,
            },
            thermal: Some(crate::thermal::ThermalScenario::new(environment)),
            ..quick_config()
        }
    }

    #[test]
    fn ambient_thermal_scenario_matches_the_baseline_run() {
        let plain = Simulation::new(SimulationConfig {
            oni_count: 12,
            class: TrafficClass::LatencyFirst,
            pattern: TrafficPattern::UniformRandom {
                messages_per_node: 8,
            },
            ..quick_config()
        })
        .unwrap()
        .run();
        let thermal = Simulation::new(thermal_config(
            onoc_thermal::ThermalEnvironment::paper_ambient(),
        ))
        .unwrap()
        .run();
        assert_eq!(plain.stats, thermal.stats);
        let summary = thermal.thermal.unwrap();
        assert_eq!(summary.reconfigured_messages, 0);
        assert!(summary
            .per_oni
            .iter()
            .all(|o| o.scheme == EccScheme::Uncoded));
    }

    #[test]
    fn hotspot_scenario_splits_the_interconnect_between_schemes() {
        let report = Simulation::new(thermal_config(onoc_thermal::ThermalEnvironment::Hotspot {
            base: onoc_units::Celsius::new(30.0),
            peak: onoc_units::Celsius::new(85.0),
            center: 0,
            decay_per_hop: 0.35,
        }))
        .unwrap()
        .run();
        assert_eq!(report.scheme, EccScheme::Uncoded, "baseline stays uncoded");
        let summary = report.thermal.unwrap();
        assert_eq!(summary.distinct_schemes(), 2);
        assert!(summary.reconfigured_messages > 0);
        let hot = summary.per_oni.iter().find(|o| o.oni == 0).unwrap();
        assert_eq!(hot.scheme, EccScheme::Hamming7164);
        assert!(hot.tuning_power_mw_per_lane > 0.0);
        let far = summary.per_oni.iter().find(|o| o.oni == 6).unwrap();
        assert_eq!(far.scheme, EccScheme::Uncoded);
        assert!(far.temperature_c < hot.temperature_c);
    }

    #[test]
    fn transient_heating_reconfigures_mid_run() {
        // A long uniform-random run under a fast heating transient: early
        // messages ride uncoded, late messages must switch to H(71,64).
        let report = Simulation::new(SimulationConfig {
            mean_inter_arrival_ns: 20.0,
            ..thermal_config(onoc_thermal::ThermalEnvironment::Transient {
                start: onoc_units::Celsius::new(25.0),
                target: onoc_units::Celsius::new(85.0),
                time_constant_ns: 200.0,
            })
        })
        .unwrap()
        .run();
        let summary = report.thermal.unwrap();
        assert!(summary.reconfigured_messages > 0);
        assert!(
            summary.reconfigured_messages < report.stats.delivered_messages,
            "some early messages should still ride the uncoded path"
        );
        // By the end of the run every channel sits hot and coded.
        assert!(summary
            .per_oni
            .iter()
            .all(|o| o.scheme == EccScheme::Hamming7164));
    }

    #[test]
    fn invalid_thermal_scenarios_are_rejected_at_construction() {
        let err = Simulation::new(thermal_config(onoc_thermal::ThermalEnvironment::Hotspot {
            base: onoc_units::Celsius::new(30.0),
            peak: onoc_units::Celsius::new(85.0),
            center: 0,
            decay_per_hop: 1.0,
        }))
        .unwrap_err();
        assert!(matches!(err, SimulationError::InvalidConfiguration { .. }));
        assert!(err.to_string().contains("decay"));

        let err = Simulation::new(thermal_config(
            onoc_thermal::ThermalEnvironment::Transient {
                start: onoc_units::Celsius::new(25.0),
                target: onoc_units::Celsius::new(85.0),
                time_constant_ns: 0.0,
            },
        ))
        .unwrap_err();
        assert!(err.to_string().contains("time constant"));

        let mut config = thermal_config(onoc_thermal::ThermalEnvironment::paper_ambient());
        config.thermal.as_mut().unwrap().quantization_k = 0.0;
        let err = Simulation::new(config).unwrap_err();
        assert!(err.to_string().contains("quantization"));
    }

    #[test]
    fn hot_uniform_scenario_for_realtime_is_infeasible() {
        let err = Simulation::new(SimulationConfig {
            class: TrafficClass::RealTime,
            ..thermal_config(onoc_thermal::ThermalEnvironment::Uniform {
                temperature: onoc_units::Celsius::new(85.0),
            })
        })
        .unwrap_err();
        assert!(matches!(
            err,
            SimulationError::NoFeasibleConfiguration { .. }
        ));
    }

    #[test]
    fn thermal_runs_are_reproducible() {
        let config = thermal_config(onoc_thermal::ThermalEnvironment::Hotspot {
            base: onoc_units::Celsius::new(30.0),
            peak: onoc_units::Celsius::new(85.0),
            center: 3,
            decay_per_hop: 0.5,
        });
        let a = Simulation::new(config.clone()).unwrap().run();
        let b = Simulation::new(config).unwrap().run();
        assert_eq!(a, b);
    }
}
