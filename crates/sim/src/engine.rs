//! The event-driven simulation engine.
//!
//! The engine models one MWSR interconnect: every destination ONI owns a
//! channel guarded by a [`TokenArbiter`]; messages request the destination
//! channel, transmit for `codec latency + words × serialization time`
//! nanoseconds at the operating point chosen by the link manager, and are
//! delivered with stochastic residual errors derived from the operating
//! point's decoded BER.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, HashMap};

use onoc_ecc_codes::EccScheme;
use onoc_link::{LinkManager, ManagerDecision, NanophotonicLink, TrafficClass};
use onoc_units::Celsius;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::arbiter::TokenArbiter;
use crate::packet::{Message, MessageId};
use crate::stats::SimStats;
use crate::thermal::{OniThermalReport, ThermalRunReport, ThermalScenario};
use crate::time::SimTime;
use crate::traffic::{TrafficGenerator, TrafficPattern};

/// Configuration of one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimulationConfig {
    /// Number of ONIs in the interconnect.
    pub oni_count: usize,
    /// Spatial/temporal traffic pattern.
    pub pattern: TrafficPattern,
    /// Traffic class of every message (drives the manager's scheme choice).
    pub class: TrafficClass,
    /// Number of 64-bit words per message.
    pub words_per_message: u64,
    /// Mean inter-arrival time at each source, in nanoseconds.
    pub mean_inter_arrival_ns: f64,
    /// Deadline slack granted to each message, in nanoseconds (`None` = no
    /// deadlines).
    pub deadline_slack_ns: Option<f64>,
    /// Nominal BER target the platform guarantees.
    pub nominal_ber: f64,
    /// RNG seed (traffic and error injection are fully reproducible).
    pub seed: u64,
    /// Thermal scenario the run plays back; `None` = the paper's fixed
    /// 25 °C ambient.  With a scenario, every message is configured at the
    /// temperature of its destination channel at injection time.
    pub thermal: Option<ThermalScenario>,
}

impl Default for SimulationConfig {
    fn default() -> Self {
        Self {
            oni_count: 12,
            pattern: TrafficPattern::UniformRandom {
                messages_per_node: 10,
            },
            class: TrafficClass::Bulk,
            words_per_message: 16,
            mean_inter_arrival_ns: 5.0,
            deadline_slack_ns: None,
            nominal_ber: 1e-11,
            seed: 1,
            thermal: None,
        }
    }
}

/// Errors raised when setting up a simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SimulationError {
    /// The configuration is structurally invalid.
    InvalidConfiguration {
        /// Description of the problem.
        reason: String,
    },
    /// The link manager found no operating point for the requested class.
    NoFeasibleConfiguration {
        /// The class that could not be served.
        class: TrafficClass,
    },
}

impl std::fmt::Display for SimulationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::InvalidConfiguration { reason } => write!(f, "invalid configuration: {reason}"),
            Self::NoFeasibleConfiguration { class } => {
                write!(f, "no feasible link configuration for {class:?} traffic")
            }
        }
    }
}

impl std::error::Error for SimulationError {}

/// Outcome of one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimulationReport {
    /// The configuration that was simulated.
    pub config: SimulationConfig,
    /// The scheme the manager selected for this run's traffic class at the
    /// calibration ambient (the baseline; thermal scenarios may override it
    /// per destination).
    pub scheme: EccScheme,
    /// Per-waveguide channel power of the baseline operating point, in mW.
    pub channel_power_mw: f64,
    /// Decoded BER of the baseline operating point.
    pub decoded_ber: f64,
    /// Aggregate statistics.
    pub stats: SimStats,
    /// Per-ONI thermal decisions (present when a thermal scenario ran).
    pub thermal: Option<ThermalRunReport>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EventKind {
    Inject,
    Complete,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Event {
    time: SimTime,
    sequence: u64,
    kind: EventKind,
    message: MessageId,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.sequence).cmp(&(other.time, other.sequence))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Pre-derived per-decision transmission parameters.
#[derive(Debug, Clone, Copy)]
struct DecisionParams {
    scheme: EccScheme,
    channel_power_mw: f64,
    tuning_power_mw: f64,
    temperature_c: f64,
    word_duration: onoc_units::Nanoseconds,
    codec_latency: onoc_units::Nanoseconds,
    word_error_probability: f64,
    corrected_probability: f64,
}

impl DecisionParams {
    fn from_decision(decision: &ManagerDecision) -> Self {
        let point = decision.point;
        let decoded_ber = point.target_ber();
        let word_error_probability = 1.0 - (1.0 - decoded_ber).powi(64);
        let encoded_bits = point.scheme().encoded_bits_per_word(64) as i32;
        let corrected_probability = 1.0 - (1.0 - point.laser.raw_ber).powi(encoded_bits);
        Self {
            scheme: point.scheme(),
            channel_power_mw: point.channel_power.value(),
            tuning_power_mw: point.power.tuning.value(),
            temperature_c: point.temperature().value(),
            word_duration: point.timing.serialization_time,
            codec_latency: point.timing.codec_latency,
            word_error_probability,
            corrected_probability,
        }
    }

    fn transfer_duration(&self, words: u64) -> onoc_units::Nanoseconds {
        onoc_units::Nanoseconds::new(
            self.codec_latency.value() + self.word_duration.value() * words as f64,
        )
    }
}

/// An event-driven simulation of the optical NoC.
#[derive(Debug)]
pub struct Simulation {
    config: SimulationConfig,
    /// Baseline decision at the calibration ambient (index 0 of `decisions`).
    decisions: Vec<ManagerDecision>,
    /// Decision index per message; messages not present use the baseline.
    assignment: HashMap<MessageId, usize>,
    messages: HashMap<MessageId, Message>,
    injection_order: Vec<MessageId>,
    rng: StdRng,
}

impl Simulation {
    /// Prepares a simulation: generates the traffic and asks the link
    /// manager for the operating point of the configured traffic class.
    ///
    /// # Errors
    ///
    /// * [`SimulationError::InvalidConfiguration`] for structurally invalid
    ///   configurations (fewer than 2 ONIs, zero-sized messages, bad BER);
    /// * [`SimulationError::NoFeasibleConfiguration`] when the manager cannot
    ///   serve the requested class at the nominal BER.
    pub fn new(config: SimulationConfig) -> Result<Self, SimulationError> {
        if config.oni_count < 2 {
            return Err(SimulationError::InvalidConfiguration {
                reason: "at least two ONIs are required".into(),
            });
        }
        if config.words_per_message == 0 {
            return Err(SimulationError::InvalidConfiguration {
                reason: "messages must carry at least one word".into(),
            });
        }
        if !(config.nominal_ber > 0.0 && config.nominal_ber < 0.5) {
            return Err(SimulationError::InvalidConfiguration {
                reason: "nominal BER must be in (0, 0.5)".into(),
            });
        }
        if let Some(scenario) = &config.thermal {
            scenario
                .validate()
                .map_err(|reason| SimulationError::InvalidConfiguration { reason })?;
        }
        let manager = LinkManager::new(
            NanophotonicLink::paper_link(),
            EccScheme::paper_schemes().to_vec(),
            config.nominal_ber,
        );
        let baseline =
            manager
                .configure(config.class)
                .ok_or(SimulationError::NoFeasibleConfiguration {
                    class: config.class,
                })?;

        let generated = TrafficGenerator::new(
            config.pattern,
            config.oni_count,
            config.words_per_message,
            config.class,
            config.mean_inter_arrival_ns,
            config.deadline_slack_ns,
            config.seed,
        )
        .generate();

        // With a thermal scenario, every message is configured at the
        // (quantized) temperature of its destination channel at injection
        // time; identical buckets share one operating point.
        let mut decisions = vec![baseline];
        let mut assignment: HashMap<MessageId, usize> = HashMap::new();
        if let Some(scenario) = config.thermal {
            // The decision depends only on the (quantized) temperature, so
            // the cache is keyed by bucket alone: a uniform environment
            // solves the link once, not once per destination.
            let mut cache: HashMap<i64, usize> = HashMap::new();
            for message in &generated {
                let temperature = scenario.environment.temperature_at(
                    message.destination,
                    config.oni_count,
                    message.injected_at.as_nanos(),
                );
                let bucket = scenario.bucket(temperature.value());
                let index = match cache.get(&bucket) {
                    Some(&index) => index,
                    None => {
                        let bucket_temperature = Celsius::new(scenario.bucket_temperature(bucket));
                        let decision = manager
                            .configure_at(config.class, bucket_temperature)
                            .ok_or(SimulationError::NoFeasibleConfiguration {
                                class: config.class,
                            })?;
                        decisions.push(decision);
                        cache.insert(bucket, decisions.len() - 1);
                        decisions.len() - 1
                    }
                };
                assignment.insert(message.id, index);
            }
        }

        let injection_order = generated.iter().map(|m| m.id).collect();
        let messages = generated.into_iter().map(|m| (m.id, m)).collect();

        Ok(Self {
            rng: StdRng::seed_from_u64(config.seed ^ 0xC0FF_EE00),
            config,
            decisions,
            assignment,
            messages,
            injection_order,
        })
    }

    /// The baseline operating point (calibration ambient) selected by the
    /// manager for this run's traffic class.
    #[must_use]
    pub fn decision(&self) -> &ManagerDecision {
        &self.decisions[0]
    }

    /// All distinct operating points in use (baseline first).
    #[must_use]
    pub fn decisions(&self) -> &[ManagerDecision] {
        &self.decisions
    }

    /// Number of messages that will be injected.
    #[must_use]
    pub fn message_count(&self) -> usize {
        self.messages.len()
    }

    /// Decision-parameter index of a message (baseline when unassigned).
    fn params_index(&self, id: MessageId) -> usize {
        self.assignment.get(&id).copied().unwrap_or(0)
    }

    /// Runs the simulation to completion and returns the report.
    #[must_use]
    pub fn run(mut self) -> SimulationReport {
        let params: Vec<DecisionParams> = self
            .decisions
            .iter()
            .map(DecisionParams::from_decision)
            .collect();
        let baseline = params[0];

        let mut stats = SimStats {
            injected_messages: self.messages.len() as u64,
            ..SimStats::default()
        };
        let mut arbiters: HashMap<usize, TokenArbiter> = HashMap::new();
        let mut queue: BinaryHeap<Reverse<Event>> = BinaryHeap::new();
        let mut sequence = 0u64;

        for &id in &self.injection_order {
            let message = self.messages[&id];
            queue.push(Reverse(Event {
                time: message.injected_at,
                sequence,
                kind: EventKind::Inject,
                message: id,
            }));
            sequence += 1;
        }

        let mut busy: HashMap<usize, bool> = HashMap::new();
        let mut makespan = SimTime::ZERO;
        // Thermal bookkeeping: last decision per destination, and how many
        // messages ran on a non-baseline scheme.
        let mut last_per_oni: BTreeMap<usize, usize> = BTreeMap::new();
        let mut reconfigured_messages = 0u64;

        while let Some(Reverse(event)) = queue.pop() {
            makespan = makespan.max_time(event.time);
            let message = self.messages[&event.message];
            let point = params[self.params_index(event.message)];
            match event.kind {
                EventKind::Inject => {
                    let arbiter = arbiters.entry(message.destination).or_default();
                    arbiter.request(message.source, message.id);
                    Self::try_start(
                        message.destination,
                        event.time,
                        &mut arbiters,
                        &mut busy,
                        &mut queue,
                        &mut sequence,
                        &self.messages,
                        &params,
                        &self.assignment,
                    );
                }
                EventKind::Complete => {
                    let duration_ns = point.transfer_duration(message.words).value();
                    stats.delivered_messages += 1;
                    stats.delivered_bits += message.payload_bits();
                    stats.channel_busy_ns += duration_ns;
                    stats.energy_pj += point.channel_power_mw * duration_ns;
                    let latency = event.time.since(message.injected_at).value();
                    stats.total_latency_ns += latency;
                    stats.max_latency_ns = stats.max_latency_ns.max(latency);
                    if message.misses_deadline(event.time) {
                        stats.deadline_misses += 1;
                    }
                    for _ in 0..message.words {
                        if self
                            .rng
                            .gen_bool(point.word_error_probability.clamp(0.0, 1.0))
                        {
                            stats.corrupted_bits += 1;
                        }
                        if self
                            .rng
                            .gen_bool(point.corrected_probability.clamp(0.0, 1.0))
                        {
                            stats.corrected_words += 1;
                        }
                    }
                    last_per_oni.insert(message.destination, self.params_index(event.message));
                    if point.scheme != baseline.scheme {
                        reconfigured_messages += 1;
                    }
                    let arbiter = arbiters
                        .get_mut(&message.destination)
                        .expect("completion implies a prior grant");
                    arbiter.release(message.id);
                    busy.insert(message.destination, false);
                    Self::try_start(
                        message.destination,
                        event.time,
                        &mut arbiters,
                        &mut busy,
                        &mut queue,
                        &mut sequence,
                        &self.messages,
                        &params,
                        &self.assignment,
                    );
                }
            }
        }

        stats.makespan_ns = makespan.as_nanos();
        let thermal = self.config.thermal.map(|_| ThermalRunReport {
            per_oni: last_per_oni
                .iter()
                .map(|(&oni, &index)| {
                    let p = params[index];
                    OniThermalReport {
                        oni,
                        temperature_c: p.temperature_c,
                        scheme: p.scheme,
                        channel_power_mw: p.channel_power_mw,
                        tuning_power_mw_per_lane: p.tuning_power_mw,
                    }
                })
                .collect(),
            reconfigured_messages,
        });
        SimulationReport {
            config: self.config,
            scheme: baseline.scheme,
            channel_power_mw: baseline.channel_power_mw,
            decoded_ber: self.decisions[0].point.target_ber(),
            stats,
            thermal,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn try_start(
        destination: usize,
        now: SimTime,
        arbiters: &mut HashMap<usize, TokenArbiter>,
        busy: &mut HashMap<usize, bool>,
        queue: &mut BinaryHeap<Reverse<Event>>,
        sequence: &mut u64,
        messages: &HashMap<MessageId, Message>,
        params: &[DecisionParams],
        assignment: &HashMap<MessageId, usize>,
    ) {
        if *busy.get(&destination).unwrap_or(&false) {
            return;
        }
        let arbiter = arbiters.entry(destination).or_default();
        if let Some((_, id)) = arbiter.grant() {
            let message = messages[&id];
            let point = params[assignment.get(&id).copied().unwrap_or(0)];
            let duration = point.transfer_duration(message.words);
            busy.insert(destination, true);
            queue.push(Reverse(Event {
                time: now.advanced_by(duration),
                sequence: *sequence,
                kind: EventKind::Complete,
                message: id,
            }));
            *sequence += 1;
        }
    }
}

impl SimTime {
    /// Maximum of two timestamps (small helper local to the engine).
    #[must_use]
    fn max_time(self, other: Self) -> Self {
        if self >= other {
            self
        } else {
            other
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> SimulationConfig {
        SimulationConfig {
            oni_count: 6,
            pattern: TrafficPattern::UniformRandom {
                messages_per_node: 15,
            },
            class: TrafficClass::Bulk,
            words_per_message: 8,
            mean_inter_arrival_ns: 2.0,
            deadline_slack_ns: None,
            nominal_ber: 1e-11,
            seed: 3,
            ..SimulationConfig::default()
        }
    }

    #[test]
    fn all_injected_messages_are_delivered() {
        let sim = Simulation::new(quick_config()).unwrap();
        let injected = sim.message_count() as u64;
        let report = sim.run();
        assert_eq!(report.stats.injected_messages, injected);
        assert_eq!(report.stats.delivered_messages, injected);
        assert_eq!(report.stats.delivered_bits, injected * 8 * 64);
        assert!(report.stats.makespan_ns > 0.0);
        assert!(report.stats.mean_latency_ns() > 0.0);
    }

    #[test]
    fn bulk_traffic_runs_on_h7164() {
        let report = Simulation::new(quick_config()).unwrap().run();
        assert_eq!(report.scheme, EccScheme::Hamming7164);
        assert!(report.channel_power_mw > 50.0 && report.channel_power_mw < 300.0);
    }

    #[test]
    fn real_time_traffic_is_faster_but_hungrier() {
        let bulk = Simulation::new(quick_config()).unwrap().run();
        let rt = Simulation::new(SimulationConfig {
            class: TrafficClass::RealTime,
            ..quick_config()
        })
        .unwrap()
        .run();
        assert_eq!(rt.scheme, EccScheme::Uncoded);
        assert!(rt.stats.mean_latency_ns() < bulk.stats.mean_latency_ns());
        assert!(rt.channel_power_mw > bulk.channel_power_mw);
        assert!(rt.stats.energy_per_bit_pj() > 0.0);
    }

    #[test]
    fn hotspot_congestion_increases_latency() {
        let uniform = Simulation::new(quick_config()).unwrap().run();
        let hotspot = Simulation::new(SimulationConfig {
            pattern: TrafficPattern::Hotspot {
                destination: 0,
                messages_per_node: 15,
            },
            ..quick_config()
        })
        .unwrap()
        .run();
        assert!(hotspot.stats.mean_latency_ns() > uniform.stats.mean_latency_ns());
    }

    #[test]
    fn deadlines_are_tracked() {
        let report = Simulation::new(SimulationConfig {
            class: TrafficClass::RealTime,
            pattern: TrafficPattern::Hotspot {
                destination: 1,
                messages_per_node: 30,
            },
            deadline_slack_ns: Some(10.0),
            mean_inter_arrival_ns: 0.5,
            ..quick_config()
        })
        .unwrap()
        .run();
        // A congested hotspot with tight deadlines must miss some of them.
        assert!(report.stats.deadline_misses > 0);
        assert!(report.stats.deadline_miss_rate() <= 1.0);
    }

    #[test]
    fn runs_are_reproducible() {
        let a = Simulation::new(quick_config()).unwrap().run();
        let b = Simulation::new(quick_config()).unwrap().run();
        assert_eq!(a, b);
    }

    #[test]
    fn residual_errors_are_rare_at_strict_ber() {
        let report = Simulation::new(quick_config()).unwrap().run();
        // At BER 1e-11 the expected number of corrupted words over this run
        // is far below one.
        assert_eq!(report.stats.corrupted_bits, 0);
        assert!((report.stats.observed_ber() - 0.0).abs() < 1e-12);
    }

    #[test]
    fn relaxed_ber_multimedia_run_still_delivers_everything() {
        let report = Simulation::new(SimulationConfig {
            class: TrafficClass::Multimedia,
            nominal_ber: 1e-6,
            ..quick_config()
        })
        .unwrap()
        .run();
        assert_eq!(
            report.stats.delivered_messages,
            report.stats.injected_messages
        );
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        assert!(matches!(
            Simulation::new(SimulationConfig {
                oni_count: 1,
                ..quick_config()
            }),
            Err(SimulationError::InvalidConfiguration { .. })
        ));
        assert!(matches!(
            Simulation::new(SimulationConfig {
                words_per_message: 0,
                ..quick_config()
            }),
            Err(SimulationError::InvalidConfiguration { .. })
        ));
        assert!(matches!(
            Simulation::new(SimulationConfig {
                nominal_ber: 0.7,
                ..quick_config()
            }),
            Err(SimulationError::InvalidConfiguration { .. })
        ));
    }

    #[test]
    fn infeasible_class_is_reported() {
        // Real-time traffic (CT = 1.0 → uncoded only) at an unreachable BER.
        let err = Simulation::new(SimulationConfig {
            class: TrafficClass::RealTime,
            nominal_ber: 1e-12,
            ..quick_config()
        })
        .unwrap_err();
        assert!(matches!(
            err,
            SimulationError::NoFeasibleConfiguration { .. }
        ));
        assert!(err.to_string().contains("RealTime"));
    }

    #[test]
    fn energy_scales_with_channel_occupancy() {
        let report = Simulation::new(quick_config()).unwrap().run();
        let expected = report.channel_power_mw * report.stats.channel_busy_ns;
        assert!((report.stats.energy_pj - expected).abs() / expected < 1e-9);
    }

    fn thermal_config(environment: onoc_thermal::ThermalEnvironment) -> SimulationConfig {
        SimulationConfig {
            oni_count: 12,
            class: TrafficClass::LatencyFirst,
            pattern: TrafficPattern::UniformRandom {
                messages_per_node: 8,
            },
            thermal: Some(crate::thermal::ThermalScenario::new(environment)),
            ..quick_config()
        }
    }

    #[test]
    fn ambient_thermal_scenario_matches_the_baseline_run() {
        let plain = Simulation::new(SimulationConfig {
            oni_count: 12,
            class: TrafficClass::LatencyFirst,
            pattern: TrafficPattern::UniformRandom {
                messages_per_node: 8,
            },
            ..quick_config()
        })
        .unwrap()
        .run();
        let thermal = Simulation::new(thermal_config(
            onoc_thermal::ThermalEnvironment::paper_ambient(),
        ))
        .unwrap()
        .run();
        assert_eq!(plain.stats, thermal.stats);
        let summary = thermal.thermal.unwrap();
        assert_eq!(summary.reconfigured_messages, 0);
        assert!(summary
            .per_oni
            .iter()
            .all(|o| o.scheme == EccScheme::Uncoded));
    }

    #[test]
    fn hotspot_scenario_splits_the_interconnect_between_schemes() {
        let report = Simulation::new(thermal_config(onoc_thermal::ThermalEnvironment::Hotspot {
            base: onoc_units::Celsius::new(30.0),
            peak: onoc_units::Celsius::new(85.0),
            center: 0,
            decay_per_hop: 0.35,
        }))
        .unwrap()
        .run();
        assert_eq!(report.scheme, EccScheme::Uncoded, "baseline stays uncoded");
        let summary = report.thermal.unwrap();
        assert_eq!(summary.distinct_schemes(), 2);
        assert!(summary.reconfigured_messages > 0);
        let hot = summary.per_oni.iter().find(|o| o.oni == 0).unwrap();
        assert_eq!(hot.scheme, EccScheme::Hamming7164);
        assert!(hot.tuning_power_mw_per_lane > 0.0);
        let far = summary.per_oni.iter().find(|o| o.oni == 6).unwrap();
        assert_eq!(far.scheme, EccScheme::Uncoded);
        assert!(far.temperature_c < hot.temperature_c);
    }

    #[test]
    fn transient_heating_reconfigures_mid_run() {
        // A long uniform-random run under a fast heating transient: early
        // messages ride uncoded, late messages must switch to H(71,64).
        let report = Simulation::new(SimulationConfig {
            mean_inter_arrival_ns: 20.0,
            ..thermal_config(onoc_thermal::ThermalEnvironment::Transient {
                start: onoc_units::Celsius::new(25.0),
                target: onoc_units::Celsius::new(85.0),
                time_constant_ns: 200.0,
            })
        })
        .unwrap()
        .run();
        let summary = report.thermal.unwrap();
        assert!(summary.reconfigured_messages > 0);
        assert!(
            summary.reconfigured_messages < report.stats.delivered_messages,
            "some early messages should still ride the uncoded path"
        );
        // By the end of the run every channel sits hot and coded.
        assert!(summary
            .per_oni
            .iter()
            .all(|o| o.scheme == EccScheme::Hamming7164));
    }

    #[test]
    fn invalid_thermal_scenarios_are_rejected_at_construction() {
        let err = Simulation::new(thermal_config(onoc_thermal::ThermalEnvironment::Hotspot {
            base: onoc_units::Celsius::new(30.0),
            peak: onoc_units::Celsius::new(85.0),
            center: 0,
            decay_per_hop: 1.0,
        }))
        .unwrap_err();
        assert!(matches!(err, SimulationError::InvalidConfiguration { .. }));
        assert!(err.to_string().contains("decay"));

        let err = Simulation::new(thermal_config(
            onoc_thermal::ThermalEnvironment::Transient {
                start: onoc_units::Celsius::new(25.0),
                target: onoc_units::Celsius::new(85.0),
                time_constant_ns: 0.0,
            },
        ))
        .unwrap_err();
        assert!(err.to_string().contains("time constant"));

        let mut config = thermal_config(onoc_thermal::ThermalEnvironment::paper_ambient());
        config.thermal.as_mut().unwrap().quantization_k = 0.0;
        let err = Simulation::new(config).unwrap_err();
        assert!(err.to_string().contains("quantization"));
    }

    #[test]
    fn hot_uniform_scenario_for_realtime_is_infeasible() {
        let err = Simulation::new(SimulationConfig {
            class: TrafficClass::RealTime,
            ..thermal_config(onoc_thermal::ThermalEnvironment::Uniform {
                temperature: onoc_units::Celsius::new(85.0),
            })
        })
        .unwrap_err();
        assert!(matches!(
            err,
            SimulationError::NoFeasibleConfiguration { .. }
        ));
    }

    #[test]
    fn thermal_runs_are_reproducible() {
        let config = thermal_config(onoc_thermal::ThermalEnvironment::Hotspot {
            base: onoc_units::Celsius::new(30.0),
            peak: onoc_units::Celsius::new(85.0),
            center: 3,
            decay_per_hop: 0.5,
        });
        let a = Simulation::new(config.clone()).unwrap().run();
        let b = Simulation::new(config).unwrap().run();
        assert_eq!(a, b);
    }
}
