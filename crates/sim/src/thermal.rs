//! Legacy thermal scenario playback for the NoC simulator.
//!
//! A [`ThermalScenario`] attaches a [`ThermalEnvironment`] to a simulation
//! run: before a message is injected, the engine samples the temperature of
//! its *destination* channel (the MWSR channel it will be delivered on) at
//! the injection instant and asks the thermally-aware link manager for the
//! operating point at that temperature.  Decisions are cached on a
//! configurable temperature quantization so that static scenarios resolve
//! each ONI exactly once and transient traces do not re-solve the link for
//! every microkelvin of drift.
//!
//! The type is deprecated: the unified surface expresses the same run as a
//! prescribed [`onoc_thermal::ThermalModelSpec`] plus the per-message
//! [`crate::DecisionPolicy`] on [`crate::ScenarioBuilder`].  The shared
//! bucket-grid helpers live here so the legacy and unified decision grids
//! can never diverge.

// This is a legacy-shim module: it intentionally defines and uses the
// deprecated scenario type it provides.
#![allow(deprecated)]

use onoc_thermal::ThermalEnvironment;
use serde::{Deserialize, Serialize};

/// Bucket index of `temperature_c` on a grid of `step_k`-kelvin buckets
/// centred on multiples of the step (shared by [`ThermalScenario`] and the
/// feedback engine so their decision grids can never diverge).
pub(crate) fn bucket_index(temperature_c: f64, step_k: f64) -> i64 {
    #[allow(clippy::cast_possible_truncation)]
    let bucket = (temperature_c / step_k).round() as i64;
    bucket
}

/// Centre temperature of `bucket` on the same grid.
pub(crate) fn bucket_centre(bucket: i64, step_k: f64) -> f64 {
    bucket as f64 * step_k
}

/// A thermal environment plus the sampling granularity the engine uses.
#[deprecated(
    since = "0.1.0",
    note = "use onoc_sim::ScenarioBuilder::prescribed with DecisionPolicy::PerMessage; \
            see the README migration table"
)]
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThermalScenario {
    /// The temperature field over the ONIs.
    pub environment: ThermalEnvironment,
    /// Temperature quantization step for decision caching, in kelvin.
    /// Temperatures within the same step share one operating point.
    pub quantization_k: f64,
}

impl ThermalScenario {
    /// Wraps `environment` with the default 0.5 K decision quantization.
    #[must_use]
    pub fn new(environment: ThermalEnvironment) -> Self {
        Self {
            environment,
            quantization_k: 0.5,
        }
    }

    /// The paper's fixed 25 °C ambient (useful as an explicit no-op).
    #[must_use]
    pub fn paper_ambient() -> Self {
        Self::new(ThermalEnvironment::paper_ambient())
    }

    /// Checks the scenario's parameters (quantization step and environment).
    ///
    /// # Errors
    ///
    /// Returns a human-readable reason when the quantization step is not
    /// positive and finite or the environment parameters are invalid.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.quantization_k > 0.0 && self.quantization_k.is_finite()) {
            return Err(format!(
                "thermal quantization step must be positive and finite, got {}",
                self.quantization_k
            ));
        }
        self.environment.validate()
    }

    /// Quantized temperature bucket for decision caching.
    ///
    /// # Panics
    ///
    /// Panics if the quantization step is not positive.
    #[must_use]
    pub fn bucket(&self, temperature_c: f64) -> i64 {
        assert!(
            self.quantization_k > 0.0,
            "quantization step must be positive"
        );
        bucket_index(temperature_c, self.quantization_k)
    }

    /// Representative temperature of a cache `bucket`.
    #[must_use]
    pub fn bucket_temperature(&self, bucket: i64) -> f64 {
        bucket_centre(bucket, self.quantization_k)
    }
}

impl Default for ThermalScenario {
    fn default() -> Self {
        Self::paper_ambient()
    }
}

/// Per-destination summary of what the thermal manager did during a run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OniThermalReport {
    /// Destination ONI index.
    pub oni: usize,
    /// Temperature of that ONI's channel at the *last* decision taken for
    /// it, in °C.
    pub temperature_c: f64,
    /// Scheme selected for that channel at that temperature.
    pub scheme: onoc_ecc_codes::EccScheme,
    /// Channel power of the selected operating point, in mW.
    pub channel_power_mw: f64,
    /// Thermal-tuning share of the per-lane power, in mW.
    pub tuning_power_mw_per_lane: f64,
}

/// Run-level thermal summary attached to the simulation report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThermalRunReport {
    /// One entry per destination ONI that received traffic, sorted by index.
    pub per_oni: Vec<OniThermalReport>,
    /// Number of times the selected scheme for some destination differed
    /// from the ambient-temperature baseline scheme.
    pub reconfigured_messages: u64,
}

impl ThermalRunReport {
    /// Number of distinct schemes in use across the interconnect.
    #[must_use]
    pub fn distinct_schemes(&self) -> usize {
        self.per_oni
            .iter()
            .map(|o| o.scheme)
            .collect::<std::collections::BTreeSet<_>>()
            .len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use onoc_units::Celsius;

    #[test]
    fn buckets_quantize_and_round_trip() {
        let scenario = ThermalScenario::new(ThermalEnvironment::Uniform {
            temperature: Celsius::new(55.0),
        });
        assert_eq!(scenario.bucket(55.0), 110);
        assert_eq!(scenario.bucket(55.2), 110);
        assert_eq!(scenario.bucket(55.3), 111);
        assert!((scenario.bucket_temperature(110) - 55.0).abs() < 1e-12);
    }

    #[test]
    fn default_scenario_is_the_paper_ambient() {
        let scenario = ThermalScenario::default();
        assert!((scenario.environment.temperature_at(0, 12, 0.0).value() - 25.0).abs() < 1e-12);
    }

    #[test]
    fn distinct_schemes_deduplicates() {
        let report = ThermalRunReport {
            per_oni: vec![
                OniThermalReport {
                    oni: 0,
                    temperature_c: 85.0,
                    scheme: onoc_ecc_codes::EccScheme::Hamming7164,
                    channel_power_mw: 200.0,
                    tuning_power_mw_per_lane: 8.0,
                },
                OniThermalReport {
                    oni: 1,
                    temperature_c: 30.0,
                    scheme: onoc_ecc_codes::EccScheme::Uncoded,
                    channel_power_mw: 250.0,
                    tuning_power_mw_per_lane: 0.5,
                },
                OniThermalReport {
                    oni: 2,
                    temperature_c: 30.0,
                    scheme: onoc_ecc_codes::EccScheme::Uncoded,
                    channel_power_mw: 250.0,
                    tuning_power_mw_per_lane: 0.5,
                },
            ],
            reconfigured_messages: 3,
        };
        assert_eq!(report.distinct_schemes(), 2);
    }
}
