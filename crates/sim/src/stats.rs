//! Run statistics collected by the simulator.

use serde::{Deserialize, Serialize};

/// Aggregate statistics of one simulation run.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SimStats {
    /// Messages injected by the traffic generator.
    pub injected_messages: u64,
    /// Messages delivered to their destination.
    pub delivered_messages: u64,
    /// Link hops traversed by delivered traffic.  Equals
    /// [`SimStats::delivered_messages`] on a single-hop fabric (the default
    /// all-to-all ring); multi-hop topologies count every photonic or
    /// electrical hop a message completes.
    pub hops_traversed: u64,
    /// Payload bits delivered.
    pub delivered_bits: u64,
    /// Payload bits that arrived flipped after decoding.  Every corrupted
    /// word contributes at least one bit, with the count sampled from the
    /// conditional (given ≥ 1 error) bit-error distribution of the
    /// operating point's decoded BER.
    pub corrupted_bits: u64,
    /// Words delivered with at least one residual (post-decoding) error.
    pub corrupted_words: u64,
    /// Words in which the decoder corrected at least one channel error.
    pub corrected_words: u64,
    /// Messages that missed their deadline.
    pub deadline_misses: u64,
    /// Sum of message latencies in nanoseconds (injection → delivery).
    pub total_latency_ns: f64,
    /// Worst observed message latency in nanoseconds.
    pub max_latency_ns: f64,
    /// Sum of per-message channel occupancy in nanoseconds.
    pub channel_busy_ns: f64,
    /// Total electrical energy in picojoules: static (laser + ring heater)
    /// power over each channel's wall-clock decision residency, plus dynamic
    /// (modulation + codec) power over the transfer occupancy.
    pub energy_pj: f64,
    /// The static share of [`SimStats::energy_pj`]: laser and thermal-tuning
    /// power burned over wall-clock time, whether or not a word is in
    /// flight.
    pub static_energy_pj: f64,
    /// End of the simulation in nanoseconds.
    pub makespan_ns: f64,
}

impl SimStats {
    /// Mean message latency in nanoseconds.
    #[must_use]
    pub fn mean_latency_ns(&self) -> f64 {
        if self.delivered_messages == 0 {
            0.0
        } else {
            self.total_latency_ns / self.delivered_messages as f64
        }
    }

    /// Delivered payload throughput in Gb/s over the makespan.
    #[must_use]
    pub fn throughput_gbps(&self) -> f64 {
        if self.makespan_ns <= 0.0 {
            0.0
        } else {
            self.delivered_bits as f64 / self.makespan_ns
        }
    }

    /// Observed residual bit-error rate.
    #[must_use]
    pub fn observed_ber(&self) -> f64 {
        if self.delivered_bits == 0 {
            0.0
        } else {
            self.corrupted_bits as f64 / self.delivered_bits as f64
        }
    }

    /// Observed residual word-error rate.
    #[must_use]
    pub fn observed_word_error_rate(&self) -> f64 {
        let words = self.delivered_bits / 64;
        if words == 0 {
            0.0
        } else {
            self.corrupted_words as f64 / words as f64
        }
    }

    /// Energy per delivered payload bit, in pJ/bit.
    #[must_use]
    pub fn energy_per_bit_pj(&self) -> f64 {
        if self.delivered_bits == 0 {
            0.0
        } else {
            self.energy_pj / self.delivered_bits as f64
        }
    }

    /// Fraction of delivered messages that missed their deadline.
    #[must_use]
    pub fn deadline_miss_rate(&self) -> f64 {
        if self.delivered_messages == 0 {
            0.0
        } else {
            self.deadline_misses as f64 / self.delivered_messages as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> SimStats {
        SimStats {
            injected_messages: 10,
            delivered_messages: 10,
            hops_traversed: 10,
            delivered_bits: 10_240,
            corrupted_bits: 3,
            corrupted_words: 2,
            corrected_words: 5,
            deadline_misses: 1,
            total_latency_ns: 500.0,
            max_latency_ns: 120.0,
            channel_busy_ns: 400.0,
            energy_pj: 40_000.0,
            static_energy_pj: 30_000.0,
            makespan_ns: 1000.0,
        }
    }

    #[test]
    fn derived_metrics() {
        let s = stats();
        assert!((s.mean_latency_ns() - 50.0).abs() < 1e-12);
        assert!((s.throughput_gbps() - 10.24).abs() < 1e-9);
        assert!((s.observed_ber() - 3.0 / 10_240.0).abs() < 1e-12);
        assert!((s.observed_word_error_rate() - 2.0 / 160.0).abs() < 1e-12);
        assert!((s.energy_per_bit_pj() - 3.90625).abs() < 1e-9);
        assert!((s.deadline_miss_rate() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn empty_run_yields_zeroes() {
        let s = SimStats::default();
        assert_eq!(s.mean_latency_ns(), 0.0);
        assert_eq!(s.throughput_gbps(), 0.0);
        assert_eq!(s.observed_ber(), 0.0);
        assert_eq!(s.observed_word_error_rate(), 0.0);
        assert_eq!(s.energy_per_bit_pj(), 0.0);
        assert_eq!(s.deadline_miss_rate(), 0.0);
    }
}
