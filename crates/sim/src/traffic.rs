//! Synthetic traffic generation.
//!
//! The paper motivates the trade-off with "real-time applications" that have
//! execution deadlines and "power hungry multimedia-like applications" that
//! can trade BER and latency for energy.  The generators here produce the
//! corresponding message mixes on standard NoC spatial patterns (uniform
//! random, hotspot, transpose, nearest neighbour) plus a bursty streaming
//! pattern.

use onoc_link::TrafficClass;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::packet::{Message, MessageId};
use crate::time::SimTime;

/// Spatial/temporal traffic patterns supported by the generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TrafficPattern {
    /// Every node sends `messages_per_node` messages to uniformly random
    /// destinations.
    UniformRandom {
        /// Messages injected by each node.
        messages_per_node: u64,
    },
    /// Every node sends to a single hotspot destination.
    Hotspot {
        /// The hotspot node.
        destination: usize,
        /// Messages injected by each other node.
        messages_per_node: u64,
    },
    /// Node `i` sends to node `(i + count/2) mod count` (a transpose-like
    /// permutation that exercises every channel equally).
    Transpose {
        /// Messages injected by each node.
        messages_per_node: u64,
    },
    /// Node `i` sends to its ring neighbour `i + 1`.
    NearestNeighbor {
        /// Messages injected by each node.
        messages_per_node: u64,
    },
    /// A bursty producer/consumer stream from one node to another
    /// (multimedia-like): `bursts` bursts of `burst_messages` messages.
    Streaming {
        /// Producer node.
        source: usize,
        /// Consumer node.
        destination: usize,
        /// Number of bursts.
        bursts: u64,
        /// Messages per burst.
        burst_messages: u64,
    },
}

/// Generates the message list for a simulation run.
#[derive(Debug, Clone)]
pub struct TrafficGenerator {
    pattern: TrafficPattern,
    oni_count: usize,
    words_per_message: u64,
    class: TrafficClass,
    mean_inter_arrival: f64,
    deadline_slack: Option<f64>,
    rng: StdRng,
}

impl TrafficGenerator {
    /// Creates a generator.
    ///
    /// * `mean_inter_arrival` — mean time between injections at each source,
    ///   in nanoseconds (exponentially distributed).
    /// * `deadline_slack` — when set, every message gets a deadline this many
    ///   nanoseconds after its injection.
    ///
    /// # Panics
    ///
    /// Panics if `oni_count < 2`, `words_per_message == 0`, or
    /// `mean_inter_arrival` is not positive and finite (a zero, negative or
    /// non-finite mean would produce degenerate or unsorted injection
    /// times).  The simulation entry points reject these as
    /// [`crate::SimulationError::InvalidConfiguration`] before reaching this
    /// constructor.
    #[must_use]
    pub fn new(
        pattern: TrafficPattern,
        oni_count: usize,
        words_per_message: u64,
        class: TrafficClass,
        mean_inter_arrival: f64,
        deadline_slack: Option<f64>,
        seed: u64,
    ) -> Self {
        assert!(oni_count >= 2, "traffic needs at least two ONIs");
        assert!(
            words_per_message > 0,
            "messages must carry at least one word"
        );
        assert!(
            mean_inter_arrival > 0.0 && mean_inter_arrival.is_finite(),
            "mean inter-arrival time must be positive and finite"
        );
        Self {
            pattern,
            oni_count,
            words_per_message,
            class,
            mean_inter_arrival,
            deadline_slack,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Generates the full message list, sorted by injection time.
    #[must_use]
    pub fn generate(mut self) -> Vec<Message> {
        let mut messages = Vec::new();
        let pairs: Vec<(usize, usize, u64)> = match self.pattern {
            TrafficPattern::UniformRandom { messages_per_node } => {
                let mut out = Vec::new();
                for source in 0..self.oni_count {
                    for _ in 0..messages_per_node {
                        let mut destination = self.rng.gen_range(0..self.oni_count - 1);
                        if destination >= source {
                            destination += 1;
                        }
                        out.push((source, destination, 1));
                    }
                }
                out
            }
            TrafficPattern::Hotspot {
                destination,
                messages_per_node,
            } => (0..self.oni_count)
                .filter(|&s| s != destination % self.oni_count)
                .flat_map(|s| {
                    std::iter::repeat_n(
                        (s, destination % self.oni_count, 1),
                        messages_per_node as usize,
                    )
                })
                .collect(),
            TrafficPattern::Transpose { messages_per_node } => (0..self.oni_count)
                .map(|s| (s, (s + self.oni_count / 2) % self.oni_count))
                .filter(|(s, d)| s != d)
                .flat_map(|(s, d)| std::iter::repeat_n((s, d, 1), messages_per_node as usize))
                .collect(),
            TrafficPattern::NearestNeighbor { messages_per_node } => (0..self.oni_count)
                .map(|s| (s, (s + 1) % self.oni_count))
                .flat_map(|(s, d)| std::iter::repeat_n((s, d, 1), messages_per_node as usize))
                .collect(),
            TrafficPattern::Streaming {
                source,
                destination,
                bursts,
                burst_messages,
            } => (0..bursts)
                .flat_map(|burst| {
                    std::iter::repeat_n(
                        (
                            source % self.oni_count,
                            destination % self.oni_count,
                            burst + 1,
                        ),
                        burst_messages as usize,
                    )
                })
                .collect(),
        };

        // Assign injection times: per-source exponential inter-arrival, with
        // streaming bursts grouped by their burst index.
        let mut next_time_per_source = vec![0.0f64; self.oni_count];
        for (index, (source, destination, burst_group)) in pairs.iter().enumerate() {
            let jitter: f64 = self.rng.gen_range(0.0..1.0);
            // The constructor guarantees a positive, finite mean.
            let inter = -self.mean_inter_arrival * (1.0 - jitter).ln();
            // Streaming bursts start at multiples of 10× the inter-arrival.
            let base = if matches!(self.pattern, TrafficPattern::Streaming { .. }) {
                (*burst_group - 1) as f64 * self.mean_inter_arrival * 10.0
            } else {
                0.0
            };
            next_time_per_source[*source] = (next_time_per_source[*source] + inter).max(base);
            let injected_at = SimTime::from_nanos(next_time_per_source[*source]);
            let deadline = self
                .deadline_slack
                .map(|slack| injected_at.advanced_by(onoc_units::Nanoseconds::new(slack)));
            messages.push(Message {
                id: MessageId(index as u64),
                source: *source,
                destination: *destination,
                words: self.words_per_message,
                class: self.class,
                injected_at,
                deadline,
            });
        }
        messages.sort_by_key(|m| (m.injected_at, m.id));
        messages
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn generate(pattern: TrafficPattern, onis: usize) -> Vec<Message> {
        TrafficGenerator::new(pattern, onis, 4, TrafficClass::Bulk, 5.0, None, 42).generate()
    }

    #[test]
    fn uniform_random_never_sends_to_self_and_covers_all_sources() {
        let messages = generate(
            TrafficPattern::UniformRandom {
                messages_per_node: 10,
            },
            8,
        );
        assert_eq!(messages.len(), 80);
        assert!(messages.iter().all(|m| m.source != m.destination));
        for source in 0..8 {
            assert_eq!(messages.iter().filter(|m| m.source == source).count(), 10);
        }
    }

    #[test]
    fn hotspot_targets_a_single_destination() {
        let messages = generate(
            TrafficPattern::Hotspot {
                destination: 2,
                messages_per_node: 5,
            },
            6,
        );
        assert_eq!(messages.len(), 25);
        assert!(messages.iter().all(|m| m.destination == 2));
        assert!(messages.iter().all(|m| m.source != 2));
    }

    #[test]
    fn transpose_is_a_permutation() {
        let messages = generate(
            TrafficPattern::Transpose {
                messages_per_node: 1,
            },
            8,
        );
        assert_eq!(messages.len(), 8);
        let mut destinations: Vec<usize> = messages.iter().map(|m| m.destination).collect();
        destinations.sort_unstable();
        destinations.dedup();
        assert_eq!(destinations.len(), 8);
    }

    #[test]
    fn nearest_neighbor_wraps_around() {
        let messages = generate(
            TrafficPattern::NearestNeighbor {
                messages_per_node: 1,
            },
            4,
        );
        assert!(messages.iter().any(|m| m.source == 3 && m.destination == 0));
    }

    #[test]
    fn streaming_is_point_to_point_and_bursty() {
        let messages = generate(
            TrafficPattern::Streaming {
                source: 1,
                destination: 5,
                bursts: 3,
                burst_messages: 4,
            },
            8,
        );
        assert_eq!(messages.len(), 12);
        assert!(messages.iter().all(|m| m.source == 1 && m.destination == 5));
        // Later bursts start strictly later than the first burst.
        let first = messages.first().unwrap().injected_at;
        let last = messages.last().unwrap().injected_at;
        assert!(last > first);
    }

    #[test]
    fn injection_times_are_sorted_and_deadlines_applied() {
        let messages = TrafficGenerator::new(
            TrafficPattern::UniformRandom {
                messages_per_node: 5,
            },
            4,
            2,
            TrafficClass::RealTime,
            3.0,
            Some(50.0),
            1,
        )
        .generate();
        for pair in messages.windows(2) {
            assert!(pair[0].injected_at <= pair[1].injected_at);
        }
        for m in &messages {
            let deadline = m.deadline.expect("deadline requested");
            assert!((deadline.since(m.injected_at).value() - 50.0).abs() < 1e-9);
        }
    }

    #[test]
    fn generation_is_reproducible_for_a_fixed_seed() {
        let a = generate(
            TrafficPattern::UniformRandom {
                messages_per_node: 7,
            },
            6,
        );
        let b = generate(
            TrafficPattern::UniformRandom {
                messages_per_node: 7,
            },
            6,
        );
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn non_positive_inter_arrival_panics() {
        let _ = TrafficGenerator::new(
            TrafficPattern::UniformRandom {
                messages_per_node: 1,
            },
            4,
            1,
            TrafficClass::Bulk,
            0.0,
            None,
            0,
        );
    }

    #[test]
    #[should_panic(expected = "at least two ONIs")]
    fn single_node_traffic_panics() {
        let _ = TrafficGenerator::new(
            TrafficPattern::UniformRandom {
                messages_per_node: 1,
            },
            1,
            1,
            TrafficClass::Bulk,
            1.0,
            None,
            0,
        );
    }
}
