//! The unified simulation surface: one builder, one run, one report.
//!
//! Historically the simulator exposed three divergent entry points —
//! `Simulation` + `SimulationConfig` (fixed-ambient and prescribed-trace
//! playback), `ThermalScenario` (the prescribed-trace attachment) and
//! `FeedbackSimulation` + `FeedbackConfig` (activity-coupled heating) — with
//! two incompatible report types and duplicated knobs.  [`ScenarioBuilder`]
//! replaces all of them: it composes
//!
//! * **traffic** (pattern, class, message geometry, arrival process, seed),
//! * a **thermal model** ([`onoc_thermal::ThermalModelSpec`]: prescribed
//!   environments, the activity-coupled RC network, or workload-heated
//!   compute clusters),
//! * a **decision policy** ([`DecisionPolicy`]: per-message decisions at
//!   injection time, or the epoch-gated feedback loop with hysteresis),
//! * the **link fleet** (thermal stack, per-ONI fabrication variation,
//!   tuning mode, operating-point cache resolution), and
//! * a **thread budget** for sharding independent per-ONI work
//!
//! into one [`Scenario`] whose [`Scenario::run`] returns the unified
//! [`RunReport`] — per-ONI state (delivered traffic, temperatures, scheme,
//! switches, energy split) plus run-level epochs, decisions, switch log,
//! trajectory and solver-cache counters, whatever combination produced it.
//!
//! The legacy entry points survive as thin `#[deprecated]` shims over this
//! builder and are pinned bit-identical by `tests/scenario_migration.rs`.
//!
//! # Example
//!
//! ```
//! use onoc_link::TrafficClass;
//! use onoc_sim::{traffic::TrafficPattern, ScenarioBuilder};
//!
//! let report = ScenarioBuilder::new()
//!     .oni_count(4)
//!     .pattern(TrafficPattern::UniformRandom { messages_per_node: 20 })
//!     .class(TrafficClass::Bulk)
//!     .words_per_message(8)
//!     .seed(7)
//!     .build()?
//!     .run();
//! assert_eq!(report.stats.delivered_messages, 4 * 20);
//! # Ok::<(), onoc_sim::SimulationError>(())
//! ```

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};
use std::path::PathBuf;

use onoc_ecc_codes::EccScheme;
use onoc_link::{
    CacheCounters, LinkManager, ManagerDecision, NanophotonicLink, SharedOpCache, ThermalLinkStack,
    TrafficClass,
};
use onoc_parallel::{default_shards, parallel_map_traced};
use onoc_telemetry::{RecorderHandle, TelemetryEvent};
use onoc_thermal::{
    AssignmentStrategy, BankTuningMode, FabricationVariation, RcNetworkParameters,
    ThermalEnvironment, ThermalModel, ThermalModelSpec, WavelengthAssignment, WorkloadSchedule,
    WorkloadTrace,
};
use onoc_topology::{FabricSpec, LinkKind, RouteTable, Router};
use onoc_units::Celsius;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::arbiter::TokenArbiter;
use crate::engine::{
    conditional_corrupted_bits, DecisionParams, Event, EventKind, SimulationError,
};
use crate::packet::{Message, MessageId};
use crate::stats::SimStats;
use crate::thermal::{bucket_centre, bucket_index};
use crate::time::SimTime;
use crate::traffic::{TrafficGenerator, TrafficPattern};

/// Per-ONI fabrication variation of a scenario's link fleet: every
/// destination channel becomes its own chip instance, with ring offsets
/// sampled from `sigma_nm` under a seed derived from `seed` and the ONI
/// index.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RingVariationConfig {
    /// Standard deviation of the per-ring resonance offsets, in nm.
    pub sigma_nm: f64,
    /// Base seed; each ONI derives its own chip seed from it.
    pub seed: u64,
    /// Tuning mode of every ONI's bank (pure heater or barrel shift).
    pub mode: BankTuningMode,
}

impl RingVariationConfig {
    /// Checks σ and the tuning mode.
    ///
    /// # Errors
    ///
    /// Returns a human-readable reason for the first invalid parameter.
    pub fn validate(&self) -> Result<(), String> {
        FabricationVariation {
            sigma_nm: self.sigma_nm,
            seed: self.seed,
        }
        .validate()?;
        self.mode.validate()
    }

    /// The chip instance of destination `oni`.
    #[must_use]
    pub fn oni_variation(&self, oni: usize) -> FabricationVariation {
        // SplitMix64 of (seed, oni) so neighbouring ONIs get uncorrelated
        // chips while the whole fleet stays reproducible.
        let z = onoc_thermal::bank::splitmix64_mix(
            self.seed
                .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(oni as u64 + 1)),
        );
        FabricationVariation::new(self.sigma_nm, z)
    }
}

/// One scheme change taken during a run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SchemeSwitch {
    /// Simulated time of the switch, in nanoseconds.
    pub time_ns: f64,
    /// Destination ONI whose channel switched.
    pub oni: usize,
    /// Scheme before the switch.
    pub from: EccScheme,
    /// Scheme after the switch.
    pub to: EccScheme,
    /// Channel temperature that triggered the re-decision, in °C.
    pub temperature_c: f64,
    /// Index of the epoch whose boundary took the decision — carried
    /// uniformly by every engine (previously omitted when the per-message
    /// policy drove a prescribed transient): `Some` for epoch-gated runs
    /// (matching the entry of [`RunReport::trajectory`] whose `time_ns`
    /// equals the switch time), `None` under the per-message policy, which
    /// steps no epochs.
    pub epoch: Option<u64>,
}

/// Temperature envelope of the interconnect at one epoch boundary.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpochSample {
    /// End of the epoch, in nanoseconds.
    pub time_ns: f64,
    /// Coolest node temperature, in °C.
    pub min_temperature_c: f64,
    /// Hottest node temperature, in °C.
    pub max_temperature_c: f64,
    /// Number of destination channels currently on a non-baseline scheme.
    pub reconfigured_onis: usize,
}

/// One phase boundary the epoch-gated engine crossed while playing a
/// scheduled workload ([`onoc_thermal::WorkloadSchedule`]): when it
/// happened, which ONIs hopped to their new-phase wavelength assignment,
/// and how many scheme switches the swap provoked right after.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhaseTransition {
    /// Index of the phase being entered (the run starts inside phase 0
    /// without a transition, so indices here start at 1).
    pub phase: usize,
    /// Schedule time of the boundary, in nanoseconds.  The engine clamps
    /// the preceding epoch to end exactly here, so this is always an epoch
    /// edge of the run.
    pub time_ns: f64,
    /// Index of the first epoch played inside the new phase.
    pub epoch: u64,
    /// ONIs whose wavelength assignment fingerprint changed at this
    /// boundary (0 unless the scenario uses per-phase design assignments).
    pub swapped_onis: usize,
    /// Scheme switches taken in the storm window after the boundary — the
    /// epochs in `[epoch, epoch + 8)`, truncated at the next transition.
    /// The re-tuning cost of swapping the fleet mid-run.
    pub storm_switches: u64,
}

/// When and how the runtime manager re-decides a channel's operating point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DecisionPolicy {
    /// One decision per message, taken at injection time from the prescribed
    /// temperature of the destination channel.  Only valid with a
    /// [`ThermalModelSpec::Prescribed`] model — per-message precomputation
    /// cannot see temperatures the traffic itself will create.
    PerMessage {
        /// Temperature quantization of the decision cache, in kelvin:
        /// injections within the same bucket share one operating point.
        quantization_k: f64,
    },
    /// The epoch-stepped feedback loop: play events for one epoch, deposit
    /// the dissipated power into the thermal model, advance it, and re-ask
    /// the manager for ONIs whose temperature left its decision bucket —
    /// with deadband and scheme-revert hysteresis against oscillation.
    /// Valid with every thermal model.
    EpochGated {
        /// Epoch length, in nanoseconds.
        epoch_ns: f64,
        /// Temperature quantization of manager decisions, in kelvin.
        quantization_k: f64,
        /// Hysteresis deadband, in kelvin, on top of half a bucket.
        hysteresis_k: f64,
        /// Scheme-revert hysteresis, in kelvin: undoing a channel's most
        /// recent switch needs at least this much temperature excursion from
        /// the switch point.
        revert_hysteresis_k: f64,
    },
}

impl DecisionPolicy {
    /// The default per-message policy (0.5 K decision buckets).
    #[must_use]
    pub fn per_message() -> Self {
        Self::PerMessage {
            quantization_k: 0.5,
        }
    }

    /// The default epoch-gated policy (25 ns epochs, 0.5 K buckets, 1.5 K
    /// deadband, 10 K revert hysteresis — the values of the legacy feedback
    /// engine).
    #[must_use]
    pub fn epoch_gated() -> Self {
        Self::EpochGated {
            epoch_ns: 25.0,
            quantization_k: 0.5,
            hysteresis_k: 1.5,
            revert_hysteresis_k: 10.0,
        }
    }

    pub(crate) fn validate(&self) -> Result<(), SimulationError> {
        let quantization = match *self {
            Self::PerMessage { quantization_k } | Self::EpochGated { quantization_k, .. } => {
                quantization_k
            }
        };
        if !(quantization > 0.0 && quantization.is_finite()) {
            return Err(SimulationError::InvalidConfiguration {
                reason: format!(
                    "thermal quantization step must be positive and finite, got {quantization}"
                ),
            });
        }
        if let Self::EpochGated {
            epoch_ns,
            hysteresis_k,
            revert_hysteresis_k,
            ..
        } = *self
        {
            if !(epoch_ns > 0.0 && epoch_ns.is_finite()) {
                return Err(SimulationError::InvalidConfiguration {
                    reason: format!("epoch must be positive and finite, got {epoch_ns}"),
                });
            }
            for (name, value) in [
                ("hysteresis", hysteresis_k),
                ("revert hysteresis", revert_hysteresis_k),
            ] {
                if !(value >= 0.0 && value.is_finite()) {
                    return Err(SimulationError::InvalidConfiguration {
                        reason: format!("{name} must be non-negative and finite, got {value}"),
                    });
                }
            }
        }
        Ok(())
    }
}

/// Design-time (GLOW-style) wavelength-grid assignment of a scenario's link
/// fleet: before the run starts, every destination channel gets a
/// logical-wavelength → ring permutation searched against the thermal
/// model's own per-ONI design temperatures
/// ([`ThermalModelSpec::design_temperatures`]) and that ONI's chip instance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DesignAssignmentConfig {
    /// Search strategy of the assigner.
    pub strategy: AssignmentStrategy,
    /// Base seed of the refinement search; each ONI derives its own.
    pub seed: u64,
    /// Derive one assignment fleet **per schedule phase** (each searched
    /// against that phase's own steady-state heat map,
    /// [`ThermalModelSpec::phase_design_temperatures`]) instead of a single
    /// fleet against the worst-case fold.  The epoch-gated engine swaps
    /// fleets hitlessly at phase boundaries.  With a single-phase (or
    /// unscheduled) thermal model this degenerates to the worst-case fleet.
    pub per_phase: bool,
}

impl DesignAssignmentConfig {
    /// The default greedy + local-search assigner under `seed`.
    #[must_use]
    pub fn greedy_refine(seed: u64) -> Self {
        Self {
            strategy: AssignmentStrategy::GreedyRefine,
            seed,
            per_phase: false,
        }
    }

    /// Switches to one assignment fleet per schedule phase (see
    /// [`DesignAssignmentConfig::per_phase`]).
    #[must_use]
    pub fn per_phase(mut self) -> Self {
        self.per_phase = true;
        self
    }

    /// The assigner seed of destination `oni` (SplitMix64 of `(seed, oni)`,
    /// mirroring [`RingVariationConfig::oni_variation`]).
    #[must_use]
    pub fn oni_seed(&self, oni: usize) -> u64 {
        onoc_thermal::bank::splitmix64_mix(
            self.seed
                .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(oni as u64 + 1)),
        )
    }
}

/// The complete, serializable description of one scenario: everything
/// [`ScenarioBuilder`] composes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioConfig {
    /// Number of ONIs in the interconnect.
    pub oni_count: usize,
    /// Spatial/temporal traffic pattern.
    pub pattern: TrafficPattern,
    /// Traffic class of every message (drives the manager's scheme choice).
    pub class: TrafficClass,
    /// Number of 64-bit words per message.
    pub words_per_message: u64,
    /// Mean inter-arrival time at each source, in nanoseconds.
    pub mean_inter_arrival_ns: f64,
    /// Deadline slack granted to each message, in nanoseconds (`None` = no
    /// deadlines).
    pub deadline_slack_ns: Option<f64>,
    /// Nominal BER target the platform guarantees.
    pub nominal_ber: f64,
    /// RNG seed (traffic and error injection are fully reproducible).
    pub seed: u64,
    /// The thermal substrate the run plays over.
    pub thermal: ThermalModelSpec,
    /// Decision policy; `None` derives it from the thermal model
    /// (prescribed → per-message, coupled → epoch-gated defaults).
    pub policy: Option<DecisionPolicy>,
    /// Optional custom thermal stack (drift slope, heater, tune policy) for
    /// every ONI's link; `None` uses the paper default.
    pub stack: Option<ThermalLinkStack>,
    /// Optional per-ONI fabrication variation: `Some` makes the fleet
    /// heterogeneous (one seeded chip instance per destination channel).
    pub variation: Option<RingVariationConfig>,
    /// Optional design-time wavelength assignment: `Some` runs the
    /// GLOW-style assigner per ONI (against the thermal model's design
    /// temperatures and the ONI's chip instance) before the run starts, so
    /// the fleet becomes heterogeneous like under `variation`.
    pub assignment: Option<DesignAssignmentConfig>,
    /// Optional fabric topology: the physical link structure the traffic
    /// rides over.  `None` keeps the canonical single MWSR ring (one reader
    /// channel per destination, all-to-all single-hop) — exactly equivalent
    /// to `Topology::single_ring(oni_count)` with zero crosstalk, and pinned
    /// bit-identical to it by the golden tests.  A configured fabric routes
    /// every flow over deterministic shortest paths; waveguide-group
    /// crosstalk makes the fleet thermally heterogeneous, and electrical
    /// fallback links carry multi-hop traffic between clusters.
    pub topology: Option<FabricSpec>,
    /// Optional operating-point cache resolution override, in buckets per
    /// kelvin (`None` keeps the link default of 20).
    pub cache_buckets_per_kelvin: Option<f64>,
    /// Thread budget for sharding independent per-ONI work (baseline solves
    /// and epoch re-asks of heterogeneous fleets); `0` = one shard per core.
    /// Any value produces bit-identical reports.
    pub threads: usize,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        Self {
            oni_count: 12,
            pattern: TrafficPattern::UniformRandom {
                messages_per_node: 10,
            },
            class: TrafficClass::Bulk,
            words_per_message: 16,
            mean_inter_arrival_ns: 5.0,
            deadline_slack_ns: None,
            nominal_ber: 1e-11,
            seed: 1,
            thermal: ThermalModelSpec::paper_ambient(),
            policy: None,
            stack: None,
            variation: None,
            assignment: None,
            topology: None,
            cache_buckets_per_kelvin: None,
            threads: 0,
        }
    }
}

impl ScenarioConfig {
    /// The decision policy in effect: the explicit one, or the default
    /// derived from the thermal model family.
    #[must_use]
    pub fn resolved_policy(&self) -> DecisionPolicy {
        self.policy.unwrap_or({
            if self.thermal.is_activity_coupled() {
                DecisionPolicy::epoch_gated()
            } else {
                DecisionPolicy::per_message()
            }
        })
    }

    /// Checks the configuration.
    ///
    /// # Errors
    ///
    /// [`SimulationError::InvalidConfiguration`] for structural problems:
    /// too few ONIs, empty messages, a BER outside (0, 0.5), a degenerate
    /// arrival process, an invalid thermal model or policy, a per-message
    /// policy over an activity-coupled model, an invalid stack/variation, or
    /// a degenerate cache resolution.
    pub fn validate(&self) -> Result<(), SimulationError> {
        if self.oni_count < 2 {
            return Err(SimulationError::InvalidConfiguration {
                reason: "at least two ONIs are required".into(),
            });
        }
        if self.words_per_message == 0 {
            return Err(SimulationError::InvalidConfiguration {
                reason: "messages must carry at least one word".into(),
            });
        }
        if !(self.nominal_ber > 0.0 && self.nominal_ber < 0.5) {
            return Err(SimulationError::InvalidConfiguration {
                reason: "nominal BER must be in (0, 0.5)".into(),
            });
        }
        if !(self.mean_inter_arrival_ns > 0.0 && self.mean_inter_arrival_ns.is_finite()) {
            return Err(SimulationError::InvalidConfiguration {
                reason: format!(
                    "mean inter-arrival time must be positive and finite, got {}",
                    self.mean_inter_arrival_ns
                ),
            });
        }
        self.thermal
            .validate(self.oni_count)
            .map_err(|reason| SimulationError::InvalidConfiguration { reason })?;
        let policy = self.resolved_policy();
        policy.validate()?;
        if matches!(policy, DecisionPolicy::PerMessage { .. }) && self.thermal.is_activity_coupled()
        {
            return Err(SimulationError::InvalidConfiguration {
                reason: "per-message decisions replay a prescribed thermal model; \
                         activity-coupled and workload-heated models need the \
                         epoch-gated policy"
                    .into(),
            });
        }
        if matches!(policy, DecisionPolicy::PerMessage { .. }) && self.variation.is_some() {
            // The per-message engine keeps one fleet-wide baseline (ONI 0's
            // chip) for static-power residency and switch bookkeeping; a
            // heterogeneous fleet needs the per-ONI baselines only the
            // epoch-gated engine maintains.
            return Err(SimulationError::InvalidConfiguration {
                reason: "per-ONI fabrication variation requires the epoch-gated policy".into(),
            });
        }
        if matches!(policy, DecisionPolicy::PerMessage { .. }) && self.assignment.is_some() {
            // Per-ONI design temperatures produce per-ONI assignments —
            // the same heterogeneous-fleet situation as `variation`.
            return Err(SimulationError::InvalidConfiguration {
                reason: "design-time wavelength assignment requires the epoch-gated policy".into(),
            });
        }
        if let Some(stack) = &self.stack {
            stack
                .validate()
                .map_err(|reason| SimulationError::InvalidConfiguration { reason })?;
            if let Some(assignment) = &stack.assignment {
                // The stack validator checks the permutation structure; the
                // length against the (fixed) channel grid is checked here so
                // a mis-sized assignment is a configuration error, not a
                // panic inside `ThermalSolver::new` mid-build.
                let lanes = NanophotonicLink::paper_link()
                    .channel()
                    .geometry()
                    .wavelength_count();
                if assignment.len() != lanes {
                    return Err(SimulationError::InvalidConfiguration {
                        reason: format!(
                            "stack wavelength assignment covers {} lanes but the channel \
                             carries {lanes} wavelengths",
                            assignment.len()
                        ),
                    });
                }
            }
        }
        if let Some(variation) = &self.variation {
            variation
                .validate()
                .map_err(|reason| SimulationError::InvalidConfiguration { reason })?;
        }
        if let Some(buckets) = self.cache_buckets_per_kelvin {
            if !(buckets > 0.0 && buckets.is_finite()) {
                return Err(SimulationError::InvalidConfiguration {
                    reason: format!(
                        "cache resolution must be positive and finite, got {buckets} \
                         buckets per kelvin"
                    ),
                });
            }
        }
        if let Some(fabric) = &self.topology {
            fabric
                .validate()
                .map_err(|e| SimulationError::InvalidConfiguration {
                    reason: e.to_string(),
                })?;
            if fabric.topology.node_count() != self.oni_count {
                return Err(SimulationError::InvalidConfiguration {
                    reason: format!(
                        "the topology spans {} nodes but the scenario has {} ONIs",
                        fabric.topology.node_count(),
                        self.oni_count
                    ),
                });
            }
            let routes = Router::resolve(&fabric.topology);
            if routes.uses_swmr() {
                return Err(SimulationError::InvalidConfiguration {
                    reason: "SWMR hops are not yet supported by the scenario engines \
                             (the arbiters serialize per destination channel)"
                        .into(),
                });
            }
            if matches!(policy, DecisionPolicy::PerMessage { .. }) && !routes.is_single_hop() {
                // The per-message engine precomputes one decision per
                // injection; a message relayed through intermediate routers
                // needs the per-hop grant bookkeeping only the epoch-gated
                // engine maintains.
                return Err(SimulationError::InvalidConfiguration {
                    reason: "multi-hop topologies require the epoch-gated policy".into(),
                });
            }
            if matches!(policy, DecisionPolicy::PerMessage { .. })
                && self.topology_fleet_is_heterogeneous()
            {
                // Crosstalk-scaled drift slopes give every waveguide group
                // its own chip behaviour — the same heterogeneous-fleet
                // situation as `variation`.
                return Err(SimulationError::InvalidConfiguration {
                    reason: "a crosstalk-heterogeneous topology requires the \
                             epoch-gated policy"
                        .into(),
                });
            }
        }
        Ok(())
    }

    /// Whether the configured topology gives different ONIs different
    /// thermal stacks: nonzero waveguide-group crosstalk over groups of
    /// unequal population scales each reader channel's drift slope by its
    /// own neighbour count.
    fn topology_fleet_is_heterogeneous(&self) -> bool {
        let Some(fabric) = &self.topology else {
            return false;
        };
        if fabric.crosstalk_per_neighbor <= 0.0 {
            return false;
        }
        let fabric_nodes = &fabric.topology;
        let populations: std::collections::BTreeSet<usize> = (0..fabric_nodes.node_count())
            .map(|node| {
                let link = fabric_nodes
                    .reader_link(node)
                    .expect("validated: every node reads one MWSR channel");
                fabric_nodes.group_population(fabric_nodes.links()[link].waveguide_group)
            })
            .collect();
        populations.len() > 1
    }

    /// The crosstalk-adjusted thermal stack of `oni`'s reader channel under
    /// the configured topology — `None` when no topology is set or when the
    /// derived stack equals the base (zero crosstalk / isolated group), so
    /// the default single-ring path stays byte-identical to a run without a
    /// topology.
    fn topology_stack(&self, oni: usize) -> Option<ThermalLinkStack> {
        let fabric = self.topology.as_ref()?;
        let base = self
            .stack
            .clone()
            .unwrap_or_else(ThermalLinkStack::paper_default);
        let link = fabric
            .topology
            .reader_link(oni)
            .expect("validated: every node reads one MWSR channel");
        let stack = fabric
            .link_stack(&base, link)
            .expect("reader links are photonic");
        if stack == base {
            None
        } else {
            Some(stack)
        }
    }

    /// The link of destination `oni` under this configuration: the base
    /// stack (custom or paper default) plus, for heterogeneous fleets, that
    /// ONI's own chip instance and tuning mode.  With a fleet cache the link
    /// joins the shared storage (the cache handle carries the resolution);
    /// without one it keeps a private cache at the configured resolution.
    fn oni_link(&self, oni: usize, fleet_cache: Option<&SharedOpCache>) -> NanophotonicLink {
        let mut link = NanophotonicLink::paper_link();
        if let Some(stack) = self.topology_stack(oni) {
            // Crosstalk-adjusted reader-channel stack of this node's fabric
            // link; falls back to the plain base stack below when the
            // topology leaves it unchanged.
            link = link.with_thermal_stack(stack);
        } else if let Some(stack) = self.stack.clone() {
            link = link.with_thermal_stack(stack);
        }
        if let Some(variation) = &self.variation {
            link = link
                .with_fabrication_variation(variation.oni_variation(oni))
                .with_bank_tuning_mode(variation.mode);
        }
        if let Some(cache) = fleet_cache {
            link = link.with_shared_cache(cache.clone());
        } else if let Some(buckets) = self.cache_buckets_per_kelvin {
            link = link
                .with_cache_resolution(buckets)
                .unwrap_or_else(|e| panic!("validated cache resolution: {e}"));
        }
        link
    }

    fn shards(&self) -> usize {
        if self.threads == 0 {
            default_shards()
        } else {
            self.threads
        }
    }
}

/// Builder over [`ScenarioConfig`]: every knob is a chainable setter, and
/// the setters commute — the report depends only on the final configuration,
/// never on the order the fields were set in (property-tested).
#[derive(Debug, Clone, Default)]
pub struct ScenarioBuilder {
    config: ScenarioConfig,
    /// Telemetry sink threaded through the manager fleet and both run
    /// engines.  Deliberately *not* part of [`ScenarioConfig`]: a recorder
    /// is a side channel, not a simulated quantity, so config equality,
    /// serialization and the report stay recorder-independent.
    recorder: RecorderHandle,
    /// Externally-injected shared operating-point cache (scale-out warm
    /// start across scenarios).  A side channel like the recorder: the cache
    /// only memoizes deterministic solver outputs, so the report is
    /// bit-identical with or without it.
    shared_cache: Option<SharedOpCache>,
    /// Persistent cache snapshot: loaded (if present) before the run, saved
    /// after it.  Also a side channel — see `shared_cache`.
    snapshot_path: Option<PathBuf>,
    /// Forces one manager (and one private cache) per ONI even for a
    /// homogeneous fleet — the pre-scale-out engine, kept for A/B
    /// comparison.  Physics are bit-identical to the shared-cache engine;
    /// only the cache counters differ (each ONI re-solves its own points).
    per_link_caches: bool,
}

impl ScenarioBuilder {
    /// Starts from the default configuration (12 ONIs, bulk uniform-random
    /// traffic, the paper's fixed 25 °C ambient, per-message decisions).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts from an existing configuration.
    #[must_use]
    pub fn from_config(config: ScenarioConfig) -> Self {
        Self {
            config,
            ..Self::default()
        }
    }

    /// The configuration built so far.
    #[must_use]
    pub fn config(&self) -> &ScenarioConfig {
        &self.config
    }

    /// Sets the number of ONIs.
    #[must_use]
    pub fn oni_count(mut self, oni_count: usize) -> Self {
        self.config.oni_count = oni_count;
        self
    }

    /// Sets the traffic pattern.
    #[must_use]
    pub fn pattern(mut self, pattern: TrafficPattern) -> Self {
        self.config.pattern = pattern;
        self
    }

    /// Sets the traffic class.
    #[must_use]
    pub fn class(mut self, class: TrafficClass) -> Self {
        self.config.class = class;
        self
    }

    /// Sets the number of 64-bit words per message.
    #[must_use]
    pub fn words_per_message(mut self, words: u64) -> Self {
        self.config.words_per_message = words;
        self
    }

    /// Sets the mean inter-arrival time per source, in nanoseconds.
    #[must_use]
    pub fn mean_inter_arrival_ns(mut self, mean_ns: f64) -> Self {
        self.config.mean_inter_arrival_ns = mean_ns;
        self
    }

    /// Grants every message a deadline `slack_ns` after its injection.
    #[must_use]
    pub fn deadline_slack_ns(mut self, slack_ns: Option<f64>) -> Self {
        self.config.deadline_slack_ns = slack_ns;
        self
    }

    /// Sets the nominal BER target.
    #[must_use]
    pub fn nominal_ber(mut self, ber: f64) -> Self {
        self.config.nominal_ber = ber;
        self
    }

    /// Sets the RNG seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Sets the thermal model spec directly.
    #[must_use]
    pub fn thermal_model(mut self, spec: ThermalModelSpec) -> Self {
        self.config.thermal = spec;
        self
    }

    /// Plays the run over a prescribed temperature trace.
    #[must_use]
    pub fn prescribed(self, environment: ThermalEnvironment) -> Self {
        self.thermal_model(ThermalModelSpec::Prescribed { environment })
    }

    /// Heats the run with the link's own dissipation through a per-ONI RC
    /// network.
    #[must_use]
    pub fn activity_coupled(self, network: RcNetworkParameters) -> Self {
        self.thermal_model(ThermalModelSpec::ActivityCoupled { network })
    }

    /// Heats the run with the link's dissipation *plus* per-ONI workload
    /// heat-injection traces (one per ONI).
    #[must_use]
    pub fn workload_heated(self, network: RcNetworkParameters, traces: Vec<WorkloadTrace>) -> Self {
        self.thermal_model(ThermalModelSpec::WorkloadHeated { network, traces })
    }

    /// Heats the run with the link's dissipation plus a phase-scheduled
    /// DVFS workload: per-ONI heat-injection traces that change at phase
    /// boundaries ([`onoc_thermal::WorkloadSchedule`] — diurnal power
    /// levels, task migration between clusters).  The epoch-gated engine
    /// clamps epochs to the phase boundaries and, with
    /// [`DesignAssignmentConfig::per_phase`], swaps each ONI's wavelength
    /// assignment hitlessly as its phase begins.
    #[must_use]
    pub fn workload_scheduled(
        self,
        network: RcNetworkParameters,
        schedule: WorkloadSchedule,
    ) -> Self {
        self.thermal_model(ThermalModelSpec::WorkloadScheduled { network, schedule })
    }

    /// Sets the decision policy explicitly (the default follows the thermal
    /// model: prescribed → per-message, coupled → epoch-gated).
    #[must_use]
    pub fn policy(mut self, policy: DecisionPolicy) -> Self {
        self.config.policy = Some(policy);
        self
    }

    /// Replaces the thermal stack of every ONI's link.
    #[must_use]
    pub fn stack(mut self, stack: ThermalLinkStack) -> Self {
        self.config.stack = Some(stack);
        self
    }

    /// Gives the fleet per-ONI fabrication variation (one chip instance and
    /// manager per destination channel).
    #[must_use]
    pub fn variation(mut self, variation: RingVariationConfig) -> Self {
        self.config.variation = Some(variation);
        self
    }

    /// Runs the design-time (GLOW-style) wavelength assigner per ONI before
    /// the run starts: each destination channel's logical-wavelength → ring
    /// mapping is searched against the thermal model's design temperatures
    /// ([`ThermalModelSpec::design_temperatures`]) and that ONI's chip
    /// instance.  Requires the epoch-gated policy (per-ONI assignments make
    /// the fleet heterogeneous).
    #[must_use]
    pub fn design_assignment(mut self, assignment: DesignAssignmentConfig) -> Self {
        self.config.assignment = Some(assignment);
        self
    }

    /// Routes the traffic over a fabric topology (see
    /// [`onoc_topology::Topology`]): per-flow deterministic shortest paths,
    /// per-router queueing at the existing per-destination arbiters, and
    /// additive per-hop latency/energy accounting.  Accepts a bare
    /// [`onoc_topology::Topology`] (zero crosstalk, paper electrical
    /// fallback) or a full [`FabricSpec`].  The canonical
    /// `Topology::single_ring(oni_count)` is pinned bit-identical to the
    /// default (no-topology) run.  Multi-hop fabrics and
    /// crosstalk-heterogeneous fleets require the epoch-gated policy.
    #[must_use]
    pub fn topology(mut self, fabric: impl Into<FabricSpec>) -> Self {
        self.config.topology = Some(fabric.into());
        self
    }

    /// Overrides the operating-point cache resolution, in buckets per
    /// kelvin.  Degenerate values are rejected by
    /// [`ScenarioBuilder::build`] as
    /// [`SimulationError::InvalidConfiguration`].
    #[must_use]
    pub fn cache_resolution(mut self, buckets_per_kelvin: f64) -> Self {
        self.config.cache_buckets_per_kelvin = Some(buckets_per_kelvin);
        self
    }

    /// Sets the thread budget for sharding independent per-ONI work
    /// (`0` = one shard per core).  Reports are bit-identical at any value.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.config.threads = threads;
        self
    }

    /// Attaches a telemetry sink: the manager fleet emits solver/cache/
    /// decision events, the design-time assigner emits search steps, the
    /// epoch engine emits [`TelemetryEvent::EpochAdvanced`] and
    /// [`TelemetryEvent::SchemeSwitched`], and sharded fan-outs emit
    /// per-shard wall-clock timings.  The report itself is bit-identical
    /// with or without a recorder (property-tested).
    #[must_use]
    pub fn telemetry(mut self, recorder: RecorderHandle) -> Self {
        self.recorder = recorder;
        self
    }

    /// Points the whole manager fleet at an externally-owned shared
    /// operating-point cache: every link joins `cache`'s storage, so
    /// repeated scenarios (sweeps, A/B runs) reuse each other's solves.  The
    /// cache handle carries its own temperature resolution; combining it
    /// with a conflicting [`ScenarioBuilder::cache_resolution`] override is
    /// rejected by [`ScenarioBuilder::build`].  Like the recorder, the cache
    /// is a side channel: the report is bit-identical with or without it —
    /// only the solver-cache counters reflect the warm start.
    #[must_use]
    pub fn shared_cache(mut self, cache: SharedOpCache) -> Self {
        self.shared_cache = Some(cache);
        self
    }

    /// Persists the fleet's operating-point cache at `path`: if the file
    /// exists it is loaded before the run (warm start — a repeat of the same
    /// sweep reports zero solver invocations), and the cache is saved back
    /// after [`Scenario::run`] completes.  The snapshot is rendered through
    /// the deterministic telemetry JSON kernel, so its bytes are reproducible
    /// for a given entry set.  Mutually exclusive with
    /// [`ScenarioBuilder::per_link_caches`].
    #[must_use]
    pub fn cache_snapshot(mut self, path: impl Into<PathBuf>) -> Self {
        self.snapshot_path = Some(path.into());
        self
    }

    /// Forces the pre-scale-out fleet layout: one manager with its own
    /// private cache per ONI, even when the fleet is homogeneous.  Physics
    /// are bit-identical to the default shared-cache engine (property-
    /// tested); only the cache counters differ, since every ONI re-solves
    /// points its neighbours already computed.  Kept for A/B comparison and
    /// for isolating one channel's solver traffic.
    #[must_use]
    pub fn per_link_caches(mut self) -> Self {
        self.per_link_caches = true;
        self
    }

    /// Validates the configuration and prepares the scenario: builds the
    /// manager fleet, generates the traffic, and solves the initial
    /// operating points.
    ///
    /// # Errors
    ///
    /// * [`SimulationError::InvalidConfiguration`] — see
    ///   [`ScenarioConfig::validate`];
    /// * [`SimulationError::NoFeasibleConfiguration`] when the traffic class
    ///   cannot be served at some required temperature.
    pub fn build(self) -> Result<Scenario, SimulationError> {
        Scenario::prepare(
            self.config,
            self.recorder,
            FleetCacheSetup {
                shared_cache: self.shared_cache,
                snapshot_path: self.snapshot_path,
                per_link_caches: self.per_link_caches,
            },
        )
    }
}

/// How the fleet's operating-point caches are wired: the builder's
/// side-channel cache knobs, collected for [`Scenario::prepare`].
#[derive(Debug, Default)]
struct FleetCacheSetup {
    shared_cache: Option<SharedOpCache>,
    snapshot_path: Option<PathBuf>,
    per_link_caches: bool,
}

impl FleetCacheSetup {
    /// Resolves the fleet cache: the injected handle, a warm-started load of
    /// the snapshot file, or a fresh cache at the configured resolution.
    /// Returns `None` in per-link mode (every link keeps a private cache).
    fn resolve(&self, config: &ScenarioConfig) -> Result<Option<SharedOpCache>, SimulationError> {
        let invalid = |reason: String| SimulationError::InvalidConfiguration { reason };
        if self.per_link_caches {
            if self.shared_cache.is_some() || self.snapshot_path.is_some() {
                return Err(invalid(
                    "per-link caches cannot be combined with a shared cache or a cache snapshot"
                        .into(),
                ));
            }
            return Ok(None);
        }
        let check_resolution = |cache: &SharedOpCache, origin: &str| {
            if let Some(buckets) = config.cache_buckets_per_kelvin {
                if cache.buckets_per_kelvin() != buckets {
                    return Err(invalid(format!(
                        "{origin} holds {} buckets per kelvin but the scenario configures \
                         {buckets}; entries solved on one grid cannot be served on another",
                        cache.buckets_per_kelvin()
                    )));
                }
            }
            Ok(())
        };
        if let Some(cache) = &self.shared_cache {
            check_resolution(cache, "the injected shared cache")?;
            if self.snapshot_path.is_some() {
                return Err(invalid(
                    "an injected shared cache cannot be combined with a cache snapshot; \
                     pick one owner for the warm start"
                        .into(),
                ));
            }
            return Ok(Some(cache.clone()));
        }
        if let Some(path) = &self.snapshot_path {
            if path.exists() {
                let cache = SharedOpCache::load(path)
                    .map_err(|e| invalid(format!("cache snapshot failed to load: {e}")))?;
                check_resolution(&cache, "the loaded cache snapshot")?;
                return Ok(Some(cache));
            }
            // First run: start cold, save after the run.
            let cache = match config.cache_buckets_per_kelvin {
                Some(buckets) => {
                    SharedOpCache::with_resolution(buckets).map_err(|e| invalid(e.to_string()))?
                }
                None => SharedOpCache::new(),
            };
            return Ok(Some(cache));
        }
        Ok(None)
    }
}

/// Final state of one destination channel after a run: the unified per-ONI
/// report.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OniReport {
    /// Destination ONI index.
    pub oni: usize,
    /// Messages delivered to this destination.
    pub delivered_messages: u64,
    /// Channel temperature at the end of the run, in °C.  Under the
    /// per-message policy this is the temperature of the last decision
    /// applied to the channel (the ambient baseline when it saw no
    /// traffic).
    pub final_temperature_c: f64,
    /// Hottest temperature the channel saw, in °C (same caveat).
    pub peak_temperature_c: f64,
    /// Scheme the channel ended the run on.
    pub scheme: EccScheme,
    /// Channel power of the final operating point, in mW.
    pub channel_power_mw: f64,
    /// Thermal-tuning share of the final per-lane power, in mW.
    pub tuning_power_mw_per_lane: f64,
    /// Number of scheme changes the channel went through.
    pub scheme_switches: u64,
    /// Manager queries attributed to this destination channel: epoch-gated
    /// re-asks, or (per-message policy) the distinct decision solves this
    /// destination's traffic triggered beyond the baseline.  Sums to
    /// [`RunReport::decisions`] across the fleet.
    pub decisions: u64,
    /// Re-asks for this destination the manager could not serve (always 0
    /// under the per-message policy, which fails the build instead).  Sums
    /// to [`RunReport::infeasible_requests`].
    pub infeasible_requests: u64,
    /// Static (laser + ring heater) energy charged to this channel, in pJ.
    pub static_energy_pj: f64,
    /// Dynamic (modulation + codec) energy charged to this channel, in pJ.
    pub dynamic_energy_pj: f64,
}

/// Outcome of one scenario run: the unified report of every entry point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// The configuration that was simulated.
    pub config: ScenarioConfig,
    /// Scheme of the initial operating point of ONI 0's channel.
    pub baseline_scheme: EccScheme,
    /// Channel power of that baseline point, in mW.
    pub baseline_channel_power_mw: f64,
    /// Decoded BER of that baseline point.
    pub baseline_decoded_ber: f64,
    /// Aggregate traffic statistics (energy includes the static share).
    pub stats: SimStats,
    /// Final per-destination state, sorted by ONI index (one entry per ONI).
    pub per_oni: Vec<OniReport>,
    /// Number of epochs stepped (0 under the per-message policy).
    pub epochs: u64,
    /// Manager queries: epoch-gated re-asks, or distinct per-message
    /// decision solves beyond the baseline.
    pub decisions: u64,
    /// Epoch-gated re-asks the manager could not serve (the channel kept its
    /// previous operating point).
    pub infeasible_requests: u64,
    /// Messages delivered on a scheme other than their destination's
    /// baseline.
    pub reconfigured_messages: u64,
    /// Every scheme change, in time order.
    pub switch_log: Vec<SchemeSwitch>,
    /// Temperature envelope per epoch (empty under the per-message policy).
    pub trajectory: Vec<EpochSample>,
    /// Phase boundaries crossed while playing a scheduled workload, in time
    /// order (empty under the per-message policy or an unscheduled model).
    pub phases: Vec<PhaseTransition>,
    /// Aggregated operating-point cache counters of the manager fleet:
    /// `misses` is the number of actual photonic-solver invocations.
    pub solver_cache: CacheCounters,
}

impl RunReport {
    /// Total scheme switches across the interconnect.
    #[must_use]
    pub fn total_switches(&self) -> u64 {
        self.switch_log.len() as u64
    }

    /// Number of distinct schemes in use at the end of the run.
    #[must_use]
    pub fn distinct_final_schemes(&self) -> usize {
        self.per_oni
            .iter()
            .map(|o| o.scheme)
            .collect::<std::collections::BTreeSet<_>>()
            .len()
    }

    /// The per-ONI entries that actually received traffic.
    pub fn active_onis(&self) -> impl Iterator<Item = &OniReport> {
        self.per_oni.iter().filter(|o| o.delivered_messages > 0)
    }
}

/// Per-destination live state during an epoch-gated run.
#[derive(Debug, Clone, Copy)]
struct ChannelState {
    params: DecisionParams,
    /// Scheme of this channel's own initial baseline (with a heterogeneous
    /// fleet, different ONIs can legitimately start on different schemes).
    baseline_scheme: EccScheme,
    /// Temperature (bucket centre) of the last decision, in °C.
    decision_temperature_c: f64,
    /// Most recent scheme switch: the scheme switched *away from* and the
    /// channel temperature at the switch (the revert-hysteresis anchor).
    last_switch: Option<(EccScheme, f64)>,
    /// Transfer in flight: operating point captured at grant time, and when
    /// it started.
    active: Option<(DecisionParams, SimTime)>,
    peak_temperature_c: f64,
    switches: u64,
}

/// Outcome of playing one destination channel's events through one epoch:
/// everything the merge step folds back into the global run state.  The
/// fold always walks destinations in ascending order, so the report is
/// independent of how the playback was scheduled across threads.
#[derive(Debug)]
struct ChannelPlayback {
    channel: ChannelState,
    arbiter: TokenArbiter,
    /// Completions scheduled past the epoch boundary, re-queued globally.
    carryover: Vec<Event>,
    /// Latest event time this channel processed.
    local_makespan: SimTime,
    delivered: u64,
    delivered_bits: u64,
    hops: u64,
    busy_ns: f64,
    /// Dynamic energy charged inside this epoch, in pJ.
    dynamic_pj: f64,
    reconfigured: u64,
    total_latency_ns: f64,
    max_latency_ns: f64,
    deadline_misses: u64,
    corrupted_words: u64,
    corrupted_bits: u64,
    corrected_words: u64,
}

/// The error-injection RNG stream of one message on one hop, derived from
/// the scenario seed, the message id and the hop index (SplitMix64 mixing,
/// like [`RingVariationConfig::oni_variation`]).  Tying the stream to the
/// message instead of the playback position keeps the sampled errors
/// identical whether the epoch events are played serially or sharded by
/// destination channel.
fn hop_error_rng(seed: u64, message: MessageId, hop: u64) -> StdRng {
    StdRng::seed_from_u64(onoc_thermal::bank::splitmix64_mix(
        (seed ^ 0x0E44_5EED_0DD5_EED5)
            .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(message.0.wrapping_add(1)))
            .wrapping_add(0xD1B5_4A32_D192_ED03u64.wrapping_mul(hop.wrapping_add(1))),
    ))
}

/// Samples the residual-error outcome of one transfer: `(corrupted words,
/// corrupted bits, corrected words)` over `words` 64-bit words at `point`.
fn sample_word_errors(rng: &mut StdRng, words: u64, point: &DecisionParams) -> (u64, u64, u64) {
    let mut corrupted_words = 0u64;
    let mut corrupted_bits = 0u64;
    let mut corrected_words = 0u64;
    for _ in 0..words {
        if rng.gen_bool(point.word_error_probability.clamp(0.0, 1.0)) {
            corrupted_words += 1;
            corrupted_bits += conditional_corrupted_bits(rng, 64, point.decoded_ber);
        }
        if rng.gen_bool(point.corrected_probability.clamp(0.0, 1.0)) {
            corrected_words += 1;
        }
    }
    (corrupted_words, corrupted_bits, corrected_words)
}

/// Per-ONI bookkeeping shared by both run loops.
#[derive(Debug, Clone, Default)]
struct OniAccumulators {
    delivered: Vec<u64>,
    static_pj: Vec<f64>,
    dynamic_pj: Vec<f64>,
}

impl OniAccumulators {
    fn new(oni_count: usize) -> Self {
        Self {
            delivered: vec![0; oni_count],
            static_pj: vec![0.0; oni_count],
            dynamic_pj: vec![0.0; oni_count],
        }
    }
}

/// A fully-prepared scenario, ready to [`Scenario::run`].
#[derive(Debug)]
pub struct Scenario {
    config: ScenarioConfig,
    policy: DecisionPolicy,
    /// The manager fleets, one per design phase: `managers[phase][oni]`.
    /// All runs keep exactly one fleet unless per-phase design assignments
    /// are configured over a scheduled model; within a fleet there is one
    /// manager per destination ONI for heterogeneous fleets, or a single
    /// shared manager (and operating-point cache) when every channel is the
    /// same chip.
    managers: Vec<Vec<LinkManager>>,
    /// Distinct operating-point decisions: the baseline of ONI 0 first,
    /// then (per-message policy) one entry per distinct decision bucket.
    decisions: Vec<ManagerDecision>,
    /// Per-message policy: decision index per message (baseline when
    /// absent).
    assignment: BTreeMap<MessageId, usize>,
    /// Per-message policy: manager solves performed during precomputation.
    precompute_queries: u64,
    /// Per-message policy: those solves attributed to the destination ONI
    /// whose message triggered them.
    precompute_per_oni: Vec<u64>,
    /// Epoch-gated policy: initial operating point per ONI.
    baselines: Vec<DecisionParams>,
    /// Epoch-gated policy: the instantiated thermal model.
    model: Option<Box<dyn ThermalModel>>,
    /// Design-time wavelength assignments, `assignments[phase][oni]`
    /// (empty when the scenario runs unassigned; a single phase-0 fleet
    /// unless per-phase assignments are configured).
    assignments: Vec<Vec<WavelengthAssignment>>,
    /// Resolved per-flow routes of the configured topology (`None` without
    /// one: the canonical ring needs no table — every flow is the single
    /// hop onto its destination's reader channel).
    routes: Option<RouteTable>,
    messages: BTreeMap<MessageId, Message>,
    injection_order: Vec<MessageId>,
    rng: StdRng,
    /// Telemetry sink shared with the manager fleet (see
    /// [`ScenarioBuilder::telemetry`]).
    recorder: RecorderHandle,
    /// The shared operating-point cache the whole fleet resolves through,
    /// when one is in play (injected, snapshot-loaded, or snapshot-fresh);
    /// `None` when every manager owns a private cache.
    fleet_cache: Option<SharedOpCache>,
    /// Where to save the fleet cache after the run (see
    /// [`ScenarioBuilder::cache_snapshot`]).
    snapshot_path: Option<PathBuf>,
}

impl Scenario {
    /// Validates `config` and prepares the run (manager fleet, traffic,
    /// initial operating points).
    ///
    /// # Errors
    ///
    /// See [`ScenarioBuilder::build`].
    pub fn new(config: ScenarioConfig) -> Result<Self, SimulationError> {
        Self::new_traced(config, RecorderHandle::none())
    }

    /// [`Scenario::new`] with a telemetry sink threaded through the manager
    /// fleet, the design-time assigner and the run engines (see
    /// [`ScenarioBuilder::telemetry`]).
    ///
    /// # Errors
    ///
    /// See [`ScenarioBuilder::build`].
    pub fn new_traced(
        config: ScenarioConfig,
        recorder: RecorderHandle,
    ) -> Result<Self, SimulationError> {
        Self::prepare(config, recorder, FleetCacheSetup::default())
    }

    /// The full preparation path behind [`ScenarioBuilder::build`]:
    /// [`Scenario::new_traced`] plus the builder's cache side channels.
    fn prepare(
        config: ScenarioConfig,
        recorder: RecorderHandle,
        cache_setup: FleetCacheSetup,
    ) -> Result<Self, SimulationError> {
        config.validate()?;
        let policy = config.resolved_policy();
        let n = config.oni_count;
        let mut fleet_cache = cache_setup.resolve(&config)?;
        let topology_heterogeneous = config.topology_fleet_is_heterogeneous();
        if fleet_cache.is_none() && !cache_setup.per_link_caches && topology_heterogeneous {
            // Crosstalk-heterogeneous fabric: stamp one fleet-wide shared
            // cache so links whose derived stacks coincide reuse each
            // other's solves — keys carry the stack fingerprint, so mixing
            // distinct stacks in one store is safe.
            fleet_cache = Some(match config.cache_buckets_per_kelvin {
                Some(buckets) => SharedOpCache::with_resolution(buckets).map_err(|e| {
                    SimulationError::InvalidConfiguration {
                        reason: e.to_string(),
                    }
                })?,
                None => SharedOpCache::new(),
            });
        }
        // A homogeneous fleet shares one manager (and one operating-point
        // cache); a heterogeneous fleet — per-ONI chip instances, per-ONI
        // design-time assignments, or crosstalk-scaled topology stacks —
        // gets one manager per ONI, as does the per-link-cache A/B engine.
        let manager_count = if config.variation.is_some()
            || config.assignment.is_some()
            || cache_setup.per_link_caches
            || topology_heterogeneous
        {
            n
        } else {
            1
        };
        // Design-time wavelength assignment: search each ONI's permutation
        // against the thermal model's own design temperatures before the
        // first operating point is ever solved.  Per-phase mode searches one
        // fleet per schedule phase against that phase's own heat map;
        // otherwise a single fleet is searched against the worst-case fold.
        let design = match config.assignment {
            Some(spec) => {
                let maps = if spec.per_phase {
                    config.thermal.phase_design_temperatures(n)
                } else {
                    config.thermal.design_temperatures(n).map(|map| vec![map])
                }
                .map_err(|e| SimulationError::InvalidConfiguration {
                    reason: e.to_string(),
                })?;
                Some((spec, maps))
            }
            None => None,
        };
        let phase_fleets = design.as_ref().map_or(1, |(_, maps)| maps.len());
        let mut assignments: Vec<Vec<WavelengthAssignment>> = Vec::new();
        let managers: Vec<Vec<LinkManager>> = (0..phase_fleets)
            .map(|phase| {
                let mut fleet_assignments: Vec<WavelengthAssignment> = Vec::new();
                let fleet: Vec<LinkManager> = (0..manager_count)
                    .map(|oni| {
                        let mut link = config
                            .oni_link(oni, fleet_cache.as_ref())
                            .with_telemetry(recorder.clone());
                        if let Some((spec, maps)) = &design {
                            let assigner =
                                link.wavelength_assigner(spec.strategy, spec.oni_seed(oni));
                            let assignment = assigner.assign_traced(
                                &link.ring_bank_state_at(maps[phase][oni]),
                                &recorder,
                            );
                            fleet_assignments.push(assignment.clone());
                            link = link
                                .with_wavelength_assignment(assignment)
                                .expect("the assigner covers the link's own wavelength grid");
                        }
                        LinkManager::new(
                            link,
                            EccScheme::paper_schemes().to_vec(),
                            config.nominal_ber,
                        )
                    })
                    .collect();
                if design.is_some() {
                    assignments.push(fleet_assignments);
                }
                fleet
            })
            .collect();

        let generated = TrafficGenerator::new(
            config.pattern,
            config.oni_count,
            config.words_per_message,
            config.class,
            config.mean_inter_arrival_ns,
            config.deadline_slack_ns,
            config.seed,
        )
        .generate();

        let mut decisions: Vec<ManagerDecision> = Vec::new();
        let mut assignment: BTreeMap<MessageId, usize> = BTreeMap::new();
        let mut precompute_queries = 0u64;
        let mut precompute_per_oni = vec![0u64; n];
        let mut baselines: Vec<DecisionParams> = Vec::new();
        let mut model: Option<Box<dyn ThermalModel>> = None;

        let infeasible = || SimulationError::NoFeasibleConfiguration {
            class: config.class,
        };
        let manager_index = |oni: usize| if manager_count == 1 { 0 } else { oni };

        match policy {
            DecisionPolicy::PerMessage { quantization_k } => {
                // The baseline of ONI 0's chip at the calibration ambient,
                // then one decision per distinct (manager, temperature
                // bucket) a message injection touches.
                let baseline = managers[0][0]
                    .configure(config.class)
                    .ok_or_else(infeasible)?;
                decisions.push(baseline);
                let ThermalModelSpec::Prescribed { environment } = &config.thermal else {
                    unreachable!("validated: per-message policy implies a prescribed model");
                };
                let mut cache: BTreeMap<(usize, i64), usize> = BTreeMap::new();
                for message in &generated {
                    let temperature = environment.temperature_at(
                        message.destination,
                        config.oni_count,
                        message.injected_at.as_nanos(),
                    );
                    let bucket = bucket_index(temperature.value(), quantization_k);
                    let key = (manager_index(message.destination), bucket);
                    let index = match cache.get(&key) {
                        Some(&index) => index,
                        None => {
                            let bucket_temperature =
                                Celsius::new(bucket_centre(bucket, quantization_k));
                            let decision = managers[0][key.0]
                                .configure_at(config.class, bucket_temperature)
                                .ok_or_else(infeasible)?;
                            precompute_queries += 1;
                            precompute_per_oni[message.destination] += 1;
                            decisions.push(decision);
                            cache.insert(key, decisions.len() - 1);
                            decisions.len() - 1
                        }
                    };
                    assignment.insert(message.id, index);
                }
            }
            DecisionPolicy::EpochGated { quantization_k, .. } => {
                let built = config.thermal.instantiate(n);
                // Initial operating point per ONI at its own (bucketed)
                // starting temperature; distinct (manager, bucket) pairs are
                // solved once.
                let initial: Vec<(usize, i64)> = (0..n)
                    .map(|oni| {
                        let t0 = built.temperature_of(oni).value();
                        (manager_index(oni), bucket_index(t0, quantization_k))
                    })
                    .collect();
                // Initial solves run on the phase-0 fleet: the run starts
                // inside phase 0, whatever the schedule holds later.
                let solve = |&(midx, bucket): &(usize, i64)| {
                    managers[0][midx]
                        .configure_at(
                            config.class,
                            Celsius::new(bucket_centre(bucket, quantization_k)),
                        )
                        .ok_or_else(infeasible)
                };
                let solved: Vec<ManagerDecision> =
                    if manager_count == n && n > 1 && config.shards() > 1 {
                        // Heterogeneous fleet: every ONI owns its manager, so
                        // the expensive first solves shard cleanly.
                        parallel_map_traced(
                            &initial,
                            config.shards(),
                            solve,
                            &recorder,
                            "initial-solve",
                        )
                        .into_iter()
                        .collect::<Result<_, _>>()?
                    } else {
                        // Shared manager: solve each distinct bucket exactly
                        // once (first-touch order), sharding the distinct
                        // batch across threads when it is large enough — the
                        // solve-once cache issues the same query multiset as
                        // the serial walk, so counters stay deterministic.
                        let mut distinct: Vec<(usize, i64)> = Vec::new();
                        let mut index_of: BTreeMap<(usize, i64), usize> = BTreeMap::new();
                        for key in &initial {
                            if !index_of.contains_key(key) {
                                index_of.insert(*key, distinct.len());
                                distinct.push(*key);
                            }
                        }
                        let solved_distinct: Vec<ManagerDecision> =
                            if distinct.len() > 1 && config.shards() > 1 {
                                parallel_map_traced(
                                    &distinct,
                                    config.shards(),
                                    solve,
                                    &recorder,
                                    "initial-solve",
                                )
                                .into_iter()
                                .collect::<Result<_, _>>()?
                            } else {
                                distinct.iter().map(solve).collect::<Result<_, _>>()?
                            };
                        initial
                            .iter()
                            .map(|key| solved_distinct[index_of[key]])
                            .collect()
                    };
                decisions.push(solved[0]);
                baselines = solved.iter().map(DecisionParams::from_decision).collect();
                model = Some(built);
            }
        }

        // Resolve the fabric's route table once, before any traffic plays:
        // deterministic shortest paths with lexicographic tie-breaks, one
        // `route_resolved` event per ordered flow.
        let routes = config.topology.as_ref().map(|fabric| {
            let table = Router::resolve(&fabric.topology);
            for route in table.iter() {
                recorder.emit(|| TelemetryEvent::RouteResolved {
                    source: route.source as u64,
                    destination: route.destination as u64,
                    hops: route.hop_count() as u64,
                    electrical_hops: route.electrical_hops() as u64,
                });
            }
            table
        });

        let injection_order = generated.iter().map(|m| m.id).collect();
        let messages = generated.into_iter().map(|m| (m.id, m)).collect();
        Ok(Self {
            rng: StdRng::seed_from_u64(config.seed ^ 0xC0FF_EE00),
            policy,
            config,
            routes,
            managers,
            decisions,
            assignment,
            precompute_queries,
            precompute_per_oni,
            baselines,
            model,
            assignments,
            messages,
            injection_order,
            recorder,
            fleet_cache,
            snapshot_path: cache_setup.snapshot_path,
        })
    }

    /// The configuration being simulated.
    #[must_use]
    pub fn config(&self) -> &ScenarioConfig {
        &self.config
    }

    /// The decision policy in effect.
    #[must_use]
    pub fn policy(&self) -> DecisionPolicy {
        self.policy
    }

    /// Number of messages that will be injected.
    #[must_use]
    pub fn message_count(&self) -> usize {
        self.messages.len()
    }

    /// The initial operating point of ONI 0's channel.
    #[must_use]
    pub fn baseline_decision(&self) -> &ManagerDecision {
        &self.decisions[0]
    }

    /// All distinct operating points prepared before the run (baseline
    /// first; per-message policy adds one entry per decision bucket).
    #[must_use]
    pub fn decisions(&self) -> &[ManagerDecision] {
        &self.decisions
    }

    /// The design-time wavelength assignments of the fleet, one per ONI —
    /// empty when the scenario runs unassigned (see
    /// [`ScenarioBuilder::design_assignment`]).  With per-phase assignments
    /// this is the phase-0 fleet; see [`Scenario::phase_assignments`].
    #[must_use]
    pub fn assignments(&self) -> &[WavelengthAssignment] {
        self.assignments.first().map_or(&[], Vec::as_slice)
    }

    /// The design-time assignment fleets per schedule phase,
    /// `phase_assignments()[phase][oni]` — a single entry unless
    /// [`DesignAssignmentConfig::per_phase`] is set over a scheduled model,
    /// empty when the scenario runs unassigned.
    #[must_use]
    pub fn phase_assignments(&self) -> &[Vec<WavelengthAssignment>] {
        &self.assignments
    }

    /// The manager serving destination `oni` during design phase `phase`
    /// (clamped: without per-phase fleets every phase shares fleet 0).
    fn manager_for(&self, phase: usize, oni: usize) -> &LinkManager {
        let fleet = &self.managers[phase.min(self.managers.len() - 1)];
        if fleet.len() == 1 {
            &fleet[0]
        } else {
            &fleet[oni]
        }
    }

    /// Aggregated operating-point cache counters across the manager fleet.
    /// With a fleet-wide cache the handle's own counters are authoritative
    /// (a per-manager fold would double-count the shared traffic).
    fn cache_counters(&self) -> CacheCounters {
        if let Some(cache) = &self.fleet_cache {
            return cache.counters();
        }
        self.managers
            .iter()
            .flatten()
            .fold(CacheCounters::default(), |mut total, manager| {
                total.merge(manager.link().cache_counters());
                total
            })
    }

    /// The fleet-wide shared operating-point cache, when one is in play
    /// (see [`ScenarioBuilder::shared_cache`] /
    /// [`ScenarioBuilder::cache_snapshot`]); `None` when every manager owns
    /// a private cache.
    #[must_use]
    pub fn shared_cache(&self) -> Option<SharedOpCache> {
        self.fleet_cache.clone()
    }

    /// Runs the scenario to completion.  With a snapshot path configured,
    /// the fleet cache is saved after the run.
    ///
    /// # Panics
    ///
    /// Panics when the cache snapshot cannot be written.
    #[must_use]
    pub fn run(self) -> RunReport {
        let persist = match (&self.fleet_cache, &self.snapshot_path) {
            (Some(cache), Some(path)) => Some((cache.clone(), path.clone())),
            _ => None,
        };
        let report = match self.policy {
            DecisionPolicy::PerMessage { .. } => self.run_per_message(),
            DecisionPolicy::EpochGated { .. } => self.run_epoch_gated(),
        };
        if let Some((cache, path)) = persist {
            // A warm-started run that added no entries leaves the snapshot
            // bytes untouched instead of rewriting the whole file.
            if cache.is_dirty() || !path.exists() {
                cache
                    .save(&path)
                    .unwrap_or_else(|e| panic!("cache snapshot {}: {e}", path.display()));
            }
        }
        report
    }

    /// The per-message engine: every message rides the decision precomputed
    /// for its injection-time destination temperature.
    #[allow(clippy::too_many_lines)]
    fn run_per_message(mut self) -> RunReport {
        let n = self.config.oni_count;
        let params: Vec<DecisionParams> = self
            .decisions
            .iter()
            .map(DecisionParams::from_decision)
            .collect();
        let baseline = params[0];

        let mut stats = SimStats {
            injected_messages: self.messages.len() as u64,
            ..SimStats::default()
        };
        let mut arbiters: BTreeMap<usize, TokenArbiter> = BTreeMap::new();
        let mut queue: BinaryHeap<Reverse<Event>> = BinaryHeap::new();
        let mut sequence = 0u64;
        for &id in &self.injection_order {
            let message = self.messages[&id];
            queue.push(Reverse(Event {
                time: message.injected_at,
                sequence,
                kind: EventKind::Inject,
                message: id,
            }));
            sequence += 1;
        }

        let mut busy: BTreeMap<usize, bool> = BTreeMap::new();
        let mut makespan = SimTime::ZERO;
        // Static-power residency: every destination channel holds a decision
        // (initially the baseline) from t = 0; its laser + heater power
        // burns over wall-clock time regardless of occupancy.  Intervals are
        // closed lazily, whenever a transfer starts on a decision with a
        // different static power and at the end of the run.
        let mut statics: Vec<(usize, SimTime)> = vec![(0, SimTime::ZERO); n];
        let mut acc = OniAccumulators::new(n);
        // Last decision applied per destination, switch bookkeeping, and how
        // many messages ran on a non-baseline scheme.
        let mut last_per_oni: Vec<Option<usize>> = vec![None; n];
        let mut peak_t: Vec<f64> = vec![baseline.temperature_c; n];
        let mut switches: Vec<u64> = vec![0; n];
        let mut switch_log: Vec<SchemeSwitch> = Vec::new();
        let mut reconfigured_messages = 0u64;

        while let Some(Reverse(event)) = queue.pop() {
            makespan = makespan.max_time(event.time);
            let message = self.messages[&event.message];
            let index = self.assignment.get(&event.message).copied().unwrap_or(0);
            let point = params[index];
            match event.kind {
                EventKind::Inject => {
                    let arbiter = arbiters.entry(message.destination).or_default();
                    arbiter.request(message.source, message.id);
                    Self::per_message_try_start(
                        message.destination,
                        event.time,
                        &mut arbiters,
                        &mut busy,
                        &mut queue,
                        &mut sequence,
                        &self.messages,
                        &params,
                        &self.assignment,
                        &mut statics,
                        &mut stats,
                        &mut acc,
                    );
                }
                EventKind::Complete => {
                    let destination = message.destination;
                    let duration_ns = point.transfer_duration(message.words).value();
                    stats.delivered_messages += 1;
                    // The per-message policy only admits single-hop fabrics:
                    // every delivery is exactly one hop onto the
                    // destination's reader channel.
                    stats.hops_traversed += 1;
                    if self.routes.is_some() {
                        self.recorder.emit(|| TelemetryEvent::HopTraversed {
                            message: message.id.0,
                            node: destination as u64,
                            hop_index: 0,
                            electrical: false,
                            time_ns: event.time.as_nanos(),
                        });
                    }
                    stats.delivered_bits += message.payload_bits();
                    stats.channel_busy_ns += duration_ns;
                    // Only the transfer-gated share is charged per transfer;
                    // the static share accrues over wall-clock residency.
                    stats.energy_pj += point.dynamic_power_mw * duration_ns;
                    acc.dynamic_pj[destination] += point.dynamic_power_mw * duration_ns;
                    acc.delivered[destination] += 1;
                    let latency = event.time.since(message.injected_at).value();
                    stats.total_latency_ns += latency;
                    stats.max_latency_ns = stats.max_latency_ns.max(latency);
                    if message.misses_deadline(event.time) {
                        stats.deadline_misses += 1;
                    }
                    for _ in 0..message.words {
                        if self
                            .rng
                            .gen_bool(point.word_error_probability.clamp(0.0, 1.0))
                        {
                            stats.corrupted_words += 1;
                            stats.corrupted_bits +=
                                conditional_corrupted_bits(&mut self.rng, 64, point.decoded_ber);
                        }
                        if self
                            .rng
                            .gen_bool(point.corrected_probability.clamp(0.0, 1.0))
                        {
                            stats.corrected_words += 1;
                        }
                    }
                    // Unified switch bookkeeping: a delivery on a different
                    // scheme than the destination's previous delivery is a
                    // per-message-mode scheme switch.
                    let previous_scheme = last_per_oni[destination]
                        .map_or(baseline.scheme, |last| params[last].scheme);
                    if point.scheme != previous_scheme {
                        switches[destination] += 1;
                        self.recorder.emit(|| TelemetryEvent::SchemeSwitched {
                            oni: destination as u64,
                            from: previous_scheme.to_string(),
                            to: point.scheme.to_string(),
                            time_ns: event.time.as_nanos(),
                            temperature_c: point.temperature_c,
                            epoch: None,
                        });
                        switch_log.push(SchemeSwitch {
                            time_ns: event.time.as_nanos(),
                            oni: destination,
                            from: previous_scheme,
                            to: point.scheme,
                            temperature_c: point.temperature_c,
                            // The per-message engine steps no epochs; the
                            // field is still carried so every switch-log
                            // entry has the same shape.
                            epoch: None,
                        });
                    }
                    peak_t[destination] = peak_t[destination].max(point.temperature_c);
                    last_per_oni[destination] = Some(index);
                    if point.scheme != baseline.scheme {
                        reconfigured_messages += 1;
                    }
                    let arbiter = arbiters
                        .get_mut(&destination)
                        .expect("completion implies a prior grant");
                    arbiter.release(message.id);
                    busy.insert(destination, false);
                    Self::per_message_try_start(
                        destination,
                        event.time,
                        &mut arbiters,
                        &mut busy,
                        &mut queue,
                        &mut sequence,
                        &self.messages,
                        &params,
                        &self.assignment,
                        &mut statics,
                        &mut stats,
                        &mut acc,
                    );
                }
            }
        }

        // Close the static-power residency of every destination channel at
        // the end of the run: an idle channel's laser and heaters are not
        // free.  A zero-traffic run has zero makespan and charges nothing.
        for (oni, &(index, since)) in statics.iter().enumerate() {
            let residency_pj = params[index].static_power_mw * makespan.since(since).value();
            stats.energy_pj += residency_pj;
            stats.static_energy_pj += residency_pj;
            acc.static_pj[oni] += residency_pj;
        }

        stats.makespan_ns = makespan.as_nanos();
        let per_oni = (0..n)
            .map(|oni| {
                let p = last_per_oni[oni].map_or(baseline, |last| params[last]);
                OniReport {
                    oni,
                    delivered_messages: acc.delivered[oni],
                    final_temperature_c: p.temperature_c,
                    peak_temperature_c: peak_t[oni],
                    scheme: p.scheme,
                    channel_power_mw: p.channel_power_mw,
                    tuning_power_mw_per_lane: p.tuning_power_mw,
                    scheme_switches: switches[oni],
                    decisions: self.precompute_per_oni[oni],
                    infeasible_requests: 0,
                    static_energy_pj: acc.static_pj[oni],
                    dynamic_energy_pj: acc.dynamic_pj[oni],
                }
            })
            .collect();
        RunReport {
            baseline_scheme: baseline.scheme,
            baseline_channel_power_mw: baseline.channel_power_mw,
            baseline_decoded_ber: baseline.decoded_ber,
            stats,
            per_oni,
            epochs: 0,
            decisions: self.precompute_queries,
            infeasible_requests: 0,
            reconfigured_messages,
            switch_log,
            trajectory: Vec::new(),
            phases: Vec::new(),
            solver_cache: self.cache_counters(),
            config: self.config,
        }
    }

    /// Grants the next pending transfer on `destination` (per-message mode),
    /// re-basing the destination's static-power residency when the granted
    /// decision carries a different static power.
    #[allow(clippy::too_many_arguments)]
    fn per_message_try_start(
        destination: usize,
        now: SimTime,
        arbiters: &mut BTreeMap<usize, TokenArbiter>,
        busy: &mut BTreeMap<usize, bool>,
        queue: &mut BinaryHeap<Reverse<Event>>,
        sequence: &mut u64,
        messages: &BTreeMap<MessageId, Message>,
        params: &[DecisionParams],
        assignment: &BTreeMap<MessageId, usize>,
        statics: &mut [(usize, SimTime)],
        stats: &mut SimStats,
        acc: &mut OniAccumulators,
    ) {
        if *busy.get(&destination).unwrap_or(&false) {
            return;
        }
        let arbiter = arbiters.entry(destination).or_default();
        if let Some((_, id)) = arbiter.grant() {
            let message = messages[&id];
            let index = assignment.get(&id).copied().unwrap_or(0);
            let point = params[index];
            // Applying a decision with a different static power re-bases the
            // destination's residency interval at the transfer start.
            let (current, since) = statics[destination];
            if params[current].static_power_mw != point.static_power_mw {
                let residency_pj = params[current].static_power_mw * now.since(since).value();
                stats.energy_pj += residency_pj;
                stats.static_energy_pj += residency_pj;
                acc.static_pj[destination] += residency_pj;
                statics[destination] = (index, now);
            }
            let duration = point.transfer_duration(message.words);
            busy.insert(destination, true);
            queue.push(Reverse(Event {
                time: now.advanced_by(duration),
                sequence: *sequence,
                kind: EventKind::Complete,
                message: id,
            }));
            *sequence += 1;
        }
    }

    /// One epoch-gated re-ask for `channel` (destination `oni`) at
    /// temperature `t_now`, after the (cheap, serial) deadband gate has
    /// already fired: quantization, the scheme-revert hysteresis and the
    /// infeasibility handling of the feedback loop.  Pure in everything but
    /// the manager's memoized cache, so heterogeneous fleets shard it
    /// across threads with bit-identical results.
    #[allow(clippy::too_many_arguments)]
    fn reask(
        &self,
        mut channel: ChannelState,
        oni: usize,
        phase: usize,
        t_now: f64,
        end_ns: f64,
        epoch: u64,
    ) -> (ChannelState, Option<SchemeSwitch>, u64) {
        let DecisionPolicy::EpochGated {
            quantization_k,
            revert_hysteresis_k,
            ..
        } = self.policy
        else {
            unreachable!("re-asks only happen under the epoch-gated policy");
        };
        let bucket_t = bucket_centre(bucket_index(t_now, quantization_k), quantization_k);
        match self
            .manager_for(phase, oni)
            .configure_at(self.config.class, Celsius::new(bucket_t))
        {
            Some(decision) => {
                let new_params = DecisionParams::from_decision(&decision);
                let mut switch = None;
                if new_params.scheme != channel.params.scheme {
                    // Scheme-revert hysteresis: undoing the most recent
                    // switch needs a temperature excursion beyond its
                    // anchor, otherwise a channel that just cooled by
                    // escaping to the coded path would flap straight back.
                    if let Some((from, at_temp)) = channel.last_switch {
                        if new_params.scheme == from
                            && (t_now - at_temp).abs() < revert_hysteresis_k
                        {
                            channel.decision_temperature_c = bucket_t;
                            return (channel, None, 0);
                        }
                    }
                    channel.switches += 1;
                    channel.last_switch = Some((channel.params.scheme, t_now));
                    switch = Some(SchemeSwitch {
                        time_ns: end_ns,
                        oni,
                        from: channel.params.scheme,
                        to: new_params.scheme,
                        temperature_c: t_now,
                        epoch: Some(epoch),
                    });
                }
                channel.params = new_params;
                channel.decision_temperature_c = bucket_t;
                (channel, switch, 0)
            }
            None => {
                // Keep the previous operating point; the channel stays up at
                // its old configuration.
                channel.decision_temperature_c = bucket_t;
                (channel, None, 1)
            }
        }
    }

    /// The epoch-gated engine: event-driven traffic over an epoch-stepped
    /// [`ThermalModel`].
    #[allow(clippy::too_many_lines)]
    fn run_epoch_gated(mut self) -> RunReport {
        let n = self.config.oni_count;
        let DecisionPolicy::EpochGated {
            epoch_ns,
            quantization_k,
            hysteresis_k,
            ..
        } = self.policy
        else {
            unreachable!("run_epoch_gated implies the epoch-gated policy");
        };
        let deadband = quantization_k / 2.0 + hysteresis_k;
        let mut model = self
            .model
            .take()
            .expect("epoch-gated scenarios hold a model");
        let mut channels: Vec<ChannelState> = (0..n)
            .map(|oni| {
                let baseline = self.baselines[oni];
                let t0 = model.temperature_of(oni).value();
                ChannelState {
                    params: baseline,
                    baseline_scheme: baseline.scheme,
                    decision_temperature_c: bucket_centre(
                        bucket_index(t0, quantization_k),
                        quantization_k,
                    ),
                    last_switch: None,
                    active: None,
                    peak_temperature_c: t0,
                    switches: 0,
                }
            })
            .collect();

        let mut stats = SimStats {
            injected_messages: self.messages.len() as u64,
            ..SimStats::default()
        };
        let mut arbiters: BTreeMap<usize, TokenArbiter> = BTreeMap::new();
        let mut queue: BinaryHeap<Reverse<Event>> = BinaryHeap::new();
        // Injections take sequence numbers 0..N in injection order; the
        // completion of a message reuses its injection index offset by N.
        // The numbering is a pure function of the traffic, so event order
        // at equal times never depends on how earlier epochs were played.
        let mut injection_index: BTreeMap<MessageId, u64> = BTreeMap::new();
        for (index, &id) in self.injection_order.iter().enumerate() {
            let sequence = index as u64;
            injection_index.insert(id, sequence);
            queue.push(Reverse(Event {
                time: self.messages[&id].injected_at,
                sequence,
                kind: EventKind::Inject,
                message: id,
            }));
        }
        let complete_seq_base = self.injection_order.len() as u64;

        let mut makespan = SimTime::ZERO;
        let mut epoch_start = SimTime::ZERO;
        let mut epochs = 0u64;
        let mut decisions = 0u64;
        let mut infeasible_requests = 0u64;
        let mut decisions_per_oni = vec![0u64; n];
        let mut infeasible_per_oni = vec![0u64; n];
        let mut reconfigured_messages = 0u64;
        let mut switch_log: Vec<SchemeSwitch> = Vec::new();
        let mut trajectory: Vec<EpochSample> = Vec::new();
        let mut deposited_pj = vec![0.0f64; n];
        let mut acc = OniAccumulators::new(n);
        // Per-ONI re-asks shard across threads for heterogeneous fleets
        // (every ONI owns its manager) *and* for homogeneous fleets behind
        // one shared manager: the solve-once cache admits exactly one miss
        // per distinct key whatever the interleaving, so the hit/miss
        // counters stay deterministic at any thread count.
        let shards = self.config.shards();
        let shard_reasks = n > 1 && shards > 1;
        // Multi-hop fabrics play serially with per-hop grant bookkeeping;
        // single-hop traffic (the canonical ring and any single-hop fabric)
        // partitions by destination channel and fans out across threads.
        let multihop: Option<RouteTable> = self
            .routes
            .as_ref()
            .filter(|table| !table.is_single_hop())
            .cloned();
        let electrical = self
            .config
            .topology
            .as_ref()
            .map_or_else(onoc_topology::ElectricalLinkModel::paper_fallback, |f| {
                f.electrical
            });
        let mut hop_cursor: BTreeMap<MessageId, usize> = BTreeMap::new();
        // Phase boundaries of a scheduled workload: epochs are clamped so
        // every boundary lands exactly on an epoch edge, and per-phase
        // assignment fleets swap as the new phase begins.  The swap is
        // hitless by construction — grants capture the channel's operating
        // point for the whole transfer, so in-flight traffic completes on
        // the old phase's point while new grants ride the new one.
        let phase_boundaries: Vec<SimTime> = match &self.config.thermal {
            ThermalModelSpec::WorkloadScheduled { schedule, .. } => schedule
                .phase_starts()
                .iter()
                .map(|&ns| SimTime::from_nanos(ns))
                .collect(),
            _ => vec![SimTime::ZERO],
        };
        let mut current_phase = 0usize;
        let mut phases: Vec<PhaseTransition> = Vec::new();

        while let Some(&Reverse(next)) = queue.peek() {
            // Enter every phase whose boundary has been reached — the
            // preceding epoch was clamped to end exactly at the boundary,
            // so the new phase starts on an epoch edge.
            while current_phase + 1 < phase_boundaries.len()
                && epoch_start >= phase_boundaries[current_phase + 1]
            {
                current_phase += 1;
                let boundary_ns = phase_boundaries[current_phase].as_nanos();
                self.recorder.emit(|| TelemetryEvent::PhaseEntered {
                    phase: current_phase as u64,
                    time_ns: boundary_ns,
                    epoch: epochs,
                });
                // Per-phase assignment fleets: swap exactly the ONIs whose
                // assignment changed, and force those channels to re-decide
                // on the new fleet at their current model temperature (the
                // new permutation changes the tuning cost, so the old
                // operating point no longer describes the channel).
                let mut swapped: Vec<(usize, f64)> = Vec::new();
                if self.managers.len() > 1 {
                    let from_fleet = &self.assignments[current_phase - 1];
                    let to_fleet = &self.assignments[current_phase];
                    for oni in 0..n {
                        let from = from_fleet[oni].fingerprint();
                        let to = to_fleet[oni].fingerprint();
                        if from != to {
                            self.recorder.emit(|| TelemetryEvent::AssignmentSwapped {
                                oni: oni as u64,
                                phase: current_phase as u64,
                                from_fingerprint: from,
                                to_fingerprint: to,
                                time_ns: boundary_ns,
                                epoch: epochs,
                            });
                            swapped.push((oni, model.temperature_of(oni).value()));
                        }
                    }
                }
                if !swapped.is_empty() {
                    decisions += swapped.len() as u64;
                    let phase_reask = |&(oni, t): &(usize, f64)| {
                        self.reask(channels[oni], oni, current_phase, t, boundary_ns, epochs)
                    };
                    let outcomes: Vec<(ChannelState, Option<SchemeSwitch>, u64)> =
                        if shard_reasks && swapped.len() > 1 {
                            parallel_map_traced(
                                &swapped,
                                shards,
                                phase_reask,
                                &self.recorder,
                                "phase-reask",
                            )
                        } else {
                            swapped.iter().map(phase_reask).collect()
                        };
                    for (&(oni, _), (state, switch, infeasible)) in swapped.iter().zip(outcomes) {
                        channels[oni] = state;
                        decisions_per_oni[oni] += 1;
                        if let Some(switch) = switch {
                            self.recorder.emit(|| TelemetryEvent::SchemeSwitched {
                                oni: switch.oni as u64,
                                from: switch.from.to_string(),
                                to: switch.to.to_string(),
                                time_ns: switch.time_ns,
                                temperature_c: switch.temperature_c,
                                epoch: switch.epoch,
                            });
                            switch_log.push(switch);
                        }
                        infeasible_requests += infeasible;
                        infeasible_per_oni[oni] += infeasible;
                    }
                }
                phases.push(PhaseTransition {
                    phase: current_phase,
                    time_ns: boundary_ns,
                    epoch: epochs,
                    swapped_onis: swapped.len(),
                    storm_switches: 0,
                });
            }

            // Nominal epoch boundary; long idle gaps are covered by a single
            // stretched epoch ending at the next event (the model step
            // integrates the whole gap, so nothing is lost).
            let mut epoch_end = SimTime::from_nanos(epoch_start.as_nanos() + epoch_ns);
            if next.time > epoch_end {
                epoch_end = next.time;
            }
            // Clamp to the next phase boundary so the boundary is always an
            // epoch edge.  Events exactly at the boundary still play inside
            // the closing epoch: their grants capture the old phase's point.
            if let Some(&boundary) = phase_boundaries.get(current_phase + 1) {
                if epoch_start < boundary && epoch_end > boundary {
                    epoch_end = boundary;
                }
            }

            // 1. Play the event queue through this epoch.
            if let Some(routes) = &multihop {
                // Multi-hop fabric: relay each message hop by hop, queueing
                // at every router's per-destination arbiter along the way.
                while let Some(&Reverse(event)) = queue.peek() {
                    if event.time > epoch_end {
                        break;
                    }
                    let Reverse(event) = queue.pop().expect("peeked");
                    makespan = makespan.max_time(event.time);
                    let message = self.messages[&event.message];
                    let route = routes.route(message.source, message.destination);
                    match event.kind {
                        EventKind::Inject => {
                            let entry = route.hops[0].node;
                            hop_cursor.insert(message.id, 0);
                            arbiters
                                .entry(entry)
                                .or_default()
                                .request(message.source, message.id);
                            Self::multihop_try_start(
                                entry,
                                event.time,
                                &mut arbiters,
                                &mut channels,
                                &mut queue,
                                routes,
                                &electrical,
                                &hop_cursor,
                                &self.messages,
                                &injection_index,
                                complete_seq_base,
                            );
                        }
                        EventKind::Complete => {
                            let hop_index = *hop_cursor
                                .get(&message.id)
                                .expect("completion implies a hop cursor");
                            let hop = route.hops[hop_index];
                            let node = hop.node;
                            let (point, started) = channels[node]
                                .active
                                .take()
                                .expect("completion implies an active transfer");
                            let duration_ns = point.transfer_duration(message.words).value();
                            stats.channel_busy_ns += duration_ns;
                            // Dynamic energy for the part of the hop inside
                            // this epoch; earlier parts were charged at the
                            // boundaries of the epochs they crossed.  The
                            // hop's energy heats the router it lands on.
                            let from = started.max_time(epoch_start);
                            let slice_pj = point.dynamic_power_mw * event.time.since(from).value();
                            stats.energy_pj += slice_pj;
                            deposited_pj[node] += slice_pj;
                            acc.dynamic_pj[node] += slice_pj;
                            stats.hops_traversed += 1;
                            let electrical_hop = hop.kind == LinkKind::Electrical;
                            self.recorder.emit(|| TelemetryEvent::HopTraversed {
                                message: message.id.0,
                                node: node as u64,
                                hop_index: hop_index as u64,
                                electrical: electrical_hop,
                                time_ns: event.time.as_nanos(),
                            });
                            // Residual errors accrue on photonic hops; the
                            // electrical fallback wires are error-free by
                            // model (their line coding is priced into the
                            // per-bit energy).
                            if !electrical_hop {
                                let mut rng =
                                    hop_error_rng(self.config.seed, message.id, hop_index as u64);
                                let (corrupted_words, corrupted_bits, corrected_words) =
                                    sample_word_errors(&mut rng, message.words, &point);
                                stats.corrupted_words += corrupted_words;
                                stats.corrupted_bits += corrupted_bits;
                                stats.corrected_words += corrected_words;
                            }
                            arbiters
                                .get_mut(&node)
                                .expect("completion implies a prior grant")
                                .release(message.id);
                            if hop_index + 1 < route.hops.len() {
                                // Relay: queue at the next router.
                                hop_cursor.insert(message.id, hop_index + 1);
                                let next = route.hops[hop_index + 1].node;
                                arbiters
                                    .entry(next)
                                    .or_default()
                                    .request(message.source, message.id);
                                Self::multihop_try_start(
                                    next,
                                    event.time,
                                    &mut arbiters,
                                    &mut channels,
                                    &mut queue,
                                    routes,
                                    &electrical,
                                    &hop_cursor,
                                    &self.messages,
                                    &injection_index,
                                    complete_seq_base,
                                );
                            } else {
                                hop_cursor.remove(&message.id);
                                stats.delivered_messages += 1;
                                stats.delivered_bits += message.payload_bits();
                                acc.delivered[message.destination] += 1;
                                if !electrical_hop && point.scheme != channels[node].baseline_scheme
                                {
                                    reconfigured_messages += 1;
                                }
                                let latency = event.time.since(message.injected_at).value();
                                stats.total_latency_ns += latency;
                                stats.max_latency_ns = stats.max_latency_ns.max(latency);
                                if message.misses_deadline(event.time) {
                                    stats.deadline_misses += 1;
                                }
                            }
                            Self::multihop_try_start(
                                node,
                                event.time,
                                &mut arbiters,
                                &mut channels,
                                &mut queue,
                                routes,
                                &electrical,
                                &hop_cursor,
                                &self.messages,
                                &injection_index,
                                complete_seq_base,
                            );
                        }
                    }
                }
            } else {
                // Single-hop traffic partitions by destination channel:
                // each partition owns its arbiter, channel state and error
                // streams outright, so playing the partitions in any
                // schedule — serially below, or sharded across threads —
                // folds back to the same report (gated bit-identical by the
                // scale-out tests).
                let mut due: BTreeMap<usize, Vec<Event>> = BTreeMap::new();
                while let Some(&Reverse(event)) = queue.peek() {
                    if event.time > epoch_end {
                        break;
                    }
                    let Reverse(event) = queue.pop().expect("peeked");
                    due.entry(self.messages[&event.message].destination)
                        .or_default()
                        .push(event);
                }
                let work: Vec<(usize, Vec<Event>)> = due.into_iter().collect();
                if !work.is_empty() {
                    let play = |(destination, events): &(usize, Vec<Event>)| {
                        self.play_channel_epoch(
                            events,
                            channels[*destination],
                            arbiters.get(destination).cloned().unwrap_or_default(),
                            epoch_start,
                            epoch_end,
                            complete_seq_base,
                            &injection_index,
                        )
                    };
                    let outcomes: Vec<ChannelPlayback> = if shard_reasks && work.len() > 1 {
                        parallel_map_traced(&work, shards, play, &self.recorder, "epoch-playback")
                    } else {
                        work.iter().map(play).collect()
                    };
                    for ((destination, _), outcome) in work.iter().zip(outcomes) {
                        channels[*destination] = outcome.channel;
                        arbiters.insert(*destination, outcome.arbiter);
                        for event in outcome.carryover {
                            queue.push(Reverse(event));
                        }
                        makespan = makespan.max_time(outcome.local_makespan);
                        stats.delivered_messages += outcome.delivered;
                        stats.hops_traversed += outcome.hops;
                        stats.delivered_bits += outcome.delivered_bits;
                        stats.channel_busy_ns += outcome.busy_ns;
                        stats.energy_pj += outcome.dynamic_pj;
                        deposited_pj[*destination] += outcome.dynamic_pj;
                        acc.dynamic_pj[*destination] += outcome.dynamic_pj;
                        acc.delivered[*destination] += outcome.delivered;
                        reconfigured_messages += outcome.reconfigured;
                        stats.total_latency_ns += outcome.total_latency_ns;
                        stats.max_latency_ns = stats.max_latency_ns.max(outcome.max_latency_ns);
                        stats.deadline_misses += outcome.deadline_misses;
                        stats.corrupted_words += outcome.corrupted_words;
                        stats.corrupted_bits += outcome.corrupted_bits;
                        stats.corrected_words += outcome.corrected_words;
                    }
                }
            }

            // The run ends with the last event, not at the nominal epoch
            // boundary: static power is charged for actual residency only.
            let end = if queue.is_empty() {
                makespan
            } else {
                epoch_end
            };
            let span_ns = end.since(epoch_start).value();
            if span_ns > 0.0 {
                // 2. Integrate the power deposited by each destination
                // channel over this epoch.
                for (oni, channel) in channels.iter_mut().enumerate() {
                    if let Some((point, started)) = channel.active {
                        let from = started.max_time(epoch_start);
                        let slice_pj = point.dynamic_power_mw * end.since(from).value();
                        stats.energy_pj += slice_pj;
                        deposited_pj[oni] += slice_pj;
                        acc.dynamic_pj[oni] += slice_pj;
                        // Re-base so the remainder is charged later.
                        channel.active = Some((point, end));
                    }
                    let static_pj = channel.params.static_power_mw * span_ns;
                    stats.energy_pj += static_pj;
                    stats.static_energy_pj += static_pj;
                    deposited_pj[oni] += static_pj;
                    acc.static_pj[oni] += static_pj;
                }

                // 3. Advance the thermal model with the average epoch power.
                let powers_mw: Vec<f64> = deposited_pj.iter().map(|pj| pj / span_ns).collect();
                model.advance(&powers_mw, span_ns);
                deposited_pj.iter_mut().for_each(|pj| *pj = 0.0);

                // 4. Re-ask the manager, gated by quantization + hysteresis.
                // The deadband gate is a handful of float comparisons, so it
                // runs serially; only the ONIs that actually need a solver
                // query fan out across threads (most epochs none do, and
                // spawning workers for an empty batch would dominate).
                let temps: Vec<f64> = (0..n)
                    .map(|oni| model.temperature_of(oni).value())
                    .collect();
                let end_ns = end.as_nanos();
                let mut pending: Vec<usize> = Vec::new();
                for (oni, channel) in channels.iter_mut().enumerate() {
                    channel.peak_temperature_c = channel.peak_temperature_c.max(temps[oni]);
                    if (temps[oni] - channel.decision_temperature_c).abs() > deadband {
                        pending.push(oni);
                    }
                }
                decisions += pending.len() as u64;
                let outcomes: Vec<(ChannelState, Option<SchemeSwitch>, u64)> =
                    if shard_reasks && pending.len() > 1 {
                        parallel_map_traced(
                            &pending,
                            shards,
                            |&oni| {
                                self.reask(
                                    channels[oni],
                                    oni,
                                    current_phase,
                                    temps[oni],
                                    end_ns,
                                    epochs,
                                )
                            },
                            &self.recorder,
                            "epoch-reask",
                        )
                    } else {
                        pending
                            .iter()
                            .map(|&oni| {
                                self.reask(
                                    channels[oni],
                                    oni,
                                    current_phase,
                                    temps[oni],
                                    end_ns,
                                    epochs,
                                )
                            })
                            .collect()
                    };
                for (&oni, (state, switch, infeasible)) in pending.iter().zip(outcomes) {
                    channels[oni] = state;
                    decisions_per_oni[oni] += 1;
                    if let Some(switch) = switch {
                        self.recorder.emit(|| TelemetryEvent::SchemeSwitched {
                            oni: switch.oni as u64,
                            from: switch.from.to_string(),
                            to: switch.to.to_string(),
                            time_ns: switch.time_ns,
                            temperature_c: switch.temperature_c,
                            epoch: switch.epoch,
                        });
                        switch_log.push(switch);
                    }
                    infeasible_requests += infeasible;
                    infeasible_per_oni[oni] += infeasible;
                }

                let sample = EpochSample {
                    time_ns: end.as_nanos(),
                    min_temperature_c: temps.iter().copied().fold(f64::INFINITY, f64::min),
                    max_temperature_c: temps.iter().copied().fold(f64::NEG_INFINITY, f64::max),
                    reconfigured_onis: channels
                        .iter()
                        .filter(|c| c.params.scheme != c.baseline_scheme)
                        .count(),
                };
                self.recorder.emit(|| TelemetryEvent::EpochAdvanced {
                    epoch: epochs,
                    time_ns: sample.time_ns,
                    min_temperature_c: sample.min_temperature_c,
                    max_temperature_c: sample.max_temperature_c,
                    reconfigured_onis: sample.reconfigured_onis as u64,
                });
                epochs += 1;
                trajectory.push(sample);
            }
            epoch_start = end;
        }

        stats.makespan_ns = makespan.as_nanos();
        // Switch-storm accounting: the scheme flaps charged to each phase
        // transition are those decided in the epochs right after its
        // boundary, truncated at the next transition.
        const STORM_WINDOW_EPOCHS: u64 = 8;
        let window_ends: Vec<u64> = (0..phases.len())
            .map(|index| {
                (phases[index].epoch + STORM_WINDOW_EPOCHS)
                    .min(phases.get(index + 1).map_or(u64::MAX, |next| next.epoch))
            })
            .collect();
        for (transition, window_end) in phases.iter_mut().zip(window_ends) {
            transition.storm_switches = switch_log
                .iter()
                .filter(|s| {
                    s.epoch
                        .is_some_and(|epoch| epoch >= transition.epoch && epoch < window_end)
                })
                .count() as u64;
        }
        let per_oni = channels
            .iter()
            .enumerate()
            .map(|(oni, c)| OniReport {
                oni,
                delivered_messages: acc.delivered[oni],
                final_temperature_c: model.temperature_of(oni).value(),
                peak_temperature_c: c.peak_temperature_c,
                scheme: c.params.scheme,
                channel_power_mw: c.params.channel_power_mw,
                tuning_power_mw_per_lane: c.params.tuning_power_mw,
                scheme_switches: c.switches,
                decisions: decisions_per_oni[oni],
                infeasible_requests: infeasible_per_oni[oni],
                static_energy_pj: acc.static_pj[oni],
                dynamic_energy_pj: acc.dynamic_pj[oni],
            })
            .collect();
        let baseline = self.baselines[0];
        RunReport {
            baseline_scheme: baseline.scheme,
            baseline_channel_power_mw: baseline.channel_power_mw,
            baseline_decoded_ber: baseline.decoded_ber,
            stats,
            per_oni,
            epochs,
            decisions,
            infeasible_requests,
            reconfigured_messages,
            switch_log,
            trajectory,
            phases,
            solver_cache: self.cache_counters(),
            config: self.config,
        }
    }

    /// Plays one destination channel's due events through the current
    /// epoch (single-hop fabrics).  The channel's arbiter, state and
    /// per-message error streams are self-contained, so partitions play in
    /// any order — or on any thread — with identical outcomes.
    #[allow(clippy::too_many_arguments)]
    fn play_channel_epoch(
        &self,
        events: &[Event],
        mut channel: ChannelState,
        mut arbiter: TokenArbiter,
        epoch_start: SimTime,
        epoch_end: SimTime,
        complete_seq_base: u64,
        injection_index: &BTreeMap<MessageId, u64>,
    ) -> ChannelPlayback {
        /// Grants the next pending transfer, capturing the channel's
        /// *current* operating point for the whole transfer.  Completions
        /// due within the epoch re-enter the local replay heap; later ones
        /// carry over to the global queue.
        #[allow(clippy::too_many_arguments)]
        fn try_start(
            channel: &mut ChannelState,
            arbiter: &mut TokenArbiter,
            local: &mut BinaryHeap<Reverse<Event>>,
            carryover: &mut Vec<Event>,
            now: SimTime,
            epoch_end: SimTime,
            complete_seq_base: u64,
            injection_index: &BTreeMap<MessageId, u64>,
            messages: &BTreeMap<MessageId, Message>,
        ) {
            if channel.active.is_some() {
                return;
            }
            if let Some((_, id)) = arbiter.grant() {
                let message = messages[&id];
                let point = channel.params;
                channel.active = Some((point, now));
                let event = Event {
                    time: now.advanced_by(point.transfer_duration(message.words)),
                    sequence: complete_seq_base + injection_index[&id],
                    kind: EventKind::Complete,
                    message: id,
                };
                if event.time > epoch_end {
                    carryover.push(event);
                } else {
                    local.push(Reverse(event));
                }
            }
        }

        let mut local: BinaryHeap<Reverse<Event>> = events.iter().copied().map(Reverse).collect();
        let mut carryover: Vec<Event> = Vec::new();
        let mut local_makespan = SimTime::ZERO;
        let mut delivered = 0u64;
        let mut delivered_bits = 0u64;
        let mut hops = 0u64;
        let mut busy_ns = 0.0f64;
        let mut dynamic_pj = 0.0f64;
        let mut reconfigured = 0u64;
        let mut total_latency_ns = 0.0f64;
        let mut max_latency_ns = 0.0f64;
        let mut deadline_misses = 0u64;
        let mut corrupted_words = 0u64;
        let mut corrupted_bits = 0u64;
        let mut corrected_words = 0u64;
        let emit_hops = self.routes.is_some();

        while let Some(Reverse(event)) = local.pop() {
            local_makespan = local_makespan.max_time(event.time);
            let message = self.messages[&event.message];
            match event.kind {
                EventKind::Inject => {
                    arbiter.request(message.source, message.id);
                    try_start(
                        &mut channel,
                        &mut arbiter,
                        &mut local,
                        &mut carryover,
                        event.time,
                        epoch_end,
                        complete_seq_base,
                        injection_index,
                        &self.messages,
                    );
                }
                EventKind::Complete => {
                    let (point, started) = channel
                        .active
                        .take()
                        .expect("completion implies an active transfer");
                    let duration_ns = point.transfer_duration(message.words).value();
                    delivered += 1;
                    hops += 1;
                    if emit_hops {
                        self.recorder.emit(|| TelemetryEvent::HopTraversed {
                            message: message.id.0,
                            node: message.destination as u64,
                            hop_index: 0,
                            electrical: false,
                            time_ns: event.time.as_nanos(),
                        });
                    }
                    delivered_bits += message.payload_bits();
                    busy_ns += duration_ns;
                    // Dynamic energy for the part of the transfer inside
                    // this epoch; earlier parts were charged at the
                    // boundaries of the epochs they crossed.
                    let from = started.max_time(epoch_start);
                    dynamic_pj += point.dynamic_power_mw * event.time.since(from).value();
                    if point.scheme != channel.baseline_scheme {
                        reconfigured += 1;
                    }
                    let latency = event.time.since(message.injected_at).value();
                    total_latency_ns += latency;
                    max_latency_ns = max_latency_ns.max(latency);
                    if message.misses_deadline(event.time) {
                        deadline_misses += 1;
                    }
                    let mut rng = hop_error_rng(self.config.seed, message.id, 0);
                    let (new_corrupted_words, new_corrupted_bits, new_corrected_words) =
                        sample_word_errors(&mut rng, message.words, &point);
                    corrupted_words += new_corrupted_words;
                    corrupted_bits += new_corrupted_bits;
                    corrected_words += new_corrected_words;
                    arbiter.release(message.id);
                    try_start(
                        &mut channel,
                        &mut arbiter,
                        &mut local,
                        &mut carryover,
                        event.time,
                        epoch_end,
                        complete_seq_base,
                        injection_index,
                        &self.messages,
                    );
                }
            }
        }

        ChannelPlayback {
            channel,
            arbiter,
            carryover,
            local_makespan,
            delivered,
            delivered_bits,
            hops,
            busy_ns,
            dynamic_pj,
            reconfigured,
            total_latency_ns,
            max_latency_ns,
            deadline_misses,
            corrupted_words,
            corrupted_bits,
            corrected_words,
        }
    }

    /// Grants the next pending transfer on the channel of router `node`
    /// (multi-hop epoch mode): the granted message rides its *current*
    /// hop — the node's photonic operating point, or the fabric's
    /// electrical fallback — captured for the whole hop.
    #[allow(clippy::too_many_arguments)]
    fn multihop_try_start(
        node: usize,
        now: SimTime,
        arbiters: &mut BTreeMap<usize, TokenArbiter>,
        channels: &mut [ChannelState],
        queue: &mut BinaryHeap<Reverse<Event>>,
        routes: &RouteTable,
        electrical: &onoc_topology::ElectricalLinkModel,
        hop_cursor: &BTreeMap<MessageId, usize>,
        messages: &BTreeMap<MessageId, Message>,
        injection_index: &BTreeMap<MessageId, u64>,
        complete_seq_base: u64,
    ) {
        if channels[node].active.is_some() {
            return;
        }
        let arbiter = arbiters.entry(node).or_default();
        if let Some((_, id)) = arbiter.grant() {
            let message = messages[&id];
            let hop_index = hop_cursor[&id];
            let hop = routes.route(message.source, message.destination).hops[hop_index];
            let point = if hop.kind == LinkKind::Electrical {
                DecisionParams::electrical_hop(
                    electrical.latency_ns,
                    electrical.ns_per_word,
                    electrical.energy_pj_per_bit,
                    message.words,
                )
            } else {
                channels[node].params
            };
            channels[node].active = Some((point, now));
            queue.push(Reverse(Event {
                time: now.advanced_by(point.transfer_duration(message.words)),
                sequence: complete_seq_base + injection_index[&id],
                kind: EventKind::Complete,
                message: id,
            }));
        }
    }
}
