//! Discrete-event optical NoC simulator.
//!
//! The paper's future work is to "simulate the execution of standard
//! benchmark applications on nanophotonic interconnects"; its Section III-C
//! describes the run-time manager that selects the communication scheme per
//! transfer.  This crate provides the missing substrate: an event-driven
//! simulator of an MWSR-based optical NoC whose channels are backed by the
//! photonic link budget of `onoc-photonics`, whose interfaces use the coding
//! and cost models of `onoc-ecc-codes`/`onoc-interface`, and whose link
//! manager is the policy of `onoc-link`.
//!
//! The simulator is deliberately message-level (one event per word burst, not
//! per bit): error injection uses the analytic decoded-BER of the configured
//! operating point, which the `onoc-ecc-codes` Monte-Carlo tests validate
//! against bit-true decoding.
//!
//! Two thermal modes are available: [`ThermalScenario`] plays back
//! *prescribed* temperature traces (uniform, hotspot, transient), while
//! [`FeedbackSimulation`] closes the loop — an epoch-stepped engine deposits
//! the link's own dissipated power into a per-ONI thermal RC network
//! (`onoc_thermal::ActivityCoupledEnvironment`) and re-asks the manager as
//! the self-heated temperatures cross quantization buckets, with hysteresis
//! against oscillation.  Energy accounting charges the static share of the
//! channel power (laser + ring heaters) over wall-clock residency and the
//! dynamic share (modulation + codec) over transfer occupancy.
//!
//! # Example
//!
//! ```
//! use onoc_sim::{Simulation, SimulationConfig, traffic::TrafficPattern};
//! use onoc_link::TrafficClass;
//!
//! let config = SimulationConfig {
//!     oni_count: 4,
//!     pattern: TrafficPattern::UniformRandom { messages_per_node: 20 },
//!     class: TrafficClass::Bulk,
//!     words_per_message: 8,
//!     seed: 7,
//!     ..SimulationConfig::default()
//! };
//! let report = Simulation::new(config)?.run();
//! assert_eq!(report.stats.delivered_messages, 4 * 20);
//! # Ok::<(), onoc_sim::SimulationError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arbiter;
pub mod engine;
pub mod feedback;
pub mod packet;
pub mod stats;
pub mod thermal;
pub mod time;
pub mod traffic;

pub use engine::{Simulation, SimulationConfig, SimulationError, SimulationReport};
pub use feedback::{
    EpochSample, FeedbackConfig, FeedbackReport, FeedbackSimulation, OniFeedbackReport,
    RingVariationConfig, SchemeSwitch,
};
pub use packet::{Message, MessageId};
pub use stats::SimStats;
pub use thermal::{OniThermalReport, ThermalRunReport, ThermalScenario};
pub use time::SimTime;
