//! Discrete-event optical NoC simulator.
//!
//! The paper's future work is to "simulate the execution of standard
//! benchmark applications on nanophotonic interconnects"; its Section III-C
//! describes the run-time manager that selects the communication scheme per
//! transfer.  This crate provides the missing substrate: an event-driven
//! simulator of an MWSR-based optical NoC whose channels are backed by the
//! photonic link budget of `onoc-photonics`, whose interfaces use the coding
//! and cost models of `onoc-ecc-codes`/`onoc-interface`, and whose link
//! manager is the policy of `onoc-link`.
//!
//! The simulator is deliberately message-level (one event per word burst, not
//! per bit): error injection uses the analytic decoded-BER of the configured
//! operating point, which the `onoc-ecc-codes` Monte-Carlo tests validate
//! against bit-true decoding.
//!
//! All runs go through one surface: [`ScenarioBuilder`] composes traffic, a
//! thermal model ([`onoc_thermal::ThermalModelSpec`]: prescribed traces, the
//! activity-coupled RC network, or workload-heated compute clusters), a
//! decision policy ([`DecisionPolicy`]: per-message or the epoch-gated
//! feedback loop), the link fleet (stack, per-ONI fabrication variation,
//! cache resolution) and a thread budget into a [`Scenario`] whose
//! [`Scenario::run`] returns the unified [`RunReport`].  Energy accounting
//! charges the static share of the channel power (laser + ring heaters) over
//! wall-clock residency and the dynamic share (modulation + codec) over
//! transfer occupancy.
//!
//! The legacy entry points — `Simulation` + `SimulationConfig`,
//! `ThermalScenario` and `FeedbackSimulation` + `FeedbackConfig` — survive
//! as thin `#[deprecated]` shims over the builder, pinned bit-identical by
//! golden tests.
//!
//! # Example
//!
//! ```
//! use onoc_sim::{ScenarioBuilder, traffic::TrafficPattern};
//! use onoc_link::TrafficClass;
//!
//! let report = ScenarioBuilder::new()
//!     .oni_count(4)
//!     .pattern(TrafficPattern::UniformRandom { messages_per_node: 20 })
//!     .class(TrafficClass::Bulk)
//!     .words_per_message(8)
//!     .seed(7)
//!     .build()?
//!     .run();
//! assert_eq!(report.stats.delivered_messages, 4 * 20);
//! # Ok::<(), onoc_sim::SimulationError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arbiter;
pub mod engine;
pub mod feedback;
pub mod packet;
pub mod scenario;
pub mod stats;
pub mod thermal;
pub mod time;
pub mod traffic;

pub use engine::{SimulationConfig, SimulationError, SimulationReport};
pub use feedback::{FeedbackConfig, FeedbackReport, OniFeedbackReport};
pub use packet::{Message, MessageId};
pub use scenario::{
    DecisionPolicy, DesignAssignmentConfig, EpochSample, OniReport, PhaseTransition,
    RingVariationConfig, RunReport, Scenario, ScenarioBuilder, ScenarioConfig, SchemeSwitch,
};
pub use stats::SimStats;
pub use thermal::{OniThermalReport, ThermalRunReport};
pub use time::SimTime;

// Legacy entry points, re-exported for the deprecated migration shims.
#[allow(deprecated)]
pub use engine::Simulation;
#[allow(deprecated)]
pub use feedback::FeedbackSimulation;
#[allow(deprecated)]
pub use thermal::ThermalScenario;
