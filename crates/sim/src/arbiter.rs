//! MWSR channel arbitration.
//!
//! In an MWSR interconnect every destination owns one channel and the writers
//! contend for it.  The simulator uses a token-style round-robin arbiter (the
//! common choice for MWSR rings such as Corona, ref. \[2\] of the paper): the
//! grant rotates among requesting writers, and a writer holds the channel for
//! the duration of one message.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use crate::packet::MessageId;

/// Round-robin arbiter for one MWSR channel.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TokenArbiter {
    /// Writers currently waiting, in arrival order per writer.
    queue: VecDeque<(usize, MessageId)>,
    /// The writer currently holding the channel, if any.
    granted: Option<(usize, MessageId)>,
    /// Number of grants issued, for fairness accounting.
    grants: u64,
}

impl TokenArbiter {
    /// Creates an idle arbiter.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Enqueues a request from `writer` for `message`.
    pub fn request(&mut self, writer: usize, message: MessageId) {
        self.queue.push_back((writer, message));
    }

    /// Returns the holder of the channel, granting the next waiting request
    /// if the channel is idle.
    pub fn grant(&mut self) -> Option<(usize, MessageId)> {
        if self.granted.is_none() {
            if let Some(next) = self.queue.pop_front() {
                self.granted = Some(next);
                self.grants += 1;
            }
        }
        self.granted
    }

    /// Releases the channel after the granted message finished transmitting.
    ///
    /// # Panics
    ///
    /// Panics if the channel is not currently granted to `message`.
    pub fn release(&mut self, message: MessageId) {
        match self.granted {
            Some((_, granted)) if granted == message => self.granted = None,
            _ => panic!("release of {message} but the channel is not granted to it"),
        }
    }

    /// `true` when no request is waiting and the channel is idle.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.granted.is_none() && self.queue.is_empty()
    }

    /// Number of requests currently waiting.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Number of grants issued so far.
    #[must_use]
    pub fn grants_issued(&self) -> u64 {
        self.grants
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grants_in_arrival_order() {
        let mut arb = TokenArbiter::new();
        arb.request(3, MessageId(10));
        arb.request(5, MessageId(11));
        assert_eq!(arb.grant(), Some((3, MessageId(10))));
        // The channel is busy: the second request keeps waiting.
        assert_eq!(arb.grant(), Some((3, MessageId(10))));
        arb.release(MessageId(10));
        assert_eq!(arb.grant(), Some((5, MessageId(11))));
        arb.release(MessageId(11));
        assert!(arb.is_idle());
        assert_eq!(arb.grants_issued(), 2);
    }

    #[test]
    fn idle_arbiter_grants_nothing() {
        let mut arb = TokenArbiter::new();
        assert_eq!(arb.grant(), None);
        assert!(arb.is_idle());
        assert_eq!(arb.pending(), 0);
    }

    #[test]
    fn pending_counts_waiting_requests() {
        let mut arb = TokenArbiter::new();
        for i in 0..4 {
            arb.request(i, MessageId(i as u64));
        }
        assert_eq!(arb.pending(), 4);
        arb.grant();
        assert_eq!(arb.pending(), 3);
    }

    #[test]
    #[should_panic(expected = "not granted")]
    fn releasing_the_wrong_message_panics() {
        let mut arb = TokenArbiter::new();
        arb.request(0, MessageId(1));
        arb.grant();
        arb.release(MessageId(2));
    }

    #[test]
    fn fairness_every_writer_is_served() {
        let mut arb = TokenArbiter::new();
        for round in 0..3u64 {
            for writer in 0..4usize {
                arb.request(writer, MessageId(round * 4 + writer as u64));
            }
        }
        let mut served = Vec::new();
        while let Some((writer, id)) = arb.grant() {
            served.push(writer);
            arb.release(id);
        }
        assert_eq!(served.len(), 12);
        for writer in 0..4 {
            assert_eq!(served.iter().filter(|&&w| w == writer).count(), 3);
        }
    }
}
