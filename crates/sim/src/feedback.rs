//! Closed-loop thermo-electrical co-simulation: activity-driven heating.
//!
//! The [`crate::ThermalScenario`] machinery plays back *prescribed*
//! temperature traces and precomputes one decision per message before the
//! run starts.  [`FeedbackSimulation`] closes the loop instead: the heat
//! comes from the link itself.  The run is divided into epochs; each epoch
//!
//! 1. plays the event queue forward (injections, arbitration, transfers)
//!    with every destination channel at its *current* operating point,
//! 2. integrates the electrical power each destination channel dissipated —
//!    the always-on static share (laser + ring heaters) over the whole epoch
//!    plus the transfer-gated dynamic share (modulation + codec) over the
//!    busy time,
//! 3. deposits that power into the per-ONI thermal RC network
//!    ([`ActivityCoupledEnvironment`]) and steps it, and
//! 4. re-asks the runtime manager for an operating point — but only for
//!    ONIs whose temperature left the quantization bucket of their last
//!    decision by more than a hysteresis deadband, so scheme choice cannot
//!    oscillate at a bucket edge.
//!
//! The manager's queries go through the link's memoized operating-point
//! cache, so the many re-asks of a long run collapse onto a handful of
//! solver invocations (one per distinct `(scheme, BER, bucket)`).
//!
//! There is no per-message decision table: decisions live per destination
//! and evolve with the temperature the traffic itself creates.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use onoc_ecc_codes::EccScheme;
use onoc_link::{CacheCounters, LinkManager, NanophotonicLink, ThermalLinkStack};
use onoc_thermal::{
    ActivityCoupledEnvironment, BankTuningMode, FabricationVariation, RcNetworkParameters,
};
use onoc_units::Celsius;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::arbiter::TokenArbiter;
use crate::engine::{
    conditional_corrupted_bits, DecisionParams, Event, EventKind, SimulationConfig, SimulationError,
};
use crate::packet::{Message, MessageId};
use crate::stats::SimStats;
use crate::time::SimTime;
use crate::traffic::TrafficGenerator;

/// Per-ONI fabrication variation of a feedback fleet: every destination
/// channel becomes its own chip instance, with ring offsets sampled from
/// `sigma_nm` under a seed derived from `seed` and the ONI index.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RingVariationConfig {
    /// Standard deviation of the per-ring resonance offsets, in nm.
    pub sigma_nm: f64,
    /// Base seed; each ONI derives its own chip seed from it.
    pub seed: u64,
    /// Tuning mode of every ONI's bank (pure heater or barrel shift).
    pub mode: BankTuningMode,
}

impl RingVariationConfig {
    /// Checks σ and the tuning mode.
    ///
    /// # Errors
    ///
    /// Returns a human-readable reason for the first invalid parameter.
    pub fn validate(&self) -> Result<(), String> {
        FabricationVariation {
            sigma_nm: self.sigma_nm,
            seed: self.seed,
        }
        .validate()?;
        self.mode.validate()
    }

    /// The chip instance of destination `oni`.
    #[must_use]
    pub fn oni_variation(&self, oni: usize) -> FabricationVariation {
        // SplitMix64 of (seed, oni) so neighbouring ONIs get uncorrelated
        // chips while the whole fleet stays reproducible.
        let mut z = self
            .seed
            .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(oni as u64 + 1));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        FabricationVariation::new(self.sigma_nm, z ^ (z >> 31))
    }
}

/// Configuration of one closed-loop (activity-driven heating) run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeedbackConfig {
    /// Traffic, class, BER and seed configuration.  Its `thermal` field must
    /// be `None`: the feedback engine supplies its own thermal environment.
    pub sim: SimulationConfig,
    /// The per-ONI thermal RC network the dissipated power drives.
    pub network: RcNetworkParameters,
    /// Epoch length, in nanoseconds: how often dissipated power is
    /// integrated and deposited into the RC network.
    pub epoch_ns: f64,
    /// Temperature quantization of manager decisions, in kelvin: re-asks
    /// solve at the centre of the bucket containing the node temperature.
    pub quantization_k: f64,
    /// Hysteresis deadband, in kelvin: the manager is re-asked only once a
    /// node's temperature has left the bucket of its last decision by more
    /// than half a bucket plus this margin.
    pub hysteresis_k: f64,
    /// Scheme-revert hysteresis, in kelvin: undoing the channel's most
    /// recent scheme switch (returning to the scheme it switched away from)
    /// is accepted only once the temperature has moved at least this far
    /// from the temperature of that switch.  This is what keeps a channel
    /// that switched to the coded path, dropped its power and *cooled* from
    /// flapping straight back to the uncoded path it just escaped.
    pub revert_hysteresis_k: f64,
    /// Optional custom thermal stack (drift slope, heater, tune policy) for
    /// every ONI's link; `None` uses the paper default.
    pub stack: Option<ThermalLinkStack>,
    /// Optional per-ONI fabrication variation: `Some` makes the fleet
    /// heterogeneous (one seeded chip instance per destination channel),
    /// `None` keeps the homogeneous per-bank model.
    pub variation: Option<RingVariationConfig>,
}

impl Default for FeedbackConfig {
    fn default() -> Self {
        Self {
            sim: SimulationConfig::default(),
            network: RcNetworkParameters::paper_package(),
            epoch_ns: 25.0,
            quantization_k: 0.5,
            hysteresis_k: 1.5,
            revert_hysteresis_k: 10.0,
            stack: None,
            variation: None,
        }
    }
}

impl FeedbackConfig {
    /// Checks the configuration.
    ///
    /// # Errors
    ///
    /// [`SimulationError::InvalidConfiguration`] when the base simulation
    /// config is invalid, carries a prescribed thermal scenario, or the
    /// epoch/quantization/hysteresis/network parameters are out of range.
    pub fn validate(&self) -> Result<(), SimulationError> {
        self.sim.validate()?;
        if self.sim.thermal.is_some() {
            return Err(SimulationError::InvalidConfiguration {
                reason: "feedback runs derive their temperatures from activity; \
                         remove the prescribed thermal scenario"
                    .into(),
            });
        }
        if !(self.epoch_ns > 0.0 && self.epoch_ns.is_finite()) {
            return Err(SimulationError::InvalidConfiguration {
                reason: format!("epoch must be positive and finite, got {}", self.epoch_ns),
            });
        }
        if !(self.quantization_k > 0.0 && self.quantization_k.is_finite()) {
            return Err(SimulationError::InvalidConfiguration {
                reason: format!(
                    "thermal quantization step must be positive and finite, got {}",
                    self.quantization_k
                ),
            });
        }
        for (name, value) in [
            ("hysteresis", self.hysteresis_k),
            ("revert hysteresis", self.revert_hysteresis_k),
        ] {
            if !(value >= 0.0 && value.is_finite()) {
                return Err(SimulationError::InvalidConfiguration {
                    reason: format!("{name} must be non-negative and finite, got {value}"),
                });
            }
        }
        if let Some(stack) = &self.stack {
            stack
                .validate()
                .map_err(|reason| SimulationError::InvalidConfiguration { reason })?;
        }
        if let Some(variation) = &self.variation {
            variation
                .validate()
                .map_err(|reason| SimulationError::InvalidConfiguration { reason })?;
        }
        self.network
            .validate()
            .map_err(|reason| SimulationError::InvalidConfiguration { reason })
    }

    /// The link of destination `oni` under this configuration: the base
    /// stack (custom or paper default) plus, for heterogeneous fleets, that
    /// ONI's own chip instance and tuning mode.
    fn oni_link(&self, oni: usize) -> NanophotonicLink {
        let mut link = NanophotonicLink::paper_link();
        if let Some(stack) = self.stack {
            link = link.with_thermal_stack(stack);
        }
        if let Some(variation) = &self.variation {
            link = link
                .with_fabrication_variation(variation.oni_variation(oni))
                .with_bank_tuning_mode(variation.mode);
        }
        link
    }

    fn bucket(&self, temperature_c: f64) -> i64 {
        crate::thermal::bucket_index(temperature_c, self.quantization_k)
    }

    fn bucket_temperature(&self, bucket: i64) -> f64 {
        crate::thermal::bucket_centre(bucket, self.quantization_k)
    }
}

/// One scheme change taken by the feedback loop.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SchemeSwitch {
    /// Simulated time of the switch, in nanoseconds.
    pub time_ns: f64,
    /// Destination ONI whose channel switched.
    pub oni: usize,
    /// Scheme before the switch.
    pub from: EccScheme,
    /// Scheme after the switch.
    pub to: EccScheme,
    /// Node temperature that triggered the re-decision, in °C.
    pub temperature_c: f64,
}

/// Temperature envelope of the interconnect at one epoch boundary.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpochSample {
    /// End of the epoch, in nanoseconds.
    pub time_ns: f64,
    /// Coolest node temperature, in °C.
    pub min_temperature_c: f64,
    /// Hottest node temperature, in °C.
    pub max_temperature_c: f64,
    /// Number of destination channels currently on a non-baseline scheme.
    pub reconfigured_onis: usize,
}

/// Final state of one destination channel after a feedback run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OniFeedbackReport {
    /// Destination ONI index.
    pub oni: usize,
    /// Node temperature at the end of the run, in °C.
    pub final_temperature_c: f64,
    /// Hottest temperature the node reached, in °C.
    pub peak_temperature_c: f64,
    /// Scheme the channel ended the run on.
    pub scheme: EccScheme,
    /// Channel power of the final operating point, in mW.
    pub channel_power_mw: f64,
    /// Number of scheme changes the channel went through.
    pub scheme_switches: u64,
}

/// Outcome of one closed-loop run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeedbackReport {
    /// The configuration that was simulated.
    pub config: FeedbackConfig,
    /// Scheme of the initial (package-ambient) operating point (of ONI 0's
    /// chip instance when the fleet is heterogeneous).
    pub baseline_scheme: EccScheme,
    /// Aggregate traffic statistics (energy includes the static share).
    pub stats: SimStats,
    /// Final per-destination state, sorted by ONI index.
    pub per_oni: Vec<OniFeedbackReport>,
    /// Number of epochs stepped.
    pub epochs: u64,
    /// Manager re-asks triggered by bucket changes (the hysteresis gate).
    pub decisions: u64,
    /// Re-asks the manager could not serve (the channel kept its previous
    /// operating point).
    pub infeasible_requests: u64,
    /// Every scheme change, in time order.
    pub switch_log: Vec<SchemeSwitch>,
    /// Temperature envelope per epoch.
    pub trajectory: Vec<EpochSample>,
    /// Operating-point cache counters of the run's link: `misses` is the
    /// number of actual photonic-solver invocations.
    pub solver_cache: CacheCounters,
}

impl FeedbackReport {
    /// Total scheme switches across the interconnect.
    #[must_use]
    pub fn total_switches(&self) -> u64 {
        self.switch_log.len() as u64
    }

    /// Number of distinct schemes in use at the end of the run.
    #[must_use]
    pub fn distinct_final_schemes(&self) -> usize {
        self.per_oni
            .iter()
            .map(|o| o.scheme)
            .collect::<std::collections::HashSet<_>>()
            .len()
    }
}

/// Per-destination live state during a feedback run.
#[derive(Debug, Clone, Copy)]
struct ChannelState {
    params: DecisionParams,
    /// Scheme of this channel's own ambient baseline (with a heterogeneous
    /// fleet, different ONIs can legitimately start on different schemes).
    baseline_scheme: EccScheme,
    /// Temperature (bucket centre) of the last decision, in °C.
    decision_temperature_c: f64,
    /// Most recent scheme switch: the scheme switched *away from* and the
    /// node temperature at the switch (the revert-hysteresis anchor).
    last_switch: Option<(EccScheme, f64)>,
    /// Transfer in flight: operating point captured at grant time, and when
    /// it started.
    active: Option<(DecisionParams, SimTime)>,
    peak_temperature_c: f64,
    switches: u64,
}

/// The closed-loop simulation: event-driven traffic over an epoch-stepped
/// thermal plant.
#[derive(Debug)]
pub struct FeedbackSimulation {
    config: FeedbackConfig,
    /// One manager per destination ONI for heterogeneous fleets, or a
    /// single shared manager (and operating-point cache) when every channel
    /// is the same chip.
    managers: Vec<LinkManager>,
    /// Ambient baselines, index-aligned with `managers`.
    baselines: Vec<DecisionParams>,
    messages: HashMap<MessageId, Message>,
    injection_order: Vec<MessageId>,
    rng: StdRng,
}

impl FeedbackSimulation {
    /// Prepares a closed-loop run: validates the configuration, generates
    /// the traffic and solves the initial operating point at the package
    /// ambient.
    ///
    /// # Errors
    ///
    /// * [`SimulationError::InvalidConfiguration`] — see
    ///   [`FeedbackConfig::validate`];
    /// * [`SimulationError::NoFeasibleConfiguration`] when the traffic class
    ///   cannot be served at the package ambient.
    pub fn new(config: FeedbackConfig) -> Result<Self, SimulationError> {
        config.validate()?;
        // A homogeneous fleet shares one manager (and one operating-point
        // cache); a heterogeneous fleet gets one chip instance per ONI.
        let manager_count = if config.variation.is_some() {
            config.sim.oni_count
        } else {
            1
        };
        let managers: Vec<LinkManager> = (0..manager_count)
            .map(|oni| {
                LinkManager::new(
                    config.oni_link(oni),
                    EccScheme::paper_schemes().to_vec(),
                    config.sim.nominal_ber,
                )
            })
            .collect();
        let ambient_bucket = config.bucket(config.network.ambient.value());
        let ambient = Celsius::new(config.bucket_temperature(ambient_bucket));
        let baselines: Vec<DecisionParams> = managers
            .iter()
            .map(|manager| {
                manager
                    .configure_at(config.sim.class, ambient)
                    .map(|decision| DecisionParams::from_decision(&decision))
                    .ok_or(SimulationError::NoFeasibleConfiguration {
                        class: config.sim.class,
                    })
            })
            .collect::<Result<_, _>>()?;
        let generated = TrafficGenerator::new(
            config.sim.pattern,
            config.sim.oni_count,
            config.sim.words_per_message,
            config.sim.class,
            config.sim.mean_inter_arrival_ns,
            config.sim.deadline_slack_ns,
            config.sim.seed,
        )
        .generate();
        let injection_order = generated.iter().map(|m| m.id).collect();
        let messages = generated.into_iter().map(|m| (m.id, m)).collect();
        Ok(Self {
            rng: StdRng::seed_from_u64(config.sim.seed ^ 0xC0FF_EE00),
            config,
            managers,
            baselines,
            messages,
            injection_order,
        })
    }

    /// Number of messages that will be injected.
    #[must_use]
    pub fn message_count(&self) -> usize {
        self.messages.len()
    }

    /// The manager serving destination `oni`.
    fn manager_for(&self, oni: usize) -> &LinkManager {
        if self.managers.len() == 1 {
            &self.managers[0]
        } else {
            &self.managers[oni]
        }
    }

    /// The ambient baseline of destination `oni`.
    fn baseline_for(&self, oni: usize) -> DecisionParams {
        if self.baselines.len() == 1 {
            self.baselines[0]
        } else {
            self.baselines[oni]
        }
    }

    /// Runs the closed loop to completion.
    #[must_use]
    #[allow(clippy::too_many_lines)]
    pub fn run(mut self) -> FeedbackReport {
        let n = self.config.sim.oni_count;
        let mut env = ActivityCoupledEnvironment::new(n, self.config.network);
        let ambient_c = self.config.network.ambient.value();
        let decision_temperature_c = self
            .config
            .bucket_temperature(self.config.bucket(ambient_c));
        let mut channels: Vec<ChannelState> = (0..n)
            .map(|oni| {
                let baseline = self.baseline_for(oni);
                ChannelState {
                    params: baseline,
                    baseline_scheme: baseline.scheme,
                    decision_temperature_c,
                    last_switch: None,
                    active: None,
                    peak_temperature_c: ambient_c,
                    switches: 0,
                }
            })
            .collect();

        let mut stats = SimStats {
            injected_messages: self.messages.len() as u64,
            ..SimStats::default()
        };
        let mut arbiters: HashMap<usize, TokenArbiter> = HashMap::new();
        let mut queue: BinaryHeap<Reverse<Event>> = BinaryHeap::new();
        let mut sequence = 0u64;
        for &id in &self.injection_order {
            queue.push(Reverse(Event {
                time: self.messages[&id].injected_at,
                sequence,
                kind: EventKind::Inject,
                message: id,
            }));
            sequence += 1;
        }

        let mut makespan = SimTime::ZERO;
        let mut epoch_start = SimTime::ZERO;
        let mut epochs = 0u64;
        let mut decisions = 0u64;
        let mut infeasible_requests = 0u64;
        let mut switch_log: Vec<SchemeSwitch> = Vec::new();
        let mut trajectory: Vec<EpochSample> = Vec::new();
        let mut deposited_pj = vec![0.0f64; n];

        while let Some(&Reverse(next)) = queue.peek() {
            // Nominal epoch boundary; long idle gaps are covered by a single
            // stretched epoch ending at the next event (the RC step
            // integrates the whole gap, so nothing is lost).
            let mut epoch_end = SimTime::from_nanos(epoch_start.as_nanos() + self.config.epoch_ns);
            if next.time > epoch_end {
                epoch_end = next.time;
            }

            // 1. Play the event queue through this epoch.
            while let Some(&Reverse(event)) = queue.peek() {
                if event.time > epoch_end {
                    break;
                }
                let Reverse(event) = queue.pop().expect("peeked");
                makespan = makespan.max_time(event.time);
                let message = self.messages[&event.message];
                match event.kind {
                    EventKind::Inject => {
                        arbiters
                            .entry(message.destination)
                            .or_default()
                            .request(message.source, message.id);
                        Self::try_start(
                            message.destination,
                            event.time,
                            &mut arbiters,
                            &mut channels,
                            &mut queue,
                            &mut sequence,
                            &self.messages,
                        );
                    }
                    EventKind::Complete => {
                        let (point, started) = channels[message.destination]
                            .active
                            .take()
                            .expect("completion implies an active transfer");
                        let duration_ns = point.transfer_duration(message.words).value();
                        stats.delivered_messages += 1;
                        stats.delivered_bits += message.payload_bits();
                        stats.channel_busy_ns += duration_ns;
                        // Dynamic energy for the part of the transfer inside
                        // this epoch; earlier parts were charged at the
                        // boundaries of the epochs they crossed.
                        let from = started.max_time(epoch_start);
                        let slice_pj = point.dynamic_power_mw * event.time.since(from).value();
                        stats.energy_pj += slice_pj;
                        deposited_pj[message.destination] += slice_pj;
                        let latency = event.time.since(message.injected_at).value();
                        stats.total_latency_ns += latency;
                        stats.max_latency_ns = stats.max_latency_ns.max(latency);
                        if message.misses_deadline(event.time) {
                            stats.deadline_misses += 1;
                        }
                        for _ in 0..message.words {
                            if self
                                .rng
                                .gen_bool(point.word_error_probability.clamp(0.0, 1.0))
                            {
                                stats.corrupted_words += 1;
                                stats.corrupted_bits += conditional_corrupted_bits(
                                    &mut self.rng,
                                    64,
                                    point.decoded_ber,
                                );
                            }
                            if self
                                .rng
                                .gen_bool(point.corrected_probability.clamp(0.0, 1.0))
                            {
                                stats.corrected_words += 1;
                            }
                        }
                        arbiters
                            .get_mut(&message.destination)
                            .expect("completion implies a prior grant")
                            .release(message.id);
                        Self::try_start(
                            message.destination,
                            event.time,
                            &mut arbiters,
                            &mut channels,
                            &mut queue,
                            &mut sequence,
                            &self.messages,
                        );
                    }
                }
            }

            // The run ends with the last event, not at the nominal epoch
            // boundary: static power is charged for actual residency only.
            let end = if queue.is_empty() {
                makespan
            } else {
                epoch_end
            };
            let span_ns = end.since(epoch_start).value();
            if span_ns > 0.0 {
                // 2. Integrate the power deposited by each destination
                // channel over this epoch.
                for (oni, channel) in channels.iter_mut().enumerate() {
                    if let Some((point, started)) = channel.active {
                        let from = started.max_time(epoch_start);
                        let slice_pj = point.dynamic_power_mw * end.since(from).value();
                        stats.energy_pj += slice_pj;
                        deposited_pj[oni] += slice_pj;
                        // Re-base so the remainder is charged later.
                        channel.active = Some((point, end));
                    }
                    let static_pj = channel.params.static_power_mw * span_ns;
                    stats.energy_pj += static_pj;
                    stats.static_energy_pj += static_pj;
                    deposited_pj[oni] += static_pj;
                }

                // 3. Step the thermal plant with the average epoch power.
                let powers_mw: Vec<f64> = deposited_pj.iter().map(|pj| pj / span_ns).collect();
                env.step(&powers_mw, span_ns);
                deposited_pj.iter_mut().for_each(|pj| *pj = 0.0);

                // 4. Re-ask the manager, gated by quantization + hysteresis.
                let deadband = self.config.quantization_k / 2.0 + self.config.hysteresis_k;
                for (oni, channel) in channels.iter_mut().enumerate() {
                    let t_now = env.temperature_of(oni).value();
                    channel.peak_temperature_c = channel.peak_temperature_c.max(t_now);
                    if (t_now - channel.decision_temperature_c).abs() <= deadband {
                        continue;
                    }
                    let bucket_t = self.config.bucket_temperature(self.config.bucket(t_now));
                    decisions += 1;
                    match self
                        .manager_for(oni)
                        .configure_at(self.config.sim.class, Celsius::new(bucket_t))
                    {
                        Some(decision) => {
                            let new_params = DecisionParams::from_decision(&decision);
                            if new_params.scheme != channel.params.scheme {
                                // Scheme-revert hysteresis: undoing the most
                                // recent switch needs a temperature excursion
                                // beyond its anchor, otherwise the channel
                                // that just cooled by escaping to the coded
                                // path would flap straight back.
                                if let Some((from, at_temp)) = channel.last_switch {
                                    if new_params.scheme == from
                                        && (t_now - at_temp).abs() < self.config.revert_hysteresis_k
                                    {
                                        channel.decision_temperature_c = bucket_t;
                                        continue;
                                    }
                                }
                                channel.switches += 1;
                                channel.last_switch = Some((channel.params.scheme, t_now));
                                switch_log.push(SchemeSwitch {
                                    time_ns: end.as_nanos(),
                                    oni,
                                    from: channel.params.scheme,
                                    to: new_params.scheme,
                                    temperature_c: t_now,
                                });
                            }
                            channel.params = new_params;
                            channel.decision_temperature_c = bucket_t;
                        }
                        None => {
                            // Keep the previous operating point; the channel
                            // stays up at its old configuration.
                            infeasible_requests += 1;
                            channel.decision_temperature_c = bucket_t;
                        }
                    }
                }

                epochs += 1;
                trajectory.push(EpochSample {
                    time_ns: end.as_nanos(),
                    min_temperature_c: env
                        .temperatures_c()
                        .iter()
                        .copied()
                        .fold(f64::INFINITY, f64::min),
                    max_temperature_c: env.hottest().value(),
                    reconfigured_onis: channels
                        .iter()
                        .filter(|c| c.params.scheme != c.baseline_scheme)
                        .count(),
                });
            }
            epoch_start = end;
        }

        stats.makespan_ns = makespan.as_nanos();
        let per_oni = channels
            .iter()
            .enumerate()
            .map(|(oni, c)| OniFeedbackReport {
                oni,
                final_temperature_c: env.temperature_of(oni).value(),
                peak_temperature_c: c.peak_temperature_c,
                scheme: c.params.scheme,
                channel_power_mw: c.params.channel_power_mw,
                scheme_switches: c.switches,
            })
            .collect();
        let solver_cache =
            self.managers
                .iter()
                .fold(CacheCounters::default(), |mut total, manager| {
                    let counters = manager.link().cache_counters();
                    total.hits += counters.hits;
                    total.misses += counters.misses;
                    total.entries += counters.entries;
                    total
                });
        FeedbackReport {
            baseline_scheme: self.baselines[0].scheme,
            stats,
            per_oni,
            epochs,
            decisions,
            infeasible_requests,
            switch_log,
            trajectory,
            solver_cache,
            config: self.config,
        }
    }

    /// Grants the next pending transfer on `destination`, capturing the
    /// channel's *current* operating point for the whole transfer.
    fn try_start(
        destination: usize,
        now: SimTime,
        arbiters: &mut HashMap<usize, TokenArbiter>,
        channels: &mut [ChannelState],
        queue: &mut BinaryHeap<Reverse<Event>>,
        sequence: &mut u64,
        messages: &HashMap<MessageId, Message>,
    ) {
        if channels[destination].active.is_some() {
            return;
        }
        let arbiter = arbiters.entry(destination).or_default();
        if let Some((_, id)) = arbiter.grant() {
            let message = messages[&id];
            let point = channels[destination].params;
            channels[destination].active = Some((point, now));
            queue.push(Reverse(Event {
                time: now.advanced_by(point.transfer_duration(message.words)),
                sequence: *sequence,
                kind: EventKind::Complete,
                message: id,
            }));
            *sequence += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::TrafficPattern;
    use onoc_link::TrafficClass;

    fn latency_first_config() -> FeedbackConfig {
        FeedbackConfig {
            sim: SimulationConfig {
                oni_count: 8,
                pattern: TrafficPattern::UniformRandom {
                    messages_per_node: 120,
                },
                class: TrafficClass::LatencyFirst,
                words_per_message: 16,
                mean_inter_arrival_ns: 8.0,
                deadline_slack_ns: None,
                nominal_ber: 1e-11,
                seed: 5,
                thermal: None,
            },
            ..FeedbackConfig::default()
        }
    }

    #[test]
    fn self_heating_switches_latency_first_traffic_to_the_coded_path() {
        let sim = FeedbackSimulation::new(latency_first_config()).unwrap();
        let injected = sim.message_count() as u64;
        let report = sim.run();
        assert_eq!(report.stats.delivered_messages, injected);
        assert_eq!(report.baseline_scheme, EccScheme::Uncoded);
        // No prescribed trace anywhere — the uncoded laser's own dissipation
        // must carry the channels past the uncoded link's collapse.
        assert!(
            report.total_switches() > 0,
            "activity-driven heating must force at least one switch"
        );
        assert!(report
            .switch_log
            .iter()
            .all(|s| s.from == EccScheme::Uncoded && s.to == EccScheme::Hamming7164));
        assert!(report
            .per_oni
            .iter()
            .all(|o| o.scheme == EccScheme::Hamming7164));
        assert!(report.epochs > 10);
    }

    #[test]
    fn feedback_reaches_a_steady_state_without_oscillation() {
        let report = FeedbackSimulation::new(latency_first_config())
            .unwrap()
            .run();
        // Bounded temperatures…
        for oni in &report.per_oni {
            assert!(
                oni.peak_temperature_c < 100.0,
                "ONI {} peaked at {}",
                oni.oni,
                oni.peak_temperature_c
            );
            assert!(oni.final_temperature_c > 25.0);
        }
        // …and no scheme flapping: each channel switches at most once up to
        // the coded path and never back (hysteresis holds at the edge).
        for oni in &report.per_oni {
            assert!(
                oni.scheme_switches <= 1,
                "ONI {} oscillated ({} switches)",
                oni.oni,
                oni.scheme_switches
            );
        }
    }

    #[test]
    fn cooled_coded_channels_hold_via_hysteresis() {
        let report = FeedbackSimulation::new(latency_first_config())
            .unwrap()
            .run();
        // After the switch the coded point burns less power, so channels
        // cool below their switch temperature yet stay coded.
        let last = report.trajectory.last().unwrap();
        let peak = report
            .trajectory
            .iter()
            .map(|s| s.max_temperature_c)
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(
            last.max_temperature_c < peak,
            "final {} vs peak {peak}",
            last.max_temperature_c
        );
        assert_eq!(last.reconfigured_onis, report.config.sim.oni_count);
    }

    #[test]
    fn memoized_cache_carries_the_run() {
        let report = FeedbackSimulation::new(latency_first_config())
            .unwrap()
            .run();
        let cache = report.solver_cache;
        assert!(report.decisions > 0);
        // Every manager re-ask queries all three candidate schemes, yet the
        // solver only runs once per distinct (scheme, BER, bucket).
        assert!(cache.hits > 0, "re-asks must hit the cache");
        assert!(
            cache.misses < (report.decisions + 1) * 3,
            "misses {} vs {} queries",
            cache.misses,
            (report.decisions + 1) * 3
        );
    }

    #[test]
    fn bulk_traffic_stays_on_its_coded_point() {
        // Bulk lands on H(71,64) already at the ambient; its lower power
        // keeps the plant cooler and nothing ever switches.
        let report = FeedbackSimulation::new(FeedbackConfig {
            sim: SimulationConfig {
                class: TrafficClass::Bulk,
                ..latency_first_config().sim
            },
            ..FeedbackConfig::default()
        })
        .unwrap()
        .run();
        assert_eq!(report.baseline_scheme, EccScheme::Hamming7164);
        assert_eq!(report.total_switches(), 0);
        assert!(report.per_oni.iter().all(|o| o.peak_temperature_c < 60.0));
    }

    #[test]
    fn zero_traffic_run_is_cold_and_free() {
        let report = FeedbackSimulation::new(FeedbackConfig {
            sim: SimulationConfig {
                pattern: TrafficPattern::UniformRandom {
                    messages_per_node: 0,
                },
                ..latency_first_config().sim
            },
            ..FeedbackConfig::default()
        })
        .unwrap()
        .run();
        assert_eq!(report.stats.makespan_ns, 0.0);
        assert_eq!(report.stats.energy_pj, 0.0);
        assert_eq!(report.epochs, 0);
        assert!(report.per_oni.iter().all(|o| o.final_temperature_c == 25.0));
    }

    #[test]
    fn feedback_runs_are_reproducible() {
        let a = FeedbackSimulation::new(latency_first_config())
            .unwrap()
            .run();
        let b = FeedbackSimulation::new(latency_first_config())
            .unwrap()
            .run();
        assert_eq!(a, b);
    }

    #[test]
    fn zero_sigma_fleet_reproduces_the_homogeneous_run_bit_identically() {
        let homogeneous = FeedbackSimulation::new(latency_first_config())
            .unwrap()
            .run();
        let trivially_varied = FeedbackSimulation::new(FeedbackConfig {
            variation: Some(RingVariationConfig {
                sigma_nm: 0.0,
                seed: 1234,
                mode: BankTuningMode::PureHeater,
            }),
            ..latency_first_config()
        })
        .unwrap()
        .run();
        // Per-ONI managers with σ = 0 chips take bit-identical decisions;
        // only the aggregated cache counters and the config itself differ.
        assert_eq!(homogeneous.stats, trivially_varied.stats);
        assert_eq!(homogeneous.per_oni, trivially_varied.per_oni);
        assert_eq!(homogeneous.switch_log, trivially_varied.switch_log);
        assert_eq!(homogeneous.trajectory, trivially_varied.trajectory);
        assert_eq!(
            homogeneous.baseline_scheme,
            trivially_varied.baseline_scheme
        );
    }

    #[test]
    fn heterogeneous_fleets_take_heterogeneous_decisions() {
        let report = FeedbackSimulation::new(FeedbackConfig {
            variation: Some(RingVariationConfig {
                sigma_nm: 0.04,
                seed: 7,
                mode: BankTuningMode::PureHeater,
            }),
            ..latency_first_config()
        })
        .unwrap()
        .run();
        assert_eq!(
            report.stats.delivered_messages,
            report.stats.injected_messages
        );
        // Different chip instances pay different bills: the final channel
        // powers must not all be equal across the fleet.
        let powers: Vec<u64> = report
            .per_oni
            .iter()
            .map(|o| o.channel_power_mw.to_bits())
            .collect();
        assert!(
            powers.windows(2).any(|w| w[0] != w[1]),
            "heterogeneous fleet produced identical channels: {powers:?}"
        );
        // And the runs stay reproducible.
        let again = FeedbackSimulation::new(FeedbackConfig {
            variation: Some(RingVariationConfig {
                sigma_nm: 0.04,
                seed: 7,
                mode: BankTuningMode::PureHeater,
            }),
            ..latency_first_config()
        })
        .unwrap()
        .run();
        assert_eq!(report, again);
    }

    #[test]
    fn barrel_shift_fleet_spends_less_tuning_power_than_pure_heater() {
        // Bulk traffic stays on H(71,64) throughout, so the two runs differ
        // only in how the heaters fight the self-heating drift — no scheme
        // switches to confound the comparison.
        let run = |mode: BankTuningMode| {
            FeedbackSimulation::new(FeedbackConfig {
                sim: SimulationConfig {
                    class: TrafficClass::Bulk,
                    ..latency_first_config().sim
                },
                variation: Some(RingVariationConfig {
                    sigma_nm: 0.04,
                    seed: 7,
                    mode,
                }),
                ..FeedbackConfig::default()
            })
            .unwrap()
            .run()
        };
        let pure = run(BankTuningMode::PureHeater);
        let barrel = run(BankTuningMode::full_barrel_shift(16));
        assert_eq!(pure.total_switches(), 0);
        assert_eq!(barrel.total_switches(), 0);
        // Cheaper tuning at the same scheme means less dissipated energy and
        // a cooler fleet.
        assert!(barrel.stats.energy_pj <= pure.stats.energy_pj);
        let peak = |r: &FeedbackReport| {
            r.per_oni
                .iter()
                .map(|o| o.peak_temperature_c)
                .fold(f64::NEG_INFINITY, f64::max)
        };
        assert!(peak(&barrel) <= peak(&pure) + 1e-9);
    }

    #[test]
    fn invalid_variation_and_stack_are_rejected_as_configuration_errors() {
        let mut config = latency_first_config();
        config.variation = Some(RingVariationConfig {
            sigma_nm: -0.01,
            seed: 0,
            mode: BankTuningMode::PureHeater,
        });
        let err = FeedbackSimulation::new(config).unwrap_err();
        assert!(err.to_string().contains("sigma"), "{err}");

        let mut config = latency_first_config();
        config.variation = Some(RingVariationConfig {
            sigma_nm: f64::NAN,
            seed: 0,
            mode: BankTuningMode::PureHeater,
        });
        assert!(FeedbackSimulation::new(config).is_err());

        let mut config = latency_first_config();
        config.variation = Some(RingVariationConfig {
            sigma_nm: 0.04,
            seed: 0,
            mode: BankTuningMode::BarrelShift { max_shift: 0 },
        });
        let err = FeedbackSimulation::new(config).unwrap_err();
        assert!(err.to_string().contains("barrel-shift"), "{err}");

        let mut config = latency_first_config();
        let mut stack = onoc_link::ThermalLinkStack::paper_default();
        stack.rings.drift_nm_per_kelvin = f64::NAN;
        config.stack = Some(stack);
        let err = FeedbackSimulation::new(config).unwrap_err();
        assert!(err.to_string().contains("drift slope"), "{err}");

        let mut config = latency_first_config();
        let mut stack = onoc_link::ThermalLinkStack::paper_default();
        stack.tuner.max_power_per_ring = onoc_units::Microwatts::new(1.0) * f64::INFINITY;
        config.stack = Some(stack);
        let err = FeedbackSimulation::new(config).unwrap_err();
        assert!(err.to_string().contains("saturation"), "{err}");
    }

    #[test]
    fn invalid_feedback_configurations_are_rejected() {
        let mut config = latency_first_config();
        config.epoch_ns = 0.0;
        let err = FeedbackSimulation::new(config).unwrap_err();
        assert!(err.to_string().contains("epoch"));

        let mut config = latency_first_config();
        config.quantization_k = f64::NAN;
        let err = FeedbackSimulation::new(config).unwrap_err();
        assert!(err.to_string().contains("quantization"));

        let mut config = latency_first_config();
        config.hysteresis_k = -1.0;
        let err = FeedbackSimulation::new(config).unwrap_err();
        assert!(err.to_string().contains("hysteresis"));

        let mut config = latency_first_config();
        config.network.heat_capacity_pj_per_k = 0.0;
        let err = FeedbackSimulation::new(config).unwrap_err();
        assert!(err.to_string().contains("heat capacity"));

        let mut config = latency_first_config();
        config.sim.thermal = Some(crate::thermal::ThermalScenario::paper_ambient());
        let err = FeedbackSimulation::new(config).unwrap_err();
        assert!(err.to_string().contains("prescribed"));

        let mut config = latency_first_config();
        config.sim.mean_inter_arrival_ns = -1.0;
        let err = FeedbackSimulation::new(config).unwrap_err();
        assert!(err.to_string().contains("inter-arrival"));
    }
}
