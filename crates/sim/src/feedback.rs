//! The legacy closed-loop entry point: activity-driven heating.
//!
//! [`FeedbackSimulation`] pioneered the epoch-stepped electro-thermal loop:
//! play the event queue for one epoch, integrate the electrical power each
//! destination channel dissipated, deposit it into a per-ONI thermal RC
//! network, and re-ask the runtime manager for ONIs whose temperature left
//! its decision bucket — with deadband and scheme-revert hysteresis against
//! oscillation.
//!
//! That engine now lives in [`crate::scenario`] as the epoch-gated policy
//! over any [`onoc_thermal::ThermalModel`]; this module keeps the legacy
//! configuration/report types and a thin deprecated shim over
//! [`crate::ScenarioBuilder`], pinned bit-identical by
//! `tests/scenario_migration.rs`.

// This is a legacy-shim module: it intentionally uses the deprecated entry
// points it provides.
#![allow(deprecated)]

use onoc_ecc_codes::EccScheme;
use onoc_link::{CacheCounters, ThermalLinkStack};
use onoc_thermal::RcNetworkParameters;
use serde::{Deserialize, Serialize};

use crate::engine::{SimulationConfig, SimulationError};
use crate::scenario::{DecisionPolicy, ScenarioBuilder};
use crate::stats::SimStats;

pub use crate::scenario::{EpochSample, RingVariationConfig, SchemeSwitch};

/// Configuration of one closed-loop (activity-driven heating) run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeedbackConfig {
    /// Traffic, class, BER and seed configuration.  Its `thermal` field must
    /// be `None`: the feedback engine supplies its own thermal environment.
    pub sim: SimulationConfig,
    /// The per-ONI thermal RC network the dissipated power drives.
    pub network: RcNetworkParameters,
    /// Epoch length, in nanoseconds: how often dissipated power is
    /// integrated and deposited into the RC network.
    pub epoch_ns: f64,
    /// Temperature quantization of manager decisions, in kelvin: re-asks
    /// solve at the centre of the bucket containing the node temperature.
    pub quantization_k: f64,
    /// Hysteresis deadband, in kelvin: the manager is re-asked only once a
    /// node's temperature has left the bucket of its last decision by more
    /// than half a bucket plus this margin.
    pub hysteresis_k: f64,
    /// Scheme-revert hysteresis, in kelvin: undoing the channel's most
    /// recent scheme switch (returning to the scheme it switched away from)
    /// is accepted only once the temperature has moved at least this far
    /// from the temperature of that switch.  This is what keeps a channel
    /// that switched to the coded path, dropped its power and *cooled* from
    /// flapping straight back to the uncoded path it just escaped.
    pub revert_hysteresis_k: f64,
    /// Optional custom thermal stack (drift slope, heater, tune policy) for
    /// every ONI's link; `None` uses the paper default.
    pub stack: Option<ThermalLinkStack>,
    /// Optional per-ONI fabrication variation: `Some` makes the fleet
    /// heterogeneous (one seeded chip instance per destination channel),
    /// `None` keeps the homogeneous per-bank model.
    pub variation: Option<RingVariationConfig>,
}

impl Default for FeedbackConfig {
    fn default() -> Self {
        Self {
            sim: SimulationConfig::default(),
            network: RcNetworkParameters::paper_package(),
            epoch_ns: 25.0,
            quantization_k: 0.5,
            hysteresis_k: 1.5,
            revert_hysteresis_k: 10.0,
            stack: None,
            variation: None,
        }
    }
}

impl FeedbackConfig {
    /// Checks the configuration.
    ///
    /// # Errors
    ///
    /// [`SimulationError::InvalidConfiguration`] when the base simulation
    /// config is invalid, carries a prescribed thermal scenario, or the
    /// epoch/quantization/hysteresis/network parameters are out of range.
    pub fn validate(&self) -> Result<(), SimulationError> {
        self.sim.validate()?;
        if self.sim.thermal.is_some() {
            return Err(SimulationError::InvalidConfiguration {
                reason: "feedback runs derive their temperatures from activity; \
                         remove the prescribed thermal scenario"
                    .into(),
            });
        }
        self.policy().validate()?;
        if let Some(stack) = &self.stack {
            stack
                .validate()
                .map_err(|reason| SimulationError::InvalidConfiguration { reason })?;
        }
        if let Some(variation) = &self.variation {
            variation
                .validate()
                .map_err(|reason| SimulationError::InvalidConfiguration { reason })?;
        }
        self.network
            .validate()
            .map_err(|reason| SimulationError::InvalidConfiguration { reason })
    }

    /// The epoch-gated decision policy this configuration describes.
    #[must_use]
    fn policy(&self) -> DecisionPolicy {
        DecisionPolicy::EpochGated {
            epoch_ns: self.epoch_ns,
            quantization_k: self.quantization_k,
            hysteresis_k: self.hysteresis_k,
            revert_hysteresis_k: self.revert_hysteresis_k,
        }
    }
}

/// Final state of one destination channel after a feedback run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OniFeedbackReport {
    /// Destination ONI index.
    pub oni: usize,
    /// Node temperature at the end of the run, in °C.
    pub final_temperature_c: f64,
    /// Hottest temperature the node reached, in °C.
    pub peak_temperature_c: f64,
    /// Scheme the channel ended the run on.
    pub scheme: EccScheme,
    /// Channel power of the final operating point, in mW.
    pub channel_power_mw: f64,
    /// Number of scheme changes the channel went through.
    pub scheme_switches: u64,
}

/// Outcome of one closed-loop run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeedbackReport {
    /// The configuration that was simulated.
    pub config: FeedbackConfig,
    /// Scheme of the initial (package-ambient) operating point (of ONI 0's
    /// chip instance when the fleet is heterogeneous).
    pub baseline_scheme: EccScheme,
    /// Aggregate traffic statistics (energy includes the static share).
    pub stats: SimStats,
    /// Final per-destination state, sorted by ONI index.
    pub per_oni: Vec<OniFeedbackReport>,
    /// Number of epochs stepped.
    pub epochs: u64,
    /// Manager re-asks triggered by bucket changes (the hysteresis gate).
    pub decisions: u64,
    /// Re-asks the manager could not serve (the channel kept its previous
    /// operating point).
    pub infeasible_requests: u64,
    /// Every scheme change, in time order.
    pub switch_log: Vec<SchemeSwitch>,
    /// Temperature envelope per epoch.
    pub trajectory: Vec<EpochSample>,
    /// Operating-point cache counters of the run's link: `misses` is the
    /// number of actual photonic-solver invocations.
    pub solver_cache: CacheCounters,
}

impl FeedbackReport {
    /// Total scheme switches across the interconnect.
    #[must_use]
    pub fn total_switches(&self) -> u64 {
        self.switch_log.len() as u64
    }

    /// Number of distinct schemes in use at the end of the run.
    #[must_use]
    pub fn distinct_final_schemes(&self) -> usize {
        self.per_oni
            .iter()
            .map(|o| o.scheme)
            .collect::<std::collections::BTreeSet<_>>()
            .len()
    }
}

/// The closed-loop simulation (legacy entry point): event-driven traffic
/// over an epoch-stepped thermal plant.
///
/// This is now a thin shim over [`ScenarioBuilder`]: the configuration is
/// translated into a [`crate::Scenario`] with an activity-coupled thermal
/// model and the epoch-gated decision policy, and the unified run report is
/// mapped back onto [`FeedbackReport`].  Golden tests pin the two paths
/// bit-identical.
#[deprecated(
    since = "0.1.0",
    note = "use onoc_sim::ScenarioBuilder (activity-coupled thermal model + epoch-gated \
            policy); see the README migration table"
)]
#[derive(Debug)]
pub struct FeedbackSimulation {
    scenario: crate::scenario::Scenario,
    config: FeedbackConfig,
}

impl FeedbackSimulation {
    /// Prepares a closed-loop run: validates the configuration, generates
    /// the traffic and solves the initial operating point at the package
    /// ambient.
    ///
    /// # Errors
    ///
    /// * [`SimulationError::InvalidConfiguration`] — see
    ///   [`FeedbackConfig::validate`];
    /// * [`SimulationError::NoFeasibleConfiguration`] when the traffic class
    ///   cannot be served at the package ambient.
    pub fn new(config: FeedbackConfig) -> Result<Self, SimulationError> {
        config.validate()?;
        let mut builder = ScenarioBuilder::new()
            .oni_count(config.sim.oni_count)
            .pattern(config.sim.pattern)
            .class(config.sim.class)
            .words_per_message(config.sim.words_per_message)
            .mean_inter_arrival_ns(config.sim.mean_inter_arrival_ns)
            .deadline_slack_ns(config.sim.deadline_slack_ns)
            .nominal_ber(config.sim.nominal_ber)
            .seed(config.sim.seed)
            .activity_coupled(config.network)
            .policy(config.policy());
        if let Some(stack) = config.stack.clone() {
            builder = builder.stack(stack);
        }
        if let Some(variation) = config.variation {
            builder = builder.variation(variation);
        }
        Ok(Self {
            scenario: builder.build()?,
            config,
        })
    }

    /// Number of messages that will be injected.
    #[must_use]
    pub fn message_count(&self) -> usize {
        self.scenario.message_count()
    }

    /// Runs the closed loop to completion.
    #[must_use]
    pub fn run(self) -> FeedbackReport {
        let run = self.scenario.run();
        FeedbackReport {
            baseline_scheme: run.baseline_scheme,
            stats: run.stats,
            per_oni: run
                .per_oni
                .iter()
                .map(|o| OniFeedbackReport {
                    oni: o.oni,
                    final_temperature_c: o.final_temperature_c,
                    peak_temperature_c: o.peak_temperature_c,
                    scheme: o.scheme,
                    channel_power_mw: o.channel_power_mw,
                    scheme_switches: o.scheme_switches,
                })
                .collect(),
            epochs: run.epochs,
            decisions: run.decisions,
            infeasible_requests: run.infeasible_requests,
            switch_log: run.switch_log,
            trajectory: run.trajectory,
            solver_cache: run.solver_cache,
            config: self.config,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::TrafficPattern;
    use onoc_link::TrafficClass;
    use onoc_thermal::BankTuningMode;

    fn latency_first_config() -> FeedbackConfig {
        FeedbackConfig {
            sim: SimulationConfig {
                oni_count: 8,
                pattern: TrafficPattern::UniformRandom {
                    messages_per_node: 120,
                },
                class: TrafficClass::LatencyFirst,
                words_per_message: 16,
                mean_inter_arrival_ns: 8.0,
                deadline_slack_ns: None,
                nominal_ber: 1e-11,
                seed: 5,
                thermal: None,
            },
            ..FeedbackConfig::default()
        }
    }

    #[test]
    fn self_heating_switches_latency_first_traffic_to_the_coded_path() {
        let sim = FeedbackSimulation::new(latency_first_config()).unwrap();
        let injected = sim.message_count() as u64;
        let report = sim.run();
        assert_eq!(report.stats.delivered_messages, injected);
        assert_eq!(report.baseline_scheme, EccScheme::Uncoded);
        // No prescribed trace anywhere — the uncoded laser's own dissipation
        // must carry the channels past the uncoded link's collapse.
        assert!(
            report.total_switches() > 0,
            "activity-driven heating must force at least one switch"
        );
        assert!(report
            .switch_log
            .iter()
            .all(|s| s.from == EccScheme::Uncoded && s.to == EccScheme::Hamming7164));
        assert!(report
            .per_oni
            .iter()
            .all(|o| o.scheme == EccScheme::Hamming7164));
        assert!(report.epochs > 10);
    }

    #[test]
    fn feedback_reaches_a_steady_state_without_oscillation() {
        let report = FeedbackSimulation::new(latency_first_config())
            .unwrap()
            .run();
        // Bounded temperatures…
        for oni in &report.per_oni {
            assert!(
                oni.peak_temperature_c < 100.0,
                "ONI {} peaked at {}",
                oni.oni,
                oni.peak_temperature_c
            );
            assert!(oni.final_temperature_c > 25.0);
        }
        // …and no scheme flapping: each channel switches at most once up to
        // the coded path and never back (hysteresis holds at the edge).
        for oni in &report.per_oni {
            assert!(
                oni.scheme_switches <= 1,
                "ONI {} oscillated ({} switches)",
                oni.oni,
                oni.scheme_switches
            );
        }
    }

    #[test]
    fn cooled_coded_channels_hold_via_hysteresis() {
        let report = FeedbackSimulation::new(latency_first_config())
            .unwrap()
            .run();
        // After the switch the coded point burns less power, so channels
        // cool below their switch temperature yet stay coded.
        let last = report.trajectory.last().unwrap();
        let peak = report
            .trajectory
            .iter()
            .map(|s| s.max_temperature_c)
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(
            last.max_temperature_c < peak,
            "final {} vs peak {peak}",
            last.max_temperature_c
        );
        assert_eq!(last.reconfigured_onis, report.config.sim.oni_count);
    }

    #[test]
    fn memoized_cache_carries_the_run() {
        let report = FeedbackSimulation::new(latency_first_config())
            .unwrap()
            .run();
        let cache = report.solver_cache;
        assert!(report.decisions > 0);
        // Every manager re-ask queries all three candidate schemes, yet the
        // solver only runs once per distinct (scheme, BER, bucket).
        assert!(cache.hits > 0, "re-asks must hit the cache");
        assert!(
            cache.misses < (report.decisions + 1) * 3,
            "misses {} vs {} queries",
            cache.misses,
            (report.decisions + 1) * 3
        );
    }

    #[test]
    fn bulk_traffic_stays_on_its_coded_point() {
        // Bulk lands on H(71,64) already at the ambient; its lower power
        // keeps the plant cooler and nothing ever switches.
        let report = FeedbackSimulation::new(FeedbackConfig {
            sim: SimulationConfig {
                class: TrafficClass::Bulk,
                ..latency_first_config().sim
            },
            ..FeedbackConfig::default()
        })
        .unwrap()
        .run();
        assert_eq!(report.baseline_scheme, EccScheme::Hamming7164);
        assert_eq!(report.total_switches(), 0);
        assert!(report.per_oni.iter().all(|o| o.peak_temperature_c < 60.0));
    }

    #[test]
    fn zero_traffic_run_is_cold_and_free() {
        let report = FeedbackSimulation::new(FeedbackConfig {
            sim: SimulationConfig {
                pattern: TrafficPattern::UniformRandom {
                    messages_per_node: 0,
                },
                ..latency_first_config().sim
            },
            ..FeedbackConfig::default()
        })
        .unwrap()
        .run();
        assert_eq!(report.stats.makespan_ns, 0.0);
        assert_eq!(report.stats.energy_pj, 0.0);
        assert_eq!(report.epochs, 0);
        assert!(report.per_oni.iter().all(|o| o.final_temperature_c == 25.0));
    }

    #[test]
    fn feedback_runs_are_reproducible() {
        let a = FeedbackSimulation::new(latency_first_config())
            .unwrap()
            .run();
        let b = FeedbackSimulation::new(latency_first_config())
            .unwrap()
            .run();
        assert_eq!(a, b);
    }

    #[test]
    fn zero_sigma_fleet_reproduces_the_homogeneous_run_bit_identically() {
        let homogeneous = FeedbackSimulation::new(latency_first_config())
            .unwrap()
            .run();
        let trivially_varied = FeedbackSimulation::new(FeedbackConfig {
            variation: Some(RingVariationConfig {
                sigma_nm: 0.0,
                seed: 1234,
                mode: BankTuningMode::PureHeater,
            }),
            ..latency_first_config()
        })
        .unwrap()
        .run();
        // Per-ONI managers with σ = 0 chips take bit-identical decisions;
        // only the aggregated cache counters and the config itself differ.
        assert_eq!(homogeneous.stats, trivially_varied.stats);
        assert_eq!(homogeneous.per_oni, trivially_varied.per_oni);
        assert_eq!(homogeneous.switch_log, trivially_varied.switch_log);
        assert_eq!(homogeneous.trajectory, trivially_varied.trajectory);
        assert_eq!(
            homogeneous.baseline_scheme,
            trivially_varied.baseline_scheme
        );
    }

    #[test]
    fn heterogeneous_fleets_take_heterogeneous_decisions() {
        let report = FeedbackSimulation::new(FeedbackConfig {
            variation: Some(RingVariationConfig {
                sigma_nm: 0.04,
                seed: 7,
                mode: BankTuningMode::PureHeater,
            }),
            ..latency_first_config()
        })
        .unwrap()
        .run();
        assert_eq!(
            report.stats.delivered_messages,
            report.stats.injected_messages
        );
        // Different chip instances pay different bills: the final channel
        // powers must not all be equal across the fleet.
        let powers: Vec<u64> = report
            .per_oni
            .iter()
            .map(|o| o.channel_power_mw.to_bits())
            .collect();
        assert!(
            powers.windows(2).any(|w| w[0] != w[1]),
            "heterogeneous fleet produced identical channels: {powers:?}"
        );
        // And the runs stay reproducible.
        let again = FeedbackSimulation::new(FeedbackConfig {
            variation: Some(RingVariationConfig {
                sigma_nm: 0.04,
                seed: 7,
                mode: BankTuningMode::PureHeater,
            }),
            ..latency_first_config()
        })
        .unwrap()
        .run();
        assert_eq!(report, again);
    }

    #[test]
    fn barrel_shift_fleet_spends_less_tuning_power_than_pure_heater() {
        // Bulk traffic stays on H(71,64) throughout, so the two runs differ
        // only in how the heaters fight the self-heating drift — no scheme
        // switches to confound the comparison.
        let run = |mode: BankTuningMode| {
            FeedbackSimulation::new(FeedbackConfig {
                sim: SimulationConfig {
                    class: TrafficClass::Bulk,
                    ..latency_first_config().sim
                },
                variation: Some(RingVariationConfig {
                    sigma_nm: 0.04,
                    seed: 7,
                    mode,
                }),
                ..FeedbackConfig::default()
            })
            .unwrap()
            .run()
        };
        let pure = run(BankTuningMode::PureHeater);
        let barrel = run(BankTuningMode::full_barrel_shift(16));
        assert_eq!(pure.total_switches(), 0);
        assert_eq!(barrel.total_switches(), 0);
        // Cheaper tuning at the same scheme means less dissipated energy and
        // a cooler fleet.
        assert!(barrel.stats.energy_pj <= pure.stats.energy_pj);
        let peak = |r: &FeedbackReport| {
            r.per_oni
                .iter()
                .map(|o| o.peak_temperature_c)
                .fold(f64::NEG_INFINITY, f64::max)
        };
        assert!(peak(&barrel) <= peak(&pure) + 1e-9);
    }

    #[test]
    fn invalid_variation_and_stack_are_rejected_as_configuration_errors() {
        let mut config = latency_first_config();
        config.variation = Some(RingVariationConfig {
            sigma_nm: -0.01,
            seed: 0,
            mode: BankTuningMode::PureHeater,
        });
        let err = FeedbackSimulation::new(config).unwrap_err();
        assert!(err.to_string().contains("sigma"), "{err}");

        let mut config = latency_first_config();
        config.variation = Some(RingVariationConfig {
            sigma_nm: f64::NAN,
            seed: 0,
            mode: BankTuningMode::PureHeater,
        });
        assert!(FeedbackSimulation::new(config).is_err());

        let mut config = latency_first_config();
        config.variation = Some(RingVariationConfig {
            sigma_nm: 0.04,
            seed: 0,
            mode: BankTuningMode::BarrelShift { max_shift: 0 },
        });
        let err = FeedbackSimulation::new(config).unwrap_err();
        assert!(err.to_string().contains("barrel-shift"), "{err}");

        let mut config = latency_first_config();
        let mut stack = onoc_link::ThermalLinkStack::paper_default();
        stack.rings.drift_nm_per_kelvin = f64::NAN;
        config.stack = Some(stack);
        let err = FeedbackSimulation::new(config).unwrap_err();
        assert!(err.to_string().contains("drift slope"), "{err}");

        let mut config = latency_first_config();
        let mut stack = onoc_link::ThermalLinkStack::paper_default();
        stack.tuner.max_power_per_ring = onoc_units::Microwatts::new(1.0) * f64::INFINITY;
        config.stack = Some(stack);
        let err = FeedbackSimulation::new(config).unwrap_err();
        assert!(err.to_string().contains("saturation"), "{err}");
    }

    #[test]
    fn invalid_feedback_configurations_are_rejected() {
        let mut config = latency_first_config();
        config.epoch_ns = 0.0;
        let err = FeedbackSimulation::new(config).unwrap_err();
        assert!(err.to_string().contains("epoch"));

        let mut config = latency_first_config();
        config.quantization_k = f64::NAN;
        let err = FeedbackSimulation::new(config).unwrap_err();
        assert!(err.to_string().contains("quantization"));

        let mut config = latency_first_config();
        config.hysteresis_k = -1.0;
        let err = FeedbackSimulation::new(config).unwrap_err();
        assert!(err.to_string().contains("hysteresis"));

        let mut config = latency_first_config();
        config.network.heat_capacity_pj_per_k = 0.0;
        let err = FeedbackSimulation::new(config).unwrap_err();
        assert!(err.to_string().contains("heat capacity"));

        let mut config = latency_first_config();
        config.sim.thermal = Some(crate::thermal::ThermalScenario::paper_ambient());
        let err = FeedbackSimulation::new(config).unwrap_err();
        assert!(err.to_string().contains("prescribed"));

        let mut config = latency_first_config();
        config.sim.mean_inter_arrival_ns = -1.0;
        let err = FeedbackSimulation::new(config).unwrap_err();
        assert!(err.to_string().contains("inter-arrival"));
    }
}
