//! Simulation time base.
//!
//! Event timestamps are kept in integer picoseconds so that event ordering is
//! exact and reproducible; conversions to the `onoc-units` nanosecond type
//! are provided at the boundaries.

use onoc_units::Nanoseconds;
use serde::{Deserialize, Serialize};

/// A point in simulated time, in picoseconds since the start of the run.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: Self = Self(0);

    /// Creates a timestamp from picoseconds.
    #[must_use]
    pub fn from_picos(picos: u64) -> Self {
        Self(picos)
    }

    /// Creates a timestamp from (non-negative, finite) nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `ns` is negative or not finite.
    #[must_use]
    pub fn from_nanos(ns: f64) -> Self {
        assert!(
            ns.is_finite() && ns >= 0.0,
            "time must be finite and non-negative"
        );
        Self((ns * 1e3).round() as u64)
    }

    /// Timestamp value in picoseconds.
    #[must_use]
    pub fn as_picos(self) -> u64 {
        self.0
    }

    /// Timestamp value in nanoseconds.
    #[must_use]
    pub fn as_nanos(self) -> f64 {
        self.0 as f64 * 1e-3
    }

    /// Converts to the `onoc-units` nanosecond quantity.
    #[must_use]
    pub fn to_nanoseconds(self) -> Nanoseconds {
        Nanoseconds::new(self.as_nanos())
    }

    /// Advances the timestamp by a duration expressed in nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `duration` is negative or not finite.
    #[must_use]
    pub fn advanced_by(self, duration: Nanoseconds) -> Self {
        Self(self.0 + Self::from_nanos(duration.value()).0)
    }

    /// Duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`.
    #[must_use]
    pub fn since(self, earlier: Self) -> Nanoseconds {
        assert!(earlier.0 <= self.0, "earlier timestamp is in the future");
        Nanoseconds::new((self.0 - earlier.0) as f64 * 1e-3)
    }

    /// Maximum of two timestamps.
    #[must_use]
    pub fn max_time(self, other: Self) -> Self {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl std::fmt::Display for SimTime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.3} ns", self.as_nanos())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        let t = SimTime::from_nanos(12.345);
        assert_eq!(t.as_picos(), 12_345);
        assert!((t.as_nanos() - 12.345).abs() < 1e-9);
        assert!((t.to_nanoseconds().value() - 12.345).abs() < 1e-9);
    }

    #[test]
    fn advance_and_since_are_inverses() {
        let start = SimTime::from_nanos(5.0);
        let later = start.advanced_by(Nanoseconds::new(11.2));
        assert!((later.since(start).value() - 11.2).abs() < 1e-9);
        assert!(later > start);
    }

    #[test]
    fn ordering_is_exact() {
        let a = SimTime::from_picos(1000);
        let b = SimTime::from_picos(1001);
        assert!(a < b);
        assert_eq!(SimTime::ZERO.as_picos(), 0);
    }

    #[test]
    #[should_panic(expected = "in the future")]
    fn negative_duration_panics() {
        let _ = SimTime::from_picos(1).since(SimTime::from_picos(2));
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_nanos_panics() {
        let _ = SimTime::from_nanos(-1.0);
    }
}
