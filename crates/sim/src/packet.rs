//! Messages exchanged by the ONIs.

use onoc_link::TrafficClass;
use serde::{Deserialize, Serialize};

use crate::time::SimTime;

/// Unique message identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MessageId(pub u64);

impl std::fmt::Display for MessageId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "msg#{}", self.0)
    }
}

/// One message (a burst of 64-bit words) travelling from a source ONI to a
/// destination ONI over the destination's MWSR channel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Message {
    /// Unique identifier.
    pub id: MessageId,
    /// Source ONI index.
    pub source: usize,
    /// Destination ONI index.
    pub destination: usize,
    /// Number of 64-bit payload words.
    pub words: u64,
    /// Traffic class, used by the link manager to pick the scheme.
    pub class: TrafficClass,
    /// Time at which the message was created at the source.
    pub injected_at: SimTime,
    /// Optional absolute deadline for real-time traffic.
    pub deadline: Option<SimTime>,
}

impl Message {
    /// Payload size in bits.
    #[must_use]
    pub fn payload_bits(&self) -> u64 {
        self.words * 64
    }

    /// Returns `true` when delivering at `time` violates the deadline.
    #[must_use]
    pub fn misses_deadline(&self, time: SimTime) -> bool {
        self.deadline.is_some_and(|d| time > d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn message(deadline: Option<SimTime>) -> Message {
        Message {
            id: MessageId(1),
            source: 0,
            destination: 3,
            words: 16,
            class: TrafficClass::RealTime,
            injected_at: SimTime::ZERO,
            deadline,
        }
    }

    #[test]
    fn payload_bits() {
        assert_eq!(message(None).payload_bits(), 1024);
    }

    #[test]
    fn deadline_check() {
        let m = message(Some(SimTime::from_nanos(100.0)));
        assert!(!m.misses_deadline(SimTime::from_nanos(99.0)));
        assert!(!m.misses_deadline(SimTime::from_nanos(100.0)));
        assert!(m.misses_deadline(SimTime::from_nanos(100.001)));
        assert!(!message(None).misses_deadline(SimTime::from_nanos(1e6)));
    }

    #[test]
    fn id_display() {
        assert_eq!(MessageId(42).to_string(), "msg#42");
    }
}
