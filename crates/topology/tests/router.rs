//! Property tests: routing is a pure function of the *fabric*, invariant
//! under link declaration order, and every resolved route is well-formed.

use onoc_topology::{LinkKind, LinkSpec, Router, Topology};
use proptest::prelude::*;

/// The link lists of the built-in constructors, before canonicalisation.
fn fabric_links(nodes: usize, flavour: usize) -> (usize, Vec<LinkSpec>) {
    match flavour {
        0 => (nodes, Topology::single_ring(nodes).links().to_vec()),
        1 => {
            let groups = (nodes / 2).max(1);
            (nodes, Topology::multi_ring(nodes, groups).links().to_vec())
        }
        _ => {
            // Scale the node count into a valid (clusters >= 2) hybrid mesh.
            let cluster = 2 + nodes % 3;
            let clusters = 2 + nodes % 2;
            let total = cluster * clusters;
            (
                total,
                Topology::hybrid_mesh(total, cluster).links().to_vec(),
            )
        }
    }
}

proptest! {
    #[test]
    fn routes_are_invariant_under_link_declaration_order(
        nodes in 2usize..10,
        flavour in 0usize..3,
        rotate in 0usize..16,
        reverse in 0usize..2,
    ) {
        let (nodes, mut links) = fabric_links(nodes, flavour);
        let reference = Topology::new(nodes, links.clone()).expect("valid");
        let baseline = Router::resolve(&reference);

        // Permute the declaration order deterministically.
        let pivot = rotate % links.len().max(1);
        links.rotate_left(pivot);
        if reverse == 1 {
            links.reverse();
        }
        let permuted = Topology::new(nodes, links).expect("still valid");
        prop_assert_eq!(&reference, &permuted);
        prop_assert_eq!(baseline, Router::resolve(&permuted));
    }

    #[test]
    fn resolved_routes_are_well_formed(nodes in 2usize..9, flavour in 0usize..3) {
        let (nodes, links) = fabric_links(nodes, flavour);
        let fabric = Topology::new(nodes, links).expect("valid");
        let table = Router::resolve(&fabric);
        prop_assert_eq!(table.len(), nodes * (nodes - 1));
        prop_assert!(!table.uses_swmr(), "built-ins carry no SWMR links");
        for route in table.iter() {
            prop_assert!(!route.hops.is_empty());
            prop_assert_eq!(route.hops.last().expect("non-empty").node, route.destination);
            // Hops chain: each hop's link must be traversable from the
            // previous node to the hop's node.
            let mut at = route.source;
            for hop in &route.hops {
                let link = &fabric.links()[hop.link];
                prop_assert_eq!(hop.kind, link.kind);
                match link.kind {
                    LinkKind::Mwsr => {
                        prop_assert!(link.members.contains(&at));
                        prop_assert_eq!(hop.node, link.hub);
                    }
                    LinkKind::Swmr | LinkKind::Electrical => {
                        prop_assert_eq!(at, link.hub);
                        prop_assert!(link.members.contains(&hop.node));
                    }
                }
                at = hop.node;
            }
            prop_assert_eq!(at, route.destination);
            // Shortest paths never revisit a node.
            let mut seen: Vec<usize> = vec![route.source];
            for hop in &route.hops {
                prop_assert!(!seen.contains(&hop.node), "loop-free");
                seen.push(hop.node);
            }
        }
    }

    #[test]
    fn resolution_is_reproducible_across_repeated_and_threaded_calls(
        nodes in 2usize..8,
        flavour in 0usize..3,
    ) {
        let (nodes, links) = fabric_links(nodes, flavour);
        let fabric = Topology::new(nodes, links).expect("valid");
        let serial = Router::resolve(&fabric);
        // Resolve the same fabric concurrently from several threads; every
        // result must be bit-identical to the serial one.
        let tables: Vec<_> = std::thread::scope(|scope| {
            (0..4)
                .map(|_| scope.spawn(|| Router::resolve(&fabric)))
                .collect::<Vec<_>>()
                .into_iter()
                .map(|handle| handle.join().expect("router thread"))
                .collect()
        });
        for table in tables {
            prop_assert_eq!(&serial, &table);
        }
    }
}
