//! Fabric topologies for the DAC'17 nanophotonic interconnect reproduction.
//!
//! The paper models a single MWSR (multiple-writer single-reader) channel:
//! every writer modulates onto the reader's wavelength-striped waveguide and
//! the reader's ring bank drops all lanes.  This crate generalises that one
//! ring into a *configurable fabric*:
//!
//! * [`Topology`] — a validated description of nodes and links.  Photonic
//!   links are tagged [`LinkKind::Mwsr`] or [`LinkKind::Swmr`] with an
//!   explicit radix (member list) and waveguide group; electrical fallback
//!   links ([`LinkKind::Electrical`]) are point-to-point.  Construction
//!   canonicalises link order and rejects malformed or disconnected fabrics,
//!   so downstream routing is invariant under link declaration order.
//! * [`Router`] — deterministic shortest-path routing with a lexicographic
//!   tie-break, producing one multi-hop [`Route`] per ordered node pair.
//! * [`TopologyElaborator`] — stamps out one [`NanophotonicLink`] model card
//!   per photonic link, scaling the thermal stack's drift slope with
//!   waveguide-group crosstalk, and shares one [`SharedOpCache`] across all
//!   stamped links whose stacks fingerprint identically.
//!
//! Built-in constructors cover the paper's canonical fabric
//! ([`Topology::single_ring`]), a waveguide-partitioned variant
//! ([`Topology::multi_ring`]) and a MorphoNoC-style hybrid
//! ([`Topology::hybrid_mesh`]) whose clusters are photonic islands stitched
//! together by an electrical gateway ring — the latter is the crate's
//! multi-hop workout.
//!
//! [`NanophotonicLink`]: onoc_link::NanophotonicLink
//! [`SharedOpCache`]: onoc_link::SharedOpCache

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod elaborate;
mod fabric;
mod route;

pub use elaborate::{ElaboratedFabric, LinkCard, TopologyElaborator};
pub use fabric::{ElectricalLinkModel, FabricSpec, LinkKind, LinkSpec, Topology, TopologyError};
pub use route::{Hop, Route, RouteTable, Router};
