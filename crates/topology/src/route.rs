//! Deterministic shortest-path routing over a [`Topology`].

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::fabric::{LinkKind, Topology};

/// One hop of a route: traverse `link` and arrive at `node`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Hop {
    /// The node this hop arrives at.  For an MWSR hop this is the link's
    /// reader hub — the arbiter and channel that serve the transfer.
    pub node: usize,
    /// Index into [`Topology::links`] of the traversed link.
    pub link: usize,
    /// Kind of the traversed link, denormalised for cheap dispatch.
    pub kind: LinkKind,
}

/// The full path of one flow from `source` to `destination`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Route {
    /// Originating node.
    pub source: usize,
    /// Final node; always the last hop's `node`.
    pub destination: usize,
    /// Hops in traversal order; never empty for `source != destination`.
    pub hops: Vec<Hop>,
}

impl Route {
    /// Number of hops.
    #[must_use]
    pub fn hop_count(&self) -> usize {
        self.hops.len()
    }

    /// Number of electrical hops.
    #[must_use]
    pub fn electrical_hops(&self) -> usize {
        self.hops
            .iter()
            .filter(|hop| hop.kind == LinkKind::Electrical)
            .count()
    }
}

/// All-pairs routes of a fabric, keyed by `(source, destination)`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RouteTable {
    routes: BTreeMap<(usize, usize), Route>,
}

impl RouteTable {
    /// The route from `source` to `destination`.
    ///
    /// # Panics
    ///
    /// Panics when `source == destination` or either index is out of range —
    /// the table covers exactly the ordered pairs of distinct fabric nodes.
    #[must_use]
    pub fn route(&self, source: usize, destination: usize) -> &Route {
        self.routes
            .get(&(source, destination))
            .unwrap_or_else(|| panic!("no route {source} -> {destination} in table"))
    }

    /// Iterates routes in `(source, destination)` order.
    pub fn iter(&self) -> impl Iterator<Item = &Route> {
        self.routes.values()
    }

    /// Number of routes (ordered pairs of distinct nodes).
    #[must_use]
    pub fn len(&self) -> usize {
        self.routes.len()
    }

    /// Whether the table is empty (never true for a valid fabric).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }

    /// Longest route in hops.
    #[must_use]
    pub fn max_hops(&self) -> usize {
        self.routes
            .values()
            .map(Route::hop_count)
            .max()
            .unwrap_or(0)
    }

    /// Whether every route is a single hop — the shape of the paper's
    /// canonical single-ring fabric, which the scenario engines fast-path.
    #[must_use]
    pub fn is_single_hop(&self) -> bool {
        self.max_hops() <= 1
    }

    /// Whether any route traverses an SWMR link (not yet supported by the
    /// scenario engines).
    #[must_use]
    pub fn uses_swmr(&self) -> bool {
        self.routes
            .values()
            .any(|route| route.hops.iter().any(|hop| hop.kind == LinkKind::Swmr))
    }
}

/// Deterministic all-pairs router: shortest path in hops, ties broken by
/// the lexicographically smallest `(node, link)` sequence.
///
/// Determinism is structural, not incidental: the topology's canonical link
/// order plus the lexicographic tie-break make the result a pure function
/// of the *fabric*, invariant under link declaration order and thread
/// count (property-tested in `tests/router.rs`).
#[derive(Debug, Clone, Copy, Default)]
pub struct Router;

impl Router {
    /// Computes the route table for every ordered pair of distinct nodes.
    ///
    /// Strong connectivity is a [`Topology`] construction invariant, so
    /// every pair resolves.
    #[must_use]
    pub fn resolve(topology: &Topology) -> RouteTable {
        let nodes = topology.node_count();
        // Forward adjacency: node -> sorted (next node, link index).
        let mut adjacency: Vec<Vec<(usize, usize)>> = vec![Vec::new(); nodes];
        for (index, link) in topology.links().iter().enumerate() {
            for (from, to) in link.edges() {
                adjacency[from].push((to, index));
            }
        }
        for edges in &mut adjacency {
            edges.sort_unstable();
        }

        let mut routes = BTreeMap::new();
        for destination in 0..nodes {
            let rdist = reverse_distances(topology, destination);
            for source in 0..nodes {
                if source == destination {
                    continue;
                }
                let route = walk(topology, &adjacency, &rdist, source, destination);
                routes.insert((source, destination), route);
            }
        }
        RouteTable { routes }
    }
}

/// Breadth-first hop distances *to* `destination` along forward edges.
fn reverse_distances(topology: &Topology, destination: usize) -> Vec<usize> {
    let nodes = topology.node_count();
    // Reverse adjacency: to -> froms.
    let mut reverse: Vec<Vec<usize>> = vec![Vec::new(); nodes];
    for link in topology.links() {
        for (from, to) in link.edges() {
            reverse[to].push(from);
        }
    }
    let mut distance = vec![usize::MAX; nodes];
    distance[destination] = 0;
    let mut frontier = std::collections::VecDeque::from([destination]);
    while let Some(node) = frontier.pop_front() {
        for &from in &reverse[node] {
            if distance[from] == usize::MAX {
                distance[from] = distance[node] + 1;
                frontier.push_back(from);
            }
        }
    }
    distance
}

/// Walks the lexicographically smallest shortest path: at every step take
/// the smallest `(next node, link)` that still lies on *a* shortest path.
fn walk(
    topology: &Topology,
    adjacency: &[Vec<(usize, usize)>],
    rdist: &[usize],
    source: usize,
    destination: usize,
) -> Route {
    debug_assert_ne!(
        rdist[source],
        usize::MAX,
        "strong connectivity is a Topology invariant"
    );
    let mut hops = Vec::with_capacity(rdist[source]);
    let mut current = source;
    while current != destination {
        let (next, link) = adjacency[current]
            .iter()
            .copied()
            .find(|&(next, _)| rdist[next] + 1 == rdist[current])
            .expect("a node on a shortest path has a next hop");
        hops.push(Hop {
            node: next,
            link,
            kind: topology.links()[link].kind,
        });
        current = next;
    }
    Route {
        source,
        destination,
        hops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::LinkSpec;

    #[test]
    fn single_ring_routes_are_all_one_photonic_hop() {
        let fabric = Topology::single_ring(4);
        let table = Router::resolve(&fabric);
        assert_eq!(table.len(), 12);
        assert!(table.is_single_hop());
        assert!(!table.uses_swmr());
        for route in table.iter() {
            assert_eq!(route.hop_count(), 1);
            assert_eq!(route.electrical_hops(), 0);
            let hop = route.hops[0];
            assert_eq!(hop.node, route.destination);
            assert_eq!(hop.kind, LinkKind::Mwsr);
            assert_eq!(
                Some(hop.link),
                fabric.reader_link(route.destination),
                "the one hop rides the destination's reader channel"
            );
        }
    }

    #[test]
    fn hybrid_mesh_routes_cross_clusters_through_gateways() {
        let fabric = Topology::hybrid_mesh(8, 4);
        let table = Router::resolve(&fabric);
        assert!(!table.is_single_hop());
        assert_eq!(table.max_hops(), 3);

        // Intra-cluster: one photonic hop.
        assert_eq!(table.route(1, 2).hop_count(), 1);

        // Cross-cluster from a non-gateway to a non-gateway: to own
        // gateway (photonic), across (electrical), to destination.
        let route = table.route(1, 6);
        assert_eq!(route.hop_count(), 3);
        assert_eq!(
            route.hops.iter().map(|h| h.node).collect::<Vec<_>>(),
            vec![0, 4, 6]
        );
        assert_eq!(
            route.hops.iter().map(|h| h.kind).collect::<Vec<_>>(),
            vec![LinkKind::Mwsr, LinkKind::Electrical, LinkKind::Mwsr]
        );
        assert_eq!(route.electrical_hops(), 1);

        // Gateway to gateway: a single electrical hop.
        assert_eq!(table.route(0, 4).hop_count(), 1);
        assert_eq!(table.route(0, 4).hops[0].kind, LinkKind::Electrical);
    }

    #[test]
    fn ties_break_toward_the_smallest_node_sequence() {
        // A diamond: 0 can reach 3 via 1 or via 2, both two hops.  The
        // router must pick the path through node 1.
        let fabric = Topology::new(
            4,
            vec![
                LinkSpec::mwsr(0, [1, 2, 3], 0),
                LinkSpec::mwsr(1, [0], 0),
                LinkSpec::mwsr(2, [0], 0),
                LinkSpec::mwsr(3, [1, 2], 0),
            ],
        )
        .expect("valid");
        let table = Router::resolve(&fabric);
        let route = table.route(0, 3);
        assert_eq!(route.hop_count(), 2);
        assert_eq!(route.hops[0].node, 1);
    }

    #[test]
    fn swmr_links_are_routed_and_flagged() {
        let fabric = Topology::new(
            3,
            vec![
                LinkSpec::mwsr(0, [1, 2], 0),
                LinkSpec::mwsr(1, [0], 0),
                LinkSpec::mwsr(2, [0], 0),
                LinkSpec::swmr(1, [2], 1),
            ],
        )
        .expect("valid");
        let table = Router::resolve(&fabric);
        assert!(table.uses_swmr());
        assert_eq!(table.route(1, 2).hops[0].kind, LinkKind::Swmr);
    }

    #[test]
    fn route_lookup_panics_outside_the_table() {
        let table = Router::resolve(&Topology::single_ring(2));
        let result = std::panic::catch_unwind(|| table.route(0, 0).hop_count());
        assert!(result.is_err());
    }
}
