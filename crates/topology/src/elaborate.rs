//! Elaboration: stamping a [`Topology`] into per-link photonic model cards.

use std::collections::BTreeMap;

use onoc_link::{LinkError, NanophotonicLink, SharedOpCache};
use onoc_photonics::ThermalLinkStack;

use crate::fabric::{FabricSpec, Topology, TopologyError};

/// One stamped photonic link: the model card the scenario engines and the
/// benches drive.
#[derive(Debug, Clone)]
pub struct LinkCard {
    /// Index into [`Topology::links`] of the stamped link.
    pub link: usize,
    /// The crosstalk-adjusted thermal stack baked into the model.
    pub stack: ThermalLinkStack,
    /// The stack's fingerprint — the cache lineage this card joined.
    pub fingerprint: u64,
    /// The ready-to-serve link model, wired to the shared cache of its
    /// fingerprint group.
    pub model: NanophotonicLink,
}

/// The result of elaborating a fabric: one [`LinkCard`] per photonic link,
/// with one [`SharedOpCache`] per *distinct* stack fingerprint shared by
/// every card in that group — stamped links with identical physics also
/// share their solver work.
#[derive(Debug)]
pub struct ElaboratedFabric {
    cards: Vec<LinkCard>,
    caches: BTreeMap<u64, SharedOpCache>,
}

impl ElaboratedFabric {
    /// The stamped cards, in canonical link order.
    #[must_use]
    pub fn cards(&self) -> &[LinkCard] {
        &self.cards
    }

    /// The card stamped for topology link `link`, or `None` for electrical
    /// links (which have no photonic model).
    #[must_use]
    pub fn card_for_link(&self, link: usize) -> Option<&LinkCard> {
        self.cards.iter().find(|card| card.link == link)
    }

    /// The card serving `node`'s MWSR reader channel.
    #[must_use]
    pub fn reader_card(&self, topology: &Topology, node: usize) -> Option<&LinkCard> {
        self.card_for_link(topology.reader_link(node)?)
    }

    /// Number of distinct stack fingerprints (= number of shared caches).
    #[must_use]
    pub fn distinct_stacks(&self) -> usize {
        self.caches.len()
    }

    /// Whether every stamped link carries the same stack — the shape under
    /// which a fabric is physically indistinguishable from the paper's
    /// single ring.
    #[must_use]
    pub fn is_uniform(&self) -> bool {
        self.caches.len() <= 1
    }

    /// The shared cache of one fingerprint group.
    #[must_use]
    pub fn shared_cache(&self, fingerprint: u64) -> Option<&SharedOpCache> {
        self.caches.get(&fingerprint)
    }
}

/// Deterministically stamps out one [`NanophotonicLink`] model card per
/// photonic link of a fabric.
///
/// Cards are derived from a single base stack (default: the paper's), with
/// each link's ring drift slope amplified by its waveguide-group crosstalk
/// ([`FabricSpec::link_stack`]).  Links whose adjusted stacks fingerprint
/// identically share one [`SharedOpCache`], so a fleet of identical rings
/// pays for each operating-point solve once.
#[derive(Debug, Clone)]
pub struct TopologyElaborator {
    base_stack: ThermalLinkStack,
    cache_buckets_per_kelvin: Option<f64>,
}

impl TopologyElaborator {
    /// An elaborator stamping the paper's default stack.
    #[must_use]
    pub fn new() -> Self {
        Self {
            base_stack: ThermalLinkStack::paper_default(),
            cache_buckets_per_kelvin: None,
        }
    }

    /// Replaces the base stack every card is derived from.
    #[must_use]
    pub fn with_base_stack(mut self, stack: ThermalLinkStack) -> Self {
        self.base_stack = stack;
        self
    }

    /// Sets the temperature quantisation of the stamped links' caches.
    #[must_use]
    pub fn with_cache_resolution(mut self, buckets_per_kelvin: f64) -> Self {
        self.cache_buckets_per_kelvin = Some(buckets_per_kelvin);
        self
    }

    /// The base stack cards are derived from.
    #[must_use]
    pub fn base_stack(&self) -> &ThermalLinkStack {
        &self.base_stack
    }

    /// Stamps the fabric: validates the spec and the base stack, derives
    /// each photonic link's stack, groups identical fingerprints onto one
    /// shared cache, and builds the link models.
    ///
    /// # Errors
    ///
    /// [`TopologyError`] when the spec's physical knobs are invalid, the
    /// base stack fails validation, or a link model rejects its
    /// configuration.
    pub fn elaborate(&self, spec: &FabricSpec) -> Result<ElaboratedFabric, TopologyError> {
        spec.validate()?;
        self.base_stack.validate().map_err(|reason| TopologyError {
            reason: format!("base stack: {reason}"),
        })?;
        let mut cards = Vec::new();
        let mut caches: BTreeMap<u64, SharedOpCache> = BTreeMap::new();
        for (index, link) in spec.topology.links().iter().enumerate() {
            if !link.kind.is_photonic() {
                continue;
            }
            let stack = spec
                .link_stack(&self.base_stack, index)
                .expect("photonic links derive a stack");
            let fingerprint = stack.fingerprint();
            let cache = caches.entry(fingerprint).or_default();
            let mut model = NanophotonicLink::paper_link()
                .with_thermal_stack(stack.clone())
                .with_shared_cache(cache.clone());
            if let Some(buckets) = self.cache_buckets_per_kelvin {
                model = model
                    .with_cache_resolution(buckets)
                    .map_err(|error| TopologyError {
                        reason: format!("link {index}: {error}"),
                    })?;
            }
            cards.push(LinkCard {
                link: index,
                stack,
                fingerprint,
                model,
            });
        }
        Ok(ElaboratedFabric { cards, caches })
    }
}

impl Default for TopologyElaborator {
    fn default() -> Self {
        Self::new()
    }
}

// LinkError only flows out wrapped in TopologyError messages, but keep the
// conversion for callers composing the two layers.
impl From<LinkError> for TopologyError {
    fn from(error: LinkError) -> Self {
        Self {
            reason: error.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::{LinkKind, LinkSpec};

    #[test]
    fn uniform_fabric_shares_one_cache_across_all_cards() {
        let spec = FabricSpec::new(Topology::single_ring(4));
        let fabric = TopologyElaborator::new().elaborate(&spec).expect("stamps");
        assert_eq!(fabric.cards().len(), 4);
        assert!(fabric.is_uniform());
        assert_eq!(fabric.distinct_stacks(), 1);

        // Warm the cache through card 0, then observe the hit through card 3.
        let scheme = onoc_ecc_codes::EccScheme::Hamming74;
        let temperature = onoc_units::Celsius::new(45.0);
        fabric.cards()[0]
            .model
            .operating_point_memoized(scheme, 1e-12, temperature)
            .expect("solves");
        fabric.cards()[3]
            .model
            .operating_point_memoized(scheme, 1e-12, temperature)
            .expect("serves");
        let counters = fabric.cards()[3].model.cache_counters();
        assert_eq!(counters.misses, 1, "one solve for the whole fleet");
        assert!(counters.hits >= 1, "card 3 must hit card 0's solve");
    }

    #[test]
    fn crosstalk_splits_fingerprint_groups_by_waveguide_population() {
        // 6 nodes over 2 groups of 3 channels each, plus crosstalk: both
        // groups have the same population, so all stacks still agree.
        let even = FabricSpec::new(Topology::multi_ring(6, 2)).with_crosstalk(0.05);
        let fabric = TopologyElaborator::new().elaborate(&even).expect("stamps");
        assert_eq!(fabric.distinct_stacks(), 1);

        // 4 nodes where group 0 holds 2 channels and groups 1..=2 hold one
        // each: populations differ, so fingerprints split into two groups.
        let skewed = FabricSpec::new(
            Topology::new(
                4,
                vec![
                    LinkSpec::mwsr(0, [1, 2, 3], 0),
                    LinkSpec::mwsr(1, [0, 2, 3], 0),
                    LinkSpec::mwsr(2, [0, 1, 3], 1),
                    LinkSpec::mwsr(3, [0, 1, 2], 2),
                ],
            )
            .expect("valid"),
        )
        .with_crosstalk(0.05);
        let fabric = TopologyElaborator::new()
            .elaborate(&skewed)
            .expect("stamps");
        assert_eq!(fabric.distinct_stacks(), 2);
        assert!(!fabric.is_uniform());
        let crowded = fabric.cards()[0].fingerprint;
        assert_eq!(fabric.cards()[1].fingerprint, crowded);
        let lonely = fabric.cards()[2].fingerprint;
        assert_eq!(fabric.cards()[3].fingerprint, lonely);
        assert_ne!(crowded, lonely);
        assert!(fabric.shared_cache(crowded).is_some());
        assert!(fabric.shared_cache(lonely).is_some());
    }

    #[test]
    fn electrical_links_are_skipped_and_reader_cards_resolve() {
        let topology = Topology::hybrid_mesh(8, 4);
        let spec = FabricSpec::new(topology.clone());
        let fabric = TopologyElaborator::new().elaborate(&spec).expect("stamps");
        assert_eq!(fabric.cards().len(), 8, "one card per photonic link only");
        for link in 0..topology.links().len() {
            let is_photonic = topology.links()[link].kind.is_photonic();
            assert_eq!(fabric.card_for_link(link).is_some(), is_photonic);
        }
        for node in 0..8 {
            let card = fabric.reader_card(&topology, node).expect("reader card");
            assert_eq!(topology.links()[card.link].hub, node);
            assert_eq!(topology.links()[card.link].kind, LinkKind::Mwsr);
        }
    }

    #[test]
    fn invalid_specs_are_rejected() {
        let spec = FabricSpec::new(Topology::single_ring(2)).with_crosstalk(-1.0);
        let error = TopologyElaborator::new()
            .elaborate(&spec)
            .expect_err("negative crosstalk");
        assert!(error.reason.contains("crosstalk"));

        let spec = FabricSpec::new(Topology::single_ring(2));
        let error = TopologyElaborator::new()
            .with_cache_resolution(0.0)
            .elaborate(&spec)
            .expect_err("zero resolution");
        assert!(error.reason.contains("link 0"));
    }
}
