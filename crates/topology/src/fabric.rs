//! Fabric descriptions: nodes, photonic/electrical links and the built-in
//! topology constructors.

use std::collections::BTreeSet;
use std::fmt;

use serde::{Deserialize, Serialize};

/// A malformed fabric description, produced by [`Topology::new`] or
/// [`FabricSpec::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopologyError {
    /// Human-readable description of the violated invariant.
    pub reason: String,
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid topology: {}", self.reason)
    }
}

impl std::error::Error for TopologyError {}

fn invalid(reason: impl Into<String>) -> TopologyError {
    TopologyError {
        reason: reason.into(),
    }
}

/// Transport discipline of one fabric link.
///
/// The derived ordering (MWSR < SWMR < electrical) is load-bearing: it is
/// part of the canonical link order, so routers prefer photonic links over
/// electrical fallbacks when both offer an equally short path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum LinkKind {
    /// Many writers share one reader over a wavelength-striped waveguide —
    /// the paper's channel discipline.
    Mwsr,
    /// One writer broadcasts to many readers.  Accepted in descriptions and
    /// routed around, but not yet supported by the scenario engines.
    Swmr,
    /// Point-to-point electrical fallback: repeated wires with no ring
    /// tuning and no coding, used to stitch photonic islands together.
    Electrical,
}

impl LinkKind {
    /// Whether the link is an optical waveguide (MWSR or SWMR).
    #[must_use]
    pub fn is_photonic(self) -> bool {
        matches!(self, Self::Mwsr | Self::Swmr)
    }
}

impl fmt::Display for LinkKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Self::Mwsr => "MWSR",
            Self::Swmr => "SWMR",
            Self::Electrical => "electrical",
        })
    }
}

/// One link of a fabric.
///
/// The `hub` is the single-sided end of the link: the reader of an MWSR
/// channel, the writer of an SWMR channel, or the driving end of an
/// electrical wire.  `members` are the many-sided ends (writers, readers,
/// or the single electrical sink), kept sorted and deduplicated.
///
/// Field order matters: the derived `Ord` (kind, hub, members, group) is the
/// canonical link order [`Topology::new`] sorts into.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LinkSpec {
    /// Transport discipline.
    pub kind: LinkKind,
    /// The single-sided end: MWSR reader, SWMR writer, or electrical source.
    pub hub: usize,
    /// The many-sided ends, sorted ascending without duplicates.
    pub members: Vec<usize>,
    /// Waveguide group for photonic links: links sharing a group run their
    /// waveguides through the same routing corridor and suffer mutual
    /// thermal crosstalk (see [`FabricSpec::crosstalk_per_neighbor`]).
    /// Ignored for electrical links (kept at 0 by the constructor).
    pub waveguide_group: usize,
}

impl LinkSpec {
    /// An MWSR channel read by `reader` and written by `writers`.
    #[must_use]
    pub fn mwsr(reader: usize, writers: impl IntoIterator<Item = usize>, group: usize) -> Self {
        Self {
            kind: LinkKind::Mwsr,
            hub: reader,
            members: sorted_members(writers),
            waveguide_group: group,
        }
    }

    /// An SWMR channel written by `writer` and read by `readers`.
    #[must_use]
    pub fn swmr(writer: usize, readers: impl IntoIterator<Item = usize>, group: usize) -> Self {
        Self {
            kind: LinkKind::Swmr,
            hub: writer,
            members: sorted_members(readers),
            waveguide_group: group,
        }
    }

    /// A point-to-point electrical fallback wire from `from` to `to`.
    #[must_use]
    pub fn electrical(from: usize, to: usize) -> Self {
        Self {
            kind: LinkKind::Electrical,
            hub: from,
            members: vec![to],
            waveguide_group: 0,
        }
    }

    /// Number of many-sided endpoints (writers of an MWSR channel, readers
    /// of an SWMR channel, always 1 for electrical wires).
    #[must_use]
    pub fn radix(&self) -> usize {
        self.members.len()
    }

    /// Directed traversal edges this link contributes to the routing graph.
    pub(crate) fn edges(&self) -> Vec<(usize, usize)> {
        match self.kind {
            LinkKind::Mwsr => self.members.iter().map(|&w| (w, self.hub)).collect(),
            LinkKind::Swmr | LinkKind::Electrical => {
                self.members.iter().map(|&r| (self.hub, r)).collect()
            }
        }
    }

    fn validate(&self, nodes: usize) -> Result<(), TopologyError> {
        if self.hub >= nodes {
            return Err(invalid(format!(
                "{} link hub {} out of range for {nodes} nodes",
                self.kind, self.hub
            )));
        }
        if self.members.is_empty() {
            return Err(invalid(format!(
                "{} link at node {} has no members",
                self.kind, self.hub
            )));
        }
        if !self.members.windows(2).all(|w| w[0] < w[1]) {
            return Err(invalid(format!(
                "{} link at node {} has unsorted or duplicate members {:?}",
                self.kind, self.hub, self.members
            )));
        }
        for &member in &self.members {
            if member >= nodes {
                return Err(invalid(format!(
                    "{} link at node {} references member {member} out of range for {nodes} nodes",
                    self.kind, self.hub
                )));
            }
            if member == self.hub {
                return Err(invalid(format!(
                    "{} link at node {} lists its own hub as a member",
                    self.kind, self.hub
                )));
            }
        }
        if self.kind == LinkKind::Electrical && self.members.len() != 1 {
            return Err(invalid(format!(
                "electrical link at node {} must be point-to-point but has {} sinks",
                self.hub,
                self.members.len()
            )));
        }
        Ok(())
    }
}

fn sorted_members(members: impl IntoIterator<Item = usize>) -> Vec<usize> {
    let mut members: Vec<usize> = members.into_iter().collect();
    members.sort_unstable();
    members.dedup();
    members
}

/// A validated fabric description: `nodes` ONIs connected by links.
///
/// Construction canonicalises the link list (sorted by kind, hub, members,
/// waveguide group) and enforces the structural invariants, so two
/// descriptions of the same fabric compare equal and route identically no
/// matter the declaration order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Topology {
    nodes: usize,
    links: Vec<LinkSpec>,
}

impl Topology {
    /// Builds and validates a fabric.
    ///
    /// # Errors
    ///
    /// [`TopologyError`] when the description is malformed: fewer than two
    /// nodes, an out-of-range or self-looping endpoint, duplicate links, a
    /// node reading more than one MWSR channel, a node reading none (every
    /// node must terminate one MWSR channel so the scenario engines can
    /// model its receiver), or a fabric that is not strongly connected.
    pub fn new(nodes: usize, links: Vec<LinkSpec>) -> Result<Self, TopologyError> {
        if nodes < 2 {
            return Err(invalid(format!(
                "a fabric needs at least two nodes, got {nodes}"
            )));
        }
        let mut links = links;
        links.sort();
        if let Some(pair) = links.windows(2).find(|pair| pair[0] == pair[1]) {
            return Err(invalid(format!(
                "duplicate {} link at node {}",
                pair[0].kind, pair[0].hub
            )));
        }
        let mut readers = vec![0usize; nodes];
        for link in &links {
            link.validate(nodes)?;
            if link.kind == LinkKind::Mwsr {
                readers[link.hub] += 1;
            }
        }
        for (node, &count) in readers.iter().enumerate() {
            if count == 0 {
                return Err(invalid(format!(
                    "node {node} reads no MWSR channel; every node must terminate one"
                )));
            }
            if count > 1 {
                return Err(invalid(format!(
                    "node {node} reads {count} MWSR channels; at most one reader link per node"
                )));
            }
        }
        let fabric = Self { nodes, links };
        fabric.check_strongly_connected()?;
        Ok(fabric)
    }

    fn check_strongly_connected(&self) -> Result<(), TopologyError> {
        let forward = self.reachable_from(0, false);
        if let Some(missing) = (0..self.nodes).find(|node| !forward.contains(node)) {
            return Err(invalid(format!(
                "fabric is not strongly connected: no route from node 0 to node {missing}"
            )));
        }
        let backward = self.reachable_from(0, true);
        if let Some(missing) = (0..self.nodes).find(|node| !backward.contains(node)) {
            return Err(invalid(format!(
                "fabric is not strongly connected: no route from node {missing} to node 0"
            )));
        }
        Ok(())
    }

    fn reachable_from(&self, start: usize, reversed: bool) -> BTreeSet<usize> {
        let mut seen = BTreeSet::from([start]);
        let mut frontier = vec![start];
        while let Some(node) = frontier.pop() {
            for link in &self.links {
                for (from, to) in link.edges() {
                    let (from, to) = if reversed { (to, from) } else { (from, to) };
                    if from == node && seen.insert(to) {
                        frontier.push(to);
                    }
                }
            }
        }
        seen
    }

    /// Number of nodes (ONIs) in the fabric.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes
    }

    /// The links in canonical order.  Link indices used by [`crate::Route`]
    /// hops and [`crate::ElaboratedFabric`] cards index into this slice.
    #[must_use]
    pub fn links(&self) -> &[LinkSpec] {
        &self.links
    }

    /// Index of the MWSR channel read by `node` (every valid fabric has
    /// exactly one per node).
    #[must_use]
    pub fn reader_link(&self, node: usize) -> Option<usize> {
        self.links
            .iter()
            .position(|link| link.kind == LinkKind::Mwsr && link.hub == node)
    }

    /// Number of photonic links sharing `group` — the crosstalk neighbourhood
    /// size used by [`FabricSpec::link_stack`].
    #[must_use]
    pub fn group_population(&self, group: usize) -> usize {
        self.links
            .iter()
            .filter(|link| link.kind.is_photonic() && link.waveguide_group == group)
            .count()
    }

    /// Number of photonic (MWSR + SWMR) links.
    #[must_use]
    pub fn photonic_link_count(&self) -> usize {
        self.links.iter().filter(|l| l.kind.is_photonic()).count()
    }

    /// Number of electrical fallback links.
    #[must_use]
    pub fn electrical_link_count(&self) -> usize {
        self.links.len() - self.photonic_link_count()
    }

    /// The paper's canonical fabric: one MWSR ring per destination, all in
    /// one waveguide group.  Every route is a single photonic hop, and a
    /// scenario pinned to this topology reproduces the default
    /// (topology-free) simulation bit for bit.
    ///
    /// # Panics
    ///
    /// Panics when `nodes < 2`.
    #[must_use]
    pub fn single_ring(nodes: usize) -> Self {
        Self::multi_ring(nodes, 1)
    }

    /// The single-ring fabric with its per-destination channels spread
    /// round-robin over `groups` waveguide groups (destination `d` rides
    /// group `d % groups`).  Routing is identical to the single ring; the
    /// difference is thermal: fewer neighbours per corridor means less
    /// crosstalk-amplified drift and cheaper tuning.
    ///
    /// # Panics
    ///
    /// Panics when `nodes < 2` or `groups` is not in `1..=nodes`.
    #[must_use]
    pub fn multi_ring(nodes: usize, groups: usize) -> Self {
        assert!(nodes >= 2, "a fabric needs at least two nodes, got {nodes}");
        assert!(
            (1..=nodes).contains(&groups),
            "waveguide groups must be in 1..={nodes}, got {groups}"
        );
        let links = (0..nodes)
            .map(|d| LinkSpec::mwsr(d, (0..nodes).filter(|&s| s != d), d % groups))
            .collect();
        Self::new(nodes, links).expect("multi-ring fabric is valid by construction")
    }

    /// A MorphoNoC-style hybrid: photonic clusters of `cluster_size` nodes
    /// (full per-destination MWSR connectivity inside each cluster, one
    /// waveguide group per cluster) stitched together by a bidirectional
    /// electrical ring over the cluster gateways (the first node of each
    /// cluster).  Inter-cluster traffic takes genuine multi-hop routes:
    /// source → own gateway (photonic), gateway ring (electrical), remote
    /// gateway → destination (photonic).
    ///
    /// # Panics
    ///
    /// Panics when `cluster_size < 2` or `nodes` is not a multiple of
    /// `cluster_size` spanning at least two clusters.
    #[must_use]
    pub fn hybrid_mesh(nodes: usize, cluster_size: usize) -> Self {
        assert!(
            cluster_size >= 2,
            "hybrid-mesh clusters need at least two nodes, got {cluster_size}"
        );
        assert!(
            nodes.is_multiple_of(cluster_size) && nodes / cluster_size >= 2,
            "hybrid mesh needs nodes ({nodes}) = cluster_size ({cluster_size}) x clusters >= 2"
        );
        let clusters = nodes / cluster_size;
        let mut links = Vec::new();
        for d in 0..nodes {
            let cluster = d / cluster_size;
            let base = cluster * cluster_size;
            let peers = (base..base + cluster_size).filter(|&s| s != d);
            links.push(LinkSpec::mwsr(d, peers, cluster));
        }
        let gateway = |cluster: usize| cluster * cluster_size;
        for cluster in 0..clusters {
            let next = (cluster + 1) % clusters;
            links.push(LinkSpec::electrical(gateway(cluster), gateway(next)));
            if clusters > 2 {
                // With two clusters the forward ring already runs both ways;
                // beyond that, add the reverse wire explicitly.
                links.push(LinkSpec::electrical(gateway(next), gateway(cluster)));
            }
        }
        Self::new(nodes, links).expect("hybrid-mesh fabric is valid by construction")
    }
}

/// Latency and energy model of one electrical fallback hop.
///
/// Electrical wires carry no wavelengths and run no decoder: a hop costs a
/// fixed traversal latency plus per-word serialisation time, burns switching
/// energy per payload bit, and delivers error-free (the reliability burden
/// of the paper's coding study lives entirely on the photonic hops).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ElectricalLinkModel {
    /// Fixed per-hop traversal latency in nanoseconds (wire flight plus
    /// router pipeline).
    pub latency_ns: f64,
    /// Serialisation time per 64-bit word in nanoseconds.
    pub ns_per_word: f64,
    /// Switching energy per payload bit in picojoules.
    pub energy_pj_per_bit: f64,
}

impl ElectricalLinkModel {
    /// The fallback wire the hybrid-mesh gateways use: a repeated global
    /// interconnect, slower and costlier per bit than a tuned photonic
    /// channel (4 ns flight, 0.8 ns/word ≈ 80 Gb/s, 1.1 pJ/bit).
    #[must_use]
    pub fn paper_fallback() -> Self {
        Self {
            latency_ns: 4.0,
            ns_per_word: 0.8,
            energy_pj_per_bit: 1.1,
        }
    }

    fn validate(&self) -> Result<(), TopologyError> {
        for (name, value) in [
            ("latency_ns", self.latency_ns),
            ("ns_per_word", self.ns_per_word),
            ("energy_pj_per_bit", self.energy_pj_per_bit),
        ] {
            if !value.is_finite() || value <= 0.0 {
                return Err(invalid(format!(
                    "electrical link model {name} must be finite and positive, got {value}"
                )));
            }
        }
        Ok(())
    }
}

impl Default for ElectricalLinkModel {
    fn default() -> Self {
        Self::paper_fallback()
    }
}

/// A [`Topology`] plus the physical knobs the elaborator and the scenario
/// engines need: thermal crosstalk between same-group waveguides and the
/// electrical fallback model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FabricSpec {
    /// The fabric graph.
    pub topology: Topology,
    /// Fractional thermal-crosstalk penalty per co-routed neighbour: a link
    /// sharing its waveguide group with `n − 1` others both drifts
    /// `1 + crosstalk × (n − 1)` times faster than an isolated one *and*
    /// pays the same factor in heater power per compensated kelvin (packed
    /// rings leak heat into their neighbours' heaters, so holding a lock
    /// costs more the denser the group).  The default 0.0 leaves every
    /// stack byte-identical to the base.
    pub crosstalk_per_neighbor: f64,
    /// Latency/energy model of electrical fallback hops.
    pub electrical: ElectricalLinkModel,
}

impl FabricSpec {
    /// Wraps a topology with no crosstalk and the default electrical model.
    #[must_use]
    pub fn new(topology: Topology) -> Self {
        Self {
            topology,
            crosstalk_per_neighbor: 0.0,
            electrical: ElectricalLinkModel::paper_fallback(),
        }
    }

    /// Sets the per-neighbour crosstalk drift amplification.
    #[must_use]
    pub fn with_crosstalk(mut self, crosstalk_per_neighbor: f64) -> Self {
        self.crosstalk_per_neighbor = crosstalk_per_neighbor;
        self
    }

    /// Replaces the electrical fallback model.
    #[must_use]
    pub fn with_electrical(mut self, electrical: ElectricalLinkModel) -> Self {
        self.electrical = electrical;
        self
    }

    /// Validates the physical knobs (the topology is valid by construction).
    ///
    /// # Errors
    ///
    /// [`TopologyError`] when the crosstalk factor is negative or
    /// non-finite, or the electrical model carries a non-positive constant.
    pub fn validate(&self) -> Result<(), TopologyError> {
        if !self.crosstalk_per_neighbor.is_finite() || self.crosstalk_per_neighbor < 0.0 {
            return Err(invalid(format!(
                "crosstalk per neighbour must be finite and non-negative, got {}",
                self.crosstalk_per_neighbor
            )));
        }
        self.electrical.validate()
    }

    /// The thermal stack of photonic link `link`, derived from `base` by
    /// amplifying the ring drift slope *and* the heater power per kelvin
    /// with the link's waveguide-group crosstalk.  The drift side makes a
    /// crowded group detune faster; the heater side charges the tuning loop
    /// for fighting its neighbours' heat leakage — slope alone would cancel
    /// out of the heater power, because residual offsets are converted back
    /// to temperature-equivalents through the same slope.  With zero
    /// crosstalk or an isolated link the clone is byte-identical to `base`
    /// (same fingerprint, same cache lineage).  Returns `None` for
    /// electrical links, which carry no rings.
    #[must_use]
    pub fn link_stack(
        &self,
        base: &onoc_photonics::ThermalLinkStack,
        link: usize,
    ) -> Option<onoc_photonics::ThermalLinkStack> {
        let spec = self.topology.links().get(link)?;
        if !spec.kind.is_photonic() {
            return None;
        }
        let mut stack = base.clone();
        let neighbours = self.topology.group_population(spec.waveguide_group) - 1;
        if self.crosstalk_per_neighbor > 0.0 && neighbours > 0 {
            let amplification = 1.0 + self.crosstalk_per_neighbor * neighbours as f64;
            stack.rings.drift_nm_per_kelvin *= amplification;
            stack.tuner.power_per_kelvin =
                onoc_units::Microwatts::new(stack.tuner.power_per_kelvin.value() * amplification);
        }
        Some(stack)
    }
}

impl From<Topology> for FabricSpec {
    fn from(topology: Topology) -> Self {
        Self::new(topology)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_ring_has_one_reader_link_per_node() {
        let fabric = Topology::single_ring(4);
        assert_eq!(fabric.node_count(), 4);
        assert_eq!(fabric.links().len(), 4);
        assert_eq!(fabric.photonic_link_count(), 4);
        assert_eq!(fabric.electrical_link_count(), 0);
        for node in 0..4 {
            let index = fabric.reader_link(node).expect("reader link");
            let link = &fabric.links()[index];
            assert_eq!(link.kind, LinkKind::Mwsr);
            assert_eq!(link.hub, node);
            assert_eq!(link.radix(), 3);
            assert_eq!(link.waveguide_group, 0);
        }
        assert_eq!(fabric.group_population(0), 4);
    }

    #[test]
    fn multi_ring_partitions_waveguide_groups() {
        let fabric = Topology::multi_ring(8, 4);
        for group in 0..4 {
            assert_eq!(fabric.group_population(group), 2, "group {group}");
        }
        assert_eq!(Topology::multi_ring(8, 1), Topology::single_ring(8));
    }

    #[test]
    fn hybrid_mesh_stitches_clusters_with_electrical_gateways() {
        let fabric = Topology::hybrid_mesh(12, 4);
        assert_eq!(fabric.photonic_link_count(), 12);
        // Three clusters: a full bidirectional gateway ring of 6 wires.
        assert_eq!(fabric.electrical_link_count(), 6);
        // Two clusters: only one wire each way, no duplicates.
        let two = Topology::hybrid_mesh(8, 4);
        assert_eq!(two.electrical_link_count(), 2);
    }

    #[test]
    fn construction_is_invariant_under_declaration_order() {
        let a = Topology::new(
            3,
            vec![
                LinkSpec::mwsr(0, [1, 2], 0),
                LinkSpec::mwsr(1, [0, 2], 0),
                LinkSpec::mwsr(2, [0, 1], 0),
            ],
        )
        .expect("valid");
        let b = Topology::new(
            3,
            vec![
                LinkSpec::mwsr(2, [1, 0], 0),
                LinkSpec::mwsr(0, [2, 1], 0),
                LinkSpec::mwsr(1, [2, 0], 0),
            ],
        )
        .expect("valid");
        assert_eq!(a, b);
    }

    #[test]
    fn malformed_fabrics_are_rejected() {
        let reason = |r: Result<Topology, TopologyError>| r.expect_err("must fail").reason;
        assert!(reason(Topology::new(1, vec![])).contains("at least two nodes"));
        assert!(reason(Topology::new(2, vec![LinkSpec::mwsr(5, [0], 0)])).contains("out of range"));
        assert!(reason(Topology::new(2, vec![LinkSpec::mwsr(0, [0, 1], 0)])).contains("own hub"));
        assert!(reason(Topology::new(
            2,
            vec![
                LinkSpec::mwsr(0, [1], 0),
                LinkSpec::mwsr(0, [1], 1),
                LinkSpec::mwsr(1, [0], 0),
            ],
        ))
        .contains("2 MWSR channels"));
        assert!(reason(Topology::new(
            2,
            vec![
                LinkSpec::mwsr(0, [1], 0),
                LinkSpec::mwsr(0, [1], 0),
                LinkSpec::mwsr(1, [0], 0),
            ],
        ))
        .contains("duplicate"));
        // Node 2 writes nowhere: reachable from nobody? No — node 2 reads
        // but never writes, so nothing is reachable *from* it.
        assert!(reason(Topology::new(
            3,
            vec![
                LinkSpec::mwsr(0, [1], 0),
                LinkSpec::mwsr(1, [0], 0),
                LinkSpec::mwsr(2, [0, 1], 0),
            ],
        ))
        .contains("not strongly connected"));
        // A node with no reader link is rejected even when connected.
        assert!(reason(Topology::new(
            2,
            vec![LinkSpec::mwsr(0, [1], 0), LinkSpec::electrical(0, 1)],
        ))
        .contains("reads no MWSR channel"));
    }

    #[test]
    fn fabric_spec_validates_physical_knobs() {
        let spec = FabricSpec::new(Topology::single_ring(3));
        assert!(spec.validate().is_ok());
        assert!(spec.clone().with_crosstalk(-0.1).validate().is_err());
        assert!(spec.clone().with_crosstalk(f64::NAN).validate().is_err());
        let mut bad = ElectricalLinkModel::paper_fallback();
        bad.ns_per_word = 0.0;
        assert!(spec.with_electrical(bad).validate().is_err());
    }

    #[test]
    fn crosstalk_scales_drift_with_group_population() {
        let base = onoc_photonics::ThermalLinkStack::paper_default();
        let spec = FabricSpec::new(Topology::single_ring(4)).with_crosstalk(0.05);
        let stack = spec.link_stack(&base, 0).expect("photonic");
        let expected = base.rings.drift_nm_per_kelvin * (1.0 + 0.05 * 3.0);
        assert!((stack.rings.drift_nm_per_kelvin - expected).abs() < 1e-15);
        // The heater pays the same crosstalk factor: residual offsets map
        // back to kelvin through the slope, so the slope alone would leave
        // the tuning power of a crowded group equal to an isolated link's.
        let expected_heater = base.tuner.power_per_kelvin.value() * (1.0 + 0.05 * 3.0);
        assert!((stack.tuner.power_per_kelvin.value() - expected_heater).abs() < 1e-12);
        assert_ne!(stack.fingerprint(), base.fingerprint());

        // Zero crosstalk leaves the stack byte-identical to the base.
        let identity = FabricSpec::new(Topology::single_ring(4));
        let same = identity.link_stack(&base, 0).expect("photonic");
        assert_eq!(same, base);
        assert_eq!(same.fingerprint(), base.fingerprint());

        // An isolated link (sole member of its group) is also untouched.
        let split = FabricSpec::new(Topology::multi_ring(4, 4)).with_crosstalk(0.05);
        let lonely = split.link_stack(&base, 0).expect("photonic");
        assert_eq!(lonely.fingerprint(), base.fingerprint());
    }

    #[test]
    fn electrical_links_have_no_stack() {
        let base = onoc_photonics::ThermalLinkStack::paper_default();
        let fabric = Topology::hybrid_mesh(8, 4);
        let electrical = fabric
            .links()
            .iter()
            .position(|l| l.kind == LinkKind::Electrical)
            .expect("has electrical links");
        let spec = FabricSpec::new(fabric);
        assert!(spec.link_stack(&base, electrical).is_none());
        assert!(spec.link_stack(&base, 999).is_none());
    }
}
