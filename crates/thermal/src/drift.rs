//! Micro-ring resonance drift vs. temperature.
//!
//! Silicon's thermo-optic coefficient (dn/dT ≈ 1.8·10⁻⁴ K⁻¹) red-shifts a
//! ring resonance by roughly 0.1 nm/K around 1550 nm.  The drift is linear
//! over the temperature range of interest (25–85 °C), so the model is a
//! slope plus the calibration temperature at which the ring bank was aligned
//! to the wavelength grid.

use onoc_units::{Celsius, KelvinDelta};
use serde::{Deserialize, Serialize};

/// A signed resonance shift in nanometres.
///
/// Positive values are red shifts (heating moves the resonance to longer
/// wavelengths).  This is its own type rather than `Nanometers` because the
/// workspace's `Nanometers` is an absolute, non-negative wavelength.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct ResonanceDrift(f64);

impl ResonanceDrift {
    /// Creates a drift of `nanometers` (signed).
    ///
    /// # Panics
    ///
    /// Panics if the value is not finite.
    #[must_use]
    pub fn new(nanometers: f64) -> Self {
        assert!(nanometers.is_finite(), "resonance drift must be finite");
        Self(nanometers)
    }

    /// No drift.
    #[must_use]
    pub fn zero() -> Self {
        Self(0.0)
    }

    /// The signed shift in nanometres.
    #[must_use]
    pub fn nanometers(self) -> f64 {
        self.0
    }

    /// Magnitude of the shift.
    #[must_use]
    pub fn abs(self) -> Self {
        Self(self.0.abs())
    }

    /// `true` when there is no shift at all.
    #[must_use]
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }
}

impl std::fmt::Display for ResonanceDrift {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if let Some(precision) = f.precision() {
            write!(f, "{:+.*} nm", precision, self.0)
        } else {
            write!(f, "{:+} nm", self.0)
        }
    }
}

/// Linear resonance-drift model of a micro-ring bank.
///
/// ```
/// use onoc_thermal::RingThermalModel;
/// use onoc_units::Celsius;
///
/// let rings = RingThermalModel::paper_silicon();
/// assert!(rings.drift_at(Celsius::new(25.0)).is_zero());
/// // Heating red-shifts: +0.1 nm/K.
/// assert!((rings.drift_at(Celsius::new(35.0)).nanometers() - 1.0).abs() < 1e-9);
/// // Cooling blue-shifts symmetrically.
/// assert!((rings.drift_at(Celsius::new(15.0)).nanometers() + 1.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RingThermalModel {
    /// Resonance shift per kelvin of temperature rise, in nm/K.
    pub drift_nm_per_kelvin: f64,
    /// Temperature at which the ring bank is aligned to the wavelength grid.
    pub calibration: Celsius,
}

impl RingThermalModel {
    /// Creates a model from the drift slope and calibration temperature.
    ///
    /// # Panics
    ///
    /// Panics if the slope is not finite and non-negative.
    #[must_use]
    pub fn new(drift_nm_per_kelvin: f64, calibration: Celsius) -> Self {
        assert!(
            drift_nm_per_kelvin.is_finite() && drift_nm_per_kelvin >= 0.0,
            "drift slope must be finite and non-negative"
        );
        Self {
            drift_nm_per_kelvin,
            calibration,
        }
    }

    /// The silicon micro-ring drift assumed throughout the reproduction:
    /// dλ/dT = 0.1 nm/K, calibrated at the paper's 25 °C ambient.
    #[must_use]
    pub fn paper_silicon() -> Self {
        Self::new(0.1, Celsius::new(25.0))
    }

    /// Temperature excursion of `temperature` from the calibration point.
    #[must_use]
    pub fn delta_at(&self, temperature: Celsius) -> KelvinDelta {
        temperature.delta_to(self.calibration)
    }

    /// Free-running (uncompensated) resonance drift at `temperature`.
    #[must_use]
    pub fn drift_at(&self, temperature: Celsius) -> ResonanceDrift {
        self.drift_for(self.delta_at(temperature))
    }

    /// Resonance drift produced by a temperature excursion `delta`.
    #[must_use]
    pub fn drift_for(&self, delta: KelvinDelta) -> ResonanceDrift {
        ResonanceDrift::new(self.drift_nm_per_kelvin * delta.value())
    }
}

impl Default for RingThermalModel {
    fn default() -> Self {
        Self::paper_silicon()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drift_is_zero_at_the_calibration_temperature() {
        let rings = RingThermalModel::paper_silicon();
        assert!(rings.drift_at(Celsius::new(25.0)).is_zero());
    }

    #[test]
    fn drift_magnitude_is_monotone_in_the_excursion() {
        let rings = RingThermalModel::paper_silicon();
        let mut last = -1.0;
        for dt in 0..=60 {
            let hot = rings.drift_at(Celsius::new(25.0 + f64::from(dt)));
            let cold = rings.drift_at(Celsius::new(25.0 - f64::from(dt)));
            assert!(
                (hot.nanometers() + cold.nanometers()).abs() < 1e-12,
                "symmetry"
            );
            assert!(hot.abs().nanometers() > last, "monotone at ΔT = {dt}");
            last = hot.abs().nanometers();
        }
    }

    #[test]
    fn paper_slope_matches_silicon() {
        let rings = RingThermalModel::paper_silicon();
        let drift = rings.drift_at(Celsius::new(85.0));
        assert!((drift.nanometers() - 6.0).abs() < 1e-9);
        assert!((rings.delta_at(Celsius::new(85.0)).value() - 60.0).abs() < 1e-12);
    }

    #[test]
    fn drift_display_is_signed() {
        assert_eq!(format!("{:.2}", ResonanceDrift::new(0.5)), "+0.50 nm");
        assert_eq!(format!("{:.2}", ResonanceDrift::new(-0.5)), "-0.50 nm");
    }

    #[test]
    #[should_panic(expected = "drift slope")]
    fn negative_slope_rejected() {
        let _ = RingThermalModel::new(-0.1, Celsius::new(25.0));
    }
}
