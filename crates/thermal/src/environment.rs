//! Chip thermal environments the simulator can sample over time.
//!
//! Three scenario families cover the evaluations the roadmap asks for:
//!
//! * **Uniform** — the whole optical layer sits at one ambient temperature
//!   (a temperature sweep re-runs the link at each point);
//! * **Hotspot** — a static spatial gradient across the ONIs, as produced by
//!   a hot compute cluster under one corner of the interposer;
//! * **Transient** — a first-order (single time constant) exponential drift
//!   from a start to a target temperature, the classic step response of a
//!   package heating up under load.

use onoc_units::Celsius;
use serde::{Deserialize, Serialize};

/// A time- and space-dependent temperature field over the ONIs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ThermalEnvironment {
    /// Every ONI at the same constant temperature.
    Uniform {
        /// The ambient temperature.
        temperature: Celsius,
    },
    /// A static spatial gradient peaking at one ONI and decaying
    /// geometrically with ring-topology hop distance.
    Hotspot {
        /// Temperature far from the hotspot.
        base: Celsius,
        /// Temperature at the hotspot ONI.
        peak: Celsius,
        /// Index of the hottest ONI.
        center: usize,
        /// Remaining fraction of the excess per hop away from the center,
        /// in `[0, 1)`.
        decay_per_hop: f64,
    },
    /// A spatially uniform first-order transient
    /// `T(t) = target + (start − target)·exp(−t/τ)`.
    Transient {
        /// Temperature at `t = 0`.
        start: Celsius,
        /// Asymptotic temperature.
        target: Celsius,
        /// Time constant τ in nanoseconds.
        time_constant_ns: f64,
    },
}

impl ThermalEnvironment {
    /// The paper's fixed evaluation point: a uniform 25 °C.
    #[must_use]
    pub fn paper_ambient() -> Self {
        Self::Uniform {
            temperature: Celsius::new(25.0),
        }
    }

    /// Checks the environment's parameters, returning a human-readable
    /// reason when they are invalid.  Callers that accept an environment as
    /// configuration (e.g. the NoC simulator) should validate up front so a
    /// bad scenario surfaces as a configuration error rather than a panic
    /// mid-run.
    ///
    /// # Errors
    ///
    /// Returns a description of the offending parameter: a non-finite
    /// temperature, a hotspot decay outside `[0, 1)` or a non-positive
    /// transient time constant.
    pub fn validate(&self) -> Result<(), String> {
        let finite = |name: &str, t: Celsius| {
            if t.value().is_finite() {
                Ok(())
            } else {
                Err(format!(
                    "{name} temperature must be finite, got {}",
                    t.value()
                ))
            }
        };
        match *self {
            Self::Uniform { temperature } => finite("uniform", temperature),
            Self::Hotspot {
                base,
                peak,
                decay_per_hop,
                ..
            } => {
                finite("hotspot base", base)?;
                finite("hotspot peak", peak)?;
                if (0.0..1.0).contains(&decay_per_hop) {
                    Ok(())
                } else {
                    Err(format!(
                        "hotspot decay per hop must be in [0, 1), got {decay_per_hop}"
                    ))
                }
            }
            Self::Transient {
                start,
                target,
                time_constant_ns,
            } => {
                finite("transient start", start)?;
                finite("transient target", target)?;
                if time_constant_ns > 0.0 && time_constant_ns.is_finite() {
                    Ok(())
                } else {
                    Err(format!(
                        "transient time constant must be positive and finite, got {time_constant_ns}"
                    ))
                }
            }
        }
    }

    /// Temperature seen by `oni` (of `oni_count` on the ring) at `time_ns`.
    ///
    /// # Panics
    ///
    /// Panics if `oni_count` is zero, `oni` is out of range, or the
    /// environment's parameters are invalid (see
    /// [`ThermalEnvironment::validate`]).
    #[must_use]
    pub fn temperature_at(&self, oni: usize, oni_count: usize, time_ns: f64) -> Celsius {
        assert!(oni_count > 0, "at least one ONI is required");
        assert!(
            oni < oni_count,
            "ONI index {oni} out of range 0..{oni_count}"
        );
        match *self {
            Self::Uniform { temperature } => temperature,
            Self::Hotspot {
                base,
                peak,
                center,
                decay_per_hop,
            } => {
                assert!(
                    (0.0..1.0).contains(&decay_per_hop),
                    "hotspot decay must be in [0, 1)"
                );
                let center = center % oni_count;
                let direct = oni.abs_diff(center);
                let hops = direct.min(oni_count - direct);
                let excess = (peak.value() - base.value()) * decay_per_hop.powi(hops as i32);
                Celsius::new(base.value() + excess)
            }
            Self::Transient {
                start,
                target,
                time_constant_ns,
            } => {
                assert!(time_constant_ns > 0.0, "time constant must be positive");
                let decay = (-time_ns.max(0.0) / time_constant_ns).exp();
                Celsius::new(target.value() + (start.value() - target.value()) * decay)
            }
        }
    }

    /// The hottest temperature the environment ever produces across all ONIs
    /// (used to size worst-case link budgets).
    #[must_use]
    pub fn peak_temperature(&self) -> Celsius {
        match *self {
            Self::Uniform { temperature } => temperature,
            Self::Hotspot { base, peak, .. } => Celsius::new(base.value().max(peak.value())),
            Self::Transient { start, target, .. } => {
                Celsius::new(start.value().max(target.value()))
            }
        }
    }
}

impl Default for ThermalEnvironment {
    fn default() -> Self {
        Self::paper_ambient()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_is_flat_in_space_and_time() {
        let env = ThermalEnvironment::Uniform {
            temperature: Celsius::new(55.0),
        };
        for oni in 0..12 {
            for t in [0.0, 1e3, 1e9] {
                assert!((env.temperature_at(oni, 12, t).value() - 55.0).abs() < 1e-12);
            }
        }
        assert!((env.peak_temperature().value() - 55.0).abs() < 1e-12);
    }

    #[test]
    fn hotspot_peaks_at_the_center_and_decays_with_ring_distance() {
        let env = ThermalEnvironment::Hotspot {
            base: Celsius::new(45.0),
            peak: Celsius::new(85.0),
            center: 3,
            decay_per_hop: 0.5,
        };
        assert!((env.temperature_at(3, 12, 0.0).value() - 85.0).abs() < 1e-12);
        assert!((env.temperature_at(4, 12, 0.0).value() - 65.0).abs() < 1e-12);
        assert!((env.temperature_at(2, 12, 0.0).value() - 65.0).abs() < 1e-12);
        // The ring wraps: ONI 9 is 6 hops away, ONI 10 is 5 hops away.
        let far = env.temperature_at(9, 12, 0.0).value();
        let nearer = env.temperature_at(10, 12, 0.0).value();
        assert!(far < nearer);
        assert!(far > 45.0);
        assert!((env.peak_temperature().value() - 85.0).abs() < 1e-12);
    }

    #[test]
    fn hotspot_temperature_decreases_monotonically_away_from_the_center() {
        let env = ThermalEnvironment::Hotspot {
            base: Celsius::new(45.0),
            peak: Celsius::new(85.0),
            center: 0,
            decay_per_hop: 0.6,
        };
        let mut last = f64::INFINITY;
        for oni in 0..=6 {
            let t = env.temperature_at(oni, 12, 0.0).value();
            assert!(t < last, "ONI {oni}");
            last = t;
        }
    }

    #[test]
    fn transient_starts_at_start_and_converges_to_target() {
        let env = ThermalEnvironment::Transient {
            start: Celsius::new(25.0),
            target: Celsius::new(85.0),
            time_constant_ns: 1000.0,
        };
        assert!((env.temperature_at(0, 4, 0.0).value() - 25.0).abs() < 1e-12);
        let one_tau = env.temperature_at(0, 4, 1000.0).value();
        assert!((one_tau - (85.0 - 60.0 * (-1.0f64).exp())).abs() < 1e-9);
        assert!((env.temperature_at(0, 4, 1e9).value() - 85.0).abs() < 1e-6);
        // Monotone rise.
        let mut last = 0.0;
        for t in 0..100 {
            let now = env.temperature_at(0, 4, f64::from(t) * 100.0).value();
            assert!(now >= last);
            last = now;
        }
        assert!((env.peak_temperature().value() - 85.0).abs() < 1e-12);
    }

    #[test]
    fn negative_time_clamps_to_the_start() {
        let env = ThermalEnvironment::Transient {
            start: Celsius::new(30.0),
            target: Celsius::new(80.0),
            time_constant_ns: 500.0,
        };
        assert!((env.temperature_at(0, 2, -100.0).value() - 30.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_oni_panics() {
        let _ = ThermalEnvironment::paper_ambient().temperature_at(5, 4, 0.0);
    }

    #[test]
    fn validate_catches_bad_parameters() {
        assert!(ThermalEnvironment::paper_ambient().validate().is_ok());
        let bad_decay = ThermalEnvironment::Hotspot {
            base: Celsius::new(30.0),
            peak: Celsius::new(85.0),
            center: 0,
            decay_per_hop: 1.0,
        };
        assert!(bad_decay.validate().unwrap_err().contains("decay"));
        let bad_tau = ThermalEnvironment::Transient {
            start: Celsius::new(25.0),
            target: Celsius::new(85.0),
            time_constant_ns: 0.0,
        };
        assert!(bad_tau.validate().unwrap_err().contains("time constant"));
        let good = ThermalEnvironment::Transient {
            start: Celsius::new(25.0),
            target: Celsius::new(85.0),
            time_constant_ns: 100.0,
        };
        assert!(good.validate().is_ok());
    }

    #[test]
    fn validate_rejects_non_finite_temperatures() {
        // Quantity arithmetic bypasses the constructor's finiteness check,
        // so non-finite temperatures can reach a scenario through overflow.
        let nan = Celsius::new(25.0) * f64::NAN;
        let inf = Celsius::new(25.0) * f64::INFINITY;
        let ok = Celsius::new(25.0);
        let bad_uniform = ThermalEnvironment::Uniform { temperature: nan };
        assert!(bad_uniform.validate().unwrap_err().contains("uniform"));
        for (base, peak, field) in [(inf, ok, "base"), (ok, nan, "peak")] {
            let bad = ThermalEnvironment::Hotspot {
                base,
                peak,
                center: 0,
                decay_per_hop: 0.5,
            };
            assert!(bad.validate().unwrap_err().contains(field), "{field}");
        }
        for (start, target, field) in [(nan, ok, "start"), (ok, inf * -1.0, "target")] {
            let bad = ThermalEnvironment::Transient {
                start,
                target,
                time_constant_ns: 100.0,
            };
            assert!(bad.validate().unwrap_err().contains(field), "{field}");
        }
    }
}
