//! Per-ring spectral state of a micro-ring bank.
//!
//! The per-bank model of [`crate::RingThermalModel`] assumes every ring of a
//! lane detunes identically — one scalar [`ResonanceDrift`] for the whole
//! bank.  Real MWSR banks are not that tidy: each ring carries its own
//! **fabrication offset** (waveguide-width and thickness variation moves the
//! as-built resonance by tens of picometres, σ ≈ 10–100 pm for silicon
//! photonics) on top of the common-mode thermal drift.  The worst ring sets
//! the BER of the whole channel, and — crucially — the per-ring freedom opens
//! a tuning policy the per-bank model cannot express: **barrel shifting**
//! (channel hopping).  When the common-mode drift approaches a multiple of
//! the grid spacing, re-mapping logical wavelength `j` to physical ring
//! `j − k` (wrapping through the free spectral range) leaves only the
//! *residual* `drift − k·spacing + offsetᵢ` for the heaters to fight,
//! instead of the full excursion.
//!
//! This module provides the state ([`RingBankState`]), the deterministic
//! fabrication sampler ([`FabricationVariation`]) and the bank-level tuning
//! machinery ([`BankTuningMode`], [`BankCompensation`],
//! [`ThermalTuner::compensate_bank`]).  Everything is expressed in
//! temperature-equivalent or spectral units only, so the photonic
//! consequences stay in `onoc-photonics`.

use onoc_units::{KelvinDelta, Microwatts};
use serde::{Deserialize, Serialize};

use crate::assign::WavelengthAssignment;
use crate::drift::ResonanceDrift;
use crate::tuning::ThermalTuner;

/// Deterministic per-ring fabrication variation: resonance offsets sampled
/// from a seeded Gaussian of standard deviation `sigma_nm`.
///
/// The sampler is a fixed SplitMix64 + Box–Muller pipeline, so a given
/// `(sigma, seed, ring count)` triple always produces the same offsets —
/// variation is a *property of a chip instance*, not a per-query random
/// draw.  A σ of zero yields exactly-zero offsets (no rounding noise), which
/// is what makes the per-ring pipeline degenerate bit-identically to the
/// per-bank model.
///
/// ```
/// use onoc_thermal::FabricationVariation;
///
/// let chip = FabricationVariation::new(0.04, 7);
/// let offsets = chip.offsets_nm(16);
/// assert_eq!(offsets, chip.offsets_nm(16)); // deterministic
/// assert!(offsets.iter().any(|o| o.abs() > 1e-3)); // actually varied
/// assert!(FabricationVariation::none().offsets_nm(16).iter().all(|&o| o == 0.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FabricationVariation {
    /// Standard deviation of the per-ring resonance offset, in nanometres.
    pub sigma_nm: f64,
    /// Seed identifying the chip instance.
    pub seed: u64,
}

impl FabricationVariation {
    /// Creates a variation model.
    ///
    /// # Panics
    ///
    /// Panics if `sigma_nm` is negative or not finite.
    #[must_use]
    pub fn new(sigma_nm: f64, seed: u64) -> Self {
        let v = Self { sigma_nm, seed };
        if let Err(reason) = v.validate() {
            panic!("{reason}");
        }
        v
    }

    /// The perfectly uniform chip: every ring lands exactly on its design
    /// resonance.
    #[must_use]
    pub fn none() -> Self {
        Self {
            sigma_nm: 0.0,
            seed: 0,
        }
    }

    /// `true` when the variation is exactly zero.
    #[must_use]
    pub fn is_none(self) -> bool {
        self.sigma_nm == 0.0
    }

    /// Checks the parameters, returning a human-readable reason when the
    /// standard deviation is negative or not finite.
    ///
    /// # Errors
    ///
    /// Returns a description of the offending parameter.
    pub fn validate(self) -> Result<(), String> {
        if self.sigma_nm.is_finite() && self.sigma_nm >= 0.0 {
            Ok(())
        } else {
            Err(format!(
                "fabrication sigma must be finite and non-negative, got {} nm",
                self.sigma_nm
            ))
        }
    }

    /// Deterministic per-ring offsets for a bank of `count` rings, in nm.
    #[must_use]
    pub fn offsets_nm(self, count: usize) -> Vec<f64> {
        if self.sigma_nm == 0.0 {
            return vec![0.0; count];
        }
        let mut state = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(0x2545_F491_4F6C_DD1D);
        let mut unit = move || {
            // SplitMix64, then 53 mantissa bits in (0, 1].
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let z = splitmix64_mix(state);
            ((z >> 11) as f64 + 1.0) * (1.0 / (1u64 << 53) as f64)
        };
        (0..count)
            .map(|_| {
                // Box–Muller; u1 ∈ (0, 1] keeps the log finite.
                let u1 = unit();
                let u2 = unit();
                let normal = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                self.sigma_nm * normal
            })
            .collect()
    }
}

impl Default for FabricationVariation {
    fn default() -> Self {
        Self::none()
    }
}

/// The spectral state of one ring bank: a per-ring fabrication offset plus
/// the common-mode thermal excursion the whole bank currently sees.
///
/// The thermal part is kept in temperature units (not nanometres) so that a
/// zero-variation bank reproduces the per-bank arithmetic *exactly* — no
/// nm ↔ K round trip is ever taken for the common-mode term.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RingBankState {
    fabrication_nm: Vec<f64>,
    thermal: KelvinDelta,
}

impl RingBankState {
    /// Creates a bank state from per-ring fabrication offsets and the
    /// common-mode thermal excursion.
    ///
    /// # Panics
    ///
    /// Panics if the bank is empty or any offset is not finite.
    #[must_use]
    pub fn new(fabrication_nm: Vec<f64>, thermal: KelvinDelta) -> Self {
        assert!(!fabrication_nm.is_empty(), "a ring bank needs rings");
        assert!(
            fabrication_nm.iter().all(|o| o.is_finite()),
            "fabrication offsets must be finite"
        );
        Self {
            fabrication_nm,
            thermal,
        }
    }

    /// A perfectly aligned bank of `count` rings at zero excursion.
    #[must_use]
    pub fn aligned(count: usize) -> Self {
        Self::new(vec![0.0; count], KelvinDelta::zero())
    }

    /// Number of rings (one per wavelength index of the lane).
    #[must_use]
    pub fn ring_count(&self) -> usize {
        self.fabrication_nm.len()
    }

    /// Fabrication offset of ring `index`, in nm.
    #[must_use]
    pub fn fabrication_nm(&self, index: usize) -> f64 {
        self.fabrication_nm[index]
    }

    /// The common-mode thermal excursion from the calibration point.
    #[must_use]
    pub fn thermal_excursion(&self) -> KelvinDelta {
        self.thermal
    }

    /// Free-running spectral detuning of ring `index` under a drift slope of
    /// `slope_nm_per_kelvin`, in nm: fabrication offset plus thermal drift.
    #[must_use]
    pub fn detuning_nm(&self, index: usize, slope_nm_per_kelvin: f64) -> f64 {
        self.fabrication_nm[index] + slope_nm_per_kelvin * self.thermal.value()
    }

    /// Requested heater excursion, in kelvin, of ring `ring` serving a grid
    /// slot `hop_slots` spacings red of its design slot (0 = its own slot):
    /// the quantity the per-ring lock loop must fight, shared by
    /// [`ThermalTuner::compensate_bank`]'s per-ring loops and the
    /// design-time assigner's cost model.  With zero fabrication offset and
    /// zero hop this is *exactly* the bank's thermal excursion — no nm ↔ K
    /// round trip — which is what keeps the σ = 0 pipeline bit-identical to
    /// the per-bank scalar model.
    ///
    /// # Panics
    ///
    /// Panics if `slope_nm_per_kelvin` is not positive: an athermal ring
    /// (slope = 0) has no temperature-equivalent of a spectral offset, so
    /// the callers that support slope = 0 (the bank tuner, the assigner)
    /// must take their heaters-off / identity early exits first.
    #[must_use]
    pub fn requested_excursion_k(
        &self,
        ring: usize,
        slope_nm_per_kelvin: f64,
        grid_spacing_nm: f64,
        hop_slots: i64,
    ) -> f64 {
        assert!(
            slope_nm_per_kelvin > 0.0,
            "a heater excursion is only defined for a positive drift slope"
        );
        let mut requested = self.thermal.value();
        let fab = self.fabrication_nm[ring];
        if fab != 0.0 {
            requested += fab / slope_nm_per_kelvin;
        }
        if hop_slots != 0 {
            requested -= grid_spacing_nm / slope_nm_per_kelvin * hop_slots as f64;
        }
        requested
    }

    /// The worst (largest-magnitude, signed) free-running detuning across
    /// the bank.
    #[must_use]
    pub fn worst_detuning_nm(&self, slope_nm_per_kelvin: f64) -> f64 {
        (0..self.ring_count())
            .map(|i| self.detuning_nm(i, slope_nm_per_kelvin))
            .fold(
                0.0,
                |worst, d| if d.abs() > worst.abs() { d } else { worst },
            )
    }

    /// `true` when every ring shares the same fabrication offset (the state
    /// is per-bank-scalar in disguise and the uniform fast path applies).
    #[must_use]
    pub fn is_uniform(&self) -> bool {
        self.fabrication_nm
            .windows(2)
            .all(|w| w[0].to_bits() == w[1].to_bits())
    }

    /// A 64-bit fingerprint of the exact spectral state (FNV-1a over the
    /// IEEE-754 bits of every offset and the excursion).  Two states with
    /// different offsets — even by one ULP — fingerprint differently.
    ///
    /// This identifies a concrete bank state (diagnostics, deduplication);
    /// the memoized operating-point cache keys on the *stack-level*
    /// fingerprint (`ThermalLinkStack::fingerprint` in `onoc-photonics`,
    /// built from the same [`fnv1a_seed`]/[`fnv1a_u64`] helpers), which
    /// covers the variation parameters this state is generated from.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let mut hash = fnv1a_seed();
        for offset in &self.fabrication_nm {
            hash = fnv1a_u64(hash, offset.to_bits());
        }
        fnv1a_u64(hash, self.thermal.value().to_bits())
    }
}

const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// The FNV-1a offset basis: the seed of a [`fnv1a_u64`] chain.
#[must_use]
pub fn fnv1a_seed() -> u64 {
    FNV_OFFSET
}

/// Mixes the bytes of `value` into an FNV-1a `hash` (the fingerprinting
/// primitive shared by [`RingBankState::fingerprint`] and the stack-level
/// fingerprint of `onoc-photonics`).
#[must_use]
pub fn fnv1a_u64(mut hash: u64, value: u64) -> u64 {
    for byte in value.to_le_bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// The SplitMix64 finalizer: scrambles `state` into a well-distributed
/// 64-bit value.  The single source of the mixing constants shared by the
/// fabrication sampler, the assigner's refinement shuffle and the
/// simulator's per-ONI seed derivations.
#[must_use]
pub fn splitmix64_mix(state: u64) -> u64 {
    let mut z = state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// How a bank spends its per-ring freedom when it decides to tune.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum BankTuningMode {
    /// Every ring heats its own full offset back to its design resonance
    /// (the per-bank behaviour, applied ring by ring).
    #[default]
    PureHeater,
    /// Channel hopping (cf. Cooling Codes / GLOW): re-map logical wavelength
    /// `j` to physical ring `j − k` — wrapping through the free spectral
    /// range — for the barrel shift `k` that minimises total heater power,
    /// then heat only the residual `offsetᵢ + drift − k·spacing`.
    BarrelShift {
        /// Largest shift magnitude considered (at most `rings − 1` is ever
        /// useful on an FSR-periodic bank).
        max_shift: usize,
    },
}

impl BankTuningMode {
    /// The barrel-shift mode with the full shift range of an `N`-ring bank.
    #[must_use]
    pub fn full_barrel_shift(ring_count: usize) -> Self {
        Self::BarrelShift {
            max_shift: ring_count.saturating_sub(1).max(1),
        }
    }

    /// Checks the mode's parameters.
    ///
    /// # Errors
    ///
    /// Returns a reason when a barrel-shift window is zero.
    pub fn validate(self) -> Result<(), String> {
        match self {
            Self::PureHeater => Ok(()),
            Self::BarrelShift { max_shift } => {
                if max_shift >= 1 {
                    Ok(())
                } else {
                    Err("barrel-shift window must allow at least one ring of shift".into())
                }
            }
        }
    }
}

/// Outcome of tuning a whole bank: the barrel shift applied, plus the
/// per-ring residual detuning and heater power.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BankCompensation {
    /// Rings of barrel shift applied (0 for pure heater / tolerate).
    pub shift: i64,
    /// Residual spectral detuning after shifting and heating, in nm,
    /// indexed by **logical wavelength**: entry `j` is what the channel at
    /// grid slot `j` sees from the ring now serving it (ring `j − shift`,
    /// wrapping through the FSR).
    pub residual_nm: Vec<f64>,
    /// Per-ring heater power.
    pub heater_power_per_ring: Vec<Microwatts>,
}

impl BankCompensation {
    /// The zero-cost, zero-effect compensation of heaters that stay off:
    /// every ring keeps its free-running detuning.
    #[must_use]
    pub fn off(state: &RingBankState, slope_nm_per_kelvin: f64) -> Self {
        Self::off_assigned(state, 0.0, slope_nm_per_kelvin, None)
    }

    /// [`BankCompensation::off`] under a design-time wavelength assignment:
    /// the heaters stay off, but each ring serves its *assigned* grid slot,
    /// so entry `j` of the residual is the free-running detuning of ring
    /// `assignment.ring_for_lane(j)` measured against slot `j` (the
    /// FSR-centred slot offset times `grid_spacing_nm` is subtracted).  With
    /// no assignment (or the identity) this is bit-identical to
    /// [`BankCompensation::off`].
    #[must_use]
    pub fn off_assigned(
        state: &RingBankState,
        grid_spacing_nm: f64,
        slope_nm_per_kelvin: f64,
        assignment: Option<&WavelengthAssignment>,
    ) -> Self {
        if let Some(assignment) = assignment {
            assert_eq!(
                assignment.len(),
                state.ring_count(),
                "the assignment must cover every ring of the bank"
            );
        }
        let residual_nm = (0..state.ring_count())
            .map(|lane| {
                let ring = assignment.map_or(lane, |a| a.ring_for_lane(lane));
                let hop = assignment.map_or(0, |a| a.design_offset(lane));
                let mut residual = state.detuning_nm(ring, slope_nm_per_kelvin);
                if hop != 0 {
                    residual -= grid_spacing_nm * hop as f64;
                }
                residual
            })
            .collect();
        Self {
            shift: 0,
            residual_nm,
            heater_power_per_ring: vec![Microwatts::zero(); state.ring_count()],
        }
    }

    /// Total heater power across the bank.
    #[must_use]
    pub fn total_heater_power(&self) -> Microwatts {
        Microwatts::new(
            self.heater_power_per_ring
                .iter()
                .map(|p| p.value())
                .sum::<f64>(),
        )
    }

    /// Mean heater power per ring (what a per-lane power report charges for
    /// each of the lane's rings).  A uniform bank returns its common value
    /// exactly — no summation rounding — so the σ = 0 pipeline stays
    /// bit-identical to the per-bank scalar model.
    #[must_use]
    pub fn mean_heater_power_per_ring(&self) -> Microwatts {
        let Some(first) = self.heater_power_per_ring.first() else {
            return Microwatts::zero();
        };
        if self
            .heater_power_per_ring
            .iter()
            .all(|p| p.value().to_bits() == first.value().to_bits())
        {
            return *first;
        }
        Microwatts::new(self.total_heater_power().value() / self.heater_power_per_ring.len() as f64)
    }

    /// The worst (largest-magnitude, signed) residual detuning, as a drift.
    #[must_use]
    pub fn worst_residual(&self) -> ResonanceDrift {
        ResonanceDrift::new(self.residual_nm.iter().fold(0.0, |worst: f64, &r| {
            if r.abs() > worst.abs() {
                r
            } else {
                worst
            }
        }))
    }

    /// Logical wavelength index with the largest residual magnitude.
    #[must_use]
    pub fn worst_ring(&self) -> usize {
        self.residual_nm
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| a.abs().partial_cmp(&b.abs()).expect("residuals are finite"))
            .map_or(0, |(i, _)| i)
    }

    /// `Some(residual)` when every ring shares bit-identically the same
    /// residual (the uniform fast path of the photonic layer applies).
    #[must_use]
    pub fn uniform_residual_nm(&self) -> Option<f64> {
        let first = *self.residual_nm.first()?;
        self.residual_nm
            .iter()
            .all(|r| r.to_bits() == first.to_bits())
            .then_some(first)
    }
}

impl ThermalTuner {
    /// Tunes a whole bank under `mode`: optionally barrel-shift the
    /// wavelength assignment, then run each ring's heater loop against its
    /// residual offset.
    ///
    /// Offsets are converted to temperature-equivalents through
    /// `slope_nm_per_kelvin` so the per-ring loops reuse the scalar
    /// [`ThermalTuner::compensate`] model (lock error, saturation).  For a
    /// uniform bank (σ = 0) under [`BankTuningMode::PureHeater`] every ring
    /// sees exactly the bank's thermal excursion and the result is
    /// bit-identical to the per-bank scalar pipeline.
    ///
    /// A zero `slope_nm_per_kelvin` means the rings are athermal *and* the
    /// heaters cannot move them: the compensation degenerates to
    /// [`BankCompensation::off`].
    #[must_use]
    pub fn compensate_bank(
        &self,
        state: &RingBankState,
        grid_spacing_nm: f64,
        slope_nm_per_kelvin: f64,
        mode: BankTuningMode,
    ) -> BankCompensation {
        self.compensate_bank_assigned(state, grid_spacing_nm, slope_nm_per_kelvin, mode, None)
    }

    /// [`ThermalTuner::compensate_bank`] under a design-time
    /// [`WavelengthAssignment`]: ring `assignment.ring_for_lane(j)` serves
    /// grid slot `j`, so each ring's heater fights the residual left after
    /// its FSR-centred design offset *and* any runtime barrel shift — the
    /// two mechanisms compose additively (a chip assigned for its hot spot
    /// can hop back when it runs cold).  `None` (or the identity assignment)
    /// is bit-identical to the unassigned pipeline.
    ///
    /// # Panics
    ///
    /// Panics if the spectral parameters are invalid or the assignment does
    /// not cover every ring of the bank.
    #[must_use]
    pub fn compensate_bank_assigned(
        &self,
        state: &RingBankState,
        grid_spacing_nm: f64,
        slope_nm_per_kelvin: f64,
        mode: BankTuningMode,
        assignment: Option<&WavelengthAssignment>,
    ) -> BankCompensation {
        assert!(
            grid_spacing_nm.is_finite() && grid_spacing_nm >= 0.0,
            "grid spacing must be finite and non-negative"
        );
        assert!(
            slope_nm_per_kelvin.is_finite() && slope_nm_per_kelvin >= 0.0,
            "drift slope must be finite and non-negative"
        );
        if let Some(assignment) = assignment {
            assert_eq!(
                assignment.len(),
                state.ring_count(),
                "the assignment must cover every ring of the bank"
            );
        }
        if slope_nm_per_kelvin == 0.0 {
            return BankCompensation::off_assigned(
                state,
                grid_spacing_nm,
                slope_nm_per_kelvin,
                assignment,
            );
        }
        let shifts: Vec<i64> = match mode {
            BankTuningMode::PureHeater => vec![0],
            BankTuningMode::BarrelShift { max_shift } => {
                // Shifting by more than the bank wraps onto itself; shifting
                // at all is pointless without a grid to hop along.
                let window = if grid_spacing_nm == 0.0 {
                    0
                } else {
                    max_shift.min(state.ring_count().saturating_sub(1))
                };
                let window = i64::try_from(window).unwrap_or(i64::MAX);
                (-window..=window).collect()
            }
        };
        let mut best: Option<BankCompensation> = None;
        for shift in shifts {
            let candidate = self.heat_bank(
                state,
                grid_spacing_nm,
                slope_nm_per_kelvin,
                shift,
                assignment,
            );
            let better = best.as_ref().is_none_or(|b| {
                let (cand, incumbent) = (
                    candidate.total_heater_power().value(),
                    b.total_heater_power().value(),
                );
                // Strictly-less keeps ties on the smaller |shift| (0 first).
                cand < incumbent || (cand == incumbent && shift.abs() < b.shift.abs())
            });
            if better {
                best = Some(candidate);
            }
        }
        best.expect("at least the zero shift is always evaluated")
    }

    /// Heats every ring of `state` against its residual offset after its
    /// design-time slot offset plus a barrel shift of `shift` rings, and
    /// reports the outcome **indexed by logical wavelength**: the ring
    /// serving base slot `j` (ring `j` unassigned, `assignment
    /// .ring_for_lane(j)` otherwise) ends up serving slot `j + shift`
    /// (wrapping through the FSR), where its residual and heater power land.
    fn heat_bank(
        &self,
        state: &RingBankState,
        grid_spacing_nm: f64,
        slope_nm_per_kelvin: f64,
        shift: i64,
        assignment: Option<&WavelengthAssignment>,
    ) -> BankCompensation {
        let n = state.ring_count();
        let mut residual_nm = vec![0.0; n];
        let mut heater_power_per_ring = vec![Microwatts::zero(); n];
        for base in 0..n {
            let ring = assignment.map_or(base, |a| a.ring_for_lane(base));
            // Total slots hopped: the assignment's FSR-centred design offset
            // plus the runtime barrel shift.
            let hop_slots = assignment.map_or(0, |a| a.design_offset(base)) + shift;
            let requested =
                state.requested_excursion_k(ring, slope_nm_per_kelvin, grid_spacing_nm, hop_slots);
            let compensation = self.compensate(KelvinDelta::new(requested));
            let lane = usize::try_from((base as i64 + shift).rem_euclid(n as i64))
                .expect("rem_euclid of a positive modulus is non-negative");
            residual_nm[lane] = slope_nm_per_kelvin * compensation.residual.value();
            heater_power_per_ring[lane] = compensation.heater_power_per_ring;
        }
        BankCompensation {
            shift,
            residual_nm,
            heater_power_per_ring,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_slope() -> f64 {
        0.1
    }

    #[test]
    fn zero_sigma_offsets_are_exactly_zero() {
        let offsets = FabricationVariation::none().offsets_nm(16);
        assert!(offsets.iter().all(|&o| o == 0.0));
        assert!(FabricationVariation::none().is_none());
    }

    #[test]
    fn offsets_are_deterministic_and_seed_sensitive() {
        let a = FabricationVariation::new(0.04, 1).offsets_nm(16);
        let b = FabricationVariation::new(0.04, 1).offsets_nm(16);
        let c = FabricationVariation::new(0.04, 2).offsets_nm(16);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.iter().all(|o| o.is_finite()));
    }

    #[test]
    fn offset_statistics_match_sigma() {
        let sigma = 0.05;
        let offsets = FabricationVariation::new(sigma, 42).offsets_nm(4096);
        let mean = offsets.iter().sum::<f64>() / offsets.len() as f64;
        let var = offsets.iter().map(|o| (o - mean).powi(2)).sum::<f64>() / offsets.len() as f64;
        assert!(mean.abs() < 0.1 * sigma, "mean = {mean}");
        assert!(
            (var.sqrt() - sigma).abs() < 0.1 * sigma,
            "sd = {}",
            var.sqrt()
        );
    }

    #[test]
    fn invalid_sigma_is_rejected() {
        assert!(FabricationVariation {
            sigma_nm: -0.01,
            seed: 0
        }
        .validate()
        .is_err());
        assert!(FabricationVariation {
            sigma_nm: f64::NAN,
            seed: 0
        }
        .validate()
        .is_err());
    }

    #[test]
    #[should_panic(expected = "sigma")]
    fn constructor_panics_on_negative_sigma() {
        let _ = FabricationVariation::new(-1.0, 0);
    }

    #[test]
    fn aligned_bank_is_uniform_with_zero_detuning() {
        let bank = RingBankState::aligned(16);
        assert!(bank.is_uniform());
        assert_eq!(bank.worst_detuning_nm(paper_slope()), 0.0);
        assert_eq!(bank.ring_count(), 16);
    }

    #[test]
    fn detuning_combines_fabrication_and_thermal_parts() {
        let bank = RingBankState::new(vec![0.02, -0.03], KelvinDelta::new(10.0));
        assert!((bank.detuning_nm(0, paper_slope()) - 1.02).abs() < 1e-12);
        assert!((bank.detuning_nm(1, paper_slope()) - 0.97).abs() < 1e-12);
        assert!((bank.worst_detuning_nm(paper_slope()) - 1.02).abs() < 1e-12);
        assert!(!bank.is_uniform());
    }

    #[test]
    fn fingerprints_separate_distinct_states() {
        let a = RingBankState::new(vec![0.0, 0.01], KelvinDelta::zero());
        let b = RingBankState::new(vec![0.0, 0.02], KelvinDelta::zero());
        let c = RingBankState::new(vec![0.0, 0.01], KelvinDelta::new(5.0));
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), c.fingerprint());
        assert_eq!(a.fingerprint(), a.clone().fingerprint());
    }

    #[test]
    fn pure_heater_bank_matches_the_scalar_tuner_at_sigma_zero() {
        let tuner = ThermalTuner::paper_heater();
        for dt in [0.0, 0.02, 5.0, 30.0, 60.0, -40.0] {
            let bank = RingBankState::new(vec![0.0; 16], KelvinDelta::new(dt));
            let c = tuner.compensate_bank(&bank, 0.8, paper_slope(), BankTuningMode::PureHeater);
            let scalar = tuner.compensate(KelvinDelta::new(dt));
            assert_eq!(c.shift, 0);
            let expected_nm = paper_slope() * scalar.residual.value();
            for i in 0..16 {
                assert_eq!(c.residual_nm[i].to_bits(), expected_nm.to_bits(), "ΔT {dt}");
                assert_eq!(c.heater_power_per_ring[i], scalar.heater_power_per_ring);
            }
            assert_eq!(c.mean_heater_power_per_ring(), scalar.heater_power_per_ring);
            assert_eq!(c.uniform_residual_nm(), Some(expected_nm));
        }
    }

    #[test]
    fn barrel_shift_hops_to_the_nearest_grid_multiple() {
        let tuner = ThermalTuner::paper_heater();
        // 32 K ≈ 3.2 nm of drift on a 0.8 nm grid: a 4-ring hop leaves zero.
        let bank = RingBankState::new(vec![0.0; 16], KelvinDelta::new(32.0));
        let c = tuner.compensate_bank(
            &bank,
            0.8,
            paper_slope(),
            BankTuningMode::full_barrel_shift(16),
        );
        assert_eq!(c.shift, 4);
        let pure = tuner.compensate_bank(&bank, 0.8, paper_slope(), BankTuningMode::PureHeater);
        assert!(c.total_heater_power().value() < 0.2 * pure.total_heater_power().value());
        assert!(c.worst_residual().abs().nanometers() < 0.05);
    }

    #[test]
    fn barrel_shift_never_beats_pure_heater_on_residual_but_always_on_power() {
        let tuner = ThermalTuner::paper_heater();
        for seed in 0..8u64 {
            for dt in [0.0, 7.5, 20.0, 44.0, 60.0] {
                let bank = RingBankState::new(
                    FabricationVariation::new(0.04, seed).offsets_nm(16),
                    KelvinDelta::new(dt),
                );
                let pure =
                    tuner.compensate_bank(&bank, 0.8, paper_slope(), BankTuningMode::PureHeater);
                let barrel = tuner.compensate_bank(
                    &bank,
                    0.8,
                    paper_slope(),
                    BankTuningMode::full_barrel_shift(16),
                );
                assert!(
                    barrel.total_heater_power().value()
                        <= pure.total_heater_power().value() + 1e-12,
                    "seed {seed}, ΔT {dt}"
                );
            }
        }
    }

    #[test]
    fn barrel_shift_residuals_are_indexed_by_logical_wavelength() {
        // One marked ring (index 0, +0.05 nm off grid), drift of exactly one
        // grid spacing (8 K × 0.1 nm/K = 0.8 nm): the bank hops k = 1, so
        // ring 0 now serves logical wavelength 1 and its fabrication
        // leftover must appear at slot 1, not slot 0.
        let tuner = ThermalTuner::new(
            Microwatts::new(12.0),
            Microwatts::new(1800.0),
            0.0,
            KelvinDelta::zero(), // ideal lock: residual = exactly the request leftover
        );
        let mut fab = vec![0.0; 16];
        fab[0] = 0.05;
        let bank = RingBankState::new(fab, KelvinDelta::new(8.0));
        let c = tuner.compensate_bank(
            &bank,
            0.8,
            paper_slope(),
            BankTuningMode::full_barrel_shift(16),
        );
        assert_eq!(c.shift, 1);
        // An ideal lock heats everything out: every lane's residual is 0,
        // but the heater *power* of the marked ring rides along to slot 1.
        assert!(c.residual_nm.iter().all(|r| r.abs() < 1e-12));
        let idle = c.heater_power_per_ring[2].value();
        assert!(
            c.heater_power_per_ring[1].value() > idle + 1.0,
            "ring 0's extra heat must land at logical slot 1: {:?}",
            c.heater_power_per_ring
        );
        assert!((c.heater_power_per_ring[0].value() - idle).abs() < 1e-9);

        // With a saturating heater the marked ring's *residual* also lands
        // at slot 1 (wrapping: ring 15's residual lands at slot 0).
        let saturating = ThermalTuner::new(
            Microwatts::new(12.0),
            Microwatts::zero(), // heaters present but unable to act
            0.0,
            KelvinDelta::zero(),
        );
        let mut fab = vec![0.0; 4];
        fab[0] = 0.05;
        fab[3] = -0.02;
        let bank = RingBankState::new(fab, KelvinDelta::zero());
        let c = saturating.heat_bank(&bank, 0.8, paper_slope(), 1, None);
        assert!((c.residual_nm[1] - (0.05 - 0.8)).abs() < 1e-12, "{c:?}");
        assert!(
            (c.residual_nm[0] - (-0.02 - 0.8)).abs() < 1e-12,
            "wrap: {c:?}"
        );
    }

    #[test]
    fn cooling_drift_shifts_the_other_way() {
        let tuner = ThermalTuner::paper_heater();
        let bank = RingBankState::new(vec![0.0; 16], KelvinDelta::new(-24.0));
        let c = tuner.compensate_bank(
            &bank,
            0.8,
            paper_slope(),
            BankTuningMode::full_barrel_shift(16),
        );
        assert_eq!(c.shift, -3);
    }

    #[test]
    fn zero_slope_degenerates_to_tolerating() {
        let tuner = ThermalTuner::paper_heater();
        let bank = RingBankState::new(vec![0.05, -0.05], KelvinDelta::new(10.0));
        let c = tuner.compensate_bank(&bank, 0.8, 0.0, BankTuningMode::PureHeater);
        assert_eq!(c.total_heater_power(), Microwatts::zero());
        assert_eq!(c.residual_nm, vec![0.05, -0.05]);
    }

    #[test]
    fn off_compensation_keeps_the_free_running_detuning() {
        let bank = RingBankState::new(vec![0.02, -0.01], KelvinDelta::new(10.0));
        let off = BankCompensation::off(&bank, paper_slope());
        assert_eq!(off.shift, 0);
        assert!((off.residual_nm[0] - 1.02).abs() < 1e-12);
        assert!((off.residual_nm[1] - 0.99).abs() < 1e-12);
        assert_eq!(off.total_heater_power(), Microwatts::zero());
        assert_eq!(off.worst_ring(), 0);
    }

    #[test]
    fn identity_assignment_is_bit_identical_to_the_unassigned_path() {
        let tuner = ThermalTuner::paper_heater();
        let identity = WavelengthAssignment::identity(16);
        for seed in [0u64, 3, 9] {
            for dt in [0.0, 7.5, 32.0, -24.0] {
                let bank = RingBankState::new(
                    FabricationVariation::new(0.04, seed).offsets_nm(16),
                    KelvinDelta::new(dt),
                );
                for mode in [
                    BankTuningMode::PureHeater,
                    BankTuningMode::full_barrel_shift(16),
                ] {
                    let plain = tuner.compensate_bank(&bank, 0.8, paper_slope(), mode);
                    let assigned = tuner.compensate_bank_assigned(
                        &bank,
                        0.8,
                        paper_slope(),
                        mode,
                        Some(&identity),
                    );
                    assert_eq!(plain, assigned, "seed {seed}, ΔT {dt}, {mode:?}");
                }
                let off = BankCompensation::off(&bank, paper_slope());
                let off_assigned =
                    BankCompensation::off_assigned(&bank, 0.8, paper_slope(), Some(&identity));
                assert_eq!(off, off_assigned, "seed {seed}, ΔT {dt}");
            }
        }
    }

    #[test]
    fn design_assignment_composes_with_the_runtime_barrel_shift() {
        // A bank assigned for +32 K of drift (4-slot rotation baked in) that
        // actually runs at the calibration point: the runtime barrel search
        // must hop back by −4 so the heaters see (almost) nothing.
        let tuner = ThermalTuner::paper_heater();
        let rotation =
            WavelengthAssignment::new((0..16).map(|j| (j + 16 - 4) % 16).collect()).unwrap();
        let cold = RingBankState::new(vec![0.0; 16], KelvinDelta::zero());
        let c = tuner.compensate_bank_assigned(
            &cold,
            0.8,
            paper_slope(),
            BankTuningMode::full_barrel_shift(16),
            Some(&rotation),
        );
        assert_eq!(c.shift, -4, "the runtime shift undoes the design rotation");
        assert!(c.worst_residual().abs().nanometers() < 0.05);
        // Pure heating cannot undo it: every ring fights its full 4 slots.
        let pure = tuner.compensate_bank_assigned(
            &cold,
            0.8,
            paper_slope(),
            BankTuningMode::PureHeater,
            Some(&rotation),
        );
        assert!(pure.total_heater_power().value() > 10.0 * c.total_heater_power().value().max(1.0));
        // At the design temperature the assignment alone already suffices.
        let hot = RingBankState::new(vec![0.0; 16], KelvinDelta::new(32.0));
        let designed = tuner.compensate_bank_assigned(
            &hot,
            0.8,
            paper_slope(),
            BankTuningMode::PureHeater,
            Some(&rotation),
        );
        let unassigned =
            tuner.compensate_bank(&hot, 0.8, paper_slope(), BankTuningMode::PureHeater);
        assert!(
            designed.total_heater_power().value() < 0.1 * unassigned.total_heater_power().value()
        );
    }

    #[test]
    fn assigned_tolerate_measures_against_the_served_slot() {
        // Ring 15 serves lane 0 after a 1-slot rotation; heaters off.  Its
        // free-running position is one slot (0.8 nm) below lane 0, minus the
        // drift it has already picked up.
        let rotation =
            WavelengthAssignment::new((0..4).map(|j| (j + 4 - 1) % 4).collect()).unwrap();
        let bank = RingBankState::new(vec![0.0; 4], KelvinDelta::new(4.0));
        let off = BankCompensation::off_assigned(&bank, 0.8, paper_slope(), Some(&rotation));
        // Drift 0.4 nm − 0.8 nm hop = −0.4 nm at every lane.
        for lane in 0..4 {
            assert!(
                (off.residual_nm[lane] - (0.4 - 0.8)).abs() < 1e-12,
                "{off:?}"
            );
        }
        assert_eq!(off.total_heater_power(), Microwatts::zero());
    }

    #[test]
    #[should_panic(expected = "cover every ring")]
    fn mismatched_assignment_is_rejected() {
        let tuner = ThermalTuner::paper_heater();
        let bank = RingBankState::aligned(16);
        let short = WavelengthAssignment::identity(4);
        let _ = tuner.compensate_bank_assigned(
            &bank,
            0.8,
            paper_slope(),
            BankTuningMode::PureHeater,
            Some(&short),
        );
    }

    #[test]
    fn mode_validation() {
        assert!(BankTuningMode::PureHeater.validate().is_ok());
        assert!(BankTuningMode::BarrelShift { max_shift: 1 }
            .validate()
            .is_ok());
        assert!(BankTuningMode::BarrelShift { max_shift: 0 }
            .validate()
            .is_err());
        assert_eq!(
            BankTuningMode::full_barrel_shift(16),
            BankTuningMode::BarrelShift { max_shift: 15 }
        );
        assert_eq!(BankTuningMode::default(), BankTuningMode::PureHeater);
    }
}
